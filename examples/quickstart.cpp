// Quickstart: open an embedded HTAP database, create a schema, run online
// transactions, analytical queries, and a hybrid transaction (a real-time
// query in-between an online transaction) — the OLxPBench abstraction.
//
//   ./examples/quickstart
#include <cstdio>

#include "engine/database.h"
#include "engine/session.h"

using olxp::Status;
using olxp::Value;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(olxp::StatusOr<T> sor, const char* what) {
  if (!sor.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 sor.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(sor).value();
}

}  // namespace

int main() {
  // A TiDB-like engine: SSD row store + columnar replica fed by async
  // replication, snapshot isolation. Try MemSqlLike() for the unified
  // in-memory alternative.
  olxp::engine::Database db(olxp::engine::EngineProfile::TiDbLike());
  auto session = db.CreateSession();
  session->set_charging_enabled(false);  // full speed for the demo

  // --- DDL ---
  CheckOk(session->Execute(
              "CREATE TABLE product ("
              " p_id INT PRIMARY KEY, p_name VARCHAR(32), p_price DOUBLE,"
              " p_stock INT)"),
          "create table");
  CheckOk(session->Execute("CREATE INDEX idx_product_name ON product "
                           "(p_name)"),
          "create index");

  // --- online inserts ---
  for (int i = 1; i <= 100; ++i) {
    CheckOk(session->Execute("INSERT INTO product VALUES (?, ?, ?, ?)",
                             {Value::Int(i),
                              Value::String("gadget-" + std::to_string(i)),
                              Value::Double(5.0 + (i % 17) * 3.5),
                              Value::Int(10 + i % 5)}),
            "insert");
  }

  // --- an analytical query (routes to the columnar replica) ---
  db.WaitReplicaCaughtUp();
  auto report = CheckOk(
      session->Execute("SELECT COUNT(*), AVG(p_price), MIN(p_price), "
                       "MAX(p_price) FROM product"),
      "analytical query");
  std::printf("catalogue: count=%s avg=%s min=%s max=%s (served by %s)\n",
              report.rows[0][0].ToString().c_str(),
              report.rows[0][1].ToString().c_str(),
              report.rows[0][2].ToString().c_str(),
              report.rows[0][3].ToString().c_str(),
              session->last_route() ==
                      olxp::engine::RoutedStore::kColumnStore
                  ? "columnar replica"
                  : "row store");

  // --- a hybrid transaction: real-time query in-between an online txn ---
  Check(session->Begin(), "begin");
  auto cheapest = CheckOk(
      session->Execute("SELECT MIN(p_price) FROM product"),  // real-time
      "real-time query");
  double min_price = cheapest.rows[0][0].AsDouble();
  auto pick = CheckOk(
      session->Execute("SELECT p_id, p_stock FROM product WHERE p_price = ?",
                       {Value::Double(min_price)}),
      "pick");
  int64_t p_id = pick.rows[0][0].AsInt();
  CheckOk(session->Execute(
              "UPDATE product SET p_stock = p_stock - 1 WHERE p_id = ?",
              {Value::Int(p_id)}),
          "order");
  Check(session->Commit(), "commit");
  std::printf(
      "hybrid txn: bought product %lld at the real-time lowest price %.2f "
      "(the whole transaction was pinned to the row store)\n",
      static_cast<long long>(p_id), min_price);
  return 0;
}
