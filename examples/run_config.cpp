// Config-driven OLxPBench runner — the INI equivalent of the paper's
// XML-configured client (§IV-C): picks the benchmark, transaction weights,
// request rates, SUT profile and thread counts from a config file and
// prints the statistics report.
//
//   ./examples/run_config configs/subench_tidb.ini
#include <cstdio>

#include "benchfw/driver.h"
#include "benchfw/report.h"
#include "benchmarks/chbench/chbench.h"
#include "benchmarks/fibench/fibench.h"
#include "benchmarks/subench/subench.h"
#include "benchmarks/tabench/tabench.h"
#include "common/config.h"

using namespace olxp;

namespace {

StatusOr<benchfw::BenchmarkSuite> MakeSuite(const std::string& name,
                                            benchfw::LoadParams load) {
  if (name == "subenchmark") return benchmarks::MakeSubenchmark(load);
  if (name == "fibenchmark") return benchmarks::MakeFibenchmark(load);
  if (name == "tabenchmark") return benchmarks::MakeTabenchmark(load);
  if (name == "ch-benchmark" || name == "chbenchmark") {
    return benchmarks::MakeChBenchmark(load);
  }
  return Status::InvalidArgument("unknown benchmark: " + name);
}

/// Every key the runner reads. Load() validates the file against this
/// closed set, so a typo (`exec_treads = 4`) fails with a suggestion
/// instead of silently running with the default.
const std::vector<std::string> kKnownKeys = {
    "workload.benchmark",    "workload.scale",
    "workload.items",        "workload.txn_weights",
    "workload.oltp_rate",    "workload.oltp_threads",
    "workload.olap_rate",    "workload.olap_threads",
    "workload.hybrid_rate",  "workload.hybrid_threads",
    "run.seed",              "run.open_loop",
    "run.warmup_seconds",    "run.measure_seconds",
    "run.print_stats_json",  "sut.profile",
    "sut.cluster_nodes",     "sut.replication_lag_ms",
    "sut.exec_threads",      "sut.trace_level",
    "sut.slow_query_threshold_us",
};

int Run(const std::string& path) {
  auto cfg_or = Config::Load(path, kKnownKeys);
  if (!cfg_or.ok()) {
    std::fprintf(stderr, "config: %s\n", cfg_or.status().ToString().c_str());
    return 1;
  }
  const Config& cfg = *cfg_or;

  benchfw::LoadParams load;
  load.scale = static_cast<int>(cfg.GetInt("workload.scale", 2).value());
  load.items = static_cast<int>(cfg.GetInt("workload.items", 2000).value());
  load.seed = static_cast<uint64_t>(cfg.GetInt("run.seed", 42).value());

  auto suite_or =
      MakeSuite(cfg.GetString("workload.benchmark", "subenchmark"), load);
  if (!suite_or.ok()) {
    std::fprintf(stderr, "%s\n", suite_or.status().ToString().c_str());
    return 1;
  }
  benchfw::BenchmarkSuite& suite = *suite_or;

  auto profile_or =
      engine::EngineProfile::ByName(cfg.GetString("sut.profile", "tidb-like"));
  if (!profile_or.ok()) {
    std::fprintf(stderr, "%s\n", profile_or.status().ToString().c_str());
    return 1;
  }
  engine::EngineProfile profile = *profile_or;
  profile.cluster.num_nodes =
      static_cast<int>(cfg.GetInt("sut.cluster_nodes", 4).value());
  profile.replication_lag_micros =
      cfg.GetInt("sut.replication_lag_ms", 20).value() * 1000;
  profile.exec_threads = static_cast<int>(
      cfg.GetInt("sut.exec_threads", profile.exec_threads).value());
  profile.trace_level =
      static_cast<int>(cfg.GetInt("sut.trace_level", 0).value());
  profile.slow_query_threshold_us =
      cfg.GetInt("sut.slow_query_threshold_us", 0).value();

  engine::Database db(profile);
  std::printf("loading %s (scale=%d) on %s...\n", suite.name.c_str(),
              load.scale, profile.name.c_str());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }

  const bool open_loop = cfg.GetBool("run.open_loop", true).value();
  std::vector<benchfw::AgentConfig> agents;
  auto add_agent = [&](benchfw::AgentKind kind, const char* rate_key,
                       const char* threads_key) -> Status {
    double rate = cfg.GetDouble(rate_key, 0).value();
    if (rate <= 0) return Status::OK();
    benchfw::AgentConfig a;
    a.kind = kind;
    a.request_rate = open_loop ? rate : -1;
    a.threads =
        static_cast<int>(cfg.GetInt(threads_key, 8).value());
    if (kind == benchfw::AgentKind::kOltp) {
      auto weights = cfg.GetDoubleList("workload.txn_weights", {});
      if (!weights.ok()) return weights.status();
      if (!weights->empty()) {
        if (weights->size() != suite.transactions.size()) {
          return Status::InvalidArgument(
              "txn_weights arity does not match the benchmark");
        }
        a.weight_override = *weights;
      }
    }
    agents.push_back(std::move(a));
    return Status::OK();
  };
  Status a1 = add_agent(benchfw::AgentKind::kOltp, "workload.oltp_rate",
                        "workload.oltp_threads");
  Status a2 = add_agent(benchfw::AgentKind::kOlap, "workload.olap_rate",
                        "workload.olap_threads");
  Status a3 = add_agent(benchfw::AgentKind::kHybrid, "workload.hybrid_rate",
                        "workload.hybrid_threads");
  for (const Status& s : {a1, a2, a3}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (agents.empty()) {
    std::fprintf(stderr, "no agent has a positive rate\n");
    return 1;
  }

  benchfw::RunConfig run;
  run.warmup_seconds = cfg.GetDouble("run.warmup_seconds", 0.5).value();
  run.measure_seconds = cfg.GetDouble("run.measure_seconds", 5).value();
  run.seed = load.seed;

  std::printf("running %.1fs warmup + %.1fs measurement...\n",
              run.warmup_seconds, run.measure_seconds);
  auto result = benchfw::RunCell(db, suite, agents, run);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", benchfw::FormatRunResult(*result).c_str());
  if (cfg.GetBool("run.print_stats_json", false).value()) {
    std::printf("%s\n", db.StatsJson().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <config.ini>\n", argv[0]);
    return 2;
  }
  return Run(argv[1]);
}
