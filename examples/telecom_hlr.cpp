// Telecom scenario: tabenchmark's Home Location Register domain. Shows the
// composite-primary-key pitfall the paper dissects (a sub_nbr-only lookup
// degrades to a full scan) and the fuzzy-search hybrid transaction (X6).
//
//   ./examples/telecom_hlr
#include <cstdio>

#include "benchfw/driver.h"
#include "benchmarks/tabench/tabench.h"
#include "common/clock.h"
#include "common/strings.h"

using namespace olxp;

int main() {
  benchfw::LoadParams load;
  load.scale = 2;  // 2000 subscribers
  benchfw::BenchmarkSuite suite = benchmarks::MakeTabenchmark(load);
  engine::Database db(engine::EngineProfile::TiDbLike());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }
  auto session = db.CreateSession();
  session->set_charging_enabled(false);

  // Fast path: full composite key (s_id, sub_nbr) -> primary index point
  // read.
  std::string nbr = StrFormat("%015d", 1234);
  Stopwatch fast;
  auto by_pk = session->Execute(
      "SELECT vlr_location FROM subscriber WHERE s_id = ? AND sub_nbr = ?",
      {Value::Int(1234), Value::String(nbr)});
  double fast_ms = fast.ElapsedMillis();

  // Slow path: the paper's slow query — sub_nbr alone cannot use the
  // composite primary key, so the engine scans the table.
  Stopwatch slow;
  auto by_nbr = session->Execute(
      "SELECT s_id FROM subscriber WHERE sub_nbr = ?",
      {Value::String(nbr)});
  double slow_ms = slow.ElapsedMillis();

  if (!by_pk.ok() || !by_nbr.ok()) {
    std::fprintf(stderr, "lookups failed\n");
    return 1;
  }
  std::printf("composite-pk point read: %.3f ms (1 row)\n", fast_ms);
  std::printf("sub_nbr-only slow query: %.3f ms (full scan, %.0fx slower "
              "in real work; the simulated engines charge it accordingly)\n",
              slow_ms, fast_ms > 0 ? slow_ms / fast_ms : 0);

  // Hybrid fuzzy search (X6): real-time LIKE sub-string match inside a
  // profile-update transaction.
  Status b = session->Begin();
  if (!b.ok()) return 1;
  auto fuzzy = session->Execute(
      "SELECT s_id, sub_nbr FROM subscriber WHERE sub_nbr LIKE ?",
      {Value::String("%0042%")});
  if (fuzzy.ok()) {
    std::printf("fuzzy '%%0042%%' matched %zu subscribers (real-time, "
                "inside the transaction)\n",
                fuzzy->rows.size());
  }
  auto upd = session->Execute(
      "UPDATE subscriber SET msc_location = msc_location + 1 WHERE "
      "s_id = ? AND sub_nbr = ?",
      {Value::Int(1234), Value::String(nbr)});
  if (!upd.ok()) {
    (void)session->Rollback();  // the update failure already decided exit 1
    return 1;
  }
  Status c = session->Commit();
  if (!c.ok()) return 1;
  std::printf("hybrid fuzzy-search transaction committed\n");

  // Real-time load forecast (the paper's Start Time Query).
  auto forecast = session->Execute(
      "SELECT AVG(start_time), AVG(end_time - start_time) FROM "
      "call_forwarding");
  if (forecast.ok() && !forecast->rows.empty()) {
    std::printf("call-forwarding forecast: avg start %s, avg duration %s\n",
                forecast->rows[0][0].ToString().c_str(),
                forecast->rows[0][1].ToString().c_str());
  }
  return 0;
}
