// Retail scenario: run the subenchmark suite's loader, then drive a mixed
// HTAP load (online orders + real-time dashboards) and print a small live
// report — the workload the paper's introduction motivates (real-time
// analysis on fresh retail data).
//
//   ./examples/retail_dashboard [--quick]
#include <cstdio>
#include <cstring>

#include "benchfw/driver.h"
#include "benchfw/report.h"
#include "benchmarks/subench/subench.h"

using namespace olxp;

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  benchfw::LoadParams load;
  load.scale = 2;
  load.items = quick ? 1000 : 5000;
  benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(load);

  engine::Database db(engine::EngineProfile::TiDbLike());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %d warehouses, %d items\n", load.scale, load.items);

  // Online ordering traffic + an analytical dashboard agent.
  benchfw::AgentConfig oltp;
  oltp.kind = benchfw::AgentKind::kOltp;
  oltp.request_rate = quick ? 20 : 60;
  oltp.threads = 8;
  benchfw::AgentConfig olap;
  olap.kind = benchfw::AgentKind::kOlap;
  olap.request_rate = 1;
  olap.threads = 2;

  benchfw::RunConfig cfg;
  cfg.warmup_seconds = 0.3;
  cfg.measure_seconds = quick ? 1.0 : 4.0;
  auto result = benchfw::RunCell(db, suite, {oltp, olap}, cfg);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", benchfw::FormatRunResult(*result).c_str());

  // A fresh-data dashboard straight from the public API.
  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  auto top = session->Execute(
      "SELECT ol_i_id, SUM(ol_amount) AS revenue FROM order_line "
      "GROUP BY ol_i_id ORDER BY revenue DESC LIMIT 5");
  if (top.ok()) {
    std::printf("\ntop items by revenue (fresh data):\n");
    for (const Row& row : top->rows) {
      std::printf("  item %-6s revenue %s\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
    }
  }
  auto backlog = session->Execute(
      "SELECT COUNT(*) FROM new_order");
  if (backlog.ok()) {
    std::printf("undelivered orders right now: %s\n",
                backlog->rows[0][0].ToString().c_str());
  }

  // The operator view of the same run: a per-operator breakdown of one
  // dashboard query, then the engine-wide telemetry snapshot (WAL, vacuum,
  // replication, locks, worker pool, router) every subsystem reported
  // while the agents ran.
  auto explained = session->Execute(
      "EXPLAIN ANALYZE SELECT ol_i_id, SUM(ol_amount) AS revenue "
      "FROM order_line GROUP BY ol_i_id ORDER BY revenue DESC LIMIT 5");
  if (explained.ok()) {
    std::printf("\ndashboard query, explained:\n");
    for (const Row& row : explained->rows) {
      std::printf("  %s\n", row[0].AsString().c_str());
    }
  }
  std::printf("\nlive engine telemetry (Database::StatsJson):\n%s\n",
              db.StatsJson().c_str());
  return 0;
}
