// Banking scenario: fibenchmark's domain — payments with an in-transaction
// real-time fraud screen. Demonstrates the paper's hybrid-transaction
// abstraction on the banking schema: the screen must see the freshest
// committed balances, so it runs inside the payment transaction and is
// pinned to the row store.
//
//   ./examples/banking_fraud_screen
#include <cstdio>

#include "benchfw/driver.h"
#include "benchmarks/fibench/fibench.h"
#include "common/rng.h"

using namespace olxp;

namespace {

/// A payment with a real-time risk screen: reject when the destination
/// account's total balance is an extreme outlier versus the live average.
Status ScreenedPayment(engine::Session& s, int64_t from, int64_t to,
                       double amount, bool* rejected) {
  OLXP_RETURN_NOT_OK(s.Begin());
  auto run = [&]() -> Status {
    // Real-time aggregates on fresh committed data.
    auto stats = s.Execute(
        "SELECT AVG(sv.bal + ck.bal), MAX(sv.bal + ck.bal) FROM saving sv "
        "JOIN checking ck ON ck.custid = sv.custid");
    if (!stats.ok()) return stats.status();
    double avg = stats->rows[0][0].AsDouble();
    auto dest = s.Execute(
        "SELECT sv.bal + ck.bal FROM saving sv JOIN checking ck ON "
        "ck.custid = sv.custid WHERE sv.custid = ?",
        {Value::Int(to)});
    if (!dest.ok()) return dest.status();
    if (!dest->rows.empty() &&
        dest->rows[0][0].AsDouble() > 20.0 * avg) {
      *rejected = true;
      return Status::OK();  // screened out; commit nothing
    }
    auto debit = s.Execute(
        "UPDATE checking SET bal = bal - ? WHERE custid = ?",
        {Value::Double(amount), Value::Int(from)});
    if (!debit.ok()) return debit.status();
    auto credit = s.Execute(
        "UPDATE checking SET bal = bal + ? WHERE custid = ?",
        {Value::Double(amount), Value::Int(to)});
    return credit.ok() ? Status::OK() : credit.status();
  };
  Status st = run();
  if (!st.ok()) {
    (void)s.Rollback();  // run()'s error is the one to report
    return st;
  }
  return s.Commit();
}

}  // namespace

int main() {
  benchfw::LoadParams load;
  load.scale = 2;  // 2000 accounts
  benchfw::BenchmarkSuite suite = benchmarks::MakeFibenchmark(load);
  engine::Database db(engine::EngineProfile::TiDbLike());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }

  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  Rng rng(2024);
  int ok = 0, rejected_count = 0, retried = 0;
  for (int i = 0; i < 200; ++i) {
    int64_t from = rng.Uniform(int64_t{1}, int64_t{2000});
    int64_t to = rng.Uniform(int64_t{1}, int64_t{2000});
    if (to == from) to = to % 2000 + 1;
    bool rejected = false;
    Status pst = ScreenedPayment(*session, from, to,
                                 rng.Uniform(0.01, 75.0), &rejected);
    while (!pst.ok() && pst.IsRetryable()) {
      ++retried;
      rejected = false;
      pst = ScreenedPayment(*session, from, to, rng.Uniform(0.01, 75.0),
                            &rejected);
    }
    if (!pst.ok()) {
      std::fprintf(stderr, "payment failed: %s\n", pst.ToString().c_str());
      return 1;
    }
    if (rejected) {
      ++rejected_count;
    } else {
      ++ok;
    }
  }
  std::printf("payments: %d committed, %d screened out, %d retries\n", ok,
              rejected_count, retried);

  // Conservation check: every screened payment moved money between
  // accounts only, so the bank-wide total is unchanged. The audit query
  // routes to the columnar replica, so drain the asynchronous replication
  // pipeline first — otherwise the audit sees a slightly stale snapshot
  // (the freshness lag HTAP systems trade on).
  db.WaitReplicaCaughtUp();
  auto total = session->Execute(
      "SELECT SUM(sv.bal) + SUM(ck.bal) FROM saving sv JOIN checking ck "
      "ON ck.custid = sv.custid");
  if (total.ok()) {
    std::printf("bank-wide total balance: %s (expected 2000 x 2000.00)\n",
                total->rows[0][0].ToString().c_str());
  }
  return 0;
}
