#!/usr/bin/env python3
"""Repo-specific lint pass for rules the compiler cannot express.

Stdlib-only; runs from CI (static-analysis job) and from ctest. Rules:

  raw-sync        std::mutex / std::shared_mutex / std lock guards /
                  std::condition_variable are banned outside the sync
                  core (src/common/sync.h and the lock-order witness it
                  hooks into) — all engine synchronization goes through
                  the Clang-TSA-annotated wrappers so every new lock is
                  born analyzable. Findings carry the suggested sync::
                  replacement.
  tsa-escape      NO_THREAD_SAFETY_ANALYSIS is banned outside the sync
                  core: fix the locking, don't mute the analysis.
  lock-rank       Every sync::Mutex / sync::SharedMutex construction in
                  engine code must pass a named LockRank:: and a name,
                  so the lock-order witness (common/lockorder.h) covers
                  every lock from birth.
  todo-tag        TODO comments must carry an issue tag — TODO(#123) —
                  so they are findable and owned, not permanent.
  parent-include  #include "../foo.h" is banned; include internal
                  headers by their src/-relative path so moves don't
                  silently re-resolve.
  naked-status    A statement that calls a Status-returning method and
                  discards the result (`s.Execute(...);` as a whole
                  statement) is banned in non-test code. [[nodiscard]]
                  catches this at compile time; the lint also covers
                  files a given build config never compiles.
  columns-access  The identifier `columns_` is banned outside
                  src/storage/column_store.* / column_block.*: the
                  monolithic per-table Value vectors are gone, and every
                  reader (kernels, joins, tests) must go through the
                  block API (ColumnChunkView spans / value_at). Also
                  keeps anyone from reintroducing a member with the old
                  name and poking at it directly.
  blocking-under-lock
                  A blocking call — fsync/fdatasync, ::sleep/usleep/
                  nanosleep, std::this_thread::sleep_for/until, or
                  file-stream construction — lexically inside a
                  sync::MutexLock / sync::WriterLock scope stalls every
                  thread queued on that lock for the duration of the
                  syscall. Engine code must drop the lock first (baton /
                  leader-follower handoff). The sync core and the WAL
                  writer (src/storage/wal.cc) are exempt: the group-
                  commit leader fsyncs while holding the baton by
                  design, with followers deliberately parked.

Usage: lint_engine.py [--root DIR] [--json]
Exits 0 when clean, 1 otherwise. Default output is one human-readable
`path:line: rule: message` line per finding; --json emits a JSON array of
{"path", "line", "rule", "message"} objects for tooling.
"""

import argparse
import json
import pathlib
import re
import sys

# Directories scanned, relative to the repo root.
SCAN_DIRS = ["src", "tests", "bench", "examples"]
# Engine (non-test) code: raw-sync, tsa-escape and naked-status apply here.
ENGINE_DIRS = ["src"]
# The sync core: the only files allowed to touch raw primitives and the
# escape hatch (the wrappers themselves and the lock-order witness they
# call into, which cannot use the wrappers it instruments).
SYNC_CORE = {
    "src/common/sync.h",
    "src/common/lockorder.h",
    "src/common/lockorder.cc",
}

CC_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable(_any)?)\b")
# Fix-hint appended to raw-sync findings: the wrapper that replaces each
# banned primitive.
RAW_SYNC_SUGGEST = {
    "mutex": "sync::Mutex",
    "shared_mutex": "sync::SharedMutex",
    "recursive_mutex": "sync::Mutex (restructure: no recursive locking)",
    "timed_mutex": "sync::Mutex",
    "lock_guard": "sync::MutexLock",
    "unique_lock": "sync::MutexLock",
    "scoped_lock": "sync::MutexLock",
    "shared_lock": "sync::ReaderLock",
    "condition_variable": "sync::CondVar",
    "condition_variable_any": "sync::CondVar",
}
# A sync wrapper lock being CONSTRUCTED (declaration followed by an
# identifier). Pointer/reference parameters (`sync::Mutex* mu`) and the
# guards (sync::MutexLock etc.) don't match.
LOCK_DECL_RE = re.compile(r"\bsync::(?:Mutex|SharedMutex)\b\s+[A-Za-z_]")
LOCK_RANK_RE = re.compile(r"\bLockRank::k[A-Za-z]+\b")
TSA_ESCAPE_RE = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b|"
                           r"\bno_thread_safety_analysis\b")
TODO_RE = re.compile(r"\bTODO\b")
TODO_TAGGED_RE = re.compile(r"\bTODO\(#\d+\)")
PARENT_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"\.\./')
# A whole statement of the form `obj.Method(...);` / `obj->Method(...);` /
# `Method(...);` for the known Status-returning method names, with nothing
# consuming the result. Single-line heuristic: multi-line calls and every
# compiled configuration are already covered by [[nodiscard]] + -Werror.
STATUS_METHODS = (
    "Execute|ExecutePrepared|Commit|Rollback|Abort|Begin|Flush|"
    "InstallVersion|AddIndex|Checkpoint|WaitDurable")
NAKED_STATUS_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\.|->))*(?:%s)\s*\([^;]*\)\s*;\s*(?://.*)?$"
    % STATUS_METHODS)

COLUMNS_ACCESS_RE = re.compile(r"\bcolumns_\b")
# Files allowed to define/use a `columns_` member (the block storage core).
COLUMNS_ALLOWED_PREFIXES = (
    "src/storage/column_store",
    "src/storage/column_block",
)

LINE_COMMENT_RE = re.compile(r"^\s*(//|\*|/\*)")

# blocking-under-lock: guard construction opens a lexical critical section
# that lasts until the enclosing brace scope closes.
GUARD_DECL_RE = re.compile(r"\bsync::(?:MutexLock|WriterLock)\b\s+[A-Za-z_]")
BLOCKING_CALL_RE = re.compile(
    r"(?<![\w:])(?:::)?(?:fsync|fdatasync|sleep|usleep|nanosleep)\s*\(|"
    r"\bstd::this_thread::sleep_(?:for|until)\b|"
    r"\bstd::[io]?fstream\b")
# Files whose critical sections block by design (see docstring).
BLOCKING_ALLOWED = {
    "src/storage/wal.cc",
}


def is_under(path, dirs):
    return any(path.parts and path.parts[0] == d for d in dirs)


def lint_file(root, rel, findings):
    path = root / rel
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        findings.append((rel, 0, "io", f"unreadable: {e}"))
        return
    in_sync_core = rel.as_posix() in SYNC_CORE
    in_engine = is_under(rel, ENGINE_DIRS)
    columns_ok = rel.as_posix().startswith(COLUMNS_ALLOWED_PREFIXES)
    blocking_exempt = rel.as_posix() in BLOCKING_ALLOWED
    # blocking-under-lock scope state: brace depth, plus the depth at which
    # each live guard was declared (a guard dies when its enclosing scope
    # closes). Lexical heuristic — strings/comments containing braces can
    # skew the depth, but engine code is clang-formatted and the rule only
    # needs to see ordinary guard blocks.
    depth = 0
    guard_depths = []
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if TODO_RE.search(line) and not TODO_TAGGED_RE.search(line):
            findings.append((rel, lineno, "todo-tag",
                             "TODO without an issue tag (use TODO(#N))"))
        if PARENT_INCLUDE_RE.search(line):
            findings.append((rel, lineno, "parent-include",
                             'relative "../" include; use the src/-relative '
                             "path"))
        if COLUMNS_ACCESS_RE.search(line) and not columns_ok:
            findings.append((rel, lineno, "columns-access",
                             "direct columns_ access outside the block "
                             "storage core; go through the ColumnChunkView "
                             "block API"))
        if in_sync_core:
            continue
        if in_engine:
            m = RAW_SYNC_RE.search(line)
            if m:
                suggest = RAW_SYNC_SUGGEST.get(m.group(1))
                hint = f"; replace std::{m.group(1)} with {suggest}" \
                    if suggest else ""
                findings.append((rel, lineno, "raw-sync",
                                 "raw std sync primitive; use the annotated "
                                 f"wrappers in common/sync.h{hint}"))
            if TSA_ESCAPE_RE.search(line):
                findings.append((rel, lineno, "tsa-escape",
                                 "NO_THREAD_SAFETY_ANALYSIS outside the "
                                 "sync core; fix the locking instead"))
            if (LOCK_DECL_RE.search(line)
                    and not LINE_COMMENT_RE.match(line)):
                # The rank may sit on the declaration line or (wrapped
                # initializer) on the next one.
                window = line + (lines[lineno] if lineno < len(lines)
                                 else "")
                if not LOCK_RANK_RE.search(window):
                    findings.append((rel, lineno, "lock-rank",
                                     "sync lock constructed without a "
                                     "named LockRank:: (and name); the "
                                     "lock-order witness must cover every "
                                     "lock — see common/lockorder.h"))
            if (NAKED_STATUS_RE.match(line)
                    and not LINE_COMMENT_RE.match(line)
                    # Unbalanced parens = continuation of a wrapping call
                    # (e.g. the second line of OLXP_RETURN_NOT_OK(...)).
                    and line.count("(") == line.count(")")):
                findings.append((rel, lineno, "naked-status",
                                 "discarded Status result; handle it or "
                                 "write (void)... with a comment"))
            if not LINE_COMMENT_RE.match(line):
                if GUARD_DECL_RE.search(line):
                    guard_depths.append(depth)
                elif (guard_depths and not blocking_exempt
                        and BLOCKING_CALL_RE.search(line)):
                    findings.append(
                        (rel, lineno, "blocking-under-lock",
                         "blocking call (fsync/sleep/file I/O) inside a "
                         "sync::MutexLock/WriterLock scope; drop the lock "
                         "before blocking"))
            depth += line.count("{") - line.count("}")
            while guard_depths and depth < guard_depths[-1]:
                guard_depths.pop()


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".",
                    help="repo root to lint (default: cwd)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array instead of "
                         "path:line text")
    args = ap.parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    findings = []
    for top in SCAN_DIRS:
        top_dir = root / top
        if not top_dir.is_dir():
            continue
        for path in sorted(top_dir.rglob("*")):
            if path.suffix in CC_SUFFIXES and path.is_file():
                lint_file(root, path.relative_to(root), findings)

    if args.json:
        print(json.dumps([{"path": rel.as_posix(), "line": lineno,
                           "rule": rule, "message": msg}
                          for rel, lineno, rule, msg in findings],
                         indent=2))
    else:
        for rel, lineno, rule, msg in findings:
            print(f"{rel.as_posix()}:{lineno}: {rule}: {msg}")
    if findings:
        print(f"lint_engine: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
