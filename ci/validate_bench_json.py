#!/usr/bin/env python3
"""Validate BENCH_<figure>.json reports against ci/bench_report.schema.json.

Stdlib-only (no jsonschema dependency): implements the subset of JSON Schema
draft-07 the schema actually uses -- type (single or list), required, enum,
properties, items, additionalProperties (false or a schema), minimum,
minItems. On top of the schema it enforces the two cell shapes the C++
writer (benchfw::BenchJsonReport) produces:

  latency cells must carry committed/throughput_per_s/latency_us
  metric  cells must carry metric/value

Usage: validate_bench_json.py BENCH_fig5.json [BENCH_durability.json ...]
Exits non-zero, naming every violation, if any file fails.
"""

import json
import os
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, name):
    if name == "number":
        # bool is an int subclass in Python; JSON booleans are not numbers.
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[name])


def check(value, schema, path, errors):
    """Appends 'path: problem' strings to errors; recurses into children."""
    types = schema.get("type")
    if types is not None:
        names = types if isinstance(types, list) else [types]
        if not any(_type_ok(value, n) for n in names):
            errors.append("%s: expected %s, got %s"
                          % (path, "/".join(names), type(value).__name__))
            return  # child checks would only cascade
    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in %r" % (path, value, schema["enum"]))
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append("%s: %r < minimum %r" % (path, value, schema["minimum"]))

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append("%s: missing required key '%s'" % (path, req))
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, child in value.items():
            child_path = "%s.%s" % (path, key)
            if key in props:
                check(child, props[key], child_path, errors)
            elif extra is False:
                errors.append("%s: unexpected key" % child_path)
            elif isinstance(extra, dict):
                check(child, extra, child_path, errors)

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append("%s: %d items < minItems %d"
                          % (path, len(value), schema["minItems"]))
        items = schema.get("items")
        if isinstance(items, dict):
            for i, child in enumerate(value):
                check(child, items, "%s[%d]" % (path, i), errors)


def check_cell_shapes(doc, errors):
    """The writer's two cell shapes, beyond what the schema states."""
    for i, cell in enumerate(doc.get("cells", [])):
        if not isinstance(cell, dict):
            continue
        path = "$.cells[%d]" % i
        kind = cell.get("type")
        if kind == "latency":
            for key in ("committed", "throughput_per_s", "latency_us"):
                if key not in cell:
                    errors.append("%s: latency cell missing '%s'" % (path, key))
        elif kind == "metric":
            for key in ("metric", "value"):
                if key not in cell:
                    errors.append("%s: metric cell missing '%s'" % (path, key))


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "bench_report.schema.json")
    with open(schema_path) as f:
        schema = json.load(f)

    failed = False
    for report_path in argv[1:]:
        errors = []
        try:
            with open(report_path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            errors.append("$: %s" % e)
        else:
            check(doc, schema, "$", errors)
            check_cell_shapes(doc, errors)
        if errors:
            failed = True
            print("FAIL %s" % report_path)
            for err in errors:
                print("  %s" % err)
        else:
            ncells = len(doc.get("cells", []))
            print("OK   %s (figure=%s, %d cells)"
                  % (report_path, doc.get("figure"), ncells))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
