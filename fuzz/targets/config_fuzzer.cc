// libFuzzer entry for the Config::Parse harness.
#include "fuzz/common/config_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return olxp::fuzz::ConfigOne(data, size);
}
