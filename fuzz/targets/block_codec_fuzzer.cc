// libFuzzer entry for the sealed-block codec property harness.
#include "fuzz/common/codec_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return olxp::fuzz::CodecOne(data, size);
}
