// libFuzzer entry for the structure-aware SQL differential oracle; the same
// function backs fuzz_sql_differential_replay (see fuzz/common/
// standalone_main.cc), so the seed corpus replays as a ctest target.
#include "fuzz/common/sql_oracle.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return olxp::fuzz::SqlOne(data, size);
}
