// libFuzzer entry for the WAL/recovery harness.
#include "fuzz/common/wal_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return olxp::fuzz::WalOne(data, size);
}
