// Regenerates the checked-in WAL/recovery seed corpus (fuzz/corpus/
// wal_recovery). Each file is one harness input: a mode byte followed by
// segment bytes, a frame payload, or a checkpoint body (see
// fuzz/common/wal_harness.h). Run manually after changing the frame or
// checkpoint format:
//
//   ./build/make_wal_corpus fuzz/corpus/wal_recovery
//
// The seeds mix well-formed logs (replay must succeed), torn/corrupt tails
// (replay must stop cleanly), and CRC-valid but semantically hostile
// payloads — out-of-range primary-key columns, bad type bytes, arity
// mismatches — that regression-test the semantic validation in
// storage/wal.cc and engine/database.cc.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/wal.h"

namespace olxp {
namespace {

using storage::ColumnDef;
using storage::CommitRecord;
using storage::IndexDef;
using storage::LogOp;
using storage::TableSchema;
using storage::WalFrame;

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               uint8_t mode, const std::string& payload) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.put(static_cast<char>(mode));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", (dir / name).string().c_str());
    std::exit(1);
  }
}

TableSchema GoodSchema() {
  return TableSchema(
      "fz_t",
      {{"a", ValueType::kInt, false}, {"b", ValueType::kInt, true},
       {"d", ValueType::kString, true}},
      {0});
}

WalFrame CreateTableFrame(uint64_t seq, TableSchema schema) {
  WalFrame f;
  f.type = WalFrame::Type::kCreateTable;
  f.seq = seq;
  f.table_id = 1;
  f.schema = std::move(schema);
  return f;
}

WalFrame CommitFrame(uint64_t seq, int64_t key, Row data) {
  WalFrame f;
  f.type = WalFrame::Type::kCommit;
  f.seq = seq;
  f.commit.commit_ts = seq * 10;
  f.commit.commit_wall_us = 0;
  LogOp op;
  op.kind = LogOp::Kind::kUpsert;
  op.table_id = 1;
  op.pk = {Value::Int(key)};
  op.data = std::move(data);
  f.commit.ops.push_back(std::move(op));
  return f;
}

std::string Encode(const std::vector<WalFrame>& frames) {
  std::string out;
  for (const WalFrame& f : frames) storage::EncodeFrame(f, &out);
  return out;
}

/// Payload of one frame (what mode 2 wraps): EncodeFrame output minus the
/// 8-byte [len][crc] header.
std::string PayloadOf(const WalFrame& f) {
  std::string framed;
  storage::EncodeFrame(f, &framed);
  return framed.substr(8);
}

}  // namespace

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  std::filesystem::create_directories(dir);

  // --- well-formed logs (must replay clean and recover the rows) ---
  const std::string good = Encode(
      {CreateTableFrame(1, GoodSchema()),
       CommitFrame(2, 1, {Value::Int(1), Value::Int(10), Value::String("x")}),
       CommitFrame(3, 2, {Value::Int(2), Value::Null(), Value::String("y")})});
  WriteSeed(dir, "good_log_raw", 0, good);
  WriteSeed(dir, "good_log_recover", 1, good);

  // --- torn/corrupt tails (replay must stop cleanly at the tear) ---
  WriteSeed(dir, "torn_tail", 0, good.substr(0, good.size() - 7));
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x5A;  // CRC mismatch mid-log
  WriteSeed(dir, "crc_corrupt", 1, corrupt);
  WriteSeed(dir, "len_only", 0, std::string("\x40\x00\x00\x00", 4));

  // --- CRC-valid, semantically hostile payloads (mode 2 re-wraps with a
  // --- correct checksum, so these reach the semantic decoders) ---

  // Out-of-range primary-key column index: ExtractPrimaryKey on any
  // replayed row would index past the end without schema validation.
  // Regression seed for the pk-bounds check in storage/wal.cc GetSchema.
  TableSchema evil_pk("fz_evil",
                      {{"a", ValueType::kInt, false},
                       {"b", ValueType::kInt, true}},
                      {7});
  WriteSeed(dir, "evil_pk_out_of_range", 2,
            PayloadOf(CreateTableFrame(1, evil_pk)));

  // Negative pk column index.
  TableSchema evil_neg("fz_neg", {{"a", ValueType::kInt, false}}, {-1});
  WriteSeed(dir, "evil_pk_negative", 2,
            PayloadOf(CreateTableFrame(1, evil_neg)));

  // Invalid column type byte: flip the encoded type of column 0 to 0xEE.
  {
    std::string payload = PayloadOf(CreateTableFrame(1, GoodSchema()));
    // Layout: type u8, seq u64, table_id i32, name len u32 + "fz_t",
    // ncols u32, col0 name len u32 + "a", col0 type u8 <- here.
    const size_t off = 1 + 8 + 4 + (4 + 4) + 4 + (4 + 1);
    if (off < payload.size()) payload[off] = static_cast<char>(0xEE);
    WriteSeed(dir, "evil_bad_type_byte", 2, payload);
  }

  // Row-arity mismatch: a commit whose row image is wider than the schema.
  WriteSeed(dir, "evil_row_arity", 2,
            PayloadOf(CommitFrame(
                2, 1,
                {Value::Int(1), Value::Int(2), Value::String("x"),
                 Value::Int(99), Value::Int(100)})));

  // Commit into a table id recovery never saw.
  {
    WalFrame f = CommitFrame(1, 5, {Value::Int(5), Value::Int(6)});
    f.commit.ops[0].table_id = 42;
    WriteSeed(dir, "evil_unknown_table", 2, PayloadOf(f));
  }

  // --- checkpoint bodies (mode 3 wraps with magic + CRC + length) ---

  // Well-formed single-table image.
  {
    storage::CheckpointImage image;
    image.oracle_ts = 100;
    image.wal_next_seq = 4;
    storage::CheckpointTable t;
    t.table_id = 1;
    t.schema = GoodSchema();
    t.rows.emplace_back(10, Row{Value::Int(1), Value::Int(10),
                                Value::String("x")});
    image.tables.push_back(std::move(t));
    // Reuse WriteCheckpoint to build the body, then strip the header the
    // harness re-adds (keeps this generator honest about the format).
    const std::filesystem::path tmp = dir / ".ckpt_tmp";
    std::filesystem::create_directories(tmp);
    Status st = storage::WriteCheckpoint(tmp.string(), image);
    if (!st.ok()) {
      std::fprintf(stderr, "WriteCheckpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    std::ifstream in(tmp / "checkpoint", std::ios::binary);
    std::string file((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::filesystem::remove_all(tmp);
    WriteSeed(dir, "good_checkpoint", 3, file.substr(8 + 4 + 8));
  }

  // Checkpoint whose schema carries an out-of-range pk index with decodable
  // rows: the checkpoint loader must reject it, not ExtractPrimaryKey OOB.
  {
    storage::CheckpointImage image;
    image.oracle_ts = 100;
    image.wal_next_seq = 2;
    storage::CheckpointTable t;
    t.table_id = 1;
    t.schema = TableSchema("fz_evil_ck",
                           {{"a", ValueType::kInt, false},
                            {"b", ValueType::kInt, true}},
                           {7});
    t.rows.emplace_back(10, Row{Value::Int(1), Value::Int(2)});
    image.tables.push_back(std::move(t));
    const std::filesystem::path tmp = dir / ".ckpt_tmp2";
    std::filesystem::create_directories(tmp);
    Status st = storage::WriteCheckpoint(tmp.string(), image);
    if (!st.ok()) {
      std::fprintf(stderr, "WriteCheckpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    std::ifstream in(tmp / "checkpoint", std::ios::binary);
    std::string file((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::filesystem::remove_all(tmp);
    WriteSeed(dir, "evil_checkpoint_pk", 3, file.substr(8 + 4 + 8));
  }

  // Truncated checkpoint body (claims a table, delivers nothing).
  WriteSeed(dir, "ckpt_truncated", 3,
            std::string("\x01\x00\x00\x00\x00\x00\x00\x00"  // oracle_ts
                        "\x01\x00\x00\x00\x00\x00\x00\x00"  // wal_next_seq
                        "\x05\x00\x00\x00",                 // ntables = 5
                        20));

  std::printf("wal corpus written to %s\n", dir.string().c_str());
  return 0;
}

}  // namespace olxp

int main(int argc, char** argv) { return olxp::Main(argc, argv); }
