#ifndef OLXP_FUZZ_COMMON_WAL_HARNESS_H_
#define OLXP_FUZZ_COMMON_WAL_HARNESS_H_

#include <cstddef>
#include <cstdint>

namespace olxp::fuzz {

/// WAL/recovery harness: feeds attacker-controlled bytes through every
/// recovery surface. Torn, corrupt or semantically hostile input must
/// produce a clean Status (or an empty-but-usable database) — never UB.
///
/// Input format — the first byte selects the mode, the rest is payload:
///   0  raw segment bytes: in-memory DecodeFrame loop, then ReplayWal over
///      a tmpdir segment file (exercises CRC/torn-tail rejection)
///   1  segment bytes through full engine recovery: Database construction
///      on a tmpdir holding the bytes as a segment, recovery_status()
///      checked, then teardown
///   2  structure-aware frame payload: the bytes are wrapped in a
///      correctly-CRC'd frame (bypasses the checksum so mutations reach the
///      semantic decode paths), then full engine recovery as in mode 1
///   3  structure-aware checkpoint body: wrapped with magic + CRC + length
///      and fed through ReadCheckpoint and full engine recovery
int WalOne(const uint8_t* data, size_t size);

}  // namespace olxp::fuzz

#endif  // OLXP_FUZZ_COMMON_WAL_HARNESS_H_
