// Corpus replay driver: runs every file named on the command line (directory
// arguments are walked recursively, files sorted) through the harness's
// LLVMFuzzerTestOneInput. Linked into the fuzz_<name>_replay executables so
// the checked-in seed corpus doubles as a deterministic regression suite on
// every build — no libFuzzer runtime (and no Clang) required. A harness
// failure aborts the process, exactly as it would under the fuzzer.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

void Collect(const fs::path& p, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
      if (entry.is_regular_file()) out->push_back(entry.path());
    }
  } else if (fs::is_regular_file(p, ec)) {
    out->push_back(p);
  } else {
    std::fprintf(stderr, "replay: no such file or directory: %s\n",
                 p.string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) Collect(argv[i], &inputs);
  std::sort(inputs.begin(), inputs.end());

  size_t ran = 0;
  for (const fs::path& p : inputs) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "replay: cannot read %s\n", p.string().c_str());
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::fprintf(stderr, "replay: %s (%zu bytes)\n", p.string().c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  if (ran == 0) {
    // An empty corpus means the ctest wiring points at the wrong place —
    // fail loudly instead of reporting a vacuous green.
    std::fprintf(stderr, "replay: no corpus inputs found\n");
    return 2;
  }
  std::printf("replay: %zu input(s) OK\n", ran);
  return 0;
}
