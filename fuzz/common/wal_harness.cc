#include "fuzz/common/wal_harness.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "engine/database.h"
#include "engine/session.h"
#include "storage/wal.h"

namespace olxp::fuzz {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per input, removed on scope exit. Uses TMPDIR
/// when set (CI points it at runner-local scratch).
struct TmpDir {
  fs::path path;

  TmpDir() {
    const char* base = std::getenv("TMPDIR");
    std::string templ =
        (fs::path(base && *base ? base : "/tmp") / "olxp_fuzz_wal_XXXXXX")
            .string();
    char* made = ::mkdtemp(templ.data());
    if (made == nullptr) {
      std::perror("mkdtemp");
      std::abort();
    }
    path = made;
  }
  ~TmpDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

void WriteFile(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "wal fuzz: cannot write %s\n", p.string().c_str());
    std::abort();
  }
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Wraps `payload` as one CRC-valid WAL frame: [len][crc][payload].
std::string FrameBytes(const std::string& payload) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU32(&out, storage::Crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

/// Wraps `body` in the checkpoint file header: [magic][crc][body_len][body].
std::string CheckpointBytes(const std::string& body) {
  std::string out;
  AppendU64(&out, 0x4F4C585043503031ull);  // kCheckpointMagic "OLXPCP01"
  AppendU32(&out, storage::Crc32(body.data(), body.size()));
  AppendU64(&out, body.size());
  out.append(body);
  return out;
}

/// Decodes the bytes frame-by-frame in memory (no filesystem), then again
/// through ReplayWal on a real segment file. Both must terminate cleanly.
void RawSegmentScan(const std::string& bytes) {
  size_t offset = 0;
  storage::WalFrame frame;
  while (storage::DecodeFrame(bytes, &offset, &frame)) {
  }

  TmpDir dir;
  WriteFile(dir.path / "wal-00000000000000000001.seg", bytes);
  uint64_t max_seq = 0;
  Status st = storage::ReplayWal(
      dir.path.string(), 1,
      [](storage::WalFrame&&) { return Status::OK(); }, &max_seq);
  (void)st;  // OK or a clean error are both acceptable; crashing is not.
}

/// Opens a full engine on a directory holding `segment` (and optionally a
/// checkpoint image): the complete recovery path — catalog rebuild, row
/// install, replica rebuild — must absorb hostile frames with a clean
/// recovery_status(). A statement afterwards proves the engine stayed
/// usable either way.
void RecoverDatabase(const std::string& segment, const std::string* ckpt) {
  TmpDir dir;
  if (!segment.empty()) {
    WriteFile(dir.path / "wal-00000000000000000001.seg", segment);
  }
  if (ckpt != nullptr) {
    WriteFile(dir.path / "checkpoint", *ckpt);
    // Direct decoder first: must return a Status (any Status), never UB.
    auto image = storage::ReadCheckpoint(dir.path.string());
    (void)image;
  }

  engine::EngineProfile p = engine::EngineProfile::TiDbLike();
  p.replication_lag_micros = 0;
  p.vacuum_interval_us = 0;
  p.durability = storage::DurabilityMode::kGroup;
  p.wal_dir = dir.path.string();
  engine::Database db(p);
  (void)db.recovery_status();  // any Status is fine; UB/crash is the bug
  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  (void)session->Execute("CREATE TABLE fz (a INT PRIMARY KEY, b INT)");
  (void)session->Execute("INSERT INTO fz VALUES (1, 2)");
  (void)session->Execute("SELECT COUNT(*) FROM fz");
}

}  // namespace

int WalOne(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  constexpr size_t kMaxInput = 1u << 20;  // bound per-input filesystem work
  if (size > kMaxInput) size = kMaxInput;
  const uint8_t mode = data[0] & 3;
  const std::string rest(reinterpret_cast<const char*>(data + 1), size - 1);

  switch (mode) {
    case 0:
      RawSegmentScan(rest);
      break;
    case 1:
      RecoverDatabase(rest, nullptr);
      break;
    case 2:
      // CRC-valid wrapper: mutations reach the semantic payload decoders
      // (type/seq/schema/row codecs) instead of dying at the checksum.
      RecoverDatabase(FrameBytes(rest), nullptr);
      break;
    default: {
      const std::string ckpt = CheckpointBytes(rest);
      RecoverDatabase(std::string(), &ckpt);
      break;
    }
  }
  return 0;
}

}  // namespace olxp::fuzz
