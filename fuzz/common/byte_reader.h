#ifndef OLXP_FUZZ_COMMON_BYTE_READER_H_
#define OLXP_FUZZ_COMMON_BYTE_READER_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace olxp::fuzz {

/// Consumes fuzzer-provided bytes as structured decisions (the
/// FuzzedDataProvider idiom, stdlib-only). Every accessor is total: an
/// exhausted reader keeps returning zeros, so harnesses never have to
/// bounds-check the input — short inputs just make degenerate choices.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool empty() const { return pos_ >= size_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t U8() { return pos_ < size_ ? data_[pos_++] : 0; }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | U8();
    return v;
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | U8();
    return v;
  }

  bool Bool() { return U8() & 1; }

  /// Uniform-ish pick in [lo, hi] (inclusive). lo > hi returns lo.
  int64_t Int(int64_t lo, int64_t hi) {
    if (lo >= hi) return lo;
    const uint64_t range = static_cast<uint64_t>(hi) -
                           static_cast<uint64_t>(lo) + 1;
    // One byte covers small ranges (keeps inputs dense); wider ranges
    // consume more.
    uint64_t raw = range <= 256 ? U8() : range <= (1u << 16) ? (U8() << 8) | U8()
                                                             : U64();
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + raw % range);
  }

  /// Picks one element of a fixed candidate array.
  template <typename T, size_t N>
  const T& Pick(const T (&options)[N]) {
    return options[static_cast<size_t>(Int(0, static_cast<int64_t>(N) - 1))];
  }

  /// Up to `max_len` characters drawn from `alphabet`.
  std::string Ascii(size_t max_len, const char* alphabet) {
    size_t alpha_len = 0;
    while (alphabet[alpha_len] != '\0') ++alpha_len;
    const size_t len = static_cast<size_t>(Int(0, static_cast<int64_t>(max_len)));
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[static_cast<size_t>(
          Int(0, static_cast<int64_t>(alpha_len) - 1))]);
    }
    return s;
  }

  /// Raw byte string (for binary payload fuzzing).
  std::string Bytes(size_t max_len) {
    const size_t len = static_cast<size_t>(
        Int(0, static_cast<int64_t>(max_len < remaining() ? max_len
                                                          : remaining())));
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) s.push_back(static_cast<char>(U8()));
    return s;
  }

  /// Everything not yet consumed, verbatim.
  std::string Rest() {
    std::string s(reinterpret_cast<const char*>(data_ + pos_), size_ - pos_);
    pos_ = size_;
    return s;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace olxp::fuzz

#endif  // OLXP_FUZZ_COMMON_BYTE_READER_H_
