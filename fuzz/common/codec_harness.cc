#include "fuzz/common/codec_harness.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/value.h"
#include "fuzz/common/byte_reader.h"
#include "storage/column_block.h"

namespace olxp::fuzz {
namespace {

using storage::EncodedColumn;
using storage::ZoneExcludes;
using storage::ZonePred;

[[noreturn]] void Fail(const char* what, size_t slot, const Value& want,
                       const Value& got) {
  std::fprintf(stderr,
               "CODEC PROPERTY VIOLATION (%s) at slot %zu: want %s, got %s\n",
               what, slot, want.ToString().c_str(), got.ToString().c_str());
  std::abort();
}

int64_t InterestingInt(ByteReader& r) {
  switch (r.Int(0, 9)) {
    case 0:
      return 0;
    case 1:
      return -1;
    case 2:
      return std::numeric_limits<int64_t>::max();
    case 3:
      return std::numeric_limits<int64_t>::min();
    case 4:
      return static_cast<int64_t>(r.U64());  // arbitrary full-width
    case 5:
      // Clustered values: provokes RLE (few distinct, long runs).
      return r.Int(0, 3);
    default:
      // Narrow range around a base: provokes frame-of-reference packing.
      return r.Int(100000, 100255);
  }
}

Value MakeValue(ByteReader& r, ValueType decl) {
  switch (decl) {
    case ValueType::kInt:
      return Value::Int(InterestingInt(r));
    case ValueType::kTimestamp:
      return Value::Timestamp(InterestingInt(r));
    case ValueType::kDouble:
      switch (r.Int(0, 5)) {
        case 0:
          return Value::Double(0.0);
        case 1:
          return Value::Double(std::numeric_limits<double>::infinity());
        case 2:
          return Value::Double(-std::numeric_limits<double>::infinity());
        default:
          return Value::Double(static_cast<double>(r.Int(-100000, 100000)) /
                               16.0);
      }
    default:
      return Value::String(r.Ascii(12, "abxyz_019"));
  }
}

bool Satisfies(const ZonePred& pred, const Value& v) {
  const int cmp = v.Compare(pred.lit);
  switch (pred.op) {
    case ZonePred::Op::kEq:
      return cmp == 0;
    case ZonePred::Op::kLt:
      return cmp < 0;
    case ZonePred::Op::kLe:
      return cmp <= 0;
    case ZonePred::Op::kGt:
      return cmp > 0;
    case ZonePred::Op::kGe:
      return cmp >= 0;
  }
  return false;
}

void CheckColumn(const std::vector<Value>& vals, ValueType decl,
                 const std::vector<uint8_t>& live, bool mixed,
                 ByteReader& r) {
  const size_t n = vals.size();
  const uint8_t* live_ptr = live.empty() ? nullptr : live.data();
  const EncodedColumn enc = EncodedColumn::Encode(vals, decl, live_ptr, true);
  const EncodedColumn raw = EncodedColumn::Encode(vals, decl, live_ptr, false);

  // Expected boxed view: dead slots read as NULL, everything else verbatim.
  auto expected = [&](size_t i) -> Value {
    if (live_ptr != nullptr && live[i] == 0) return Value::Null();
    return vals[i];
  };

  for (size_t i = 0; i < n; ++i) {
    const Value want = expected(i);
    const Value got_enc = enc.ValueAt(i);
    const Value got_raw = raw.ValueAt(i);
    if (got_enc != want) Fail("encoded ValueAt", i, want, got_enc);
    if (got_raw != want) Fail("raw ValueAt", i, want, got_raw);
  }

  const std::vector<Value> mat = enc.Materialize();
  if (mat.size() != n) {
    Fail("Materialize size", mat.size(), Value::Int(static_cast<int64_t>(n)),
         Value::Int(static_cast<int64_t>(mat.size())));
  }
  for (size_t i = 0; i < n; ++i) {
    if (mat[i] != expected(i)) Fail("Materialize", i, expected(i), mat[i]);
  }

  // Re-encode round trip (the churned-block re-encode path): dead slots
  // were materialized as NULL, so the second generation has no live map.
  const EncodedColumn again = EncodedColumn::Encode(mat, decl, nullptr, true);
  for (size_t i = 0; i < n; ++i) {
    if (again.ValueAt(i) != expected(i)) {
      Fail("re-encode ValueAt", i, expected(i), again.ValueAt(i));
    }
  }

  // Zone-map semantics are only contractual for type-homogeneous columns
  // (NormalizeRow keeps real tables that way; cross-type Value ordering is
  // a tag order, not a SQL order).
  if (mixed) return;

  // Zone maps: identical across storage forms (skipping must not depend on
  // the encoding) and bracket every live non-null value.
  if (enc.zone_min() != raw.zone_min() || enc.zone_max() != raw.zone_max()) {
    Fail("zone map form parity", 0, raw.zone_min(), enc.zone_min());
  }
  for (size_t i = 0; i < n; ++i) {
    const Value v = expected(i);
    if (v.is_null()) continue;
    if (enc.zone_min().is_null() || v < enc.zone_min() ||
        v > enc.zone_max()) {
      Fail("zone bracket", i, v, enc.zone_min());
    }
  }

  // ZoneExcludes soundness: a refuted block must hold no satisfying live
  // value. (Completeness is not required — a kept block may still be
  // empty-handed — but a wrong skip silently drops rows from results.)
  constexpr ZonePred::Op kOps[] = {ZonePred::Op::kEq, ZonePred::Op::kLt,
                                   ZonePred::Op::kLe, ZonePred::Op::kGt,
                                   ZonePred::Op::kGe};
  for (int t = 0; t < 8; ++t) {
    ZonePred pred;
    pred.op = kOps[static_cast<size_t>(r.Int(0, 4))];
    // Half the probes use an actual stored value as the literal (the case
    // a wrong skip would hide); half use fresh input-derived literals.
    if (n > 0 && r.Bool()) {
      pred.lit = expected(static_cast<size_t>(r.Int(0, static_cast<int64_t>(n) - 1)));
      if (pred.lit.is_null()) pred.lit = MakeValue(r, decl);
    } else {
      pred.lit = MakeValue(r, decl);
    }
    if (!ZoneExcludes(pred, enc.zone_min(), enc.zone_max())) continue;
    for (size_t i = 0; i < n; ++i) {
      const Value v = expected(i);
      if (v.is_null()) continue;
      if (Satisfies(pred, v)) {
        std::fprintf(stderr,
                     "CODEC PROPERTY VIOLATION (ZoneExcludes) slot %zu: "
                     "value %s satisfies refuted pred (lit %s)\n",
                     i, v.ToString().c_str(), pred.lit.ToString().c_str());
        std::abort();
      }
    }
  }
}

}  // namespace

int CodecOne(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  constexpr ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                  ValueType::kString, ValueType::kTimestamp};
  const ValueType decl = r.Pick(kTypes);
  const size_t n =
      static_cast<size_t>(r.Int(0, static_cast<int64_t>(storage::kBlockSlots)));

  const bool mixed = r.Int(0, 15) == 0;  // mixed-type column -> kRaw fallback
  std::vector<Value> vals;
  vals.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (r.Int(0, 7) == 0) {
      vals.push_back(Value::Null());
    } else if (mixed && r.Bool()) {
      vals.push_back(MakeValue(r, r.Pick(kTypes)));
    } else {
      vals.push_back(MakeValue(r, decl));
    }
  }

  std::vector<uint8_t> live;
  if (r.Bool()) {
    live.resize(n, 1);
    for (size_t i = 0; i < n; ++i) {
      if (r.Int(0, 7) == 0) live[i] = 0;  // dead slot
    }
  }

  CheckColumn(vals, decl, live, mixed, r);
  return 0;
}

}  // namespace olxp::fuzz
