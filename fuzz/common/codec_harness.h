#ifndef OLXP_FUZZ_COMMON_CODEC_HARNESS_H_
#define OLXP_FUZZ_COMMON_CODEC_HARNESS_H_

#include <cstddef>
#include <cstdint>

namespace olxp::fuzz {

/// Sealed-block codec harness: derives one block's worth of column values
/// (plus null/dead maps) from fuzzer bytes, encodes it both ways —
/// compressed (dict/RLE/bit-packed/flat) and raw boxed — and checks the
/// property set that the scan kernels rely on:
///   - ValueAt parity between the encoded and raw forms, slot by slot
///   - Materialize() round-trips to the same values
///   - re-encoding the materialized column is value-identical
///   - zone min/max match across forms and bracket every live non-null value
///   - ZoneExcludes never refutes a block that holds a satisfying value
/// Aborts on any violation.
int CodecOne(const uint8_t* data, size_t size);

}  // namespace olxp::fuzz

#endif  // OLXP_FUZZ_COMMON_CODEC_HARNESS_H_
