#ifndef OLXP_FUZZ_COMMON_CONFIG_HARNESS_H_
#define OLXP_FUZZ_COMMON_CONFIG_HARNESS_H_

#include <cstddef>
#include <cstdint>

namespace olxp::fuzz {

/// Config::Parse harness: arbitrary bytes as INI text through the parser,
/// the closed-key-set validator (Levenshtein suggestion path included) and
/// every typed getter. Malformed input must come back as Status, never UB.
int ConfigOne(const uint8_t* data, size_t size);

}  // namespace olxp::fuzz

#endif  // OLXP_FUZZ_COMMON_CONFIG_HARNESS_H_
