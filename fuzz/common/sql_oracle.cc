// Differential SQL oracle: one statement, four execution configurations,
// any disagreement is a bug. This is the logic layer shared by the
// fuzz_sql_differential target, the corpus replayer and the smoke test;
// it owns a long-lived seeded Database so per-input cost is one statement,
// not one engine bootstrap.
#include "fuzz/common/sql_oracle.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "tests/result_strings.h"

namespace olxp::fuzz {
namespace {

std::function<void(sql::ResultSet*)>& Perturber() {
  static std::function<void(sql::ResultSet*)> fn;
  return fn;
}

// ---------------------------------------------------------------------------
// Shared environment
// ---------------------------------------------------------------------------

struct Env {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<engine::Session> session;
  size_t statements = 0;
};

engine::EngineProfile FuzzProfile() {
  auto p = engine::EngineProfile::TiDbLike();
  p.olap_row_fraction = 0.0;    // deterministic routing
  p.cost_based_routing = false;  // pin analytical statements to the replica
  p.replication_lag_micros = 0;
  p.vacuum_interval_us = 0;      // no background thread: deterministic state
  p.durability = storage::DurabilityMode::kOff;
  p.wal_dir.clear();
  return p;
}

void Seed(Env& env) {
  env.db = std::make_unique<engine::Database>(FuzzProfile());
  env.session = env.db->CreateSession();
  env.session->set_charging_enabled(false);
  auto exec = [&](const std::string& sql, std::vector<Value> params = {}) {
    auto st = env.session->Execute(sql, params);
    if (!st.ok()) {
      std::fprintf(stderr, "sql fuzz seed failed: %s\n  %s\n",
                   st.status().ToString().c_str(), sql.c_str());
      std::abort();
    }
  };
  exec("CREATE TABLE t (a INT PRIMARY KEY, b INT, c DOUBLE, d VARCHAR, "
       "e INT)");
  exec("CREATE TABLE u (k INT PRIMARY KEY, v INT, w VARCHAR)");
  // > kBlockSlots rows so the replica holds at least one sealed (encoded)
  // block plus a mutable tail — both storage forms sit under every query.
  const char* tags[] = {"alpha", "beta", "gamma", "ab_x", "ab_y"};
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int a = 1; a <= 1400; ++a) {
    std::vector<Value> row;
    row.push_back(Value::Int(a));
    row.push_back(a % 17 == 0 ? Value::Null()
                              : Value::Int(static_cast<int64_t>(next() % 1000)));
    row.push_back(a % 23 == 0
                      ? Value::Null()
                      : Value::Double(static_cast<double>(next() % 10000) /
                                      10000.0));
    row.push_back(a % 29 == 0 ? Value::Null()
                              : Value::String(tags[a % 5]));
    row.push_back(Value::Int(a % 7));
    exec("INSERT INTO t VALUES (?, ?, ?, ?, ?)", row);
  }
  for (int k = 0; k < 60; ++k) {
    std::vector<Value> row;
    row.push_back(Value::Int(k));
    row.push_back(k % 11 == 0 ? Value::Null() : Value::Int(k * 3));
    row.push_back(Value::String(tags[k % 5]));
    exec("INSERT INTO u VALUES (?, ?, ?)", row);
  }
  env.db->WaitReplicaCaughtUp();
}

Env& GetEnv() {
  static Env* env = [] {
    auto* e = new Env();
    Seed(*e);
    return e;
  }();
  // DML accumulates; a periodic rebuild keeps fuzz memory bounded and the
  // table contents anchored near the seeded distribution.
  if (env->statements >= 2048) {
    env->session.reset();
    env->db.reset();
    env->statements = 0;
    Seed(*env);
  }
  return *env;
}

// ---------------------------------------------------------------------------
// Statement classification
// ---------------------------------------------------------------------------

bool StartsWithWord(const std::string& sql, const char* word) {
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  for (const char* p = word; *p; ++p, ++i) {
    if (i >= sql.size() ||
        std::toupper(static_cast<unsigned char>(sql[i])) != *p) {
      return false;
    }
  }
  return i >= sql.size() || !std::isalnum(static_cast<unsigned char>(sql[i]));
}

bool HasWord(const std::string& sql, const char* word) {
  const size_t n = std::strlen(word);
  for (size_t i = 0; i + n <= sql.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < n; ++j) {
      if (std::toupper(static_cast<unsigned char>(sql[i + j])) != word[j]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    const bool left_ok =
        i == 0 || !std::isalnum(static_cast<unsigned char>(sql[i - 1]));
    const bool right_ok =
        i + n == sql.size() ||
        !std::isalnum(static_cast<unsigned char>(sql[i + n]));
    if (left_ok && right_ok) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------------

struct PathRun {
  std::string label;
  bool ok = false;
  std::string error;
  std::vector<std::string> columns;
  std::vector<std::string> rows;
};

PathRun RunPath(Env& env, const std::string& sql, bool vectorized,
                int threads, bool perturb) {
  PathRun out;
  out.label = vectorized
                  ? "vectorized/threads=" + std::to_string(threads)
                  : "interpreter";
  env.db->set_vectorized_execution(vectorized);
  env.db->set_exec_threads(vectorized ? threads : 1);
  auto rs = env.session->Execute(sql);
  out.ok = rs.ok();
  if (!rs.ok()) {
    out.error = rs.status().ToString();
    return out;
  }
  if (perturb && Perturber()) Perturber()(&*rs);
  out.columns = rs->column_names;
  out.rows = Stringify(*rs);
  return out;
}

void Describe(std::string* report, const PathRun& p) {
  *report += "  [" + p.label + "] ";
  if (!p.ok) {
    *report += "error: " + p.error + "\n";
    return;
  }
  *report += std::to_string(p.rows.size()) + " row(s)\n";
  const size_t show = std::min<size_t>(p.rows.size(), 5);
  for (size_t i = 0; i < show; ++i) *report += "    " + p.rows[i] + "\n";
  if (p.rows.size() > show) *report += "    ...\n";
}

std::string Divergence(const std::string& sql, const char* what,
                       const PathRun& a, const PathRun& b) {
  std::string report = "SQL DIFFERENTIAL DIVERGENCE (" + std::string(what) +
                       ")\n  statement: " + sql + "\n";
  Describe(&report, a);
  Describe(&report, b);
  return report;
}

}  // namespace

void SetResultPerturberForTest(std::function<void(sql::ResultSet*)> fn) {
  Perturber() = std::move(fn);
}

std::string RunSqlDifferential(const std::string& sql) {
  Env& env = GetEnv();
  ++env.statements;

  if (!StartsWithWord(sql, "SELECT")) {
    // Non-SELECT statements mutate state, so they run exactly once (on
    // whatever engine the router picks); errors are fine, UB is not.
    (void)env.session->Execute(sql);
    if (env.session->InTransaction()) (void)env.session->Rollback();
    env.db->WaitReplicaCaughtUp();
    return "";
  }

  const bool has_limit = HasWord(sql, "LIMIT");

  PathRun interp = RunPath(env, sql, /*vectorized=*/false, 1, false);
  PathRun serial = RunPath(env, sql, /*vectorized=*/true, 1, true);
  PathRun par2 = RunPath(env, sql, /*vectorized=*/true, 2, false);
  PathRun par8 = RunPath(env, sql, /*vectorized=*/true, 8, false);
  env.db->set_exec_threads(1);
  env.db->set_vectorized_execution(true);

  // 1. Every path must agree on success vs failure.
  for (const PathRun* p : {&serial, &par2, &par8}) {
    if (p->ok != interp.ok) return Divergence(sql, "ok-ness", interp, *p);
  }
  if (!interp.ok) return "";  // all paths rejected the statement: agreed

  // 2. Parallel must equal serial row-for-row (morsel partials merge in
  //    scan order; the engine promises bit-identical output at any lane
  //    count — tests/exec_test.cc pins the same contract).
  for (const PathRun* p : {&par2, &par8}) {
    if (p->columns != serial.columns) {
      return Divergence(sql, "columns", serial, *p);
    }
    if (p->rows != serial.rows) {
      return Divergence(sql, "parallel-vs-serial rows", serial, *p);
    }
  }

  // 3. Interpreter vs vectorized: same columns, same row multiset (row
  //    order of unordered queries is engine-dependent); LIMIT without a
  //    total order only pins the row count.
  if (serial.columns != interp.columns) {
    return Divergence(sql, "columns", interp, serial);
  }
  if (has_limit) {
    if (serial.rows.size() != interp.rows.size()) {
      return Divergence(sql, "row count under LIMIT", interp, serial);
    }
    return "";
  }
  std::vector<std::string> a = interp.rows;
  std::vector<std::string> b = serial.rows;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  if (a != b) return Divergence(sql, "row multiset", interp, serial);
  return "";
}

// ---------------------------------------------------------------------------
// Structure-aware statement generator
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kIntCols[] = {"a", "b", "e"};
constexpr const char* kNumCols[] = {"a", "b", "e", "c"};
constexpr const char* kAllCols[] = {"a", "b", "c", "d", "e"};
constexpr const char* kTags[] = {"alpha", "beta", "gamma", "ab_x", "ab_y"};
constexpr const char* kLikePats[] = {"ab%", "%a%", "%x", "a_pha", "%"};
constexpr const char* kCmpOps[] = {"=", "!=", "<", "<=", ">", ">="};
constexpr const char* kArithOps[] = {"+", "-", "*", "/", "%"};
constexpr const char* kAggs[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};

std::string IntLit(ByteReader& r) {
  // Mostly in-distribution values; occasional extremes poke the checked
  // arithmetic and zone-map boundaries.
  switch (r.Int(0, 9)) {
    case 0:
      return "0";
    case 1:
      return "-1";
    case 2:
      return "9223372036854775807";
    case 3:
      return "(-9223372036854775807 - 1)";
    default:
      return std::to_string(r.Int(-9999, 9999));
  }
}

std::string NumExpr(ByteReader& r, int depth) {
  if (depth >= 3 || r.Int(0, 3) == 0) {
    return r.Bool() ? std::string(r.Pick(kNumCols)) : IntLit(r);
  }
  switch (r.Int(0, 2)) {
    case 0:
      return "(" + NumExpr(r, depth + 1) + " " +
             std::string(r.Pick(kArithOps)) + " " + NumExpr(r, depth + 1) +
             ")";
    case 1:
      return "(-" + NumExpr(r, depth + 1) + ")";
    default:
      return std::string(r.Pick(kNumCols));
  }
}

std::string Pred(ByteReader& r, int depth) {
  if (depth < 2 && r.Int(0, 3) == 0) {
    switch (r.Int(0, 2)) {
      case 0:
        return "(" + Pred(r, depth + 1) + " AND " + Pred(r, depth + 1) + ")";
      case 1:
        return "(" + Pred(r, depth + 1) + " OR " + Pred(r, depth + 1) + ")";
      default:
        return "NOT (" + Pred(r, depth + 1) + ")";
    }
  }
  switch (r.Int(0, 6)) {
    case 0: {
      const char* col = r.Pick(kAllCols);
      return std::string(col) + (r.Bool() ? " IS NULL" : " IS NOT NULL");
    }
    case 1: {
      std::string lo = std::to_string(r.Int(-100, 900));
      std::string hi = std::to_string(r.Int(-100, 1100));
      return std::string(r.Pick(kIntCols)) + " BETWEEN " + lo + " AND " + hi;
    }
    case 2: {
      std::string list;
      const int n = static_cast<int>(r.Int(1, 5));
      for (int i = 0; i < n; ++i) {
        if (i) list += ", ";
        list += std::to_string(r.Int(0, 1000));
      }
      return std::string(r.Pick(kIntCols)) + " IN (" + list + ")";
    }
    case 3:
      return "d " + std::string(r.Bool() ? "LIKE" : "NOT LIKE") + " '" +
             std::string(r.Pick(kLikePats)) + "'";
    case 4:
      return "d " + std::string(r.Bool() ? "=" : "!=") + " '" +
             std::string(r.Pick(kTags)) + "'";
    case 5:
      return "e IN (SELECT k FROM u WHERE v " +
             std::string(r.Pick(kCmpOps)) + " " +
             std::to_string(r.Int(0, 120)) + ")";
    default:
      return NumExpr(r, 1) + " " + std::string(r.Pick(kCmpOps)) + " " +
             NumExpr(r, 1);
  }
}

std::string AggItem(ByteReader& r) {
  const char* agg = r.Pick(kAggs);
  if (std::string(agg) == "COUNT" && r.Bool()) return "COUNT(*)";
  return std::string(agg) + "(" + std::string(r.Pick(kNumCols)) + ")";
}

std::string GenerateSelect(ByteReader& r) {
  switch (r.Int(0, 5)) {
    case 0: {  // projection scan
      std::string items;
      const int n = static_cast<int>(r.Int(1, 4));
      for (int i = 0; i < n; ++i) {
        if (i) items += ", ";
        items += r.Bool() ? std::string(r.Pick(kAllCols)) : NumExpr(r, 1);
      }
      std::string sql = "SELECT " + items + " FROM t";
      if (r.Bool()) sql += " WHERE " + Pred(r, 0);
      if (r.Bool()) sql += " ORDER BY a" + std::string(r.Bool() ? " DESC" : "");
      if (r.Int(0, 3) == 0) sql += " LIMIT " + std::to_string(r.Int(0, 64));
      return sql;
    }
    case 1: {  // global aggregate
      std::string items = AggItem(r);
      if (r.Bool()) items += ", " + AggItem(r);
      std::string sql = "SELECT " + items + " FROM t";
      if (r.Bool()) sql += " WHERE " + Pred(r, 0);
      return sql;
    }
    case 2: {  // grouped aggregate
      const char* g = r.Pick(kAllCols);
      std::string sql = "SELECT " + std::string(g) + ", " + AggItem(r);
      if (r.Bool()) sql += ", " + AggItem(r);
      sql += " FROM t";
      if (r.Bool()) sql += " WHERE " + Pred(r, 0);
      sql += " GROUP BY " + std::string(g);
      if (r.Bool()) {
        sql += " HAVING COUNT(*) " + std::string(r.Pick(kCmpOps)) + " " +
               std::to_string(r.Int(0, 40));
      }
      if (r.Bool()) sql += " ORDER BY " + std::string(g);
      return sql;
    }
    case 3: {  // join
      std::string sql = "SELECT t.a, t.b, u.v FROM t JOIN u ON t.e = u.k";
      if (r.Bool()) sql += " WHERE t.b > " + std::to_string(r.Int(-10, 900));
      if (r.Bool()) sql += " ORDER BY t.a";
      if (r.Int(0, 3) == 0) sql += " LIMIT " + std::to_string(r.Int(0, 64));
      return sql;
    }
    case 4: {  // distinct
      std::string sql =
          "SELECT DISTINCT " + std::string(r.Pick(kAllCols)) + " FROM t";
      if (r.Bool()) sql += " WHERE " + Pred(r, 0);
      return sql;
    }
    default: {  // CASE projection
      std::string sql = "SELECT a, CASE WHEN " + Pred(r, 1) + " THEN " +
                        NumExpr(r, 2) + " ELSE " + NumExpr(r, 2) +
                        " END FROM t";
      if (r.Bool()) sql += " WHERE " + Pred(r, 0);
      return sql;
    }
  }
}

}  // namespace

std::string GenerateSql(ByteReader& r) {
  const int64_t kind = r.Int(0, 9);
  if (kind <= 6) return GenerateSelect(r);
  switch (kind) {
    case 7: {  // insert (fresh or clashing primary key; both must be clean)
      const int64_t pk = r.Int(1, 4000);
      return "INSERT INTO t VALUES (" + std::to_string(pk) + ", " +
             std::to_string(r.Int(0, 1000)) + ", " +
             std::to_string(r.Int(0, 100)) + ".5, '" +
             std::string(r.Pick(kTags)) + "', " + std::to_string(r.Int(0, 6)) +
             ")";
    }
    case 8:
      return "UPDATE t SET b = " + NumExpr(r, 1) + " WHERE a = " +
             std::to_string(r.Int(1, 2000));
    default:
      return "DELETE FROM t WHERE a = " + std::to_string(r.Int(1, 2000));
  }
}

int SqlOne(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  std::string sql;
  if (data[0] == 0xFF) {
    ByteReader r(data + 1, size - 1);
    sql = GenerateSql(r);
  } else {
    // Raw-text mode: the corpus stays human-readable and libFuzzer's plain
    // byte mutations explore the lexer/parser directly.
    if (size > 4096) size = 4096;  // bound parser work per input
    sql.assign(reinterpret_cast<const char*>(data), size);
  }
  std::string report = RunSqlDifferential(sql);
  if (!report.empty()) {
    std::fprintf(stderr, "%s", report.c_str());
    std::abort();
  }
  return 0;
}

}  // namespace olxp::fuzz
