#include "fuzz/common/config_harness.h"

#include <string>
#include <vector>

#include "common/config.h"

namespace olxp::fuzz {

int ConfigOne(const uint8_t* data, size_t size) {
  constexpr size_t kMaxInput = 1u << 18;  // bound per-input parse work
  if (size > kMaxInput) size = kMaxInput;
  const std::string text(reinterpret_cast<const char*>(data), size);

  auto cfg = Config::Parse(text);
  if (!cfg.ok()) return 0;

  // Closed-key-set validation: every parsed key runs through the unknown-key
  // rejection and its Levenshtein nearest-neighbour suggestion.
  static const std::vector<std::string> kKnown = {
      "workload.benchmark", "workload.txn_weights", "sut.profile",
      "sut.exec_threads",   "sut.durability",
  };
  (void)cfg->ValidateKeys(kKnown);

  // Typed getters over every parsed key: malformed numerics must surface
  // as InvalidArgument, not crash.
  for (const std::string& key : cfg->Keys()) {
    (void)cfg->GetString(key, "");
    (void)cfg->GetInt(key, 0);
    (void)cfg->GetDouble(key, 0.0);
    (void)cfg->GetBool(key, false);
    (void)cfg->GetDoubleList(key, {});
  }

  // Re-parse with validation in one call (the other Parse overload).
  (void)Config::Parse(text, kKnown);
  return 0;
}

}  // namespace olxp::fuzz
