#ifndef OLXP_FUZZ_COMMON_SQL_ORACLE_H_
#define OLXP_FUZZ_COMMON_SQL_ORACLE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "fuzz/common/byte_reader.h"
#include "sql/storage_iface.h"

namespace olxp::fuzz {

/// Executes one statement against the shared fuzz database through every
/// execution engine — the row interpreter, the serial vectorized path and
/// the morsel-parallel path at exec_threads 2 and 8 — and cross-checks the
/// results (the differential oracle). Returns "" when all paths agree;
/// otherwise a human-readable divergence report. Statements that fail to
/// parse/bind are fine (every path must fail identically); only divergence
/// is an error.
///
/// Comparison rules mirror tests/exec_test.cc ExpectParity: parallel runs
/// must equal the serial vectorized run row-for-row (morsel merge order is
/// deterministic by contract); interpreter vs vectorized compares sorted
/// multisets (hash-group output order is engine-dependent), downgraded to
/// row-count-only when the statement carries LIMIT (which rows survive a
/// LIMIT without a total order is engine-dependent too).
std::string RunSqlDifferential(const std::string& sql);

/// Structure-aware generator: derives one syntactically valid statement
/// (heavily weighted toward analytical SELECT shapes) from fuzzer bytes.
std::string GenerateSql(ByteReader& r);

/// Harness entry shared by the libFuzzer target, the corpus replayer and
/// the smoke test. Input format: a leading 0xFF byte selects generator mode
/// (remaining bytes drive GenerateSql); anything else is raw SQL text.
/// Aborts the process on divergence.
int SqlOne(const uint8_t* data, size_t size);

/// Test-only hook: mutates the serial vectorized result before the oracle
/// compares it, proving the differential comparison actually fires.
/// nullptr (default) disables.
void SetResultPerturberForTest(std::function<void(sql::ResultSet*)> fn);

}  // namespace olxp::fuzz

#endif  // OLXP_FUZZ_COMMON_SQL_ORACLE_H_
