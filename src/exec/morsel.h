#ifndef OLXP_EXEC_MORSEL_H_
#define OLXP_EXEC_MORSEL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

/// Morsel-driven intra-query parallelism (HyPer-style): a query's scan range
/// is split into fixed-size morsels that execution lanes claim from a shared
/// atomic cursor, so a fast lane "steals" whatever a slow lane has not
/// claimed yet and no static partitioning can strand work. One WorkerPool is
/// owned by engine::Database and shared by every session's queries; the
/// calling session thread always participates as lane 0, so a saturated pool
/// degrades to serial execution instead of deadlocking.

namespace olxp::exec {

/// Persistent pool of `lanes - 1` worker threads (lane 0 is the caller).
/// Thread-safe: concurrent Run() calls from different sessions interleave
/// on the same workers.
class WorkerPool {
 public:
  /// `lanes` <= 1 spawns no threads (Run degrades to an inline call).
  explicit WorkerPool(int lanes);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Maximum lanes a Run() can engage (configured exec_threads).
  int lanes() const { return lanes_; }

  /// Invokes fn(lane) for every lane in [0, n): lane 0 inline on the
  /// calling thread, the rest on pool workers as they become free. Blocks
  /// until every lane has returned. `fn` must be safe to call concurrently
  /// from `n` threads and must not throw.
  void Run(int n, const std::function<void(int)>& fn) EXCLUDES(mu_);

  /// Joins every worker; subsequent Run() calls execute inline. Idempotent.
  /// ~Database calls this before stopping the vacuum and replicator so no
  /// in-flight morsel can touch storage that is being torn down.
  void Shutdown() EXCLUDES(mu_);

  /// Attaches a metrics sink (exec.pool.* counters, per-lane busy time).
  /// Call before Run() traffic; the registry must outlive the pool.
  void set_metrics(obs::MetricsRegistry* metrics) EXCLUDES(mu_);

 private:
  struct Job {
    const std::function<void(int)>* fn;
    int lane;
    std::atomic<int>* remaining;  ///< lanes of this Run still outstanding
  };

  void WorkerLoop();

  const int lanes_;
  /// Entered by Run() with a scan pin (TableLatch) held, hence the rank.
  sync::Mutex mu_{sync::LockRank::kWorkerPool, "workerpool"};
  sync::CondVar work_cv_;  ///< workers wait for jobs here
  sync::CondVar done_cv_;  ///< Run() callers wait for lanes here
  std::deque<Job> jobs_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ GUARDED_BY(mu_);

  // Cached metric handles (null until set_metrics). Read without mu_ on the
  // hot path under the set-before-traffic contract: set_metrics must run
  // before any Run() call. lane_busy_ns_[k] is lane k's cumulative job
  // execution time (lane 0 = the calling session thread's share of
  // parallel Runs).
  obs::Counter* m_runs_ = nullptr;
  obs::Counter* m_jobs_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  std::vector<obs::Counter*> lane_busy_ns_;
};

/// Partitions the slot range [0, total_rows) of one pinned table into
/// morsels of `morsel_rows` slots claimed via an atomic cursor. Morsel
/// ordinals are dense and ordered by base slot, so per-morsel partial
/// results merged in ordinal order reproduce the serial scan order exactly
/// regardless of which lane processed which morsel.
class MorselDispatcher {
 public:
  MorselDispatcher(size_t total_rows, size_t morsel_rows);

  struct Morsel {
    size_t ordinal = 0;  ///< dense index, ordered by base
    size_t base = 0;     ///< first slot
    size_t rows = 0;     ///< slots in this morsel (last one may be short)
  };

  /// Claims the next unclaimed morsel; false when exhausted or cancelled.
  bool Next(Morsel* out);

  /// Makes every subsequent Next() return false (error propagation).
  /// Morsels already claimed run to completion.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  size_t morsel_count() const { return count_; }
  size_t morsel_rows() const { return morsel_rows_; }

 private:
  const size_t total_;
  const size_t morsel_rows_;
  const size_t count_;
  std::atomic<size_t> cursor_{0};
  std::atomic<bool> cancelled_{false};
};

}  // namespace olxp::exec

#endif  // OLXP_EXEC_MORSEL_H_
