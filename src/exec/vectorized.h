#ifndef OLXP_EXEC_VECTORIZED_H_
#define OLXP_EXEC_VECTORIZED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/executor.h"
#include "sql/storage_iface.h"
#include "storage/column_store.h"

/// Vectorized columnar execution engine. Analytical SELECTs lowered from
/// the bound plan run here column-at-a-time over the replica's raw column
/// vectors: chunked scan -> vectorized filters -> hash joins (build from
/// the smaller side, probe batch-at-a-time) -> projection / hash
/// aggregation -> order / limit, skipping the interpreter's per-row Row
/// materialization and expression walks. The engine::Session cost router
/// decides when to use it; anything it cannot lower (non-equi joins,
/// subqueries) falls back to the interpreter, so no statement loses
/// behavior.

namespace olxp::exec {

/// Rows per scan chunk: large enough to amortize dispatch, small enough to
/// keep a chunk's working vectors cache-resident.
inline constexpr size_t kVecChunkRows = 1024;

/// Static plan summary consumed by the engine's cost-based router.
struct PlanShape {
  bool is_select = false;
  bool single_table = false;
  int table_id = -1;
  /// The row store could serve this plan through a pk/secondary-index path
  /// instead of a full scan (the replica cannot: it has no ordered index).
  bool indexed_path = false;
  bool vectorizable = false;
  /// Tables read by the plan, in join order (empty for non-SELECTs).
  std::vector<int> table_ids;
  /// The driving (first) step has an index-backed access path.
  bool indexed_driver = false;
  /// Every non-driver join step has an index-backed access path (the row
  /// store joins by seeks instead of scans).
  bool inner_steps_indexed = false;
};

PlanShape InspectPlan(const sql::CompiledStatement& stmt);

/// True when the statement is a SELECT the vectorized engine can lower: no
/// subqueries anywhere, and every non-driver table linked to the already
/// joined tables by at least one equi-join conjunct (hash-joinable).
bool CanVectorize(const sql::CompiledStatement& stmt);

/// Access accounting for the latency model.
struct VecExecStats {
  int64_t rows_scanned = 0;  ///< live rows visited on the replica (all scans)
  int64_t rows_built = 0;    ///< rows materialized into join hash tables
  int64_t rows_joined = 0;   ///< joined tuples emitted by probe stages
};

/// Executes a vectorizable SELECT against the columnar replica. The result
/// is identical to the interpreter's (the parity suite in tests/exec_test.cc
/// enforces this). Returns Unsupported for constructs detected only at
/// lowering/evaluation time and NotFound when a table has no replica —
/// callers fall back to the interpreter on any error.
StatusOr<sql::ResultSet> ExecuteVectorized(const sql::CompiledStatement& stmt,
                                           std::span<const Value> params,
                                           const storage::ColumnStore& store,
                                           VecExecStats* stats);

}  // namespace olxp::exec

#endif  // OLXP_EXEC_VECTORIZED_H_
