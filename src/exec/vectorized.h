#ifndef OLXP_EXEC_VECTORIZED_H_
#define OLXP_EXEC_VECTORIZED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "sql/executor.h"
#include "sql/storage_iface.h"
#include "storage/column_store.h"

/// Vectorized columnar execution engine. Analytical SELECTs lowered from
/// the bound plan run here column-at-a-time over the replica's raw column
/// vectors: chunked scan -> vectorized filters -> hash joins (build from
/// the smaller side, probe batch-at-a-time) -> projection / hash
/// aggregation -> order / limit, skipping the interpreter's per-row Row
/// materialization and expression walks. The engine::Session cost router
/// decides when to use it; anything it cannot lower (non-equi joins,
/// subqueries) falls back to the interpreter, so no statement loses
/// behavior.
///
/// With a WorkerPool attached (profile knob exec_threads > 1) scans run
/// morsel-driven in parallel: execution lanes claim fixed-size morsels of
/// the pinned table, run the scan -> filter -> partial-sink (or hash-join
/// probe) pipeline independently, and the per-morsel partial states merge
/// in morsel order in a final single-threaded combine — so output rows,
/// group creation order and group-representative tuples reproduce the
/// serial scan exactly at every lane count. Hash-join build sides stay
/// serial (the shared build table is immutable during the probe fan-out).

namespace olxp::exec {

class WorkerPool;

/// Rows per scan chunk: large enough to amortize dispatch, small enough to
/// keep a chunk's working vectors cache-resident.
inline constexpr size_t kVecChunkRows = 1024;

/// Morsel granularity rounded up to whole vector chunks so parallel lanes
/// see exactly the chunk boundaries a serial BatchScan would produce
/// (per-chunk vector typing makes boundaries observable). Public so the
/// engine's router can mirror the fan-out's lane clamp when estimating the
/// parallel discount.
inline constexpr size_t NormalizedMorselRows(size_t morsel_rows) {
  size_t rows = morsel_rows > kVecChunkRows ? morsel_rows : kVecChunkRows;
  return (rows + kVecChunkRows - 1) / kVecChunkRows * kVecChunkRows;
}

/// Static plan summary consumed by the engine's cost-based router.
struct PlanShape {
  bool is_select = false;
  bool single_table = false;
  int table_id = -1;
  /// The row store could serve this plan through a pk/secondary-index path
  /// instead of a full scan (the replica cannot: it has no ordered index).
  bool indexed_path = false;
  bool vectorizable = false;
  /// The serial vectorized path stops scanning once LIMIT rows are
  /// collected (non-aggregate, no ORDER BY, no DISTINCT). Such plans never
  /// fan out, so the router must not apply the parallel cost discount.
  bool early_stop_limit = false;
  /// Tables read by the plan, in join order (empty for non-SELECTs).
  std::vector<int> table_ids;
  /// The driving (first) step has an index-backed access path.
  bool indexed_driver = false;
  /// Every non-driver join step has an index-backed access path (the row
  /// store joins by seeks instead of scans).
  bool inner_steps_indexed = false;
};

PlanShape InspectPlan(const sql::CompiledStatement& stmt);

/// True when the statement is a SELECT the vectorized engine can lower: no
/// subqueries anywhere, and every non-driver table linked to the already
/// joined tables by at least one equi-join conjunct (hash-joinable).
bool CanVectorize(const sql::CompiledStatement& stmt);

/// Access accounting for the latency model.
struct VecExecStats {
  int64_t rows_scanned = 0;  ///< live rows visited on the replica (all scans)
  /// Subset of rows_scanned visited by the DRIVING scan (the single-table
  /// sweep or the join's stream side) — the part the morsel fan-out
  /// overlaps across lanes. The remainder (hash-join build-side sweeps)
  /// stays serial and is charged undivided.
  int64_t rows_scanned_driver = 0;
  int64_t rows_built = 0;    ///< rows materialized into join hash tables
  int64_t rows_joined = 0;   ///< joined tuples emitted by probe stages
  /// Execution lanes the driving scan actually engaged (1 = serial). The
  /// latency model divides the vectorized work by the effective parallel
  /// speedup derived from this.
  int lanes_used = 1;
  /// Chunk-sized blocks the driving scan read vs. skipped outright via
  /// zone maps (sealed blocks whose min/max refute a filter conjunct).
  int64_t blocks_scanned = 0;
  int64_t blocks_skipped = 0;
};

/// Execution-environment knobs (the plan-independent half of the profile).
struct VecExecOptions {
  /// Shared worker pool for morsel-driven parallelism; nullptr (or a pool
  /// with < 2 lanes) keeps the serial path. Plans whose serial path can
  /// stop early (LIMIT without ORDER BY / DISTINCT / aggregation) stay
  /// serial regardless — early exit beats a full parallel sweep.
  WorkerPool* pool = nullptr;
  /// Slots per claimed morsel; rounded up to a multiple of kVecChunkRows so
  /// parallel lanes evaluate exactly the chunks a serial scan would (chunk
  /// boundaries are visible to per-chunk vector typing).
  size_t morsel_rows = 4096;
  /// EXPLAIN ANALYZE capture: when non-null, per-operator row counts and
  /// wall times are appended (per-morsel rollup on parallel scans). Timing
  /// calls are fully skipped when null, so the untraced hot path pays only
  /// a predictable branch per chunk.
  obs::QueryTrace* trace = nullptr;
  /// Optional counter bumped once per dispatched morsel (exec.morsels).
  obs::Counter* morsel_counter = nullptr;
};

/// Executes a vectorizable SELECT against the columnar replica. The result
/// is identical to the interpreter's (the parity suite in tests/exec_test.cc
/// enforces this, at every exec_threads setting). Returns Unsupported for
/// constructs detected only at lowering/evaluation time and NotFound when a
/// table has no replica — callers fall back to the interpreter on any error.
StatusOr<sql::ResultSet> ExecuteVectorized(const sql::CompiledStatement& stmt,
                                           std::span<const Value> params,
                                           const storage::ColumnStore& store,
                                           const VecExecOptions& opts,
                                           VecExecStats* stats);

/// Slots a vectorized scan of `table` would actually read for this plan:
/// single-table SELECT filters are lowered, zone-refutable bounds extracted,
/// and `table`'s block zone maps consulted (sealed blocks a predicate can
/// refute drop out; the tail always counts). Any non-lowerable shape falls
/// back to SlotCount(). The router's cost model charges columnar scans by
/// this instead of the raw slot count.
size_t EstimateScanSlots(const sql::CompiledStatement& stmt,
                         std::span<const Value> params,
                         const storage::ColumnTable& table);

}  // namespace olxp::exec

#endif  // OLXP_EXEC_VECTORIZED_H_
