#include "exec/vexpr.h"

#include <cmath>
#include <optional>

#include "common/checked_arith.h"
#include "common/strings.h"

namespace olxp::exec {

namespace {

using sql::BKind;
using sql::BinaryOp;
using sql::UnaryOp;

Vec AllNull(size_t rows) {
  Vec out;
  out.type = ValueType::kNull;
  out.n = rows;
  return out;
}

bool IsIntFamily(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kTimestamp;
}

/// Three-way compare of two non-null rows, mirroring Value::Compare:
/// numerics compare by value (exactly when both integral), strings
/// lexicographically, heterogeneous pairs by type tag.
int CmpRow(const Vec& l, const Vec& r, size_t i) {
  if (l.numeric() && r.numeric()) {
    if (l.type != ValueType::kDouble && r.type != ValueType::kDouble) {
      int64_t a = l.int_at(i), b = r.int_at(i);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = l.dbl_at(i), b = r.dbl_at(i);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (l.type == ValueType::kString && r.type == ValueType::kString) {
    int c = l.str_at(i).compare(r.str_at(i));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return static_cast<int>(l.type) < static_cast<int>(r.type) ? -1 : 1;
}

bool CmpMatches(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: return false;
  }
}

/// NULL-rejecting comparison (interpreter: any NULL operand -> false).
Vec CompareKernel(BinaryOp op, const Vec& l, const Vec& r) {
  const size_t n = l.n;
  Vec out = Vec::Bools(n);
  if (l.type == ValueType::kNull || r.type == ValueType::kNull) return out;
  const bool no_nulls = l.nulls.empty() && r.nulls.empty();
  if (l.numeric() && r.numeric() && l.type != ValueType::kDouble &&
      r.type != ValueType::kDouble) {
    // Hot path: integer against integer (ids, counters, timestamps).
    for (size_t i = 0; i < n; ++i) {
      if (!no_nulls && (l.null_at(i) || r.null_at(i))) continue;
      int64_t a = l.int_at(i), b = r.int_at(i);
      out.ints[i] = CmpMatches(op, a < b ? -1 : (a > b ? 1 : 0)) ? 1 : 0;
    }
    return out;
  }
  if (l.numeric() && r.numeric()) {
    for (size_t i = 0; i < n; ++i) {
      if (!no_nulls && (l.null_at(i) || r.null_at(i))) continue;
      double a = l.dbl_at(i), b = r.dbl_at(i);
      out.ints[i] = CmpMatches(op, a < b ? -1 : (a > b ? 1 : 0)) ? 1 : 0;
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    if (l.null_at(i) || r.null_at(i)) continue;
    out.ints[i] = CmpMatches(op, CmpRow(l, r, i)) ? 1 : 0;
  }
  return out;
}

/// Numeric arithmetic with the interpreter's promotion rules: double when
/// either side is double or the op is division; NULL on NULL operands and
/// on division/modulo by zero.
StatusOr<Vec> ArithKernel(BinaryOp op, const Vec& l, const Vec& r) {
  const size_t n = l.n;
  if (l.type == ValueType::kNull || r.type == ValueType::kNull) {
    return AllNull(n);
  }
  if (!l.numeric() || !r.numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  Vec out;
  out.n = n;
  out.nulls.assign(n, 0);
  bool any_null = false;
  const bool as_double = l.type == ValueType::kDouble ||
                         r.type == ValueType::kDouble ||
                         op == BinaryOp::kDiv;
  if (as_double) {
    out.type = ValueType::kDouble;
    out.dbls.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (l.null_at(i) || r.null_at(i)) {
        out.nulls[i] = 1;
        any_null = true;
        continue;
      }
      double x = l.dbl_at(i), y = r.dbl_at(i);
      switch (op) {
        case BinaryOp::kAdd: out.dbls[i] = x + y; break;
        case BinaryOp::kSub: out.dbls[i] = x - y; break;
        case BinaryOp::kMul: out.dbls[i] = x * y; break;
        case BinaryOp::kDiv:
          if (y == 0) {
            out.nulls[i] = 1;
            any_null = true;
          } else {
            out.dbls[i] = x / y;
          }
          break;
        case BinaryOp::kMod:
          if (y == 0) {
            out.nulls[i] = 1;
            any_null = true;
          } else {
            out.dbls[i] = std::fmod(x, y);
          }
          break;
        default:
          return Status::Internal("bad arith op");
      }
    }
  } else {
    out.type = ValueType::kInt;
    out.ints.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (l.null_at(i) || r.null_at(i)) {
        out.nulls[i] = 1;
        any_null = true;
        continue;
      }
      // Overflow and INT64_MIN % -1 yield NULL, matching the interpreter's
      // checked path (common/checked_arith.h).
      int64_t x = l.int_at(i), y = r.int_at(i);
      std::optional<int64_t> res;
      switch (op) {
        case BinaryOp::kAdd: res = CheckedAdd(x, y); break;
        case BinaryOp::kSub: res = CheckedSub(x, y); break;
        case BinaryOp::kMul: res = CheckedMul(x, y); break;
        case BinaryOp::kMod: res = CheckedMod(x, y); break;
        default:
          return Status::Internal("bad arith op");
      }
      if (res) {
        out.ints[i] = *res;
      } else {
        out.nulls[i] = 1;
        any_null = true;
      }
    }
  }
  if (!any_null) out.nulls.clear();
  return out;
}

/// Gathers a table column over the selection into a typed vector, decoding
/// the block encoding with flat-array loops (no boxed Value is built).
/// Columns hold NormalizeRow output, so every non-NULL value of an encoded
/// span has the declared type; kRaw spans (tail, fallback blocks) keep the
/// historical boxed behavior.
Vec Gather(int col, ValueType decl, const storage::ColumnChunkView& chunk,
           const Sel& sel) {
  using Enc = storage::EncodedColumn::Enc;
  const size_t n = sel.size();
  const storage::ColumnSpan& s = chunk.span(col);
  const size_t off = chunk.offset;
  Vec out;
  out.n = n;
  out.type = decl;
  out.nulls.assign(n, 0);
  bool any_value = false;
  bool any_null = false;
  switch (s.enc) {
    case Enc::kFlatInt:
      out.ints.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const size_t p = off + sel[i];
        if (s.nulls != nullptr && s.nulls[p]) {
          out.nulls[i] = 1;
          any_null = true;
        } else {
          out.ints[i] = s.ints[p];
          any_value = true;
        }
      }
      break;
    case Enc::kPacked:
      out.ints.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const size_t p = off + sel[i];
        if (s.nulls != nullptr && s.nulls[p]) {
          out.nulls[i] = 1;
          any_null = true;
        } else {
          out.ints[i] = static_cast<int64_t>(
              static_cast<uint64_t>(s.pack_base) +
              storage::UnpackBits(s.packed, s.pack_width, p));
          any_value = true;
        }
      }
      break;
    case Enc::kRle: {
      // sel is ascending, so the covering run only ever moves forward:
      // a pointer walk instead of a binary search per row.
      out.ints.assign(n, 0);
      size_t ri = 0;
      for (size_t i = 0; i < n; ++i) {
        const size_t p = off + sel[i];
        while (ri + 1 < s.num_runs && s.runs[ri + 1].start <= p) ++ri;
        if (s.nulls != nullptr && s.nulls[p]) {
          out.nulls[i] = 1;
          any_null = true;
        } else {
          out.ints[i] = s.runs[ri].value;
          any_value = true;
        }
      }
      break;
    }
    case Enc::kFlatDbl:
      out.dbls.assign(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        const size_t p = off + sel[i];
        if (s.nulls != nullptr && s.nulls[p]) {
          out.nulls[i] = 1;
          any_null = true;
        } else {
          out.dbls[i] = s.dbls[p];
          any_value = true;
        }
      }
      break;
    case Enc::kDict:
      // Borrow string pointers from the dictionary — stable for the scan's
      // lifetime, exactly like borrowing from boxed column storage.
      out.strs.assign(n, nullptr);
      for (size_t i = 0; i < n; ++i) {
        const size_t p = off + sel[i];
        if (s.nulls != nullptr && s.nulls[p]) {
          out.nulls[i] = 1;
          any_null = true;
        } else {
          out.strs[i] = &s.dict[s.codes[p]];
          any_value = true;
        }
      }
      break;
    case Enc::kRaw:
      if (IsIntFamily(decl)) {
        out.ints.assign(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = s.flat[off + sel[i]];
          if (v.is_null()) {
            out.nulls[i] = 1;
            any_null = true;
          } else {
            out.ints[i] = v.AsInt();
            any_value = true;
          }
        }
      } else if (decl == ValueType::kDouble) {
        out.dbls.assign(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = s.flat[off + sel[i]];
          if (v.is_null()) {
            out.nulls[i] = 1;
            any_null = true;
          } else {
            out.dbls[i] = v.AsDouble();
            any_value = true;
          }
        }
      } else {
        out.strs.assign(n, nullptr);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = s.flat[off + sel[i]];
          if (v.is_null()) {
            out.nulls[i] = 1;
            any_null = true;
          } else {
            out.strs[i] = &v.AsString();
            any_value = true;
          }
        }
      }
      break;
  }
  // Typed encodings exist only when every live value matched the declared
  // type at seal time (Encode falls back to kRaw otherwise), so `decl` is
  // always the right Vec type for the non-raw arms above.
  if (!any_value) return AllNull(n);
  if (!any_null) out.nulls.clear();
  return out;
}

/// Mirrors swapping a comparison's operands: `lit op col` -> `col op' lit`.
BinaryOp FlipCompare(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool IsCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Decomposes a leaf `col <cmp> literal` conjunct (either operand order;
/// the returned op is normalized to column-on-the-left). Returns false for
/// every other shape.
bool MatchSlotLiteralCompare(const VExpr& f, int* col, BinaryOp* op,
                             const Value** lit) {
  if (f.kind != BKind::kBinary || !IsCompareOp(f.bop)) return false;
  if (f.children.size() != 2) return false;
  const VExpr& a = f.children[0];
  const VExpr& b = f.children[1];
  if (a.kind == BKind::kSlot && b.kind == BKind::kLiteral) {
    *col = a.col;
    *op = f.bop;
    *lit = &b.literal;
    return true;
  }
  if (a.kind == BKind::kLiteral && b.kind == BKind::kSlot) {
    *col = b.col;
    *op = FlipCompare(f.bop);
    *lit = &a.literal;
    return true;
  }
  return false;
}

/// Narrows `sel` for a `col <cmp> literal` conjunct directly on the encoded
/// arrays — packed/RLE/flat integers compared without reboxing, string
/// compares turned into one dictionary probe plus code compares. Returns
/// false (sel untouched) when the shape or encoding doesn't qualify; the
/// generic EvalVec kernel then runs. Must match CompareKernel exactly:
/// NULL operands reject the row, integers compare exactly.
bool TryFastFilter(const VExpr& f, const storage::ColumnChunkView& chunk,
                   Sel* sel) {
  using Enc = storage::EncodedColumn::Enc;
  int col = -1;
  BinaryOp op = BinaryOp::kEq;
  const Value* lit = nullptr;
  if (!MatchSlotLiteralCompare(f, &col, &op, &lit)) return false;
  if (lit->is_null()) return false;  // generic kernel yields all-false
  const storage::ColumnSpan& s = chunk.span(col);
  const size_t off = chunk.offset;

  const auto narrow_ints = [&](auto&& value_at) {
    const int64_t lv = lit->AsInt();
    size_t w = 0;
    for (size_t k = 0; k < sel->size(); ++k) {
      const size_t p = off + (*sel)[k];
      if (s.nulls != nullptr && s.nulls[p]) continue;
      const int64_t x = value_at(p);
      const int c = x < lv ? -1 : (x > lv ? 1 : 0);
      if (CmpMatches(op, c)) (*sel)[w++] = (*sel)[k];
    }
    sel->resize(w);
  };

  switch (s.enc) {
    case Enc::kFlatInt:
      if (!IsIntFamily(lit->type())) return false;  // e.g. double literal
      narrow_ints([&](size_t p) { return s.ints[p]; });
      return true;
    case Enc::kPacked:
      if (!IsIntFamily(lit->type())) return false;
      narrow_ints([&](size_t p) {
        return static_cast<int64_t>(
            static_cast<uint64_t>(s.pack_base) +
            storage::UnpackBits(s.packed, s.pack_width, p));
      });
      return true;
    case Enc::kRle: {
      if (!IsIntFamily(lit->type())) return false;
      size_t ri = 0;  // sel ascends, so the covering run only moves forward
      narrow_ints([&](size_t p) {
        while (ri + 1 < s.num_runs && s.runs[ri + 1].start <= p) ++ri;
        return s.runs[ri].value;
      });
      return true;
    }
    case Enc::kDict: {
      if (lit->type() != ValueType::kString) return false;
      // One dictionary binary search; the per-row compare is then a code
      // compare (the dictionary is sorted, so code order == lex order).
      const std::string& needle = lit->AsString();
      const uint32_t lb = static_cast<uint32_t>(
          std::lower_bound(s.dict, s.dict + s.dict_size, needle) - s.dict);
      const bool present = lb < s.dict_size && s.dict[lb] == needle;
      size_t w = 0;
      for (size_t k = 0; k < sel->size(); ++k) {
        const size_t p = off + (*sel)[k];
        if (s.nulls != nullptr && s.nulls[p]) continue;
        const uint32_t code = s.codes[p];
        // Three-way outcome vs. the literal: codes below lb are < needle,
        // lb itself is == only when present, everything else is >.
        const int c = code < lb ? -1 : (present && code == lb ? 0 : 1);
        if (CmpMatches(op, c)) (*sel)[w++] = (*sel)[k];
      }
      sel->resize(w);
      return true;
    }
    case Enc::kRaw:
    case Enc::kFlatDbl:
      return false;  // boxed / double compares keep the generic kernel
  }
  return false;
}

Status RequireTruthyCapable(const Vec& v, const char* what) {
  if (v.type == ValueType::kString) {
    return Status::InvalidArgument(std::string(what) +
                                   " requires a boolean/numeric operand");
  }
  return Status::OK();
}

}  // namespace

StatusOr<VExpr> LowerExprSlots(const sql::BoundExpr& e,
                               std::span<const ValueType> slot_types,
                               int slot_base, std::span<const Value> params) {
  VExpr out;
  out.kind = e.kind;
  switch (e.kind) {
    case BKind::kLiteral:
      out.literal = e.literal;
      return out;
    case BKind::kParam:
      if (e.param_index < 0 ||
          static_cast<size_t>(e.param_index) >= params.size()) {
        return Status::InvalidArgument("missing statement parameter");
      }
      out.kind = BKind::kLiteral;
      out.literal = params[e.param_index];
      return out;
    case BKind::kSlot: {
      const int col = e.slot - slot_base;
      if (col < 0 || static_cast<size_t>(col) >= slot_types.size()) {
        return Status::Internal("slot out of range for lowering window");
      }
      out.col = col;
      out.col_type = slot_types[col];
      return out;
    }
    case BKind::kUnary:
      out.uop = e.uop;
      break;
    case BKind::kBinary:
      out.bop = e.bop;
      break;
    case BKind::kBetween:
    case BKind::kInList:
    case BKind::kCase:
      break;
    case BKind::kAggRef:
      return Status::Unsupported("aggregate reference in vectorized scan");
    case BKind::kInSubquery:
    case BKind::kScalarSubquery:
      return Status::Unsupported("subquery in vectorized plan");
  }
  out.negated_in = e.negated_in;
  out.children.reserve(e.children.size());
  for (const auto& c : e.children) {
    auto lowered = LowerExprSlots(*c, slot_types, slot_base, params);
    if (!lowered.ok()) return lowered.status();
    out.children.push_back(std::move(lowered).value());
  }
  return out;
}

StatusOr<VExpr> LowerExpr(const sql::BoundExpr& e,
                          const storage::TableSchema& schema,
                          std::span<const Value> params) {
  std::vector<ValueType> types;
  types.reserve(schema.num_columns());
  for (const auto& c : schema.columns()) types.push_back(c.type);
  return LowerExprSlots(e, types, /*slot_base=*/0, params);
}

Sel LiveRows(const storage::ColumnChunkView& chunk) {
  Sel sel;
  sel.reserve(chunk.rows);
  for (size_t i = 0; i < chunk.rows; ++i) {
    if (chunk.live[i]) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

std::vector<storage::ZonePred> ExtractZonePreds(
    std::span<const VExpr> filters) {
  std::vector<storage::ZonePred> preds;
  for (const VExpr& f : filters) {
    int col = -1;
    BinaryOp op = BinaryOp::kEq;
    const Value* lit = nullptr;
    if (!MatchSlotLiteralCompare(f, &col, &op, &lit)) continue;
    if (lit->is_null()) continue;
    storage::ZonePred p;
    p.col = col;
    p.lit = *lit;
    switch (op) {
      case BinaryOp::kEq: p.op = storage::ZonePred::Op::kEq; break;
      case BinaryOp::kLt: p.op = storage::ZonePred::Op::kLt; break;
      case BinaryOp::kLe: p.op = storage::ZonePred::Op::kLe; break;
      case BinaryOp::kGt: p.op = storage::ZonePred::Op::kGt; break;
      case BinaryOp::kGe: p.op = storage::ZonePred::Op::kGe; break;
      default: continue;  // a min/max zone cannot refute kNe
    }
    preds.push_back(std::move(p));
  }
  return preds;
}

Status ApplyConjuncts(std::span<const VExpr> filters,
                      const storage::ColumnChunkView& chunk, Sel* sel) {
  for (const VExpr& f : filters) {
    if (sel->empty()) return Status::OK();
    if (TryFastFilter(f, chunk, sel)) continue;
    auto cond = EvalVec(f, chunk, *sel);
    if (!cond.ok()) return cond.status();
    if (cond->type == ValueType::kString) {
      return Status::Unsupported("non-boolean string predicate");
    }
    ApplyFilter(*cond, sel);
  }
  return Status::OK();
}

StatusOr<Vec> EvalVec(const VExpr& e, const storage::ColumnChunkView& chunk,
                      const Sel& sel) {
  const size_t n = sel.size();
  switch (e.kind) {
    case BKind::kLiteral:
      return Vec::Const(e.literal, n);
    case BKind::kSlot:
      return Gather(e.col, e.col_type, chunk, sel);
    case BKind::kParam:
      return Status::Internal("parameter not folded at lowering");
    case BKind::kAggRef:
    case BKind::kInSubquery:
    case BKind::kScalarSubquery:
      return Status::Internal("unsupported node survived lowering");

    case BKind::kUnary: {
      auto c = EvalVec(e.children[0], chunk, sel);
      if (!c.ok()) return c;
      const Vec& v = *c;
      switch (e.uop) {
        case UnaryOp::kNeg: {
          if (v.type == ValueType::kNull) return AllNull(n);
          if (!v.numeric()) {
            return Status::InvalidArgument("negation of non-numeric value");
          }
          Vec out;
          out.n = n;
          out.nulls = v.nulls;
          if (v.is_const && !v.nulls.empty()) out.nulls.assign(n, v.nulls[0]);
          if (v.type == ValueType::kDouble) {
            out.type = ValueType::kDouble;
            out.dbls.resize(n);
            for (size_t i = 0; i < n; ++i) out.dbls[i] = -v.dbl_at(i);
          } else {
            out.type = ValueType::kInt;  // interpreter yields INT
            out.ints.resize(n);
            for (size_t i = 0; i < n; ++i) {
              if (!out.nulls.empty() && out.nulls[i]) continue;
              if (auto r = CheckedNeg(v.int_at(i))) {
                out.ints[i] = *r;
              } else {  // -INT64_MIN: NULL, as in the interpreter
                if (out.nulls.empty()) out.nulls.assign(n, 0);
                out.nulls[i] = 1;
              }
            }
          }
          return out;
        }
        case UnaryOp::kNot: {
          OLXP_RETURN_NOT_OK(RequireTruthyCapable(v, "NOT"));
          Vec out = Vec::Bools(n);
          for (size_t i = 0; i < n; ++i) out.ints[i] = v.truthy(i) ? 0 : 1;
          return out;
        }
        case UnaryOp::kIsNull: {
          Vec out = Vec::Bools(n);
          for (size_t i = 0; i < n; ++i) out.ints[i] = v.null_at(i) ? 1 : 0;
          return out;
        }
        case UnaryOp::kIsNotNull: {
          Vec out = Vec::Bools(n);
          for (size_t i = 0; i < n; ++i) out.ints[i] = v.null_at(i) ? 0 : 1;
          return out;
        }
      }
      return Status::Internal("bad unary op");
    }

    case BKind::kBinary: {
      auto l = EvalVec(e.children[0], chunk, sel);
      if (!l.ok()) return l;
      auto r = EvalVec(e.children[1], chunk, sel);
      if (!r.ok()) return r;
      switch (e.bop) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          // Both sides are evaluated for the whole selection (no per-row
          // short-circuit); NULL truthiness is false as in the interpreter.
          OLXP_RETURN_NOT_OK(RequireTruthyCapable(*l, "AND/OR"));
          OLXP_RETURN_NOT_OK(RequireTruthyCapable(*r, "AND/OR"));
          Vec out = Vec::Bools(n);
          if (e.bop == BinaryOp::kAnd) {
            for (size_t i = 0; i < n; ++i) {
              out.ints[i] = (l->truthy(i) && r->truthy(i)) ? 1 : 0;
            }
          } else {
            for (size_t i = 0; i < n; ++i) {
              out.ints[i] = (l->truthy(i) || r->truthy(i)) ? 1 : 0;
            }
          }
          return out;
        }
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return ArithKernel(e.bop, *l, *r);
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return CompareKernel(e.bop, *l, *r);
        case BinaryOp::kLike:
        case BinaryOp::kNotLike: {
          Vec out = Vec::Bools(n);
          if (l->type == ValueType::kNull || r->type == ValueType::kNull) {
            return out;  // NULL LIKE x -> false
          }
          if (l->type != ValueType::kString ||
              r->type != ValueType::kString) {
            return Status::InvalidArgument("LIKE requires strings");
          }
          const bool want = e.bop == BinaryOp::kLike;
          for (size_t i = 0; i < n; ++i) {
            if (l->null_at(i) || r->null_at(i)) continue;
            bool m = SqlLike(l->str_at(i), r->str_at(i));
            out.ints[i] = (m == want) ? 1 : 0;
          }
          return out;
        }
      }
      return Status::Internal("bad binary op");
    }

    case BKind::kBetween: {
      auto v = EvalVec(e.children[0], chunk, sel);
      if (!v.ok()) return v;
      auto lo = EvalVec(e.children[1], chunk, sel);
      if (!lo.ok()) return lo;
      auto hi = EvalVec(e.children[2], chunk, sel);
      if (!hi.ok()) return hi;
      Vec out = Vec::Bools(n);
      if (v->type == ValueType::kNull || lo->type == ValueType::kNull ||
          hi->type == ValueType::kNull) {
        return out;
      }
      for (size_t i = 0; i < n; ++i) {
        if (v->null_at(i) || lo->null_at(i) || hi->null_at(i)) continue;
        out.ints[i] =
            (CmpRow(*v, *lo, i) >= 0 && CmpRow(*v, *hi, i) <= 0) ? 1 : 0;
      }
      return out;
    }

    case BKind::kInList: {
      auto v = EvalVec(e.children[0], chunk, sel);
      if (!v.ok()) return v;
      std::vector<Vec> items;
      items.reserve(e.children.size() - 1);
      for (size_t k = 1; k < e.children.size(); ++k) {
        auto item = EvalVec(e.children[k], chunk, sel);
        if (!item.ok()) return item;
        items.push_back(std::move(item).value());
      }
      Vec out = Vec::Bools(n);
      const bool negated = e.negated_in;
      for (size_t i = 0; i < n; ++i) {
        bool found = false;
        if (!v->null_at(i)) {
          for (const Vec& item : items) {
            if (!item.null_at(i) && CmpRow(*v, item, i) == 0) {
              found = true;
              break;
            }
          }
        }
        out.ints[i] = (negated ? !found : found) ? 1 : 0;
      }
      return out;
    }

    case BKind::kCase: {
      const size_t nc = e.children.size();
      const bool has_else = nc % 2 == 1;
      const size_t pairs = nc / 2;
      std::vector<Vec> conds;
      std::vector<Vec> vals;
      conds.reserve(pairs);
      vals.reserve(pairs + 1);
      for (size_t p = 0; p < pairs; ++p) {
        auto cond = EvalVec(e.children[2 * p], chunk, sel);
        if (!cond.ok()) return cond;
        OLXP_RETURN_NOT_OK(RequireTruthyCapable(*cond, "CASE condition"));
        conds.push_back(std::move(cond).value());
        auto val = EvalVec(e.children[2 * p + 1], chunk, sel);
        if (!val.ok()) return val;
        vals.push_back(std::move(val).value());
      }
      if (has_else) {
        auto val = EvalVec(e.children[nc - 1], chunk, sel);
        if (!val.ok()) return val;
        vals.push_back(std::move(val).value());
      }
      // Result type: all branches must share one payload family. The
      // interpreter returns each row with its picked branch's own type, so
      // any mixed-family CASE (string/numeric, INT/DOUBLE, INT/TIMESTAMP)
      // falls back to it — a promoted vector would change result types.
      bool any_num = false, any_double = false, any_str = false;
      bool any_ts = false, any_int = false;
      for (const Vec& v : vals) {
        if (v.type == ValueType::kNull) continue;
        if (v.type == ValueType::kString) {
          any_str = true;
        } else {
          any_num = true;
          if (v.type == ValueType::kDouble) any_double = true;
          if (v.type == ValueType::kTimestamp) any_ts = true;
          if (v.type == ValueType::kInt) any_int = true;
        }
      }
      if (any_str && any_num) {
        return Status::Unsupported("CASE branches mix string and numeric");
      }
      if ((any_double && (any_int || any_ts)) || (any_int && any_ts)) {
        return Status::Unsupported("CASE branches mix numeric types");
      }
      Vec out;
      out.n = n;
      if (!any_str && !any_num) return AllNull(n);
      out.nulls.assign(n, 0);
      bool any_null_row = false;
      // Per-row branch pick (first truthy condition, else ELSE, else NULL).
      auto pick = [&](size_t i) -> const Vec* {
        for (size_t p = 0; p < pairs; ++p) {
          if (conds[p].truthy(i)) return &vals[p];
        }
        return has_else ? &vals.back() : nullptr;
      };
      if (any_str) {
        out.type = ValueType::kString;
        out.strs.assign(n, nullptr);
        // Strings the branch does not borrow from column storage (constants,
        // nested pools) are copied into this Vec's own pool so the pointers
        // outlive the branch vectors.
        std::vector<const std::string*> const_ptr(vals.size(), nullptr);
        for (size_t j = 0; j < vals.size(); ++j) {
          if (vals[j].type == ValueType::kString && vals[j].is_const) {
            out.owned_pool.push_back(vals[j].owned);
            const_ptr[j] = &out.owned_pool.back();
          }
        }
        for (size_t i = 0; i < n; ++i) {
          const Vec* v = pick(i);
          if (v == nullptr || v->null_at(i)) {
            out.nulls[i] = 1;
            any_null_row = true;
            continue;
          }
          const size_t j = static_cast<size_t>(v - vals.data());
          if (const_ptr[j] != nullptr) {
            out.strs[i] = const_ptr[j];
          } else if (!v->owned_pool.empty()) {
            out.owned_pool.push_back(*v->strs[i]);
            out.strs[i] = &out.owned_pool.back();
          } else {
            out.strs[i] = v->strs[i];
          }
        }
      } else if (any_double) {
        out.type = ValueType::kDouble;
        out.dbls.assign(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
          const Vec* v = pick(i);
          if (v == nullptr || v->null_at(i)) {
            out.nulls[i] = 1;
            any_null_row = true;
            continue;
          }
          out.dbls[i] = v->dbl_at(i);
        }
      } else {
        out.type = any_ts ? ValueType::kTimestamp : ValueType::kInt;
        out.ints.assign(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Vec* v = pick(i);
          if (v == nullptr || v->null_at(i)) {
            out.nulls[i] = 1;
            any_null_row = true;
            continue;
          }
          out.ints[i] = v->int_at(i);
        }
      }
      if (!any_null_row) out.nulls.clear();
      return out;
    }
  }
  return Status::Internal("unhandled vectorized expression kind");
}

}  // namespace olxp::exec
