#include "exec/hash_join.h"

#include <climits>

#include "exec/vectorized.h"

namespace olxp::exec {

namespace {

using sql::BKind;
using sql::BinaryOp;
using sql::BoundExpr;
using sql::TableStep;

/// Narrows [mn, mx] to cover every slot referenced in the subtree.
void SlotRange(const BoundExpr& e, int* mn, int* mx) {
  if (e.kind == BKind::kSlot) {
    if (e.slot < *mn) *mn = e.slot;
    if (e.slot > *mx) *mx = e.slot;
  }
  for (const auto& c : e.children) SlotRange(*c, mn, mx);
}

/// Statically known payload family of a lowered expression: kInt for the
/// integer family, kDouble / kString for those, kNull when the family is
/// only known at evaluation time (computed expressions).
ValueType StaticFamily(const VExpr& e) {
  ValueType t = ValueType::kNull;
  if (e.kind == BKind::kLiteral) t = e.literal.type();
  if (e.kind == BKind::kSlot) t = e.col_type;
  return t == ValueType::kTimestamp ? ValueType::kInt : t;
}

}  // namespace

bool ClassifyJoinStep(const sql::BoundSelect& plan, size_t k,
                      JoinStepPlan* out) {
  const TableStep& step = plan.steps[k];
  const int base = step.base;
  const int end = base + step.ncols;
  for (const auto& f : step.filters) {
    int mn = INT_MAX, mx = -1;
    SlotRange(*f, &mn, &mx);
    if (mx >= end) return false;  // beyond the joined prefix: not lowerable
    if (mn == INT_MAX || mn >= base) {
      out->locals.push_back(f.get());
      continue;
    }
    // Cross-table conjunct: an equality whose sides split cleanly into
    // "this step only" and "earlier steps only" becomes a hash key; every
    // other shape is re-checked on the joined batch.
    if (f->kind == BKind::kBinary && f->bop == BinaryOp::kEq &&
        f->children.size() == 2) {
      auto side = [&](const BoundExpr& c, bool* build_pure,
                      bool* probe_pure) {
        int cmn = INT_MAX, cmx = -1;
        SlotRange(c, &cmn, &cmx);
        *build_pure = cmn != INT_MAX && cmn >= base && cmx < end;
        *probe_pure = cmx >= 0 && cmx < base;
      };
      bool b0, p0, b1, p1;
      side(*f->children[0], &b0, &p0);
      side(*f->children[1], &b1, &p1);
      if (b0 && p1) {
        out->keys.push_back({f->children[1].get(), f->children[0].get()});
        continue;
      }
      if (b1 && p0) {
        out->keys.push_back({f->children[0].get(), f->children[1].get()});
        continue;
      }
    }
    out->residuals.push_back(f.get());
  }
  return !out->keys.empty();
}

Status HashJoinTable::Build(const storage::ColumnTable& table,
                            std::span<const VExpr> local_filters,
                            std::span<const VExpr> key_exprs,
                            std::span<const uint8_t> needed_cols,
                            int64_t* rows_scanned) {
  const int ncols = table.schema().num_columns();
  cols_.assign(ncols, {});
  std::vector<int> store_cols;
  for (int c = 0; c < ncols; ++c) {
    if (needed_cols.empty() || needed_cols[c] != 0) store_cols.push_back(c);
  }
  key_width_ = key_exprs.size();
  int_keyed_ =
      key_width_ == 1 && StaticFamily(key_exprs[0]) == ValueType::kInt;

  Status inner = Status::OK();
  int64_t visited = table.BatchScan(
      kVecChunkRows, [&](const storage::ColumnChunkView& chunk) -> bool {
        Sel sel = LiveRows(chunk);
        Status st = ApplyConjuncts(local_filters, chunk, &sel);
        if (!st.ok()) {
          inner = st;
          return false;
        }
        if (sel.empty()) return true;
        std::vector<Vec> kvecs;
        kvecs.reserve(key_width_);
        for (const VExpr& k : key_exprs) {
          auto v = EvalVec(k, chunk, sel);
          if (!v.ok()) {
            inner = v.status();
            return false;
          }
          kvecs.push_back(std::move(v).value());
        }
        for (size_t i = 0; i < sel.size(); ++i) {
          bool null_key = false;
          for (const Vec& kv : kvecs) {
            if (kv.null_at(i)) {
              null_key = true;
              break;
            }
          }
          if (null_key) continue;  // NULL never joins
          uint32_t idx = static_cast<uint32_t>(nrows_++);
          for (int c : store_cols) {
            cols_[c].push_back(chunk.value_at(c, sel[i]));
          }
          if (int_keyed_) {
            int_index_[kvecs[0].int_at(i)].push_back(idx);
          } else {
            Row key;
            key.reserve(key_width_);
            for (const Vec& kv : kvecs) key.push_back(kv.value_at(i));
            row_index_[std::move(key)].push_back(idx);
          }
        }
        return true;
      });
  if (!inner.ok()) return inner;
  if (rows_scanned != nullptr) *rows_scanned += visited;
  return Status::OK();
}

const std::vector<uint32_t>* HashJoinTable::ProbeInt(int64_t key) const {
  auto it = int_index_.find(key);
  return it == int_index_.end() ? nullptr : &it->second;
}

const std::vector<uint32_t>* HashJoinTable::ProbeRow(const Row& key) const {
  if (int_keyed_) {
    // The build side indexed a single integer-family key; a probe value of
    // another family can only match when it is an integral double
    // (Value::Compare equates numerics by value).
    const Value& v = key[0];
    if (!v.is_numeric()) return nullptr;
    if (v.type() == ValueType::kDouble) {
      double d = v.AsDouble();
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) != d) return nullptr;
      return ProbeInt(i);
    }
    return ProbeInt(v.AsInt());
  }
  auto it = row_index_.find(key);
  return it == row_index_.end() ? nullptr : &it->second;
}

}  // namespace olxp::exec
