#ifndef OLXP_EXEC_VEXPR_H_
#define OLXP_EXEC_VEXPR_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/vec.h"
#include "sql/bound_plan.h"
#include "storage/column_store.h"

namespace olxp::exec {

/// A bound expression lowered for vectorized evaluation: parameters are
/// folded into literals, column references carry their declared type, and
/// subquery/aggregate-reference nodes are rejected at lowering time (the
/// router falls back to the interpreter for those shapes).
struct VExpr {
  sql::BKind kind = sql::BKind::kLiteral;
  Value literal;                          ///< kLiteral (params pre-folded)
  int col = -1;                           ///< kSlot: column index
  ValueType col_type = ValueType::kNull;  ///< declared type of `col`
  sql::UnaryOp uop = sql::UnaryOp::kNeg;
  sql::BinaryOp bop = sql::BinaryOp::kEq;
  bool negated_in = false;
  std::vector<VExpr> children;
};

/// Lowers a bound expression for vectorized evaluation against `schema`
/// (single-table plans: slot index == column index). Returns Unsupported for
/// constructs the vectorized engine does not cover (subqueries, aggregate
/// references) — callers fall back to the interpreter.
StatusOr<VExpr> LowerExpr(const sql::BoundExpr& e,
                          const storage::TableSchema& schema,
                          std::span<const Value> params);

/// Evaluates `e` over the selected rows of one chunk, producing one logical
/// row per selection entry. Mirrors the interpreter's Eval semantics
/// (NULL-rejecting comparisons, int/double promotion, NULL on division by
/// zero) evaluated column-at-a-time.
StatusOr<Vec> EvalVec(const VExpr& e, const storage::ColumnChunkView& chunk,
                      const Sel& sel);

}  // namespace olxp::exec

#endif  // OLXP_EXEC_VEXPR_H_
