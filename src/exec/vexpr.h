#ifndef OLXP_EXEC_VEXPR_H_
#define OLXP_EXEC_VEXPR_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/vec.h"
#include "sql/bound_plan.h"
#include "storage/column_store.h"

namespace olxp::exec {

/// A bound expression lowered for vectorized evaluation: parameters are
/// folded into literals, column references carry their declared type, and
/// subquery/aggregate-reference nodes are rejected at lowering time (the
/// router falls back to the interpreter for those shapes).
struct VExpr {
  sql::BKind kind = sql::BKind::kLiteral;
  Value literal;                          ///< kLiteral (params pre-folded)
  int col = -1;                           ///< kSlot: column index
  ValueType col_type = ValueType::kNull;  ///< declared type of `col`
  sql::UnaryOp uop = sql::UnaryOp::kNeg;
  sql::BinaryOp bop = sql::BinaryOp::kEq;
  bool negated_in = false;
  std::vector<VExpr> children;
};

/// Lowers a bound expression for vectorized evaluation against `schema`
/// (single-table plans: slot index == column index). Returns Unsupported for
/// constructs the vectorized engine does not cover (subqueries, aggregate
/// references) — callers fall back to the interpreter.
StatusOr<VExpr> LowerExpr(const sql::BoundExpr& e,
                          const storage::TableSchema& schema,
                          std::span<const Value> params);

/// General lowering: slot `s` maps to column `s - slot_base` of a chunk
/// whose columns have the declared types `slot_types[s - slot_base]`. The
/// join pipeline uses this twice: with the full joined slot-type vector and
/// slot_base 0 for probe/residual/sink expressions, and with one table's
/// column types and that step's slot base for build-side expressions.
StatusOr<VExpr> LowerExprSlots(const sql::BoundExpr& e,
                               std::span<const ValueType> slot_types,
                               int slot_base, std::span<const Value> params);

/// Evaluates `e` over the selected rows of one chunk, producing one logical
/// row per selection entry. Mirrors the interpreter's Eval semantics
/// (NULL-rejecting comparisons, int/double promotion, NULL on division by
/// zero) evaluated column-at-a-time.
StatusOr<Vec> EvalVec(const VExpr& e, const storage::ColumnChunkView& chunk,
                      const Sel& sel);

/// Selection of the chunk's live rows.
Sel LiveRows(const storage::ColumnChunkView& chunk);

/// Evaluates lowered conjuncts against (chunk, sel), narrowing sel. A
/// string-typed conjunct has no vector truthiness; the interpreter owns the
/// (degenerate) semantics, so it surfaces as Unsupported. Shared by the
/// scan, hash-build and join-probe stages so their fallback rules can never
/// diverge. Leaf comparisons against literals take flat-array fast paths
/// over encoded blocks (packed/RLE integers compared without reboxing,
/// string compares turned into dictionary-code compares) with semantics
/// bit-identical to the generic kernel.
Status ApplyConjuncts(std::span<const VExpr> filters,
                      const storage::ColumnChunkView& chunk, Sel* sel);

/// Extracts zone-map predicate bounds from lowered filter conjuncts: every
/// top-level `col <cmp> literal` (either operand order) with a non-null
/// literal and an op a min/max range can refute (=, <, <=, >, >=). The
/// result is sound for block skipping regardless of the remaining
/// conjuncts — skipping only needs SOME conjunct to be refutable.
std::vector<storage::ZonePred> ExtractZonePreds(std::span<const VExpr> filters);

}  // namespace olxp::exec

#endif  // OLXP_EXEC_VEXPR_H_
