#ifndef OLXP_EXEC_VEC_H_
#define OLXP_EXEC_VEC_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/value.h"

namespace olxp::exec {

/// Rows of one chunk currently surviving all applied predicates, as
/// chunk-relative row indices in ascending order.
using Sel = std::vector<uint32_t>;

/// A typed column vector: the intermediate currency of the vectorized
/// engine. One Vec holds the values of one expression for every selected
/// row of a chunk, stored in a flat typed payload instead of boxed Values:
///
///  - type kInt / kTimestamp  -> `ints`
///  - type kDouble            -> `dbls`
///  - type kString            -> `strs` (pointers borrowed from the column
///                               store; valid only inside the scan callback)
///  - type kNull              -> every row is NULL, no payload
///
/// `is_const` broadcasts a single physical element (literals and folded
/// parameters). `nulls`, when non-empty, flags NULL rows; the payload entry
/// of a NULL row is zero/unspecified. Boolean results are kInt 0/1 with no
/// nulls, matching the interpreter (predicates over NULL evaluate to false).
struct Vec {
  ValueType type = ValueType::kNull;
  bool is_const = false;
  size_t n = 0;  ///< logical row count (selection size)
  std::vector<int64_t> ints;
  std::vector<double> dbls;
  std::vector<const std::string*> strs;
  std::string owned;  ///< storage backing a constant string payload
  /// Owned storage some `strs` entries may point into (e.g. constant CASE
  /// branches). A deque so growth and moves never relocate elements already
  /// pointed to.
  std::deque<std::string> owned_pool;
  std::vector<uint8_t> nulls;  ///< empty = no NULL rows

  size_t phys(size_t i) const { return is_const ? 0 : i; }

  bool null_at(size_t i) const {
    return type == ValueType::kNull || (!nulls.empty() && nulls[phys(i)] != 0);
  }
  bool numeric() const {
    return type == ValueType::kInt || type == ValueType::kTimestamp ||
           type == ValueType::kDouble;
  }
  int64_t int_at(size_t i) const { return ints[phys(i)]; }
  double dbl_at(size_t i) const {
    return type == ValueType::kDouble ? dbls[phys(i)]
                                      : static_cast<double>(ints[phys(i)]);
  }
  const std::string& str_at(size_t i) const {
    return is_const ? owned : *strs[i];
  }

  /// Value::AsBool over the payload (NULL -> false).
  bool truthy(size_t i) const {
    if (null_at(i)) return false;
    return type == ValueType::kDouble ? dbls[phys(i)] != 0.0
                                      : ints[phys(i)] != 0;
  }

  /// Materializes row `i` as a boxed Value (result emission only).
  Value value_at(size_t i) const {
    if (null_at(i)) return Value::Null();
    switch (type) {
      case ValueType::kInt:
        return Value::Int(ints[phys(i)]);
      case ValueType::kTimestamp:
        return Value::Timestamp(ints[phys(i)]);
      case ValueType::kDouble:
        return Value::Double(dbls[phys(i)]);
      case ValueType::kString:
        return Value::String(str_at(i));
      case ValueType::kNull:
        break;
    }
    return Value::Null();
  }

  /// Broadcast constant over `rows` logical rows.
  static Vec Const(const Value& v, size_t rows) {
    Vec out;
    out.is_const = true;
    out.n = rows;
    out.type = v.type();
    switch (v.type()) {
      case ValueType::kInt:
      case ValueType::kTimestamp:
        out.ints.push_back(v.AsInt());
        break;
      case ValueType::kDouble:
        out.dbls.push_back(v.AsDouble());
        break;
      case ValueType::kString:
        // Kept in `owned`, resolved by str_at/value_at: a self-pointer in
        // `strs` would dangle when the Vec is moved.
        out.owned = v.AsString();
        break;
      case ValueType::kNull:
        break;
    }
    return out;
  }

  /// Fresh boolean (kInt 0/1) result vector of `rows` rows.
  static Vec Bools(size_t rows) {
    Vec out;
    out.type = ValueType::kInt;
    out.n = rows;
    out.ints.assign(rows, 0);
    return out;
  }
};

/// Compacts `sel`, keeping only rows where `cond` is truthy. `cond` must
/// have one logical row per current selection entry.
inline void ApplyFilter(const Vec& cond, Sel* sel) {
  size_t kept = 0;
  for (size_t i = 0; i < sel->size(); ++i) {
    if (cond.truthy(i)) (*sel)[kept++] = (*sel)[i];
  }
  sel->resize(kept);
}

}  // namespace olxp::exec

#endif  // OLXP_EXEC_VEC_H_
