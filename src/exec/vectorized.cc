#include "exec/vectorized.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/vec.h"
#include "exec/vexpr.h"
#include "sql/bound_plan.h"

namespace olxp::exec {

namespace {

using sql::AggAccum;
using sql::BoundExpr;
using sql::BoundOrderItem;
using sql::BoundSelect;
using sql::TableStep;

/// Accumulates a whole argument vector into one aggregate accumulator with
/// typed inner loops; min/max merge as Values once per chunk, not per row.
void AccumulateVec(AggAccum* acc, const Vec& v) {
  const size_t n = v.n;
  if (n == 0 || v.type == ValueType::kNull) return;
  if (v.type == ValueType::kInt || v.type == ValueType::kTimestamp) {
    bool has = false;
    int64_t lo = 0, hi = 0;
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      int64_t x = v.int_at(i);
      ++acc->count;
      acc->isum += x;
      acc->dsum += static_cast<double>(x);
      if (!has) {
        lo = hi = x;
        has = true;
      } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }
    if (has) {
      Value vlo = v.type == ValueType::kTimestamp ? Value::Timestamp(lo)
                                                  : Value::Int(lo);
      Value vhi = v.type == ValueType::kTimestamp ? Value::Timestamp(hi)
                                                  : Value::Int(hi);
      if (acc->min.is_null() || vlo.Compare(acc->min) < 0) acc->min = vlo;
      if (acc->max.is_null() || vhi.Compare(acc->max) > 0) acc->max = vhi;
    }
    return;
  }
  if (v.type == ValueType::kDouble) {
    bool has = false;
    double lo = 0, hi = 0;
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      double x = v.dbl_at(i);
      ++acc->count;
      acc->any_double = true;
      acc->dsum += x;
      if (!has) {
        lo = hi = x;
        has = true;
      } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }
    if (has) {
      Value vlo = Value::Double(lo), vhi = Value::Double(hi);
      if (acc->min.is_null() || vlo.Compare(acc->min) < 0) acc->min = vlo;
      if (acc->max.is_null() || vhi.Compare(acc->max) > 0) acc->max = vhi;
    }
    return;
  }
  // Strings: counted, never summed; min/max lexicographic.
  const std::string* lo = nullptr;
  const std::string* hi = nullptr;
  for (size_t i = 0; i < n; ++i) {
    if (v.null_at(i)) continue;
    const std::string& s = v.str_at(i);
    ++acc->count;
    if (lo == nullptr || s < *lo) lo = &s;
    if (hi == nullptr || *hi < s) hi = &s;
  }
  if (lo != nullptr) {
    Value vlo = Value::String(*lo), vhi = Value::String(*hi);
    if (acc->min.is_null() || vlo.Compare(acc->min) < 0) acc->min = vlo;
    if (acc->max.is_null() || vhi.Compare(acc->max) > 0) acc->max = vhi;
  }
}

/// One aggregation group (the global aggregate is a single implicit group).
/// Key values live in the probing structures (group_index / int_groups).
struct VGroup {
  Row repr;  ///< representative input tuple (first row of the group)
  std::vector<AggAccum> accums;
  int64_t star_count = 0;
};

/// Accumulates one argument vector into per-group accumulators with typed
/// inner loops (no per-row Value boxing). A given expression always yields
/// one payload family, so comparing typed values against the accumulator's
/// current min/max Value is exact.
void AccumulateGrouped(std::vector<VGroup>& groups,
                       const std::vector<uint32_t>& gidx, size_t a,
                       const Vec& v) {
  const size_t n = v.n;
  if (v.type == ValueType::kNull) return;
  if (v.type == ValueType::kInt || v.type == ValueType::kTimestamp) {
    const bool ts = v.type == ValueType::kTimestamp;
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      AggAccum& acc = groups[gidx[i]].accums[a];
      int64_t x = v.int_at(i);
      ++acc.count;
      acc.isum += x;
      acc.dsum += static_cast<double>(x);
      // AsInt on a kDouble extreme would round; an expression's payload can
      // flip family between chunks when a branch is all-NULL in one chunk,
      // so use the exact Value comparison whenever a double extreme is
      // present (NULL extremes have type kNull and stay on the fast path).
      if (acc.min.type() != ValueType::kDouble &&
          acc.max.type() != ValueType::kDouble) {
        if (acc.min.is_null() || x < acc.min.AsInt()) {
          acc.min = ts ? Value::Timestamp(x) : Value::Int(x);
        }
        if (acc.max.is_null() || x > acc.max.AsInt()) {
          acc.max = ts ? Value::Timestamp(x) : Value::Int(x);
        }
      } else {
        Value val = ts ? Value::Timestamp(x) : Value::Int(x);
        if (acc.min.is_null() || val.Compare(acc.min) < 0) acc.min = val;
        if (acc.max.is_null() || val.Compare(acc.max) > 0) {
          acc.max = std::move(val);
        }
      }
    }
    return;
  }
  if (v.type == ValueType::kDouble) {
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      AggAccum& acc = groups[gidx[i]].accums[a];
      double x = v.dbl_at(i);
      ++acc.count;
      acc.any_double = true;
      acc.dsum += x;
      if (acc.min.is_null() || x < acc.min.AsDouble()) {
        acc.min = Value::Double(x);
      }
      if (acc.max.is_null() || x > acc.max.AsDouble()) {
        acc.max = Value::Double(x);
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!v.null_at(i)) groups[gidx[i]].accums[a].Add(v.value_at(i));
  }
}

struct PendingRow {
  Row out;
  Row order_keys;
};

}  // namespace

bool CanVectorize(const sql::CompiledStatement& stmt) {
  const auto& impl = stmt.impl();
  if (impl.kind != sql::StmtKind::kSelect || !impl.select) return false;
  const BoundSelect& p = *impl.select;
  if (p.steps.size() != 1) return false;
  for (const auto& f : p.steps[0].filters) {
    if (sql::ContainsSubquery(*f)) return false;
  }
  for (const auto& g : p.group_by) {
    if (sql::ContainsSubquery(*g)) return false;
  }
  for (const auto& a : p.aggs) {
    if (a.arg && sql::ContainsSubquery(*a.arg)) return false;
  }
  for (const auto& pr : p.projections) {
    if (sql::ContainsSubquery(*pr)) return false;
  }
  if (p.having && sql::ContainsSubquery(*p.having)) return false;
  for (const BoundOrderItem& oi : p.order_by) {
    if (oi.expr && sql::ContainsSubquery(*oi.expr)) return false;
  }
  return true;
}

PlanShape InspectPlan(const sql::CompiledStatement& stmt) {
  PlanShape s;
  const auto& impl = stmt.impl();
  s.is_select = impl.kind == sql::StmtKind::kSelect;
  if (!s.is_select || !impl.select) return s;
  const BoundSelect& p = *impl.select;
  if (p.steps.size() == 1) {
    s.single_table = true;
    s.table_id = p.steps[0].table_id;
    s.indexed_path = p.steps[0].path != TableStep::Path::kFull;
  }
  s.vectorizable = CanVectorize(stmt);
  return s;
}

StatusOr<sql::ResultSet> ExecuteVectorized(const sql::CompiledStatement& stmt,
                                           std::span<const Value> params,
                                           const storage::ColumnTable& table,
                                           VecExecStats* stats) {
  const auto& impl = stmt.impl();
  if (impl.kind != sql::StmtKind::kSelect || !impl.select ||
      impl.select->steps.size() != 1) {
    return Status::Unsupported("not a vectorizable statement");
  }
  const BoundSelect& plan = *impl.select;
  const storage::TableSchema& schema = table.schema();
  const int ncols = schema.num_columns();
  const bool agg = plan.aggregate_mode;

  // ----- lower the scan-side expressions (params folded) -----
  std::vector<VExpr> filters;
  filters.reserve(plan.steps[0].filters.size());
  for (const auto& f : plan.steps[0].filters) {
    auto lowered = LowerExpr(*f, schema, params);
    if (!lowered.ok()) return lowered.status();
    filters.push_back(std::move(lowered).value());
  }
  std::vector<VExpr> group_exprs;
  struct LoweredAgg {
    bool has_arg = false;
    VExpr arg;
  };
  std::vector<LoweredAgg> agg_args;
  std::vector<VExpr> proj_exprs;   // non-agg mode only
  std::vector<VExpr> order_exprs;  // non-agg mode, one per expr order item
  if (agg) {
    group_exprs.reserve(plan.group_by.size());
    for (const auto& g : plan.group_by) {
      auto lowered = LowerExpr(*g, schema, params);
      if (!lowered.ok()) return lowered.status();
      group_exprs.push_back(std::move(lowered).value());
    }
    agg_args.reserve(plan.aggs.size());
    for (const auto& spec : plan.aggs) {
      LoweredAgg la;
      if (spec.arg) {
        auto lowered = LowerExpr(*spec.arg, schema, params);
        if (!lowered.ok()) return lowered.status();
        la.has_arg = true;
        la.arg = std::move(lowered).value();
      }
      agg_args.push_back(std::move(la));
    }
  } else {
    proj_exprs.reserve(plan.projections.size());
    for (const auto& p : plan.projections) {
      auto lowered = LowerExpr(*p, schema, params);
      if (!lowered.ok()) return lowered.status();
      proj_exprs.push_back(std::move(lowered).value());
    }
    for (const BoundOrderItem& oi : plan.order_by) {
      if (oi.proj_index >= 0) continue;
      auto lowered = LowerExpr(*oi.expr, schema, params);
      if (!lowered.ok()) return lowered.status();
      order_exprs.push_back(std::move(lowered).value());
    }
  }

  // ----- pipeline state -----
  std::vector<PendingRow> pending;
  // DISTINCT dedup by value (same semantics as the interpreter's buckets).
  std::unordered_set<Row, storage::KeyHash, storage::KeyEq> distinct_seen;
  const bool can_stop_early = !agg && plan.order_by.empty() &&
                              !plan.distinct && plan.limit >= 0;

  std::vector<VGroup> groups;
  std::unordered_map<Row, uint32_t, storage::KeyHash, storage::KeyEq>
      group_index;
  // Fast path for the dominant shape "GROUP BY <integer column>": probe an
  // int-keyed map instead of boxing a key Row per input row. Static plan
  // typing keeps the choice consistent across chunks.
  const bool single_int_key =
      agg && group_exprs.size() == 1 &&
      group_exprs[0].kind == sql::BKind::kSlot &&
      (group_exprs[0].col_type == ValueType::kInt ||
       group_exprs[0].col_type == ValueType::kTimestamp);
  std::unordered_map<int64_t, uint32_t> int_groups;
  uint32_t null_group = UINT32_MAX;

  Status inner = Status::OK();

  int64_t scanned = table.BatchScan(
      kVecChunkRows, [&](const storage::ColumnChunkView& chunk) -> bool {
        Sel sel;
        sel.reserve(chunk.rows);
        for (size_t i = 0; i < chunk.rows; ++i) {
          if (chunk.live[i]) sel.push_back(static_cast<uint32_t>(i));
        }
        if (sel.empty()) return true;

        // Vectorized predicate evaluation, one conjunct at a time; each
        // pass narrows the selection the next conjunct touches.
        for (const VExpr& f : filters) {
          auto cond = EvalVec(f, chunk, sel);
          if (!cond.ok()) {
            inner = cond.status();
            return false;
          }
          if (cond->type == ValueType::kString) {
            // A string-typed conjunct has no vector truthiness; let the
            // interpreter own the (degenerate) semantics.
            inner = Status::Unsupported("non-boolean string predicate");
            return false;
          }
          ApplyFilter(*cond, &sel);
          if (sel.empty()) return true;
        }

        if (!agg) {
          std::vector<Vec> pvecs;
          pvecs.reserve(proj_exprs.size());
          for (const VExpr& p : proj_exprs) {
            auto v = EvalVec(p, chunk, sel);
            if (!v.ok()) {
              inner = v.status();
              return false;
            }
            pvecs.push_back(std::move(v).value());
          }
          std::vector<Vec> ovecs;
          ovecs.reserve(order_exprs.size());
          for (const VExpr& o : order_exprs) {
            auto v = EvalVec(o, chunk, sel);
            if (!v.ok()) {
              inner = v.status();
              return false;
            }
            ovecs.push_back(std::move(v).value());
          }
          for (size_t i = 0; i < sel.size(); ++i) {
            PendingRow pr;
            pr.out.reserve(pvecs.size());
            for (const Vec& pv : pvecs) pr.out.push_back(pv.value_at(i));
            if (plan.distinct && !distinct_seen.insert(pr.out).second) {
              continue;
            }
            size_t next_expr = 0;
            for (const BoundOrderItem& oi : plan.order_by) {
              if (oi.proj_index >= 0) {
                pr.order_keys.push_back(pr.out[oi.proj_index]);
              } else {
                pr.order_keys.push_back(ovecs[next_expr++].value_at(i));
              }
            }
            pending.push_back(std::move(pr));
            if (can_stop_early &&
                pending.size() >= static_cast<size_t>(plan.limit)) {
              return false;  // enough rows; stop the scan
            }
          }
          return true;
        }

        // ----- aggregation -----
        if (group_exprs.empty()) {
          // Global aggregate: one implicit group. The representative tuple
          // is the first selected row (projections may reference raw slots).
          if (groups.empty()) {
            VGroup g;
            g.repr.resize(ncols);
            for (int c = 0; c < ncols; ++c) {
              g.repr[c] = chunk.at(c, sel[0]);
            }
            g.accums.resize(plan.aggs.size());
            groups.push_back(std::move(g));
          }
          groups[0].star_count += static_cast<int64_t>(sel.size());
          for (size_t a = 0; a < agg_args.size(); ++a) {
            if (!agg_args[a].has_arg) continue;  // COUNT(*): star_count only
            auto v = EvalVec(agg_args[a].arg, chunk, sel);
            if (!v.ok()) {
              inner = v.status();
              return false;
            }
            AccumulateVec(&groups[0].accums[a], *v);
          }
          return true;
        }

        std::vector<Vec> kvecs;
        kvecs.reserve(group_exprs.size());
        for (const VExpr& g : group_exprs) {
          auto v = EvalVec(g, chunk, sel);
          if (!v.ok()) {
            inner = v.status();
            return false;
          }
          kvecs.push_back(std::move(v).value());
        }
        auto new_group = [&](size_t row) -> uint32_t {
          uint32_t g = static_cast<uint32_t>(groups.size());
          VGroup grp;
          grp.repr.resize(ncols);
          for (int c = 0; c < ncols; ++c) grp.repr[c] = chunk.at(c, row);
          grp.accums.resize(plan.aggs.size());
          groups.push_back(std::move(grp));
          return g;
        };

        std::vector<uint32_t> gidx(sel.size());
        if (single_int_key) {
          const Vec& kv = kvecs[0];
          for (size_t i = 0; i < sel.size(); ++i) {
            uint32_t g;
            if (kv.null_at(i)) {
              if (null_group == UINT32_MAX) null_group = new_group(sel[i]);
              g = null_group;
            } else {
              int64_t x = kv.int_at(i);
              auto [it, inserted] = int_groups.try_emplace(x, 0);
              if (inserted) it->second = new_group(sel[i]);
              g = it->second;
            }
            groups[g].star_count++;
            gidx[i] = g;
          }
        } else {
          Row key;
          for (size_t i = 0; i < sel.size(); ++i) {
            key.clear();
            key.reserve(kvecs.size());
            for (const Vec& kv : kvecs) key.push_back(kv.value_at(i));
            auto [it, inserted] = group_index.try_emplace(key, 0);
            if (inserted) it->second = new_group(sel[i]);
            uint32_t g = it->second;
            groups[g].star_count++;
            gidx[i] = g;
          }
        }
        for (size_t a = 0; a < agg_args.size(); ++a) {
          if (!agg_args[a].has_arg) continue;
          auto v = EvalVec(agg_args[a].arg, chunk, sel);
          if (!v.ok()) {
            inner = v.status();
            return false;
          }
          AccumulateGrouped(groups, gidx, a, *v);
        }
        return true;
      });

  if (!inner.ok()) return inner;
  if (stats != nullptr) stats->rows_scanned = scanned;

  // ----- aggregate finalization: HAVING, projection, order keys -----
  if (agg) {
    if (groups.empty() && plan.group_by.empty()) {
      // Global aggregate over empty input still yields one row.
      VGroup g;
      g.repr.assign(plan.total_slots, Value::Null());
      g.accums.resize(plan.aggs.size());
      groups.push_back(std::move(g));
    }
    for (const VGroup& g : groups) {
      std::vector<Value> agg_values(plan.aggs.size());
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        agg_values[a] = g.accums[a].Result(plan.aggs[a].fn, g.star_count);
      }
      if (plan.having) {
        auto v = sql::EvalBound(*plan.having, g.repr, params, &agg_values);
        if (!v.ok()) return v.status();
        if (!v->AsBool()) continue;
      }
      PendingRow pr;
      pr.out.reserve(plan.projections.size());
      for (const auto& p : plan.projections) {
        auto v = sql::EvalBound(*p, g.repr, params, &agg_values);
        if (!v.ok()) return v.status();
        pr.out.push_back(std::move(v).value());
      }
      if (plan.distinct && !distinct_seen.insert(pr.out).second) continue;
      for (const BoundOrderItem& oi : plan.order_by) {
        if (oi.proj_index >= 0) {
          pr.order_keys.push_back(pr.out[oi.proj_index]);
        } else {
          auto v = sql::EvalBound(*oi.expr, g.repr, params, &agg_values);
          if (!v.ok()) return v.status();
          pr.order_keys.push_back(std::move(v).value());
        }
      }
      pending.push_back(std::move(pr));
    }
  }

  // ----- sort / limit / emit (identical to the interpreter) -----
  if (!plan.order_by.empty()) {
    std::stable_sort(pending.begin(), pending.end(),
                     [&](const PendingRow& a, const PendingRow& b) {
                       for (size_t i = 0; i < plan.order_by.size(); ++i) {
                         int c = a.order_keys[i].Compare(b.order_keys[i]);
                         if (c != 0) {
                           return plan.order_by[i].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }
  sql::ResultSet rs;
  rs.column_names = plan.column_names;
  size_t n = pending.size();
  if (plan.limit >= 0) n = std::min(n, static_cast<size_t>(plan.limit));
  rs.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rs.rows.push_back(std::move(pending[i].out));
  rs.affected_rows = 0;
  return rs;
}

}  // namespace olxp::exec
