#include "exec/vectorized.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "exec/hash_join.h"
#include "exec/morsel.h"
#include "exec/vec.h"
#include "exec/vexpr.h"
#include "sql/bound_plan.h"

namespace olxp::exec {

namespace {

using sql::AggAccum;
using sql::BoundExpr;
using sql::BoundOrderItem;
using sql::BoundSelect;
using sql::TableStep;

/// Accumulates a whole argument vector into one aggregate accumulator with
/// typed inner loops; min/max merge as Values once per chunk, not per row.
void AccumulateVec(AggAccum* acc, const Vec& v) {
  const size_t n = v.n;
  if (n == 0 || v.type == ValueType::kNull) return;
  if (v.type == ValueType::kInt || v.type == ValueType::kTimestamp) {
    bool has = false;
    int64_t lo = 0, hi = 0;
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      int64_t x = v.int_at(i);
      ++acc->count;
      acc->AddInt(x);
      acc->AddDouble(static_cast<double>(x));
      if (!has) {
        lo = hi = x;
        has = true;
      } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }
    if (has) {
      Value vlo = v.type == ValueType::kTimestamp ? Value::Timestamp(lo)
                                                  : Value::Int(lo);
      Value vhi = v.type == ValueType::kTimestamp ? Value::Timestamp(hi)
                                                  : Value::Int(hi);
      if (acc->min.is_null() || vlo.Compare(acc->min) < 0) acc->min = vlo;
      if (acc->max.is_null() || vhi.Compare(acc->max) > 0) acc->max = vhi;
    }
    return;
  }
  if (v.type == ValueType::kDouble) {
    bool has = false;
    double lo = 0, hi = 0;
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      double x = v.dbl_at(i);
      ++acc->count;
      acc->any_double = true;
      acc->AddDouble(x);
      if (!has) {
        lo = hi = x;
        has = true;
      } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }
    if (has) {
      Value vlo = Value::Double(lo), vhi = Value::Double(hi);
      if (acc->min.is_null() || vlo.Compare(acc->min) < 0) acc->min = vlo;
      if (acc->max.is_null() || vhi.Compare(acc->max) > 0) acc->max = vhi;
    }
    return;
  }
  // Strings: counted, never summed; min/max lexicographic.
  const std::string* lo = nullptr;
  const std::string* hi = nullptr;
  for (size_t i = 0; i < n; ++i) {
    if (v.null_at(i)) continue;
    const std::string& s = v.str_at(i);
    ++acc->count;
    if (lo == nullptr || s < *lo) lo = &s;
    if (hi == nullptr || *hi < s) hi = &s;
  }
  if (lo != nullptr) {
    Value vlo = Value::String(*lo), vhi = Value::String(*hi);
    if (acc->min.is_null() || vlo.Compare(acc->min) < 0) acc->min = vlo;
    if (acc->max.is_null() || vhi.Compare(acc->max) > 0) acc->max = vhi;
  }
}

/// One aggregation group (the global aggregate is a single implicit group).
/// Alongside the probing structures (group_index / int_groups) each group
/// captures its own key at creation, so per-morsel partial states can be
/// merged without re-deriving keys from the maps.
struct VGroup {
  Row repr;  ///< representative input tuple (first row of the group)
  std::vector<AggAccum> accums;
  int64_t star_count = 0;
  Row key;               ///< group-key values (row-keyed sinks)
  int64_t ikey = 0;      ///< single-int-key fast path
  bool null_key = false; ///< the single key was NULL
};

/// Accumulates one argument vector into per-group accumulators with typed
/// inner loops (no per-row Value boxing). A given expression always yields
/// one payload family, so comparing typed values against the accumulator's
/// current min/max Value is exact.
void AccumulateGrouped(std::vector<VGroup>& groups,
                       const std::vector<uint32_t>& gidx, size_t a,
                       const Vec& v) {
  const size_t n = v.n;
  if (v.type == ValueType::kNull) return;
  if (v.type == ValueType::kInt || v.type == ValueType::kTimestamp) {
    const bool ts = v.type == ValueType::kTimestamp;
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      AggAccum& acc = groups[gidx[i]].accums[a];
      int64_t x = v.int_at(i);
      ++acc.count;
      acc.AddInt(x);
      acc.AddDouble(static_cast<double>(x));
      // AsInt on a kDouble extreme would round; an expression's payload can
      // flip family between chunks when a branch is all-NULL in one chunk,
      // so use the exact Value comparison whenever a double extreme is
      // present (NULL extremes have type kNull and stay on the fast path).
      if (acc.min.type() != ValueType::kDouble &&
          acc.max.type() != ValueType::kDouble) {
        if (acc.min.is_null() || x < acc.min.AsInt()) {
          acc.min = ts ? Value::Timestamp(x) : Value::Int(x);
        }
        if (acc.max.is_null() || x > acc.max.AsInt()) {
          acc.max = ts ? Value::Timestamp(x) : Value::Int(x);
        }
      } else {
        Value val = ts ? Value::Timestamp(x) : Value::Int(x);
        if (acc.min.is_null() || val.Compare(acc.min) < 0) acc.min = val;
        if (acc.max.is_null() || val.Compare(acc.max) > 0) {
          acc.max = std::move(val);
        }
      }
    }
    return;
  }
  if (v.type == ValueType::kDouble) {
    for (size_t i = 0; i < n; ++i) {
      if (v.null_at(i)) continue;
      AggAccum& acc = groups[gidx[i]].accums[a];
      double x = v.dbl_at(i);
      ++acc.count;
      acc.any_double = true;
      acc.AddDouble(x);
      if (acc.min.is_null() || x < acc.min.AsDouble()) {
        acc.min = Value::Double(x);
      }
      if (acc.max.is_null() || x > acc.max.AsDouble()) {
        acc.max = Value::Double(x);
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!v.null_at(i)) groups[gidx[i]].accums[a].Add(v.value_at(i));
  }
}

struct PendingRow {
  Row out;
  Row order_keys;
};

std::vector<ValueType> SchemaTypes(const storage::TableSchema& schema) {
  std::vector<ValueType> types;
  types.reserve(schema.num_columns());
  for (const auto& c : schema.columns()) types.push_back(c.type);
  return types;
}

/// Mergeable accumulation state of one sink consumer. The serial path owns
/// a single state for the whole scan; the morsel-driven parallel path owns
/// one per morsel and merges them in morsel order, which reproduces the
/// serial scan's output order, group creation order and representative
/// tuples exactly regardless of which lane ran which morsel.
struct SinkState {
  std::vector<PendingRow> pending;
  std::vector<VGroup> groups;
  std::unordered_map<Row, uint32_t, storage::KeyHash, storage::KeyEq>
      group_index;
  std::unordered_map<int64_t, uint32_t> int_groups;
  uint32_t null_group = UINT32_MAX;
  // DISTINCT dedup by value (same semantics as the interpreter's buckets).
  // Every consumer dedups into its own state (global for the serial scan,
  // per-morsel for parallel partials); the combine dedups once more across
  // partials as they merge in morsel order, so keep-first is global.
  std::unordered_set<Row, storage::KeyHash, storage::KeyEq> distinct_seen;
};

/// The shared tail of both pipelines: consumes filtered (chunk, selection)
/// pairs — real replica chunks in the single-table case, materialized
/// joined batches in the join case — and runs DISTINCT / hash aggregation /
/// projection, then ORDER BY / LIMIT at Finish. Chunk column `c` holds slot
/// `c` of the plan's tuple layout. After Init the sink itself is immutable:
/// every Consume writes only through the caller's SinkState, so one sink
/// instance serves any number of concurrent execution lanes.
class VecSink {
 public:
  VecSink(const BoundSelect& plan, std::span<const Value> params)
      : plan_(plan), params_(params) {}

  /// Join batches fill only referenced slots; group representatives must
  /// not read the empty columns (unset slots stay NULL, which EvalBound
  /// never touches by construction of the mask).
  void set_needed_slots(const std::vector<uint8_t>* mask) { needed_ = mask; }

  /// The serial path may stop scanning once LIMIT rows are collected; such
  /// plans never go parallel (a full sweep would waste the early exit).
  bool can_stop_early() const { return can_stop_early_; }

  Status Init(std::span<const ValueType> slot_types) {
    repr_cols_ = plan_.total_slots;
    if (plan_.aggregate_mode) {
      group_exprs_.reserve(plan_.group_by.size());
      for (const auto& g : plan_.group_by) {
        auto lowered = LowerExprSlots(*g, slot_types, 0, params_);
        if (!lowered.ok()) return lowered.status();
        group_exprs_.push_back(std::move(lowered).value());
      }
      agg_args_.reserve(plan_.aggs.size());
      for (const auto& spec : plan_.aggs) {
        LoweredAgg la;
        if (spec.arg) {
          auto lowered = LowerExprSlots(*spec.arg, slot_types, 0, params_);
          if (!lowered.ok()) return lowered.status();
          la.has_arg = true;
          la.arg = std::move(lowered).value();
        }
        agg_args_.push_back(std::move(la));
      }
      // Fast path for the dominant shape "GROUP BY <integer column>": probe
      // an int-keyed map instead of boxing a key Row per input row. Static
      // plan typing keeps the choice consistent across chunks.
      single_int_key_ =
          group_exprs_.size() == 1 &&
          group_exprs_[0].kind == sql::BKind::kSlot &&
          (group_exprs_[0].col_type == ValueType::kInt ||
           group_exprs_[0].col_type == ValueType::kTimestamp);
    } else {
      proj_exprs_.reserve(plan_.projections.size());
      for (const auto& p : plan_.projections) {
        auto lowered = LowerExprSlots(*p, slot_types, 0, params_);
        if (!lowered.ok()) return lowered.status();
        proj_exprs_.push_back(std::move(lowered).value());
      }
      for (const BoundOrderItem& oi : plan_.order_by) {
        if (oi.proj_index >= 0) continue;
        auto lowered = LowerExprSlots(*oi.expr, slot_types, 0, params_);
        if (!lowered.ok()) return lowered.status();
        order_exprs_.push_back(std::move(lowered).value());
      }
      can_stop_early_ =
          plan_.order_by.empty() && !plan_.distinct && plan_.limit >= 0;
    }
    return Status::OK();
  }

  /// Consumes the selected rows of one chunk into `st`. `serial` enables
  /// the single-state behaviors: early LIMIT stop and in-consume DISTINCT
  /// dedup (a parallel partial cannot see other morsels' rows; the combine
  /// dedups instead). Returns false when the plan's LIMIT is satisfied and
  /// the producer may stop scanning.
  StatusOr<bool> Consume(SinkState* st, const storage::ColumnChunkView& chunk,
                         const Sel& sel, bool serial) const {
    if (sel.empty()) return true;
    if (!plan_.aggregate_mode) return ConsumeRows(st, chunk, sel, serial);
    if (group_exprs_.empty()) return ConsumeGlobalAgg(st, chunk, sel);
    return ConsumeGroupedAgg(st, chunk, sel);
  }

  /// Folds `src` (a later morsel's partial state) into `dst`. Callers merge
  /// partials strictly in morsel order; group-creation order and DISTINCT
  /// keep-first semantics rely on it.
  void MergeState(SinkState* dst, SinkState&& src) const {
    if (!plan_.aggregate_mode) {
      dst->pending.reserve(dst->pending.size() + src.pending.size());
      for (PendingRow& pr : src.pending) {
        if (plan_.distinct && !dst->distinct_seen.insert(pr.out).second) {
          continue;
        }
        dst->pending.push_back(std::move(pr));
      }
      return;
    }
    if (group_exprs_.empty()) {
      if (src.groups.empty()) return;
      if (dst->groups.empty()) {
        dst->groups = std::move(src.groups);
        return;
      }
      VGroup& d = dst->groups[0];
      const VGroup& s = src.groups[0];
      d.star_count += s.star_count;
      for (size_t a = 0; a < d.accums.size(); ++a) {
        d.accums[a].MergeFrom(s.accums[a]);
      }
      return;
    }
    for (VGroup& g : src.groups) {
      uint32_t tgt = UINT32_MAX;
      bool fresh = false;
      const auto next = static_cast<uint32_t>(dst->groups.size());
      if (single_int_key_) {
        if (g.null_key) {
          if (dst->null_group == UINT32_MAX) {
            dst->null_group = next;
            fresh = true;
          } else {
            tgt = dst->null_group;
          }
        } else {
          auto [it, inserted] = dst->int_groups.try_emplace(g.ikey, next);
          if (inserted) {
            fresh = true;
          } else {
            tgt = it->second;
          }
        }
      } else {
        auto [it, inserted] = dst->group_index.try_emplace(g.key, next);
        if (inserted) {
          fresh = true;
        } else {
          tgt = it->second;
        }
      }
      if (fresh) {
        dst->groups.push_back(std::move(g));
        continue;
      }
      VGroup& d = dst->groups[tgt];
      d.star_count += g.star_count;
      for (size_t a = 0; a < d.accums.size(); ++a) {
        d.accums[a].MergeFrom(g.accums[a]);
      }
    }
  }

  StatusOr<sql::ResultSet> Finish(SinkState&& st) const {
    // ----- aggregate finalization: HAVING, projection, order keys -----
    if (plan_.aggregate_mode) {
      if (st.groups.empty() && plan_.group_by.empty()) {
        // Global aggregate over empty input still yields one row.
        VGroup g;
        g.repr.assign(plan_.total_slots, Value::Null());
        g.accums.resize(plan_.aggs.size());
        st.groups.push_back(std::move(g));
      }
      for (const VGroup& g : st.groups) {
        std::vector<Value> agg_values(plan_.aggs.size());
        for (size_t a = 0; a < plan_.aggs.size(); ++a) {
          agg_values[a] =
              g.accums[a].Result(plan_.aggs[a].fn, g.star_count);
        }
        if (plan_.having) {
          auto v =
              sql::EvalBound(*plan_.having, g.repr, params_, &agg_values);
          if (!v.ok()) return v.status();
          if (!v->AsBool()) continue;
        }
        PendingRow pr;
        pr.out.reserve(plan_.projections.size());
        for (const auto& p : plan_.projections) {
          auto v = sql::EvalBound(*p, g.repr, params_, &agg_values);
          if (!v.ok()) return v.status();
          pr.out.push_back(std::move(v).value());
        }
        if (plan_.distinct && !st.distinct_seen.insert(pr.out).second) {
          continue;
        }
        for (const BoundOrderItem& oi : plan_.order_by) {
          if (oi.proj_index >= 0) {
            pr.order_keys.push_back(pr.out[oi.proj_index]);
          } else {
            auto v = sql::EvalBound(*oi.expr, g.repr, params_, &agg_values);
            if (!v.ok()) return v.status();
            pr.order_keys.push_back(std::move(v).value());
          }
        }
        st.pending.push_back(std::move(pr));
      }
    }

    // ----- sort / limit / emit (identical to the interpreter) -----
    if (!plan_.order_by.empty()) {
      std::stable_sort(st.pending.begin(), st.pending.end(),
                       [&](const PendingRow& a, const PendingRow& b) {
                         for (size_t i = 0; i < plan_.order_by.size(); ++i) {
                           int c = a.order_keys[i].Compare(b.order_keys[i]);
                           if (c != 0) {
                             return plan_.order_by[i].desc ? c > 0 : c < 0;
                           }
                         }
                         return false;
                       });
    }
    sql::ResultSet rs;
    rs.column_names = plan_.column_names;
    size_t n = st.pending.size();
    if (plan_.limit >= 0) n = std::min(n, static_cast<size_t>(plan_.limit));
    rs.rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rs.rows.push_back(std::move(st.pending[i].out));
    }
    rs.affected_rows = 0;
    return rs;
  }

 private:
  struct LoweredAgg {
    bool has_arg = false;
    VExpr arg;
  };

  StatusOr<bool> ConsumeRows(SinkState* st,
                             const storage::ColumnChunkView& chunk,
                             const Sel& sel, bool serial) const {
    std::vector<Vec> pvecs;
    pvecs.reserve(proj_exprs_.size());
    for (const VExpr& p : proj_exprs_) {
      auto v = EvalVec(p, chunk, sel);
      if (!v.ok()) return v.status();
      pvecs.push_back(std::move(v).value());
    }
    std::vector<Vec> ovecs;
    ovecs.reserve(order_exprs_.size());
    for (const VExpr& o : order_exprs_) {
      auto v = EvalVec(o, chunk, sel);
      if (!v.ok()) return v.status();
      ovecs.push_back(std::move(v).value());
    }
    for (size_t i = 0; i < sel.size(); ++i) {
      PendingRow pr;
      pr.out.reserve(pvecs.size());
      for (const Vec& pv : pvecs) pr.out.push_back(pv.value_at(i));
      // DISTINCT dedups into this state's own set either way: the serial
      // path sees every row through one state (global dedup), a parallel
      // partial dedups within its morsel — keep-first survives the
      // morsel-order merge, and duplicates never pile up in partials.
      if (plan_.distinct && !st->distinct_seen.insert(pr.out).second) {
        continue;
      }
      size_t next_expr = 0;
      for (const BoundOrderItem& oi : plan_.order_by) {
        if (oi.proj_index >= 0) {
          pr.order_keys.push_back(pr.out[oi.proj_index]);
        } else {
          pr.order_keys.push_back(ovecs[next_expr++].value_at(i));
        }
      }
      st->pending.push_back(std::move(pr));
      if (serial && can_stop_early_ &&
          st->pending.size() >= static_cast<size_t>(plan_.limit)) {
        return false;  // enough rows; stop the scan
      }
    }
    return true;
  }

  StatusOr<bool> ConsumeGlobalAgg(SinkState* st,
                                  const storage::ColumnChunkView& chunk,
                                  const Sel& sel) const {
    // Global aggregate: one implicit group. The representative tuple is
    // the first selected row (projections may reference raw slots).
    if (st->groups.empty()) {
      VGroup g;
      g.repr.resize(repr_cols_);
      for (int c = 0; c < repr_cols_; ++c) {
        if (needed_ == nullptr || (*needed_)[c]) {
          g.repr[c] = chunk.value_at(c, sel[0]);
        }
      }
      g.accums.resize(plan_.aggs.size());
      st->groups.push_back(std::move(g));
    }
    st->groups[0].star_count += static_cast<int64_t>(sel.size());
    for (size_t a = 0; a < agg_args_.size(); ++a) {
      if (!agg_args_[a].has_arg) continue;  // COUNT(*): star_count only
      auto v = EvalVec(agg_args_[a].arg, chunk, sel);
      if (!v.ok()) return v.status();
      AccumulateVec(&st->groups[0].accums[a], *v);
    }
    return true;
  }

  StatusOr<bool> ConsumeGroupedAgg(SinkState* st,
                                   const storage::ColumnChunkView& chunk,
                                   const Sel& sel) const {
    std::vector<Vec> kvecs;
    kvecs.reserve(group_exprs_.size());
    for (const VExpr& g : group_exprs_) {
      auto v = EvalVec(g, chunk, sel);
      if (!v.ok()) return v.status();
      kvecs.push_back(std::move(v).value());
    }
    auto new_group = [&](size_t row) -> uint32_t {
      uint32_t g = static_cast<uint32_t>(st->groups.size());
      VGroup grp;
      grp.repr.resize(repr_cols_);
      for (int c = 0; c < repr_cols_; ++c) {
        if (needed_ == nullptr || (*needed_)[c]) {
          grp.repr[c] = chunk.value_at(c, row);
        }
      }
      grp.accums.resize(plan_.aggs.size());
      st->groups.push_back(std::move(grp));
      return g;
    };

    std::vector<uint32_t> gidx(sel.size());
    if (single_int_key_) {
      const Vec& kv = kvecs[0];
      for (size_t i = 0; i < sel.size(); ++i) {
        uint32_t g;
        if (kv.null_at(i)) {
          if (st->null_group == UINT32_MAX) {
            st->null_group = new_group(sel[i]);
            st->groups.back().null_key = true;
          }
          g = st->null_group;
        } else {
          int64_t x = kv.int_at(i);
          auto [it, inserted] = st->int_groups.try_emplace(x, 0);
          if (inserted) {
            it->second = new_group(sel[i]);
            st->groups.back().ikey = x;
          }
          g = it->second;
        }
        st->groups[g].star_count++;
        gidx[i] = g;
      }
    } else {
      Row key;
      for (size_t i = 0; i < sel.size(); ++i) {
        key.clear();
        key.reserve(kvecs.size());
        for (const Vec& kv : kvecs) key.push_back(kv.value_at(i));
        auto [it, inserted] = st->group_index.try_emplace(key, 0);
        if (inserted) {
          it->second = new_group(sel[i]);
          st->groups.back().key = it->first;
        }
        uint32_t g = it->second;
        st->groups[g].star_count++;
        gidx[i] = g;
      }
    }
    for (size_t a = 0; a < agg_args_.size(); ++a) {
      if (!agg_args_[a].has_arg) continue;
      auto v = EvalVec(agg_args_[a].arg, chunk, sel);
      if (!v.ok()) return v.status();
      AccumulateGrouped(st->groups, gidx, a, *v);
    }
    return true;
  }

  const BoundSelect& plan_;
  std::span<const Value> params_;
  int repr_cols_ = 0;

  std::vector<VExpr> group_exprs_;
  std::vector<LoweredAgg> agg_args_;
  std::vector<VExpr> proj_exprs_;   // non-agg mode only
  std::vector<VExpr> order_exprs_;  // non-agg mode, one per expr order item
  bool single_int_key_ = false;
  bool can_stop_early_ = false;
  const std::vector<uint8_t>* needed_ = nullptr;
};

// LiveRows/ApplyConjuncts live in vexpr.{h,cc}: the scan, hash-build and
// join-probe stages share one filtering (and fallback) implementation.

// ------------------------- EXPLAIN ANALYZE capture -------------------------

/// Per-lane trace accumulation for one scan driver. Parallel fan-outs own
/// one slot per lane and sum them afterwards (the per-morsel rollup); the
/// serial paths use a single slot. All writes are gated on opts.trace.
struct LaneTrace {
  int64_t selected = 0;    ///< rows surviving the scan filters
  int64_t consumed_out = 0;  ///< probe-stage output rows (join path)
  int64_t filter_ns = 0;
  int64_t consume_ns = 0;  ///< sink consume (single-table) / probe cascade
};

LaneTrace SumLanes(const std::vector<LaneTrace>& lanes) {
  LaneTrace t;
  for (const LaneTrace& l : lanes) {
    t.selected += l.selected;
    t.consumed_out += l.consumed_out;
    t.filter_ns += l.filter_ns;
    t.consume_ns += l.consume_ns;
  }
  return t;
}

/// Appends the scan (and, when filters exist, filter) operators. `skipped`
/// is the zone-map block-skip count, always surfaced in the scan detail.
void TraceScanOps(obs::QueryTrace* trace, int table_id, bool has_filters,
                  int64_t scanned, int64_t skipped, const LaneTrace& t,
                  int64_t scan_ns) {
  obs::TraceOp scan;
  scan.op = "scan";
  scan.detail = "table=" + std::to_string(table_id) +
                " zskip=" + std::to_string(skipped);
  scan.rows_in = scanned;
  scan.rows_out = scanned;
  // The fused scan+filter loop is timed as a whole; the filter's share is
  // measured directly and subtracted out.
  int64_t residual = scan_ns - t.filter_ns - t.consume_ns;
  scan.wall_us = (residual > 0 ? residual : 0) / 1000;
  trace->ops.push_back(std::move(scan));
  if (has_filters) {
    obs::TraceOp filter;
    filter.op = "filter";
    filter.rows_in = scanned;
    filter.rows_out = t.selected;
    filter.wall_us = t.filter_ns / 1000;
    trace->ops.push_back(std::move(filter));
  }
}

/// Appends the sink-side operators (aggregate/project, order, emit) given
/// the pre-Finish sink cardinality and the final result.
void TraceSinkOps(obs::QueryTrace* trace, const BoundSelect& plan,
                  int64_t rows_in, int64_t sink_rows, int64_t consume_ns,
                  int64_t finish_ns, const sql::ResultSet& rs) {
  obs::TraceOp sinkop;
  sinkop.op = plan.aggregate_mode ? "aggregate" : "project";
  if (plan.distinct) sinkop.detail = "distinct";
  sinkop.rows_in = rows_in;
  sinkop.rows_out = sink_rows;
  sinkop.wall_us = consume_ns / 1000;
  trace->ops.push_back(std::move(sinkop));
  if (!plan.order_by.empty()) {
    obs::TraceOp order;
    order.op = "order";
    order.detail = std::to_string(plan.order_by.size()) + " keys";
    order.rows_in = sink_rows;
    order.rows_out = sink_rows;
    order.wall_us = finish_ns / 1000;
    trace->ops.push_back(std::move(order));
  }
  obs::TraceOp emit;
  emit.op = "emit";
  if (plan.limit >= 0) emit.detail = "limit=" + std::to_string(plan.limit);
  emit.rows_in = sink_rows;
  emit.rows_out = static_cast<int64_t>(rs.rows.size());
  trace->ops.push_back(std::move(emit));
}

/// Sink cardinality before Finish (groups for aggregates, pending rows
/// otherwise) — the row count entering order/limit/emit.
int64_t SinkRows(const BoundSelect& plan, const SinkState& st) {
  if (plan.aggregate_mode) {
    // A global aggregate over empty input still emits one row.
    if (st.groups.empty() && plan.group_by.empty()) return 1;
    return static_cast<int64_t>(st.groups.size());
  }
  return static_cast<int64_t>(st.pending.size());
}

// ------------------------- morsel fan-out driver ---------------------------

/// Whether this execution should fan out over the pool. Early-stop plans
/// stay serial: their serial scan terminates after LIMIT rows while a
/// parallel sweep would visit everything.
bool UseParallel(const VecExecOptions& opts, const VecSink& sink) {
  return opts.pool != nullptr && opts.pool->lanes() > 1 &&
         !sink.can_stop_early();
}

// NormalizedMorselRows lives in vectorized.h (the router mirrors it).

/// Per-driver block accounting: chunk-sized blocks actually read vs.
/// skipped whole via the zone-map mask.
struct ScanBlocks {
  int64_t scanned = 0;
  int64_t skipped = 0;
};

/// Pins `table` and drives `body` over its chunks from `lanes` execution
/// lanes; each claimed morsel accumulates into its own SinkState slot in
/// `partials` (indexed by ordinal, i.e. scan order). Blocks the zone-map
/// mask built from `preds` refutes are skipped without being decoded.
/// `body(lane, state, chunk, sel)` runs the per-chunk pipeline; the first
/// failing status cancels the dispatcher and is returned. Adds live rows
/// visited to *visited, block counts to *blocks (also recorded on the
/// table), and reports the fan-out width in *lanes_used.
template <typename Body>
Status RunMorselFanOut(const storage::ColumnTable& table,
                       const VecExecOptions& opts,
                       std::span<const storage::ZonePred> preds,
                       std::vector<SinkState>* partials, int* lanes_used,
                       int64_t* visited, ScanBlocks* blocks, Body&& body) {
  storage::ColumnTable::ScanPin pin(table);
  const std::vector<uint8_t> skip = pin.ComputeSkipMask(preds);
  MorselDispatcher dispatcher(pin.total_slots(),
                              NormalizedMorselRows(opts.morsel_rows));
  const int lanes = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(opts.pool->lanes()),
      std::max<size_t>(1, dispatcher.morsel_count())));
  partials->clear();
  partials->resize(dispatcher.morsel_count());
  std::vector<Status> lane_status(lanes, Status::OK());
  std::vector<int64_t> lane_visited(lanes, 0);
  std::vector<ScanBlocks> lane_blocks(lanes);
  opts.pool->Run(lanes, [&](int lane) {
    MorselDispatcher::Morsel m;
    while (dispatcher.Next(&m)) {
      SinkState* st = &(*partials)[m.ordinal];
      for (size_t off = 0; off < m.rows; off += kVecChunkRows) {
        // Morsel bases are multiples of the (normalized) chunk size, so
        // every chunk maps to exactly one kBlockSlots-aligned mask entry.
        const size_t b = (m.base + off) / storage::kBlockSlots;
        if (b < skip.size() && skip[b] != 0) {
          ++lane_blocks[lane].skipped;
          continue;
        }
        ++lane_blocks[lane].scanned;
        storage::ColumnChunkView chunk =
            pin.Chunk(m.base + off, std::min(kVecChunkRows, m.rows - off));
        Sel sel = LiveRows(chunk);
        lane_visited[lane] += static_cast<int64_t>(sel.size());
        Status st2 = body(lane, st, chunk, sel);
        if (!st2.ok()) {
          lane_status[lane] = st2;
          dispatcher.Cancel();
          return;
        }
      }
    }
  });
  for (const Status& st : lane_status) {
    if (!st.ok()) return st;
  }
  *lanes_used = lanes;
  for (int64_t v : lane_visited) *visited += v;
  for (const ScanBlocks& lb : lane_blocks) {
    blocks->scanned += lb.scanned;
    blocks->skipped += lb.skipped;
  }
  table.RecordScanBlocks(blocks->scanned, blocks->skipped);
  if (opts.morsel_counter != nullptr) {
    opts.morsel_counter->Add(static_cast<int64_t>(dispatcher.morsel_count()));
  }
  return Status::OK();
}

/// Serial scan driver shared by the single-table and join-stream paths:
/// same pin + zone-map skipping as the fan-out, one chunk at a time in
/// slot order. `body(chunk, sel)` returns false to stop early (LIMIT).
/// Returns live rows visited; block counts land in *blocks and on the
/// table's telemetry.
template <typename Body>
StatusOr<int64_t> RunSerialScan(const storage::ColumnTable& table,
                                std::span<const storage::ZonePred> preds,
                                ScanBlocks* blocks, Body&& body) {
  storage::ColumnTable::ScanPin pin(table);
  const std::vector<uint8_t> skip = pin.ComputeSkipMask(preds);
  const size_t total = pin.total_slots();
  int64_t visited = 0;
  Status inner = Status::OK();
  for (size_t base = 0; base < total;) {
    const size_t b = base / storage::kBlockSlots;
    if (b < skip.size() && skip[b] != 0) {
      ++blocks->skipped;
      base = (b + 1) * storage::kBlockSlots;
      continue;
    }
    storage::ColumnChunkView chunk = pin.Chunk(base, kVecChunkRows);
    if (chunk.rows == 0) break;
    ++blocks->scanned;
    Sel sel = LiveRows(chunk);
    visited += static_cast<int64_t>(sel.size());
    auto more = body(chunk, sel);
    if (!more.ok()) {
      inner = more.status();
      break;
    }
    base += chunk.rows;
    if (!*more) break;
  }
  table.RecordScanBlocks(blocks->scanned, blocks->skipped);
  if (!inner.ok()) return inner;
  return visited;
}

// ---------------------------- single-table path ----------------------------

StatusOr<sql::ResultSet> RunSingleTable(const BoundSelect& plan,
                                        std::span<const Value> params,
                                        const storage::ColumnTable& table,
                                        VecSink& sink,
                                        const VecExecOptions& opts,
                                        VecExecStats* stats) {
  std::vector<VExpr> filters;
  filters.reserve(plan.steps[0].filters.size());
  for (const auto& f : plan.steps[0].filters) {
    auto lowered = LowerExpr(*f, table.schema(), params);
    if (!lowered.ok()) return lowered.status();
    filters.push_back(std::move(lowered).value());
  }

  // Zone-refutable bounds from the scan conjuncts: both drivers consult
  // the pinned blocks' zone maps through the same mask, so serial and
  // parallel scans skip identically.
  const std::vector<storage::ZonePred> zpreds = ExtractZonePreds(filters);

  const bool tracing = opts.trace != nullptr;
  if (UseParallel(opts, sink)) {
    std::vector<SinkState> partials;
    int lanes = 1;
    int64_t visited = 0;
    ScanBlocks blocks;
    std::vector<LaneTrace> lt(
        tracing ? static_cast<size_t>(opts.pool->lanes()) : 0);
    const int64_t t_drv = tracing ? NowNanos() : 0;
    OLXP_RETURN_NOT_OK(RunMorselFanOut(
        table, opts, zpreds, &partials, &lanes, &visited, &blocks,
        [&](int lane, SinkState* st, const storage::ColumnChunkView& chunk,
            Sel& sel) -> Status {
          int64_t t0 = tracing ? NowNanos() : 0;
          OLXP_RETURN_NOT_OK(ApplyConjuncts(filters, chunk, &sel));
          if (tracing) {
            LaneTrace& t = lt[static_cast<size_t>(lane)];
            const int64_t t1 = NowNanos();
            t.filter_ns += t1 - t0;
            t.selected += static_cast<int64_t>(sel.size());
            t0 = t1;
          }
          auto more = sink.Consume(st, chunk, sel, /*serial=*/false);
          if (tracing) {
            lt[static_cast<size_t>(lane)].consume_ns += NowNanos() - t0;
          }
          return more.ok() ? Status::OK() : more.status();
        }));
    if (stats != nullptr) {
      stats->rows_scanned += visited;
      stats->rows_scanned_driver += visited;
      stats->lanes_used = std::max(stats->lanes_used, lanes);
      stats->blocks_scanned += blocks.scanned;
      stats->blocks_skipped += blocks.skipped;
    }
    SinkState merged;
    for (SinkState& p : partials) sink.MergeState(&merged, std::move(p));
    if (!tracing) return sink.Finish(std::move(merged));
    const LaneTrace t = SumLanes(lt);
    opts.trace->lanes = std::max(opts.trace->lanes, lanes);
    opts.trace->morsels += static_cast<int64_t>(partials.size());
    TraceScanOps(opts.trace, plan.steps[0].table_id, !filters.empty(),
                 visited, blocks.skipped, t, NowNanos() - t_drv);
    const int64_t sink_rows = SinkRows(plan, merged);
    const int64_t t_fin = NowNanos();
    auto rs = sink.Finish(std::move(merged));
    if (!rs.ok()) return rs.status();
    TraceSinkOps(opts.trace, plan, t.selected, sink_rows, t.consume_ns,
                 NowNanos() - t_fin, *rs);
    return rs;
  }

  SinkState state;
  LaneTrace t;
  ScanBlocks blocks;
  const int64_t t_drv = tracing ? NowNanos() : 0;
  auto scanned_or = RunSerialScan(
      table, zpreds, &blocks,
      [&](const storage::ColumnChunkView& chunk,
          Sel& sel) -> StatusOr<bool> {
        int64_t t0 = tracing ? NowNanos() : 0;
        OLXP_RETURN_NOT_OK(ApplyConjuncts(filters, chunk, &sel));
        if (tracing) {
          const int64_t t1 = NowNanos();
          t.filter_ns += t1 - t0;
          t.selected += static_cast<int64_t>(sel.size());
          t0 = t1;
        }
        auto more = sink.Consume(&state, chunk, sel, /*serial=*/true);
        if (tracing) t.consume_ns += NowNanos() - t0;
        return more;
      });
  if (!scanned_or.ok()) return scanned_or.status();
  const int64_t scanned = *scanned_or;
  if (stats != nullptr) {
    stats->rows_scanned += scanned;
    stats->rows_scanned_driver += scanned;
    stats->blocks_scanned += blocks.scanned;
    stats->blocks_skipped += blocks.skipped;
  }
  if (!tracing) return sink.Finish(std::move(state));
  TraceScanOps(opts.trace, plan.steps[0].table_id, !filters.empty(), scanned,
               blocks.skipped, t, NowNanos() - t_drv);
  const int64_t sink_rows = SinkRows(plan, state);
  const int64_t t_fin = NowNanos();
  auto rs = sink.Finish(std::move(state));
  if (!rs.ok()) return rs.status();
  TraceSinkOps(opts.trace, plan, t.selected, sink_rows, t.consume_ns,
               NowNanos() - t_fin, *rs);
  return rs;
}

// ------------------------------- join path ---------------------------------

/// A materialized batch of joined tuples in slot layout: one Value vector
/// per plan slot. Only slots the rest of the plan references are filled
/// (the needed-slot mask); unreferenced columns stay empty and are never
/// read.
struct Batch {
  std::vector<std::vector<Value>> cols;
  std::vector<storage::ColumnSpan> desc;
  std::vector<uint8_t> live;
  size_t rows = 0;

  explicit Batch(size_t nslots) : cols(nslots), desc(nslots) {}

  void Clear() {
    rows = 0;
    for (auto& c : cols) c.clear();  // keeps capacity across chunks
  }

  storage::ColumnChunkView View() {
    // Grow-only all-ones array: View is called several times per batch
    // (probe keys, residuals, sink) and must not re-memset each time.
    if (live.size() < rows) live.resize(rows, 1);
    // Span descriptors are refreshed every View(): the column vectors may
    // have reallocated since the last batch. Joined batches are always
    // boxed (kRaw) — only replica blocks carry typed encodings.
    for (size_t i = 0; i < cols.size(); ++i) {
      desc[i] = storage::ColumnSpan{};
      desc[i].enc = storage::EncodedColumn::Enc::kRaw;
      desc[i].flat = cols[i].data();
    }
    storage::ColumnChunkView v;
    v.base = 0;
    v.rows = rows;
    v.live = live.data();
    v.cols = desc.data();
    v.num_cols = static_cast<int>(cols.size());
    return v;
  }
};

/// One hash-join stage: the built side plus the probe-side machinery.
/// Immutable once built — the morsel fan-out probes one shared level set
/// from every lane concurrently.
struct JoinLevel {
  int base = 0;   ///< first slot of the build table
  int ncols = 0;  ///< columns of the build table
  HashJoinTable ht;
  /// Level 0 keys are lowered against the stream table (evaluated on the
  /// raw scan chunk, so non-matching rows are never materialized); deeper
  /// levels are lowered in slot layout and evaluated on joined batches.
  std::vector<VExpr> probe_keys;
  std::vector<VExpr> residuals;  ///< slot layout, checked after this join
  /// Needed build-table columns copied on emit (local indices).
  std::vector<int> copy_cols;
  /// Needed slots filled before this level, copied through on emit.
  std::vector<int> prev_slots;
};

/// Looks up one probe row in the level's hash table; nullptr = no match
/// (including NULL keys, which never join).
const std::vector<uint32_t>* ProbeOne(const JoinLevel& level,
                                      const std::vector<Vec>& kvecs,
                                      bool int_probe, size_t i, Row* key) {
  if (int_probe) {
    if (kvecs[0].null_at(i)) return nullptr;
    return level.ht.ProbeInt(kvecs[0].int_at(i));
  }
  key->clear();
  for (const Vec& kv : kvecs) {
    if (kv.null_at(i)) return nullptr;
    key->push_back(kv.value_at(i));
  }
  return level.ht.ProbeRow(*key);
}

bool WantIntProbe(const JoinLevel& level, const std::vector<Vec>& kvecs) {
  return level.ht.int_keyed() && kvecs.size() == 1 &&
         (kvecs[0].type == ValueType::kInt ||
          kvecs[0].type == ValueType::kTimestamp);
}

/// Per-lane probe machinery: borrows the shared immutable levels, owns its
/// own reusable output batches and stats. The serial path uses one; the
/// parallel fan-out one per lane.
class JoinPipeline {
 public:
  JoinPipeline(const std::vector<JoinLevel>& levels, size_t total_slots,
               const VecSink& sink, VecExecStats* stats, bool serial)
      : levels_(levels), sink_(sink), stats_(stats), serial_(serial) {
    out_.reserve(levels_.size());
    for (size_t i = 0; i < levels_.size(); ++i) out_.emplace_back(total_slots);
  }

  /// Probes the selected rows of `src` through level `lv` and cascades
  /// onward; past the last level the joined batch feeds the sink via `st`.
  /// `in_cols` are source-view column indices and `out_slots` the plan
  /// slots they land in — the raw stream chunk passes (local columns,
  /// global slots), deeper levels pass their identical already-filled slot
  /// list for both. Returns false when the sink's LIMIT is satisfied.
  StatusOr<bool> Probe(SinkState* st, size_t lv,
                       const storage::ColumnChunkView& src, const Sel& sel,
                       const std::vector<int>& in_cols,
                       const std::vector<int>& out_slots) {
    if (sel.empty()) return true;
    const JoinLevel& level = levels_[lv];

    std::vector<Vec> kvecs;
    kvecs.reserve(level.probe_keys.size());
    for (const VExpr& k : level.probe_keys) {
      auto v = EvalVec(k, src, sel);
      if (!v.ok()) return v.status();
      kvecs.push_back(std::move(v).value());
    }
    const bool int_probe = WantIntProbe(level, kvecs);

    // Pass 1: match lists (so output columns reserve exactly once).
    std::vector<const std::vector<uint32_t>*> matches(sel.size(), nullptr);
    size_t total = 0;
    Row key;
    for (size_t i = 0; i < sel.size(); ++i) {
      matches[i] = ProbeOne(level, kvecs, int_probe, i, &key);
      if (matches[i] != nullptr) total += matches[i]->size();
    }
    if (stats_ != nullptr) stats_->rows_joined += static_cast<int64_t>(total);
    if (total == 0) return true;

    Batch& next = out_[lv];  // reused across chunks (capacity persists)
    next.Clear();
    for (int s : out_slots) next.cols[s].reserve(total);
    for (int c : level.copy_cols) next.cols[level.base + c].reserve(total);
    for (size_t i = 0; i < sel.size(); ++i) {
      if (matches[i] == nullptr) continue;
      for (uint32_t r : *matches[i]) {
        for (size_t j = 0; j < in_cols.size(); ++j) {
          next.cols[out_slots[j]].push_back(src.value_at(in_cols[j], sel[i]));
        }
        for (int c : level.copy_cols) {
          next.cols[level.base + c].push_back(level.ht.at(c, r));
        }
        ++next.rows;
      }
    }

    Sel next_sel(next.rows);
    std::iota(next_sel.begin(), next_sel.end(), 0u);
    storage::ColumnChunkView view = next.View();
    OLXP_RETURN_NOT_OK(ApplyConjuncts(level.residuals, view, &next_sel));
    if (lv + 1 == levels_.size()) {
      return sink_.Consume(st, view, next_sel, serial_);
    }
    const std::vector<int>& filled = levels_[lv + 1].prev_slots;
    return Probe(st, lv + 1, view, next_sel, filled, filled);
  }

 private:
  const std::vector<JoinLevel>& levels_;
  std::vector<Batch> out_;  ///< per-level output batches, reused
  const VecSink& sink_;
  VecExecStats* stats_;
  bool serial_;
};

/// Marks every slot referenced by the subtree in `mask`.
void MarkSlots(const BoundExpr& e, std::vector<uint8_t>* mask) {
  if (e.kind == sql::BKind::kSlot && e.slot >= 0 &&
      static_cast<size_t>(e.slot) < mask->size()) {
    (*mask)[e.slot] = 1;
  }
  for (const auto& c : e.children) MarkSlots(*c, mask);
}

/// Whether streaming the other side of a two-table join preserves the
/// interpreter parity contract. Swapping changes the emission order, which
/// is visible through (a) LIMIT without a full sort picking a different row
/// subset and (b) grouped-aggregate representative tuples ("first row of
/// the group"): a raw slot projected (or used in HAVING / ORDER BY) that is
/// not itself a GROUP BY key takes its value from the representative, so
/// its value depends on the driving order.
bool SwapPreservesParity(const BoundSelect& plan) {
  if (plan.limit >= 0 && !plan.aggregate_mode && plan.order_by.empty()) {
    return false;
  }
  if (!plan.aggregate_mode) return true;
  std::vector<uint8_t> refs(plan.total_slots, 0);
  for (const auto& p : plan.projections) MarkSlots(*p, &refs);
  if (plan.having) MarkSlots(*plan.having, &refs);
  for (const BoundOrderItem& oi : plan.order_by) {
    if (oi.expr) MarkSlots(*oi.expr, &refs);
  }
  std::vector<uint8_t> keyed(plan.total_slots, 0);
  for (const auto& g : plan.group_by) {
    if (g->kind == sql::BKind::kSlot && g->slot >= 0 &&
        static_cast<size_t>(g->slot) < keyed.size()) {
      keyed[g->slot] = 1;
    }
  }
  for (int s = 0; s < plan.total_slots; ++s) {
    if (refs[s] && !keyed[s]) return false;  // representative-dependent
  }
  return true;
}

StatusOr<sql::ResultSet> RunHashJoin(
    const BoundSelect& plan, std::span<const Value> params,
    const std::vector<const storage::ColumnTable*>& tables,
    std::span<const ValueType> slot_types, VecSink& sink,
    const VecExecOptions& opts, VecExecStats* stats) {
  const size_t nsteps = plan.steps.size();
  std::vector<JoinStepPlan> cls(nsteps);
  for (size_t k = 1; k < nsteps; ++k) {
    if (!ClassifyJoinStep(plan, k, &cls[k])) {
      return Status::Unsupported("join step without an equi-join key");
    }
  }

  // Stream the bigger side and build the hash table from the smaller one
  // when the join is a plain two-table shape and the changed driving order
  // cannot leak into results (SwapPreservesParity).
  size_t stream = 0;
  const bool swapped =
      nsteps == 2 && SwapPreservesParity(plan) &&
      tables[0]->LiveRowCount() < tables[1]->LiveRowCount();
  if (swapped) stream = 1;

  const TableStep& sstep = plan.steps[stream];
  std::vector<ValueType> stream_types = SchemaTypes(*sstep.schema);

  // Slots the plan reads after the join stages: sink expressions (also via
  // EvalBound over group representatives), residual conjuncts, and probe
  // keys of levels past the first (the first level probes the raw stream
  // chunk directly). Everything else is never materialized.
  const size_t total_slots = slot_types.size();
  std::vector<uint8_t> needed(total_slots, 0);
  for (const auto& p : plan.projections) MarkSlots(*p, &needed);
  for (const auto& g : plan.group_by) MarkSlots(*g, &needed);
  for (const auto& a : plan.aggs) {
    if (a.arg) MarkSlots(*a.arg, &needed);
  }
  if (plan.having) MarkSlots(*plan.having, &needed);
  for (const BoundOrderItem& oi : plan.order_by) {
    if (oi.expr) MarkSlots(*oi.expr, &needed);
  }
  {
    bool first_level = true;
    for (size_t k = 1; k < nsteps; ++k) {
      for (const BoundExpr* f : cls[k].residuals) MarkSlots(*f, &needed);
      for (const JoinKey& jk : cls[k].keys) {
        // In the two-table swapped case the sole level's probe side is the
        // stream (step-1) child; either way the only level probes the raw
        // chunk, so its keys need no materialization.
        if (first_level) continue;
        MarkSlots(*jk.probe, &needed);
      }
      first_level = false;
    }
  }
  sink.set_needed_slots(&needed);

  // Stream-side local filters (evaluated on the raw chunk).
  std::vector<const BoundExpr*> stream_locals;
  if (swapped) {
    stream_locals = cls[1].locals;
  } else {
    for (const auto& f : plan.steps[0].filters) {
      stream_locals.push_back(f.get());
    }
  }
  std::vector<VExpr> stream_filters;
  stream_filters.reserve(stream_locals.size());
  for (const BoundExpr* f : stream_locals) {
    auto lowered = LowerExprSlots(*f, stream_types, sstep.base, params);
    if (!lowered.ok()) return lowered.status();
    stream_filters.push_back(std::move(lowered).value());
  }
  std::vector<int> stream_copy;  // needed stream columns (local indices)
  std::vector<int> stream_out;   // ... and the plan slots they land in
  for (int c = 0; c < sstep.ncols; ++c) {
    if (needed[sstep.base + c]) {
      stream_copy.push_back(c);
      stream_out.push_back(sstep.base + c);
    }
  }

  // Build one hash table per non-stream step, in plan order. The build
  // stays serial; the tables are immutable afterwards, so the probe
  // fan-out reads them lock-free from every lane.
  std::vector<JoinLevel> levels;
  std::vector<int> filled = stream_out;  // needed slots materialized so far
  for (size_t k = 0; k < nsteps; ++k) {
    if (k == stream) continue;
    const TableStep& bstep = plan.steps[k];
    std::vector<ValueType> btypes = SchemaTypes(*bstep.schema);
    // When the two-table sides are swapped, the classified key roles flip:
    // the step-0 children become the build exprs and the step-1 children
    // the probe exprs. Locals follow their table.
    const JoinStepPlan& c = swapped ? cls[1] : cls[k];
    std::vector<const BoundExpr*> blocals;
    if (swapped) {
      for (const auto& f : plan.steps[0].filters) blocals.push_back(f.get());
    } else {
      blocals = c.locals;
    }
    const bool first_level = levels.empty();

    JoinLevel level;
    level.base = bstep.base;
    level.ncols = bstep.ncols;
    level.prev_slots = filled;
    std::vector<uint8_t> bneeded(bstep.ncols, 0);
    for (int bc = 0; bc < bstep.ncols; ++bc) {
      if (needed[bstep.base + bc]) {
        bneeded[bc] = 1;
        level.copy_cols.push_back(bc);
      }
    }

    std::vector<VExpr> build_filters;
    build_filters.reserve(blocals.size());
    for (const BoundExpr* f : blocals) {
      auto lowered = LowerExprSlots(*f, btypes, bstep.base, params);
      if (!lowered.ok()) return lowered.status();
      build_filters.push_back(std::move(lowered).value());
    }
    std::vector<VExpr> build_keys;
    build_keys.reserve(c.keys.size());
    level.probe_keys.reserve(c.keys.size());
    for (const JoinKey& jk : c.keys) {
      const BoundExpr* build_side = swapped ? jk.probe : jk.build;
      const BoundExpr* probe_side = swapped ? jk.build : jk.probe;
      auto b = LowerExprSlots(*build_side, btypes, bstep.base, params);
      if (!b.ok()) return b.status();
      build_keys.push_back(std::move(b).value());
      // The first level's probe keys run against the raw stream chunk (its
      // keys reference only stream slots); deeper levels run in slot
      // layout on the joined batch.
      auto p = first_level
                   ? LowerExprSlots(*probe_side, stream_types, sstep.base,
                                    params)
                   : LowerExprSlots(*probe_side, slot_types, 0, params);
      if (!p.ok()) return p.status();
      level.probe_keys.push_back(std::move(p).value());
    }
    level.residuals.reserve(c.residuals.size());
    for (const BoundExpr* f : c.residuals) {
      auto lowered = LowerExprSlots(*f, slot_types, 0, params);
      if (!lowered.ok()) return lowered.status();
      level.residuals.push_back(std::move(lowered).value());
    }

    int64_t scanned = 0;
    const int64_t t_build = opts.trace != nullptr ? NowNanos() : 0;
    OLXP_RETURN_NOT_OK(level.ht.Build(*tables[k], build_filters, build_keys,
                                      bneeded, &scanned));
    if (opts.trace != nullptr) {
      obs::TraceOp build;
      build.op = "join-build";
      build.detail = "table=" + std::to_string(bstep.table_id) + " level=" +
                     std::to_string(levels.size());
      build.rows_in = scanned;
      build.rows_out = static_cast<int64_t>(level.ht.rows());
      build.wall_us = (NowNanos() - t_build) / 1000;
      opts.trace->ops.push_back(std::move(build));
    }
    if (stats != nullptr) {
      stats->rows_scanned += scanned;
      stats->rows_built += static_cast<int64_t>(level.ht.rows());
    }
    for (int bc : level.copy_cols) filled.push_back(level.base + bc);
    levels.push_back(std::move(level));
  }

  // Stream-side zone bounds: the probe fan-out and the serial probe skip
  // stream blocks the local stream filters refute.
  const std::vector<storage::ZonePred> zpreds =
      ExtractZonePreds(stream_filters);

  const bool tracing = opts.trace != nullptr;
  if (UseParallel(opts, sink)) {
    // Parallel probe fan-out: every lane owns a pipeline (its own batch
    // buffers and stats) over the shared immutable levels, and each morsel
    // of the stream table accumulates into its own partial sink state.
    const int max_lanes = opts.pool->lanes();
    std::vector<VecExecStats> lane_stats(max_lanes);
    // Pipelines (and their per-level batch buffers) are built lazily on a
    // lane's first morsel: RunMorselFanOut may clamp to far fewer lanes
    // than the pool offers. Each lane only ever touches its own slot.
    std::vector<std::unique_ptr<JoinPipeline>> pipelines(max_lanes);
    std::vector<SinkState> partials;
    int lanes = 1;
    int64_t visited = 0;
    ScanBlocks blocks;
    std::vector<LaneTrace> lt(tracing ? static_cast<size_t>(max_lanes) : 0);
    const int64_t t_drv = tracing ? NowNanos() : 0;
    OLXP_RETURN_NOT_OK(RunMorselFanOut(
        *tables[stream], opts, zpreds, &partials, &lanes, &visited, &blocks,
        [&](int lane, SinkState* st, const storage::ColumnChunkView& chunk,
            Sel& sel) -> Status {
          int64_t t0 = tracing ? NowNanos() : 0;
          OLXP_RETURN_NOT_OK(ApplyConjuncts(stream_filters, chunk, &sel));
          if (!pipelines[lane]) {
            pipelines[lane] = std::make_unique<JoinPipeline>(
                levels, total_slots, sink, &lane_stats[lane],
                /*serial=*/false);
          }
          if (tracing) {
            LaneTrace& t = lt[static_cast<size_t>(lane)];
            const int64_t t1 = NowNanos();
            t.filter_ns += t1 - t0;
            t.selected += static_cast<int64_t>(sel.size());
            t0 = t1;
          }
          auto more = pipelines[lane]->Probe(st, 0, chunk, sel, stream_copy,
                                             stream_out);
          if (tracing) {
            lt[static_cast<size_t>(lane)].consume_ns += NowNanos() - t0;
          }
          return more.ok() ? Status::OK() : more.status();
        }));
    int64_t joined = 0;
    for (const VecExecStats& ls : lane_stats) joined += ls.rows_joined;
    if (stats != nullptr) {
      stats->rows_scanned += visited;
      stats->rows_scanned_driver += visited;
      stats->lanes_used = std::max(stats->lanes_used, lanes);
      stats->rows_joined += joined;
      stats->blocks_scanned += blocks.scanned;
      stats->blocks_skipped += blocks.skipped;
    }
    SinkState merged;
    for (SinkState& p : partials) sink.MergeState(&merged, std::move(p));
    if (!tracing) return sink.Finish(std::move(merged));
    const LaneTrace t = SumLanes(lt);
    opts.trace->lanes = std::max(opts.trace->lanes, lanes);
    opts.trace->morsels += static_cast<int64_t>(partials.size());
    TraceScanOps(opts.trace, plan.steps[stream].table_id,
                 !stream_filters.empty(), visited, blocks.skipped, t,
                 NowNanos() - t_drv);
    obs::TraceOp probe;
    probe.op = "probe";
    probe.detail = std::to_string(levels.size()) + " levels";
    probe.rows_in = t.selected;
    probe.rows_out = joined;
    probe.wall_us = t.consume_ns / 1000;  // includes the sink consume
    opts.trace->ops.push_back(std::move(probe));
    const int64_t sink_rows = SinkRows(plan, merged);
    const int64_t t_fin = NowNanos();
    auto rs = sink.Finish(std::move(merged));
    if (!rs.ok()) return rs.status();
    TraceSinkOps(opts.trace, plan, joined, sink_rows, 0, NowNanos() - t_fin,
                 *rs);
    return rs;
  }

  // The serial trace needs the joined-row count even when the caller passed
  // no stats block.
  VecExecStats local_stats;
  VecExecStats* jstats = stats != nullptr ? stats : (tracing ? &local_stats
                                                             : nullptr);
  const int64_t joined_before = jstats != nullptr ? jstats->rows_joined : 0;
  JoinPipeline pipeline(levels, total_slots, sink, jstats, /*serial=*/true);
  SinkState state;
  LaneTrace t;
  ScanBlocks blocks;
  const int64_t t_drv = tracing ? NowNanos() : 0;
  auto scanned_or = RunSerialScan(
      *tables[stream], zpreds, &blocks,
      [&](const storage::ColumnChunkView& chunk,
          Sel& sel) -> StatusOr<bool> {
        int64_t t0 = tracing ? NowNanos() : 0;
        OLXP_RETURN_NOT_OK(ApplyConjuncts(stream_filters, chunk, &sel));
        if (tracing) {
          const int64_t t1 = NowNanos();
          t.filter_ns += t1 - t0;
          t.selected += static_cast<int64_t>(sel.size());
          t0 = t1;
        }
        // First-level probe runs straight off the raw chunk: its keys are
        // lowered against the stream table, so non-matching rows are never
        // materialized into slot layout.
        auto more =
            pipeline.Probe(&state, 0, chunk, sel, stream_copy, stream_out);
        if (tracing) t.consume_ns += NowNanos() - t0;
        return more;
      });
  if (!scanned_or.ok()) return scanned_or.status();
  const int64_t scanned = *scanned_or;
  if (stats != nullptr) {
    stats->rows_scanned += scanned;
    stats->rows_scanned_driver += scanned;
    stats->blocks_scanned += blocks.scanned;
    stats->blocks_skipped += blocks.skipped;
  }
  if (!tracing) return sink.Finish(std::move(state));
  const int64_t joined = jstats->rows_joined - joined_before;
  TraceScanOps(opts.trace, plan.steps[stream].table_id,
               !stream_filters.empty(), scanned, blocks.skipped, t,
               NowNanos() - t_drv);
  obs::TraceOp probe;
  probe.op = "probe";
  probe.detail = std::to_string(levels.size()) + " levels";
  probe.rows_in = t.selected;
  probe.rows_out = joined;
  probe.wall_us = t.consume_ns / 1000;  // includes the sink consume
  opts.trace->ops.push_back(std::move(probe));
  const int64_t sink_rows = SinkRows(plan, state);
  const int64_t t_fin = NowNanos();
  auto rs = sink.Finish(std::move(state));
  if (!rs.ok()) return rs.status();
  TraceSinkOps(opts.trace, plan, joined, sink_rows, 0, NowNanos() - t_fin,
               *rs);
  return rs;
}

}  // namespace

bool CanVectorize(const sql::CompiledStatement& stmt) {
  const auto& impl = stmt.impl();
  if (impl.kind != sql::StmtKind::kSelect || !impl.select) return false;
  const BoundSelect& p = *impl.select;
  if (p.steps.empty()) return false;
  for (const auto& step : p.steps) {
    for (const auto& f : step.filters) {
      if (sql::ContainsSubquery(*f)) return false;
    }
  }
  for (const auto& g : p.group_by) {
    if (sql::ContainsSubquery(*g)) return false;
  }
  for (const auto& a : p.aggs) {
    if (a.arg && sql::ContainsSubquery(*a.arg)) return false;
  }
  for (const auto& pr : p.projections) {
    if (sql::ContainsSubquery(*pr)) return false;
  }
  if (p.having && sql::ContainsSubquery(*p.having)) return false;
  for (const BoundOrderItem& oi : p.order_by) {
    if (oi.expr && sql::ContainsSubquery(*oi.expr)) return false;
  }
  // Joins: every non-driver step must be reachable through at least one
  // equi-join conjunct (hash-joinable); anything else stays interpreted.
  for (size_t k = 1; k < p.steps.size(); ++k) {
    JoinStepPlan tmp;
    if (!ClassifyJoinStep(p, k, &tmp)) return false;
  }
  return true;
}

PlanShape InspectPlan(const sql::CompiledStatement& stmt) {
  PlanShape s;
  const auto& impl = stmt.impl();
  s.is_select = impl.kind == sql::StmtKind::kSelect;
  if (!s.is_select || !impl.select) return s;
  const BoundSelect& p = *impl.select;
  if (p.steps.size() == 1) {
    s.single_table = true;
    s.table_id = p.steps[0].table_id;
    s.indexed_path = p.steps[0].path != TableStep::Path::kFull;
  }
  // Must mirror VecSink::Init's can_stop_early_ derivation exactly.
  s.early_stop_limit =
      !p.aggregate_mode && p.order_by.empty() && !p.distinct && p.limit >= 0;
  s.table_ids.reserve(p.steps.size());
  for (const TableStep& step : p.steps) s.table_ids.push_back(step.table_id);
  if (!p.steps.empty()) {
    s.indexed_driver = p.steps[0].path != TableStep::Path::kFull;
    s.inner_steps_indexed = p.steps.size() > 1;
    for (size_t k = 1; k < p.steps.size(); ++k) {
      if (p.steps[k].path == TableStep::Path::kFull) {
        s.inner_steps_indexed = false;
        break;
      }
    }
  }
  s.vectorizable = CanVectorize(stmt);
  return s;
}

StatusOr<sql::ResultSet> ExecuteVectorized(const sql::CompiledStatement& stmt,
                                           std::span<const Value> params,
                                           const storage::ColumnStore& store,
                                           const VecExecOptions& opts,
                                           VecExecStats* stats) {
  const auto& impl = stmt.impl();
  if (impl.kind != sql::StmtKind::kSelect || !impl.select ||
      impl.select->steps.empty()) {
    return Status::Unsupported("not a vectorizable statement");
  }
  const BoundSelect& plan = *impl.select;

  std::vector<const storage::ColumnTable*> tables;
  tables.reserve(plan.steps.size());
  std::vector<ValueType> slot_types;
  slot_types.reserve(plan.total_slots);
  for (const TableStep& step : plan.steps) {
    const storage::ColumnTable* t = store.table(step.table_id);
    if (t == nullptr) return Status::NotFound("no columnar replica");
    tables.push_back(t);
    std::vector<ValueType> types = SchemaTypes(*step.schema);
    slot_types.insert(slot_types.end(), types.begin(), types.end());
  }

  VecSink sink(plan, params);
  OLXP_RETURN_NOT_OK(sink.Init(slot_types));

  if (plan.steps.size() == 1) {
    return RunSingleTable(plan, params, *tables[0], sink, opts, stats);
  }
  return RunHashJoin(plan, params, tables, slot_types, sink, opts, stats);
}

size_t EstimateScanSlots(const sql::CompiledStatement& stmt,
                         std::span<const Value> params,
                         const storage::ColumnTable& table) {
  const auto& impl = stmt.impl();
  if (impl.kind != sql::StmtKind::kSelect || !impl.select ||
      impl.select->steps.size() != 1) {
    return table.SlotCount();
  }
  std::vector<VExpr> filters;
  filters.reserve(impl.select->steps[0].filters.size());
  for (const auto& f : impl.select->steps[0].filters) {
    auto lowered = LowerExpr(*f, table.schema(), params);
    if (!lowered.ok()) return table.SlotCount();  // interpreter-only shape
    filters.push_back(std::move(lowered).value());
  }
  const std::vector<storage::ZonePred> preds = ExtractZonePreds(filters);
  if (preds.empty()) return table.SlotCount();
  return table.EstimateScanSlots(preds);
}

}  // namespace olxp::exec
