#ifndef OLXP_EXEC_HASH_JOIN_H_
#define OLXP_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/vec.h"
#include "exec/vexpr.h"
#include "sql/bound_plan.h"
#include "storage/column_store.h"
#include "storage/schema.h"

/// Vectorized hash-join building blocks. The planner-side classification
/// splits a join step's conjuncts into equi-join keys, build-local filters
/// and cross-table residuals; HashJoinTable materializes the build side
/// from the replica's raw column vectors and indexes it by join key.

namespace olxp::exec {

/// One equi-join conjunct `probe = build`: the probe child references only
/// slots of steps already joined, the build child only slots of the build
/// step. Pointers borrow from the bound plan (valid for its lifetime).
struct JoinKey {
  const sql::BoundExpr* probe = nullptr;
  const sql::BoundExpr* build = nullptr;
};

/// Classification of one non-driver TableStep's conjuncts.
struct JoinStepPlan {
  std::vector<JoinKey> keys;
  /// Conjuncts over this step's slots only (applied while building).
  std::vector<const sql::BoundExpr*> locals;
  /// Cross-table conjuncts that are not simple equi keys (re-checked on the
  /// joined batch, exactly like the interpreter re-checks every filter).
  std::vector<const sql::BoundExpr*> residuals;
};

/// Splits step `k`'s filters into keys/locals/residuals. Returns false when
/// the step has no equi-join key linking it to earlier steps (the hash join
/// would degenerate to a cross product — the interpreter keeps those) or a
/// filter references slots outside the joined prefix.
bool ClassifyJoinStep(const sql::BoundSelect& plan, size_t k,
                      JoinStepPlan* out);

/// The build side of one hash-join level: surviving rows' column values in
/// columnar layout plus a join-key index into them. Key equality matches
/// the interpreter's `=` exactly: Value::Compare semantics via KeyEq (NULL
/// keys are skipped on both sides — NULL never joins), with a fast path for
/// a single integer-family key.
///
/// Build() runs single-threaded; afterwards the table is immutable, so the
/// morsel-driven parallel probe fans ProbeInt/ProbeRow/at out across every
/// execution lane with no synchronization (a shared read-only build table
/// is the whole point of the morsel model's join story; parallelizing the
/// build itself is a ROADMAP follow-up).
class HashJoinTable {
 public:
  /// Scans `table`'s raw column vectors, applies `local_filters`
  /// (vectorized), evaluates `key_exprs` per chunk and indexes every
  /// surviving non-NULL-key row. Only columns flagged in `needed_cols` are
  /// materialized (empty span = all) — the join only pays for columns the
  /// rest of the plan references. Adds live rows visited to *rows_scanned.
  Status Build(const storage::ColumnTable& table,
               std::span<const VExpr> local_filters,
               std::span<const VExpr> key_exprs,
               std::span<const uint8_t> needed_cols, int64_t* rows_scanned);

  size_t rows() const { return nrows_; }
  int ncols() const { return static_cast<int>(cols_.size()); }
  bool int_keyed() const { return int_keyed_; }

  /// Matching build-row indices, or nullptr. Probe with the variant that
  /// matches int_keyed(); ProbeRow also serves int-keyed tables.
  const std::vector<uint32_t>* ProbeInt(int64_t key) const;
  const std::vector<uint32_t>* ProbeRow(const Row& key) const;

  /// Column `c` of build row `r`.
  const Value& at(int c, uint32_t r) const { return cols_[c][r]; }

 private:
  std::vector<std::vector<Value>> cols_;  // [col][build row]
  size_t nrows_ = 0;
  bool int_keyed_ = false;
  size_t key_width_ = 0;
  std::unordered_map<int64_t, std::vector<uint32_t>> int_index_;
  std::unordered_map<Row, std::vector<uint32_t>, storage::KeyHash,
                     storage::KeyEq>
      row_index_;
};

}  // namespace olxp::exec

#endif  // OLXP_EXEC_HASH_JOIN_H_
