#include "exec/morsel.h"

#include <algorithm>
#include <string>

#include "common/clock.h"

namespace olxp::exec {

WorkerPool::WorkerPool(int lanes) : lanes_(std::max(1, lanes)) {
  workers_.reserve(static_cast<size_t>(lanes_ - 1));
  for (int i = 0; i < lanes_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lk(mu_);
  if (metrics == nullptr) {
    m_runs_ = nullptr;
    m_jobs_ = nullptr;
    m_queue_depth_ = nullptr;
    lane_busy_ns_.clear();
    return;
  }
  m_runs_ = metrics->GetCounter("exec.pool.runs");
  m_jobs_ = metrics->GetCounter("exec.pool.jobs");
  m_queue_depth_ = metrics->GetGauge("exec.pool.queue_depth");
  lane_busy_ns_.resize(static_cast<size_t>(lanes_));
  for (int lane = 0; lane < lanes_; ++lane) {
    lane_busy_ns_[static_cast<size_t>(lane)] = metrics->GetCounter(
        "exec.pool.lane" + std::to_string(lane) + ".busy_ns");
  }
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Clear under the lock: Run() reads workers_.empty() under mu_ to decide
  // whether lanes can be dispatched at all.
  std::lock_guard<std::mutex> lk(mu_);
  workers_.clear();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ with a drained queue
      job = jobs_.front();
      jobs_.pop_front();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(jobs_.size()));
      }
    }
    if (m_jobs_ != nullptr) {
      m_jobs_->Add(1);
      const int64_t t0 = NowNanos();
      (*job.fn)(job.lane);
      lane_busy_ns_[static_cast<size_t>(job.lane)]->Add(NowNanos() - t0);
    } else {
      (*job.fn)(job.lane);
    }
    // fetch_sub under the lock so the Run() waiter cannot observe the
    // counter hit zero and destroy its stack state while this thread is
    // between the decrement and the notify.
    {
      std::lock_guard<std::mutex> lk(mu_);
      job.remaining->fetch_sub(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }
}

void WorkerPool::Run(int n, const std::function<void(int)>& fn) {
  n = std::min(n, lanes_);
  std::atomic<int> remaining(0);
  if (n > 1) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      // A stopped (or never-threaded) pool dispatches nothing; lane 0
      // below still runs the whole job inline, so callers always make
      // progress. Both flags are read under mu_ — Shutdown mutates them.
      if (!stop_ && !workers_.empty()) {
        remaining.store(n - 1, std::memory_order_relaxed);
        for (int lane = 1; lane < n; ++lane) {
          jobs_.push_back(Job{&fn, lane, &remaining});
        }
        if (m_queue_depth_ != nullptr) {
          m_queue_depth_->Set(static_cast<int64_t>(jobs_.size()));
        }
      }
    }
    if (remaining.load(std::memory_order_relaxed) > 0) work_cv_.notify_all();
  }
  if (m_runs_ != nullptr) {
    m_runs_->Add(1);
    const int64_t t0 = NowNanos();
    fn(0);  // never under mu_: the job may run for a whole query
    lane_busy_ns_[0]->Add(NowNanos() - t0);
  } else {
    fn(0);  // never under mu_: the job may run for a whole query
  }
  if (remaining.load(std::memory_order_acquire) == 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk,
                [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

MorselDispatcher::MorselDispatcher(size_t total_rows, size_t morsel_rows)
    : total_(total_rows),
      morsel_rows_(std::max<size_t>(1, morsel_rows)),
      count_(total_rows == 0 ? 0 : (total_rows + morsel_rows_ - 1) /
                                       morsel_rows_) {}

bool MorselDispatcher::Next(Morsel* out) {
  if (cancelled_.load(std::memory_order_acquire)) return false;
  size_t ordinal = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (ordinal >= count_) return false;
  out->ordinal = ordinal;
  out->base = ordinal * morsel_rows_;
  out->rows = std::min(morsel_rows_, total_ - out->base);
  return true;
}

}  // namespace olxp::exec
