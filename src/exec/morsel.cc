#include "exec/morsel.h"

#include <algorithm>
#include <string>

#include "common/clock.h"

namespace olxp::exec {

WorkerPool::WorkerPool(int lanes) : lanes_(std::max(1, lanes)) {
  workers_.reserve(static_cast<size_t>(lanes_ - 1));
  for (int i = 0; i < lanes_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::set_metrics(obs::MetricsRegistry* metrics) {
  // Registry lookups happen BEFORE taking mu_: the registry mutex ranks
  // below the pool mutex (workers hold mu_ far more often than anyone
  // touches the registry), so looking up under mu_ would invert the lock
  // order. Only the member stores need the pool lock.
  obs::Counter* runs = nullptr;
  obs::Counter* jobs = nullptr;
  obs::Gauge* queue_depth = nullptr;
  std::vector<obs::Counter*> lane_busy;
  if (metrics != nullptr) {
    runs = metrics->GetCounter("exec.pool.runs");
    jobs = metrics->GetCounter("exec.pool.jobs");
    queue_depth = metrics->GetGauge("exec.pool.queue_depth");
    lane_busy.resize(static_cast<size_t>(lanes_));
    for (int lane = 0; lane < lanes_; ++lane) {
      lane_busy[static_cast<size_t>(lane)] = metrics->GetCounter(
          "exec.pool.lane" + std::to_string(lane) + ".busy_ns");
    }
  }
  sync::MutexLock lk(mu_);
  m_runs_ = runs;
  m_jobs_ = jobs;
  m_queue_depth_ = queue_depth;
  lane_busy_ns_ = std::move(lane_busy);
}

void WorkerPool::Shutdown() {
  // Swap the threads out under the lock: Run() reads workers_.empty() under
  // mu_ to decide whether lanes can be dispatched at all, and the join loop
  // below must not touch the guarded vector unlocked (joining with mu_ held
  // would deadlock against workers draining the queue).
  std::vector<std::thread> joined;
  {
    sync::MutexLock lk(mu_);
    stop_ = true;
    joined.swap(workers_);
  }
  work_cv_.NotifyAll();
  for (std::thread& t : joined) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Job job;
    {
      sync::MutexLock lk(mu_);
      // Explicit wait loop (not the predicate overload): the condition
      // reads stop_/jobs_, which are GUARDED_BY(mu_), and a predicate
      // lambda would be analyzed as a separate unannotated function.
      while (!stop_ && jobs_.empty()) work_cv_.Wait(lk);
      if (jobs_.empty()) return;  // stop_ with a drained queue
      job = jobs_.front();
      jobs_.pop_front();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(jobs_.size()));
      }
    }
    if (m_jobs_ != nullptr) {
      m_jobs_->Add(1);
      const int64_t t0 = NowNanos();
      (*job.fn)(job.lane);
      lane_busy_ns_[static_cast<size_t>(job.lane)]->Add(NowNanos() - t0);
    } else {
      (*job.fn)(job.lane);
    }
    // fetch_sub under the lock so the Run() waiter cannot observe the
    // counter hit zero and destroy its stack state while this thread is
    // between the decrement and the notify.
    {
      sync::MutexLock lk(mu_);
      job.remaining->fetch_sub(1, std::memory_order_acq_rel);
    }
    done_cv_.NotifyAll();
  }
}

void WorkerPool::Run(int n, const std::function<void(int)>& fn) {
  n = std::min(n, lanes_);
  std::atomic<int> remaining(0);
  if (n > 1) {
    {
      sync::MutexLock lk(mu_);
      // A stopped (or never-threaded) pool dispatches nothing; lane 0
      // below still runs the whole job inline, so callers always make
      // progress. Both flags are read under mu_ — Shutdown mutates them.
      if (!stop_ && !workers_.empty()) {
        remaining.store(n - 1, std::memory_order_relaxed);
        for (int lane = 1; lane < n; ++lane) {
          jobs_.push_back(Job{&fn, lane, &remaining});
        }
        if (m_queue_depth_ != nullptr) {
          m_queue_depth_->Set(static_cast<int64_t>(jobs_.size()));
        }
      }
    }
    if (remaining.load(std::memory_order_relaxed) > 0) work_cv_.NotifyAll();
  }
  if (m_runs_ != nullptr) {
    m_runs_->Add(1);
    const int64_t t0 = NowNanos();
    fn(0);  // never under mu_: the job may run for a whole query
    lane_busy_ns_[0]->Add(NowNanos() - t0);
  } else {
    fn(0);  // never under mu_: the job may run for a whole query
  }
  if (remaining.load(std::memory_order_acquire) == 0) return;
  sync::MutexLock lk(mu_);
  while (remaining.load(std::memory_order_acquire) != 0) done_cv_.Wait(lk);
}

MorselDispatcher::MorselDispatcher(size_t total_rows, size_t morsel_rows)
    : total_(total_rows),
      morsel_rows_(std::max<size_t>(1, morsel_rows)),
      count_(total_rows == 0 ? 0 : (total_rows + morsel_rows_ - 1) /
                                       morsel_rows_) {}

bool MorselDispatcher::Next(Morsel* out) {
  if (cancelled_.load(std::memory_order_acquire)) return false;
  size_t ordinal = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (ordinal >= count_) return false;
  out->ordinal = ordinal;
  out->base = ordinal * morsel_rows_;
  out->rows = std::min(morsel_rows_, total_ - out->base);
  return true;
}

}  // namespace olxp::exec
