#ifndef OLXP_BENCHFW_REPORT_H_
#define OLXP_BENCHFW_REPORT_H_

#include <string>

#include "benchfw/driver.h"

namespace olxp::benchfw {

/// Formats one agent class's stats in the paper's reporting style:
/// throughput plus min/mean/median/p90/p95/p99.9/p99.99/max latency.
std::string FormatKindStats(AgentKind kind, const KindStats& stats,
                            double seconds);

/// Full cell report (all agent classes + lock accounting).
std::string FormatRunResult(const RunResult& result);

/// Prints a csv-ish row "label,metric=value,..." used by the figure
/// binaries so series can be re-plotted.
std::string FigureRow(const std::string& series, double x,
                      const std::string& metric, double value);

}  // namespace olxp::benchfw

#endif  // OLXP_BENCHFW_REPORT_H_
