#ifndef OLXP_BENCHFW_REPORT_H_
#define OLXP_BENCHFW_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "benchfw/driver.h"

namespace olxp::benchfw {

/// Formats one agent class's stats in the paper's reporting style:
/// throughput plus min/mean/median/p90/p95/p99.9/p99.99/max latency.
std::string FormatKindStats(AgentKind kind, const KindStats& stats,
                            double seconds);

/// Full cell report (all agent classes + lock accounting).
std::string FormatRunResult(const RunResult& result);

/// Prints a csv-ish row "label,metric=value,..." used by the figure
/// binaries so series can be re-plotted.
std::string FigureRow(const std::string& series, double x,
                      const std::string& metric, double value);

/// Machine-readable figure report: cells accumulate during the run, then
/// Write() emits `BENCH_<figure>.json` (into OLXP_BENCH_JSON_DIR when set,
/// else the working directory). Two cell shapes coexist in one report:
/// latency cells carry a full p50/p95/p99 + throughput summary from a
/// driver RunResult; metric cells carry one named scalar (speedups,
/// interference factors). The document layout is pinned by
/// ci/bench_report.schema.json and validated in CI.
class BenchJsonReport {
 public:
  explicit BenchJsonReport(std::string figure) : figure_(std::move(figure)) {}

  /// Run-level configuration recorded with the results; the value is
  /// rendered as a JSON string/number/bool respectively.
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, bool value);
  // Without this overload a string literal would convert to bool (standard
  // conversion) instead of std::string (user-defined) and silently record
  // `true` for every literal-valued config.
  void AddConfig(const std::string& key, const char* value) {
    AddConfig(key, std::string(value));
  }

  /// One latency cell per agent class in `result`, labelled
  /// `<label>/<agent-kind>`.
  void AddCell(const std::string& label, const RunResult& result);

  /// One latency cell from a raw histogram (figures that time queries
  /// directly rather than through the driver). `seconds` <= 0 omits
  /// throughput (reported as 0).
  void AddLatencyCell(const std::string& label, const LatencyHistogram& h,
                      uint64_t committed, double seconds);

  /// One scalar metric cell.
  void AddMetric(const std::string& label, const std::string& metric,
                 double value);

  /// Serializes the report (stable key order; valid JSON).
  std::string ToJson() const;

  /// Writes BENCH_<figure>.json and returns its path; empty string (with a
  /// stderr message) on I/O failure.
  std::string Write() const;

 private:
  std::string figure_;
  /// key -> pre-rendered JSON value (escaped/quoted at insertion).
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::string> cells_;  ///< pre-rendered JSON objects
};

}  // namespace olxp::benchfw

#endif  // OLXP_BENCHFW_REPORT_H_
