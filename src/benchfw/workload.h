#ifndef OLXP_BENCHFW_WORKLOAD_H_
#define OLXP_BENCHFW_WORKLOAD_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/session.h"

namespace olxp::benchfw {

/// The three agent classes of OLxPBench (§IV-C): online transactions,
/// analytical queries, and hybrid transactions (a real-time query executed
/// in-between an online transaction).
enum class AgentKind { kOltp, kOlap, kHybrid };

const char* AgentKindName(AgentKind k);

/// One workload unit (a transaction, an analytical query, or a hybrid
/// transaction). The body owns its transaction scope: OLTP/hybrid bodies
/// call Begin/Commit on the session; analytical bodies run auto-commit
/// statements (which separated engines route to the columnar replica).
struct TxnProfile {
  std::string name;
  double weight = 1.0;      ///< relative frequency within its agent class
  bool read_only = false;   ///< Table II bookkeeping
  /// Executes one instance. Retryable failures (Conflict/LockTimeout) are
  /// retried by the driver; other failures count as errors.
  std::function<Status(engine::Session&, Rng&)> body;
};

/// Scale parameters for loaders. Interpretation is benchmark-specific
/// (warehouses for subench/chbench, customers for fibench, subscribers for
/// tabench); defaults are laptop-calibrated.
struct LoadParams {
  int scale = 2;          ///< warehouses / thousands of customers / etc.
  int items = 2000;       ///< subench/chbench ITEM cardinality
  uint64_t seed = 42;
  int load_threads = 8;
};

/// A complete benchmark: schema + loader + the three workload classes,
/// plus the metadata OLxPBench's Table I/II report.
struct BenchmarkSuite {
  std::string name;
  std::string domain;  ///< "general", "banking", "telecom", "stitched"

  /// Scale the suite was generated for. Workload bodies capture these
  /// cardinalities, so the same value drives the loader (see SetUp).
  LoadParams load_params;

  /// Creates all tables and indexes (runs on a fresh Database).
  std::function<Status(engine::Session&)> create_schema;
  /// Populates initial data; runs after create_schema.
  std::function<Status(engine::Database&, const LoadParams&)> load;

  std::vector<TxnProfile> transactions;  ///< OLTP bodies
  std::vector<TxnProfile> queries;       ///< OLAP bodies
  std::vector<TxnProfile> hybrids;       ///< OLxP bodies

  /// Capability flags (Table I row).
  bool has_hybrid_txn = false;
  bool has_real_time_query = false;
  bool semantically_consistent_schema = false;
  bool general_benchmark = false;
  bool domain_specific_benchmark = false;

  const std::vector<TxnProfile>& ProfilesFor(AgentKind kind) const {
    switch (kind) {
      case AgentKind::kOltp:
        return transactions;
      case AgentKind::kOlap:
        return queries;
      case AgentKind::kHybrid:
        return hybrids;
    }
    return transactions;
  }

  /// Weighted share of read-only profiles in a class (Table II columns).
  double ReadOnlyShare(AgentKind kind) const;
};

/// Picks a profile index by weight.
int PickWeighted(const std::vector<TxnProfile>& profiles, Rng& rng);

}  // namespace olxp::benchfw

#endif  // OLXP_BENCHFW_WORKLOAD_H_
