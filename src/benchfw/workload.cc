#include "benchfw/workload.h"

namespace olxp::benchfw {

const char* AgentKindName(AgentKind k) {
  switch (k) {
    case AgentKind::kOltp:
      return "OLTP";
    case AgentKind::kOlap:
      return "OLAP";
    case AgentKind::kHybrid:
      return "OLxP";
  }
  return "?";
}

double BenchmarkSuite::ReadOnlyShare(AgentKind kind) const {
  const auto& profiles = ProfilesFor(kind);
  double total = 0, ro = 0;
  for (const TxnProfile& p : profiles) {
    total += p.weight;
    if (p.read_only) ro += p.weight;
  }
  return total > 0 ? ro / total : 0.0;
}

int PickWeighted(const std::vector<TxnProfile>& profiles, Rng& rng) {
  double total = 0;
  for (const TxnProfile& p : profiles) total += p.weight;
  double x = rng.NextDouble() * total;
  for (size_t i = 0; i < profiles.size(); ++i) {
    x -= profiles[i].weight;
    if (x <= 0) return static_cast<int>(i);
  }
  return static_cast<int>(profiles.size()) - 1;
}

}  // namespace olxp::benchfw
