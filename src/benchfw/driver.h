#ifndef OLXP_BENCHFW_DRIVER_H_
#define OLXP_BENCHFW_DRIVER_H_

#include <map>
#include <string>
#include <vector>

#include "benchfw/workload.h"
#include "common/histogram.h"
#include "engine/database.h"

namespace olxp::benchfw {

/// One load-generating agent group (the paper's OLTP / OLAP / hybrid
/// agents). Open loop by default: arrivals are scheduled at exactly
/// `request_rate` per second and latency includes queueing delay, matching
/// the paper's "precise request rate control". `request_rate <= 0` switches
/// the group to closed loop (each thread fires back-to-back).
struct AgentConfig {
  AgentKind kind = AgentKind::kOltp;
  double request_rate = 100.0;  ///< requests/second; <=0 => closed loop
  int threads = 8;
  /// Optional per-profile weight override (size must match the suite's
  /// profile list when non-empty).
  std::vector<double> weight_override;
};

/// Run control shared by every cell of every figure.
struct RunConfig {
  double warmup_seconds = 0.3;
  double measure_seconds = 1.5;
  uint64_t seed = 42;
  int max_retries = 32;  ///< per-request retries of retryable aborts
};

/// Per-agent-class measurement outcome.
struct KindStats {
  LatencyHistogram latency;       ///< arrival -> final completion (us)
  uint64_t issued = 0;            ///< requests entering the measure window
  uint64_t committed = 0;
  uint64_t retries = 0;           ///< retryable aborts that were retried
  uint64_t errors = 0;            ///< non-retryable failures
  int64_t busy_nanos = 0;         ///< wall time spent executing bodies

  double Throughput(double seconds) const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
};

/// Result of one benchmark cell.
struct RunResult {
  std::map<AgentKind, KindStats> kinds;
  double measure_seconds = 0;
  /// Lock-manager accounting over the measure window (Fig. 4).
  uint64_t lock_wait_nanos = 0;
  uint64_t lock_acquisitions = 0;
  uint64_t lock_timeouts = 0;
  int64_t total_busy_nanos = 0;

  const KindStats& Of(AgentKind k) const {
    static const KindStats kEmpty;
    auto it = kinds.find(k);
    return it == kinds.end() ? kEmpty : it->second;
  }
  /// Lock overhead = blocked time / busy time (the Fig. 4 metric).
  double LockOverhead() const {
    return total_busy_nanos > 0
               ? static_cast<double>(lock_wait_nanos) / total_busy_nanos
               : 0.0;
  }
};

/// Runs one measurement cell: spawns all agent groups against `db`,
/// warms up, measures, merges statistics. Fails with InvalidArgument —
/// before any thread spawns — when an agent's weight_override length does
/// not match its profile list, any weight is negative, or the effective
/// weights sum to zero (a silent mispick would read past the profile list
/// or drop profiles from the mix).
StatusOr<RunResult> RunCell(engine::Database& db, const BenchmarkSuite& suite,
                            const std::vector<AgentConfig>& agents,
                            const RunConfig& cfg);

/// Creates schema and loads data for `suite` on a fresh database using the
/// suite's own load_params, then blocks until the columnar replica caught
/// up. Loader runs with latency charging disabled.
Status SetUp(engine::Database& db, const BenchmarkSuite& suite);

}  // namespace olxp::benchfw

#endif  // OLXP_BENCHFW_DRIVER_H_
