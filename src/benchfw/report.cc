#include "benchfw/report.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "obs/metrics.h"

namespace olxp::benchfw {

std::string FormatKindStats(AgentKind kind, const KindStats& stats,
                            double seconds) {
  const LatencyHistogram& h = stats.latency;
  return StrFormat(
      "%-5s tput=%8.1f/s ok=%llu retry=%llu err=%llu | lat(ms) "
      "min=%.2f mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99.9=%.2f "
      "p99.99=%.2f max=%.2f sd=%.2f",
      AgentKindName(kind), stats.Throughput(seconds),
      static_cast<unsigned long long>(stats.committed),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.errors), h.min() / 1000.0,
      h.Mean() / 1000.0, h.Median() / 1000.0, h.P90() / 1000.0,
      h.P95() / 1000.0, h.P999() / 1000.0, h.P9999() / 1000.0,
      h.max() / 1000.0, h.StdDev() / 1000.0);
}

std::string FormatRunResult(const RunResult& result) {
  std::string out;
  for (const auto& [kind, stats] : result.kinds) {
    out += FormatKindStats(kind, stats, result.measure_seconds);
    out += "\n";
  }
  out += StrFormat("lock: overhead=%.4f waits_ns=%llu acq=%llu timeouts=%llu\n",
                   result.LockOverhead(),
                   static_cast<unsigned long long>(result.lock_wait_nanos),
                   static_cast<unsigned long long>(result.lock_acquisitions),
                   static_cast<unsigned long long>(result.lock_timeouts));
  return out;
}

std::string FigureRow(const std::string& series, double x,
                      const std::string& metric, double value) {
  return StrFormat("%s,x=%.3f,%s=%.4f", series.c_str(), x, metric.c_str(),
                   value);
}

namespace {

/// JSON number rendering: finite doubles print with enough precision to
/// round-trip the figures; non-finite values (a 0-sample percentile can be
/// NaN) degrade to 0 — JSON has no NaN literal.
std::string JsonNumber(double v) {
  if (!(v == v) || v > 1e300 || v < -1e300) return "0";
  return StrFormat("%.6g", v);
}

std::string Quoted(const std::string& s) {
  return '"' + obs::JsonEscape(s) + '"';
}

}  // namespace

void BenchJsonReport::AddConfig(const std::string& key,
                                const std::string& value) {
  config_.emplace_back(key, Quoted(value));
}

void BenchJsonReport::AddConfig(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

void BenchJsonReport::AddConfig(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

void BenchJsonReport::AddLatencyCell(const std::string& label,
                                     const LatencyHistogram& h,
                                     uint64_t committed, double seconds) {
  std::string cell = "{\"label\":" + Quoted(label);
  cell += ",\"type\":\"latency\"";
  cell += ",\"committed\":" + std::to_string(committed);
  const double tput =
      seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  cell += ",\"throughput_per_s\":" + JsonNumber(tput);
  cell += ",\"latency_us\":{";
  cell += "\"count\":" + std::to_string(h.count());
  cell += ",\"min\":" + JsonNumber(static_cast<double>(h.min()));
  cell += ",\"max\":" + JsonNumber(static_cast<double>(h.max()));
  cell += ",\"mean\":" + JsonNumber(h.Mean());
  cell += ",\"p50\":" + JsonNumber(h.Median());
  cell += ",\"p95\":" + JsonNumber(h.P95());
  cell += ",\"p99\":" + JsonNumber(h.Percentile(0.99));
  cell += "}}";
  cells_.push_back(std::move(cell));
}

void BenchJsonReport::AddCell(const std::string& label,
                              const RunResult& result) {
  for (const auto& [kind, stats] : result.kinds) {
    AddLatencyCell(label + "/" + AgentKindName(kind), stats.latency,
                   stats.committed, result.measure_seconds);
  }
}

void BenchJsonReport::AddMetric(const std::string& label,
                                const std::string& metric, double value) {
  cells_.push_back("{\"label\":" + Quoted(label) +
                   ",\"type\":\"metric\",\"metric\":" + Quoted(metric) +
                   ",\"value\":" + JsonNumber(value) + '}');
}

std::string BenchJsonReport::ToJson() const {
  std::string out = "{\"figure\":" + Quoted(figure_);
  out += ",\"config\":{";
  for (size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) out += ',';
    out += Quoted(config_[i].first) + ':' + config_[i].second;
  }
  out += "},\"cells\":[";
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (i > 0) out += ',';
    out += cells_[i];
  }
  out += "]}";
  return out;
}

std::string BenchJsonReport::Write() const {
  std::string path = "BENCH_" + figure_ + ".json";
  if (const char* dir = std::getenv("OLXP_BENCH_JSON_DIR")) {
    if (dir[0] != '\0') path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return "";
  }
  const std::string doc = ToJson();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return path;
}

}  // namespace olxp::benchfw
