#include "benchfw/report.h"

#include "common/strings.h"

namespace olxp::benchfw {

std::string FormatKindStats(AgentKind kind, const KindStats& stats,
                            double seconds) {
  const LatencyHistogram& h = stats.latency;
  return StrFormat(
      "%-5s tput=%8.1f/s ok=%llu retry=%llu err=%llu | lat(ms) "
      "min=%.2f mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99.9=%.2f "
      "p99.99=%.2f max=%.2f sd=%.2f",
      AgentKindName(kind), stats.Throughput(seconds),
      static_cast<unsigned long long>(stats.committed),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.errors), h.min() / 1000.0,
      h.Mean() / 1000.0, h.Median() / 1000.0, h.P90() / 1000.0,
      h.P95() / 1000.0, h.P999() / 1000.0, h.P9999() / 1000.0,
      h.max() / 1000.0, h.StdDev() / 1000.0);
}

std::string FormatRunResult(const RunResult& result) {
  std::string out;
  for (const auto& [kind, stats] : result.kinds) {
    out += FormatKindStats(kind, stats, result.measure_seconds);
    out += "\n";
  }
  out += StrFormat("lock: overhead=%.4f waits_ns=%llu acq=%llu timeouts=%llu\n",
                   result.LockOverhead(),
                   static_cast<unsigned long long>(result.lock_wait_nanos),
                   static_cast<unsigned long long>(result.lock_acquisitions),
                   static_cast<unsigned long long>(result.lock_timeouts));
  return out;
}

std::string FigureRow(const std::string& series, double x,
                      const std::string& metric, double value) {
  return StrFormat("%s,x=%.3f,%s=%.4f", series.c_str(), x, metric.c_str(),
                   value);
}

}  // namespace olxp::benchfw
