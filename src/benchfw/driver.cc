#include "benchfw/driver.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/strings.h"
#include "common/sync.h"

namespace olxp::benchfw {

namespace {

/// Worker-local accumulation merged into the shared result at teardown.
struct LocalStats {
  KindStats stats;
};

/// State shared by all threads of one agent group.
struct GroupState {
  const AgentConfig* cfg = nullptr;
  const std::vector<TxnProfile>* profiles = nullptr;
  std::vector<double> weights;         // effective weights
  std::atomic<int64_t> arrival_seq{0}; // open-loop arrival counter
};

void WorkerLoop(engine::Database* db, GroupState* group, const RunConfig& cfg,
                int64_t start_us, int64_t measure_start_us, int64_t end_us,
                uint64_t seed, KindStats* out, sync::Mutex* out_mu) {
  auto session = db->CreateSession();
  Rng rng(seed);
  LocalStats local;
  const auto& profiles = *group->profiles;
  const bool open_loop = group->cfg->request_rate > 0;
  const double rate = group->cfg->request_rate;

  // Weighted pick honoring overrides.
  double total_weight = 0;
  for (double w : group->weights) total_weight += w;
  auto pick = [&]() -> int {
    double x = rng.NextDouble() * total_weight;
    for (size_t i = 0; i < group->weights.size(); ++i) {
      x -= group->weights[i];
      if (x <= 0) return static_cast<int>(i);
    }
    return static_cast<int>(group->weights.size()) - 1;
  };

  while (true) {
    int64_t arrival_us;
    if (open_loop) {
      int64_t n = group->arrival_seq.fetch_add(1, std::memory_order_relaxed);
      arrival_us = start_us +
                   static_cast<int64_t>(static_cast<double>(n) * 1e6 / rate);
      if (arrival_us >= end_us) break;
      int64_t now = NowMicros();
      if (arrival_us > now) SleepMicros(arrival_us - now);
    } else {
      arrival_us = NowMicros();
      if (arrival_us >= end_us) break;
    }

    int idx = pick();
    const TxnProfile& profile = profiles[idx];

    // All per-kind counters are bounded to the measure window
    // [measure_start_us, end_us): retries used to count with no upper
    // bound and busy time could include retry work past end_us, inflating
    // the Fig. 4 lock-overhead denominator.
    const bool in_window =
        arrival_us >= measure_start_us && arrival_us < end_us;

    int64_t exec_start = NowMicros();
    Status st = profile.body(*session, rng);
    int attempts = 1;
    while (!st.ok() && st.IsRetryable() && attempts <= cfg.max_retries &&
           NowMicros() < end_us + 200000) {
      if (in_window && NowMicros() < end_us) local.stats.retries++;
      ++attempts;
      st = profile.body(*session, rng);
    }
    int64_t done = NowMicros();

    if (in_window) {
      local.stats.issued++;
      int64_t busy_end = std::min(done, end_us);
      if (busy_end > exec_start) {
        local.stats.busy_nanos += (busy_end - exec_start) * 1000;
      }
      if (st.ok()) {
        local.stats.committed++;
        local.stats.latency.Record(done - arrival_us);
      } else {
        local.stats.errors++;
      }
    }
  }

  sync::MutexLock lk(*out_mu);
  out->latency.Merge(local.stats.latency);
  out->issued += local.stats.issued;
  out->committed += local.stats.committed;
  out->retries += local.stats.retries;
  out->errors += local.stats.errors;
  out->busy_nanos += local.stats.busy_nanos;
}

}  // namespace

StatusOr<RunResult> RunCell(engine::Database& db, const BenchmarkSuite& suite,
                            const std::vector<AgentConfig>& agents,
                            const RunConfig& cfg) {
  RunResult result;
  result.measure_seconds = cfg.measure_seconds;

  std::vector<GroupState> groups(agents.size());
  for (size_t g = 0; g < agents.size(); ++g) {
    groups[g].cfg = &agents[g];
    groups[g].profiles = &suite.ProfilesFor(agents[g].kind);
    const size_t n_profiles = groups[g].profiles->size();
    if (!agents[g].weight_override.empty()) {
      if (agents[g].weight_override.size() != n_profiles) {
        return Status::InvalidArgument(StrFormat(
            "agent %zu (%s): weight_override has %zu entries but the suite "
            "has %zu %s profiles",
            g, AgentKindName(agents[g].kind), agents[g].weight_override.size(),
            n_profiles, AgentKindName(agents[g].kind)));
      }
      groups[g].weights = agents[g].weight_override;
    } else {
      for (const TxnProfile& p : *groups[g].profiles) {
        groups[g].weights.push_back(p.weight);
      }
    }
    double total = 0;
    for (double w : groups[g].weights) {
      if (w < 0) {
        return Status::InvalidArgument(
            StrFormat("agent %zu (%s): negative profile weight %g", g,
                      AgentKindName(agents[g].kind), w));
      }
      total += w;
    }
    if (total <= 0) {
      return Status::InvalidArgument(
          StrFormat("agent %zu (%s): profile weights sum to %g (nothing to "
                    "pick)",
                    g, AgentKindName(agents[g].kind), total));
    }
    result.kinds[agents[g].kind];  // ensure entry exists
  }

  const int64_t start_us = NowMicros() + 2000;  // small lead for thread spawn
  const int64_t measure_start_us =
      start_us + static_cast<int64_t>(cfg.warmup_seconds * 1e6);
  const int64_t end_us =
      measure_start_us + static_cast<int64_t>(cfg.measure_seconds * 1e6);

  // Lock stats snapshot at measure start is taken by a coordinator thread.
  storage::LockStats& ls = db.lock_manager().stats();
  std::atomic<uint64_t> wait0{0}, acq0{0}, to0{0};
  std::thread coordinator([&] {
    int64_t now = NowMicros();
    if (measure_start_us > now) SleepMicros(measure_start_us - now);
    wait0 = ls.wait_nanos.load();
    acq0 = ls.acquisitions.load();
    to0 = ls.timeouts.load();
  });

  sync::Mutex out_mu{sync::LockRank::kClient, "benchfw.stats"};
  std::vector<std::thread> threads;
  uint64_t seed = cfg.seed;
  for (size_t g = 0; g < agents.size(); ++g) {
    for (int t = 0; t < agents[g].threads; ++t) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      threads.emplace_back(WorkerLoop, &db, &groups[g], cfg, start_us,
                           measure_start_us, end_us, seed,
                           &result.kinds[agents[g].kind], &out_mu);
    }
  }
  for (auto& t : threads) t.join();
  coordinator.join();

  result.lock_wait_nanos = ls.wait_nanos.load() - wait0.load();
  result.lock_acquisitions = ls.acquisitions.load() - acq0.load();
  result.lock_timeouts = ls.timeouts.load() - to0.load();
  for (const auto& [kind, ks] : result.kinds) {
    result.total_busy_nanos += ks.busy_nanos;
  }
  return result;
}

Status SetUp(engine::Database& db, const BenchmarkSuite& suite) {
  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  OLXP_RETURN_NOT_OK(suite.create_schema(*session));
  OLXP_RETURN_NOT_OK(suite.load(db, suite.load_params));
  db.WaitReplicaCaughtUp();
  return Status::OK();
}

}  // namespace olxp::benchfw
