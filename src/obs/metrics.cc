#include "obs/metrics.h"

#include <thread>

#include "common/strings.h"

namespace olxp::obs {

size_t Counter::ShardIndex() {
  // One hash per thread lifetime; the static local is TSan-clean and the
  // modulo keeps distinct threads spread across the 16 shards.
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shard;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  sync::MutexLock lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  sync::MutexLock lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  sync::MutexLock lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  sync::MutexLock lk(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    LatencyHistogram hist = h->Snapshot();
    HistogramSummary s;
    s.count = hist.count();
    s.min = hist.min();
    s.max = hist.max();
    s.mean = hist.Mean();
    s.p50 = hist.Percentile(0.50);
    s.p95 = hist.Percentile(0.95);
    s.p99 = hist.Percentile(0.99);
    snap.histograms[name] = s;
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();  // never destroyed
  return *global;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",",
                     JsonEscape(name).c_str(), static_cast<long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",",
                     JsonEscape(name).c_str(), static_cast<long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %lld, \"min_us\": %lld, "
        "\"max_us\": %lld, \"mean_us\": %.2f, \"p50_us\": %.2f, "
        "\"p95_us\": %.2f, \"p99_us\": %.2f}",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<long long>(h.count), static_cast<long long>(h.min),
        static_cast<long long>(h.max), h.mean, h.p50, h.p95, h.p99);
    first = false;
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map '.' (and anything else) to '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string n = PromName(name);
    out += StrFormat("# TYPE %s counter\n%s %lld\n", n.c_str(), n.c_str(),
                     static_cast<long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    const std::string n = PromName(name);
    out += StrFormat("# TYPE %s gauge\n%s %lld\n", n.c_str(), n.c_str(),
                     static_cast<long long>(v));
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = PromName(name);
    out += StrFormat("# TYPE %s summary\n", n.c_str());
    out += StrFormat("%s_count %lld\n", n.c_str(),
                     static_cast<long long>(h.count));
    out += StrFormat("%s_min %lld\n", n.c_str(), static_cast<long long>(h.min));
    out += StrFormat("%s_max %lld\n", n.c_str(), static_cast<long long>(h.max));
    out += StrFormat("%s_mean %.2f\n", n.c_str(), h.mean);
    out += StrFormat("%s{quantile=\"0.5\"} %.2f\n", n.c_str(), h.p50);
    out += StrFormat("%s{quantile=\"0.95\"} %.2f\n", n.c_str(), h.p95);
    out += StrFormat("%s{quantile=\"0.99\"} %.2f\n", n.c_str(), h.p99);
  }
  return out;
}

}  // namespace olxp::obs
