#ifndef OLXP_OBS_QUERY_TRACE_H_
#define OLXP_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace olxp::obs {

/// One operator's row counts and wall time inside a traced statement.
/// Parallel vectorized operators report the per-morsel rollup: rows summed
/// over every lane, wall time summed over lane-local work (so wall_us can
/// exceed the statement's elapsed time — that is the point: it is the work
/// the lanes overlapped).
struct TraceOp {
  std::string op;      ///< scan/filter/join-build/probe/agg/order/limit/emit
  std::string detail;  ///< table name, join level, lane id, ...
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int64_t wall_us = 0;
};

/// EXPLAIN ANALYZE capture for one statement: where it routed, which engine
/// served it, and the per-operator breakdown. The final "emit" op's
/// rows_out always equals the statement's result cardinality.
struct QueryTrace {
  std::string sql;
  std::string route;  ///< "row/interpreter", "column/vectorized", ...
  int level = 0;      ///< trace_level the capture ran at
  int lanes = 1;      ///< execution lanes engaged (vectorized path)
  int64_t morsels = 0;
  int64_t total_us = 0;  ///< statement wall clock
  std::vector<TraceOp> ops;

  void Clear() {
    sql.clear();
    route.clear();
    lanes = 1;
    morsels = 0;
    total_us = 0;
    ops.clear();
  }

  /// Result rows of the final (emit) operator; 0 when never executed.
  int64_t emitted_rows() const {
    return ops.empty() ? 0 : ops.back().rows_out;
  }

  /// Multi-line EXPLAIN ANALYZE rendering.
  std::string ToString() const;
};

}  // namespace olxp::obs

#endif  // OLXP_OBS_QUERY_TRACE_H_
