#ifndef OLXP_OBS_METRICS_H_
#define OLXP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/sync.h"

namespace olxp::obs {

/// Monotone counter sharded across cache lines: hot paths (lock grants,
/// morsel claims, WAL appends) bump a per-thread shard with a relaxed add,
/// so concurrent writers never bounce one cache line. Value() sums the
/// shards — a racy-but-monotone read, which is all a snapshot needs.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };

  /// Stable per-thread shard pick (threads hash onto shards once).
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_{};
};

/// Last-writer-wins instantaneous value (queue depth, watermark age, lag).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Mutex-wrapped LatencyHistogram (the common/ histogram is single-owner by
/// design). Registry histograms record at coarse granularity only —
/// statements, fsyncs, vacuum passes — so one uncontended lock per sample
/// is cheaper than striping and keeps percentiles exact.
class Histogram {
 public:
  void Record(int64_t micros) {
    sync::MutexLock lk(mu_);
    hist_.Record(micros);
  }

  LatencyHistogram Snapshot() const {
    sync::MutexLock lk(mu_);
    return hist_;
  }

 private:
  mutable sync::Mutex mu_{sync::LockRank::kObs, "obs.histogram"};
  LatencyHistogram hist_ GUARDED_BY(mu_);
};

/// Point-in-time summary of one histogram (microseconds).
struct HistogramSummary {
  int64_t count = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// A consistent-enough point-in-time view of every registered metric.
/// Counters may be mid-increment while snapshotted; each value is
/// individually coherent, which is the contract dashboards need.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
  std::string ToJson() const;

  /// Prometheus text exposition ('.' in names becomes '_'; histograms
  /// export _count/_min/_max/_mean and quantile gauges).
  std::string ToPrometheusText() const;
};

/// Named metric registry threaded through every engine subsystem. Lookup
/// happens once at subsystem wiring time (returned pointers are stable for
/// the registry's lifetime); hot paths hold the pointer and never touch the
/// name map again.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Process-wide registry for code with no Database handle (each Database
  /// still owns a private registry so concurrent instances never mix).
  static MetricsRegistry& Global();

 private:
  mutable sync::Mutex mu_{sync::LockRank::kObs, "obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view s);

}  // namespace olxp::obs

#endif  // OLXP_OBS_METRICS_H_
