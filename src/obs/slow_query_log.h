#ifndef OLXP_OBS_SLOW_QUERY_LOG_H_
#define OLXP_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sync.h"

namespace olxp::obs {

/// One statement that crossed the slow-query threshold.
struct SlowQueryEntry {
  uint64_t seq = 0;  ///< monotone admission number (survives ring eviction)
  std::string sql;
  std::string route;  ///< "row/interpreter", "column/vectorized", ...
  int64_t wall_us = 0;
  int64_t charged_us = 0;  ///< simulated-model charge for the statement
};

/// Fixed-capacity ring of the most recent slow statements. Thread-safe:
/// many sessions append concurrently; Database::StatsJson() reads.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  void Add(SlowQueryEntry entry) {
    sync::MutexLock lk(mu_);
    entry.seq = ++seq_;
    ring_.push_back(std::move(entry));
    while (capacity_ > 0 && ring_.size() > capacity_) ring_.pop_front();
  }

  /// Oldest-to-newest copy of the retained entries.
  std::vector<SlowQueryEntry> Entries() const {
    sync::MutexLock lk(mu_);
    return {ring_.begin(), ring_.end()};
  }

  /// Statements ever admitted (including ones the ring has since evicted).
  uint64_t total_recorded() const {
    sync::MutexLock lk(mu_);
    return seq_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable sync::Mutex mu_{sync::LockRank::kObs, "obs.slowlog"};
  uint64_t seq_ GUARDED_BY(mu_) = 0;
  std::deque<SlowQueryEntry> ring_ GUARDED_BY(mu_);
};

}  // namespace olxp::obs

#endif  // OLXP_OBS_SLOW_QUERY_LOG_H_
