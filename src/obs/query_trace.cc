#include "obs/query_trace.h"

#include "common/strings.h"

namespace olxp::obs {

std::string QueryTrace::ToString() const {
  std::string out =
      StrFormat("EXPLAIN ANALYZE %s\nroute=%s lanes=%d morsels=%lld "
                "total=%.3fms\n",
                sql.c_str(), route.c_str(), lanes,
                static_cast<long long>(morsels), total_us / 1000.0);
  for (const TraceOp& op : ops) {
    out += StrFormat("  %-12s %-24s rows_in=%-10lld rows_out=%-10lld "
                     "wall=%.3fms\n",
                     op.op.c_str(), op.detail.c_str(),
                     static_cast<long long>(op.rows_in),
                     static_cast<long long>(op.rows_out), op.wall_us / 1000.0);
  }
  return out;
}

}  // namespace olxp::obs
