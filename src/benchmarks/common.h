#ifndef OLXP_BENCHMARKS_COMMON_H_
#define OLXP_BENCHMARKS_COMMON_H_

#include <initializer_list>
#include <string>
#include <utility>

#include "common/status.h"
#include "engine/database.h"
#include "engine/session.h"

namespace olxp::benchmarks {

/// Executes one statement, discarding rows. Used by DDL/loaders/txn bodies.
inline Status Exec(engine::Session& s, const std::string& sql,
                   std::initializer_list<Value> params = {}) {
  auto rs = s.Execute(sql, params);
  return rs.ok() ? Status::OK() : rs.status();
}

/// Executes one statement returning the result set.
inline StatusOr<sql::ResultSet> Query(engine::Session& s,
                                      const std::string& sql,
                                      std::initializer_list<Value> params =
                                          {}) {
  return s.Execute(sql, params);
}

/// Runs `fn` inside an explicit transaction, committing on success and
/// rolling back on failure. Statement failures auto-abort the session's
/// transaction, making the Rollback here a safe no-op in that case.
template <typename Fn>
Status InTxn(engine::Session& s, Fn&& fn) {
  OLXP_RETURN_NOT_OK(s.Begin());
  Status st = std::forward<Fn>(fn)();
  if (!st.ok()) {
    (void)s.Rollback();  // fn's error is the one to report
    return st;
  }
  return s.Commit();
}

}  // namespace olxp::benchmarks

#endif  // OLXP_BENCHMARKS_COMMON_H_
