#ifndef OLXP_BENCHMARKS_CHBENCH_CHBENCH_H_
#define OLXP_BENCHMARKS_CHBENCH_CHBENCH_H_

#include "benchfw/workload.h"

namespace olxp::benchmarks {

/// Reference implementation of CH-benCHmark (Cole et al., DBTest'11), the
/// state-of-the-practice baseline OLxPBench is compared against (§V-B1).
/// It uses the *stitched* schema: the 9 TPC-C tables plus TPC-H's SUPPLIER
/// / NATION / REGION, which online transactions never update. 10 of the 22
/// analytical queries access SUPPLIER (45.4%), 9 access NATION (40.9%) and
/// 3 access REGION (13.6%) — the proportions the paper quantifies when
/// arguing the stitched schema hides OLTP/OLAP contention.
///
/// No hybrid transactions and no real-time queries (Table I row).
///
/// LoadParams: `scale` = warehouses, `items` = ITEM cardinality.
benchfw::BenchmarkSuite MakeChBenchmark(benchfw::LoadParams params = {});

/// Cardinalities of the static TPC-H side tables.
inline constexpr int kChSuppliers = 100;
inline constexpr int kChNations = 25;
inline constexpr int kChRegions = 5;

}  // namespace olxp::benchmarks

#endif  // OLXP_BENCHMARKS_CHBENCH_CHBENCH_H_
