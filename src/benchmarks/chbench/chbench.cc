#include "benchmarks/chbench/chbench.h"

#include <vector>

#include "benchmarks/common.h"
#include "benchmarks/subench/subench.h"
#include "common/rng.h"
#include "common/strings.h"

namespace olxp::benchmarks {

// Reuses the TPC-C DDL, loader and transactions from subenchmark (CH-bench
// "launches the online transactions adopted from TPC-C").
void AddSubenchWorkloads(benchfw::BenchmarkSuite* suite);

namespace {

using benchfw::TxnProfile;

/// The three TPC-H tables stitched onto the TPC-C schema. Online
/// transactions never touch them — by design of CH-benCHmark, and that is
/// exactly the flaw §III-B2 quantifies.
const char* kStitchDdl[] = {
    "CREATE TABLE supplier ("
    " su_suppkey INT PRIMARY KEY, su_name VARCHAR(25),"
    " su_address VARCHAR(40), su_nationkey INT, su_phone VARCHAR(15),"
    " su_acctbal DOUBLE, su_comment VARCHAR(100))",

    "CREATE TABLE nation ("
    " n_nationkey INT PRIMARY KEY, n_name VARCHAR(25), n_regionkey INT,"
    " n_comment VARCHAR(100))",

    "CREATE TABLE region ("
    " r_regionkey INT PRIMARY KEY, r_name VARCHAR(25),"
    " r_comment VARCHAR(100))",
};

Status LoadStitchTables(engine::Database& db,
                        const benchfw::LoadParams& params) {
  auto session = db.CreateSession();
  engine::Session& s = *session;
  s.set_charging_enabled(false);
  Rng rng(params.seed * 4241);

  static const char* kRegionNames[kChRegions] = {
      "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
  for (int r = 0; r < kChRegions; ++r) {
    OLXP_RETURN_NOT_OK(Exec(s, "INSERT INTO region VALUES (?, ?, ?)",
                            {Value::Int(r), Value::String(kRegionNames[r]),
                             Value::String(rng.AlnumString(40, 80))}));
  }
  for (int n = 0; n < kChNations; ++n) {
    OLXP_RETURN_NOT_OK(Exec(
        s, "INSERT INTO nation VALUES (?, ?, ?, ?)",
        {Value::Int(n), Value::String("nation-" + std::to_string(n)),
         Value::Int(n % kChRegions), Value::String(rng.AlnumString(40, 80))}));
  }
  for (int su = 0; su < kChSuppliers; ++su) {
    OLXP_RETURN_NOT_OK(Exec(
        s, "INSERT INTO supplier VALUES (?, ?, ?, ?, ?, ?, ?)",
        {Value::Int(su), Value::String(StrFormat("Supplier#%09d", su)),
         Value::String(rng.AlnumString(20, 40)), Value::Int(su % kChNations),
         Value::String(rng.DigitString(15)),
         Value::Double(rng.Uniform(-999.99, 9999.99)),
         Value::String(rng.AlnumString(40, 100))}));
  }
  return Status::OK();
}

/// One fixed-text CH query. Queries that take parameters draw them inline
/// from the Rng to keep this table declarative.
struct ChQuery {
  const char* name;
  const char* sql;
};

// Simplified but join-faithful renderings of the 22 CH-benCHmark queries
// against our SQL dialect. Supplier linkage follows CH's convention
// su_suppkey = (s_w_id * s_i_id) mod #suppliers; customer-nation linkage
// uses (c_w_id * 10 + c_d_id) mod #nations.
// Table-access tags (S/N/R) preserve the paper's 10/9/3 mix.
const ChQuery kChQueries[] = {
    {"Q01",  // order_line aggregate
     "SELECT ol_number, SUM(ol_quantity), SUM(ol_amount), AVG(ol_quantity), "
     "AVG(ol_amount), COUNT(*) FROM order_line GROUP BY ol_number "
     "ORDER BY ol_number"},
    {"Q02",  // [S][N][R] min-stock suppliers per region
     "SELECT su.su_suppkey, n.n_name, COUNT(*), MIN(st.s_quantity) "
     "FROM stock st JOIN supplier su ON su.su_suppkey = "
     "(st.s_w_id * st.s_i_id) % 100 JOIN nation n ON n.n_nationkey = "
     "su.su_nationkey JOIN region r ON r.r_regionkey = n.n_regionkey "
     "WHERE r.r_name LIKE 'E%' GROUP BY su.su_suppkey, n.n_name "
     "ORDER BY su.su_suppkey LIMIT 50"},
    {"Q03",  // unshipped orders
     "SELECT o.o_id, o.o_w_id, o.o_d_id, SUM(ol.ol_amount) AS revenue "
     "FROM orders o JOIN order_line ol ON ol.ol_w_id = o.o_w_id AND "
     "ol.ol_d_id = o.o_d_id AND ol.ol_o_id = o.o_id WHERE "
     "o.o_carrier_id IS NULL GROUP BY o.o_id, o.o_w_id, o.o_d_id "
     "ORDER BY revenue DESC LIMIT 20"},
    {"Q04",  // order count by delivery state
     "SELECT o_ol_cnt, COUNT(*) FROM orders GROUP BY o_ol_cnt "
     "ORDER BY o_ol_cnt"},
    {"Q05",  // [S][N][R] revenue per nation
     "SELECT n.n_name, SUM(ol.ol_amount) AS revenue FROM order_line ol "
     "JOIN stock st ON st.s_w_id = ol.ol_supply_w_id AND "
     "st.s_i_id = ol.ol_i_id JOIN supplier su ON su.su_suppkey = "
     "(st.s_w_id * st.s_i_id) % 100 JOIN nation n ON n.n_nationkey = "
     "su.su_nationkey JOIN region r ON r.r_regionkey = n.n_regionkey "
     "GROUP BY n.n_name ORDER BY revenue DESC"},
    {"Q06",  // big-quantity revenue
     "SELECT SUM(ol_amount) FROM order_line WHERE ol_quantity BETWEEN 1 "
     "AND 100000"},
    {"Q07",  // [S][N] supply volume per nation
     "SELECT su.su_nationkey, SUM(ol.ol_amount) FROM order_line ol "
     "JOIN stock st ON st.s_w_id = ol.ol_supply_w_id AND st.s_i_id = "
     "ol.ol_i_id JOIN supplier su ON su.su_suppkey = "
     "(st.s_w_id * st.s_i_id) % 100 JOIN nation n ON n.n_nationkey = "
     "su.su_nationkey GROUP BY su.su_nationkey ORDER BY su.su_nationkey"},
    {"Q08",  // [S][N][R] market share
     "SELECT n.n_name, AVG(ol.ol_amount) FROM order_line ol JOIN stock st "
     "ON st.s_w_id = ol.ol_supply_w_id AND st.s_i_id = ol.ol_i_id "
     "JOIN supplier su ON su.su_suppkey = (st.s_w_id * st.s_i_id) % 100 "
     "JOIN nation n ON n.n_nationkey = su.su_nationkey JOIN region r ON "
     "r.r_regionkey = n.n_regionkey WHERE r.r_name LIKE 'A%' "
     "GROUP BY n.n_name"},
    {"Q09",  // [S][N] profit by nation
     "SELECT n.n_name, SUM(ol.ol_amount) - COUNT(*) AS profit FROM "
     "order_line ol JOIN item i ON i.i_id = ol.ol_i_id JOIN stock st ON "
     "st.s_w_id = ol.ol_supply_w_id AND st.s_i_id = ol.ol_i_id JOIN "
     "supplier su ON su.su_suppkey = (st.s_w_id * st.s_i_id) % 100 JOIN "
     "nation n ON n.n_nationkey = su.su_nationkey GROUP BY n.n_name "
     "ORDER BY profit DESC"},
    {"Q10",  // [N] returned items by customer nation
     "SELECT n.n_name, COUNT(*), SUM(c.c_balance) FROM customer c JOIN "
     "nation n ON n.n_nationkey = (c.c_w_id * 10 + c.c_d_id) % 25 WHERE "
     "c.c_balance < 0 GROUP BY n.n_name"},
    {"Q11",  // [S] important stock per supplier
     "SELECT su.su_suppkey, SUM(st.s_order_cnt) AS cnt FROM stock st JOIN "
     "supplier su ON su.su_suppkey = (st.s_w_id * st.s_i_id) % 100 "
     "GROUP BY su.su_suppkey ORDER BY cnt DESC LIMIT 20"},
    {"Q12",  // shipping priority
     "SELECT o_carrier_id, COUNT(*) FROM orders WHERE o_carrier_id IS NOT "
     "NULL GROUP BY o_carrier_id ORDER BY o_carrier_id"},
    {"Q13",  // customer order distribution
     "SELECT c_payment_cnt, COUNT(*) FROM customer GROUP BY c_payment_cnt "
     "ORDER BY c_payment_cnt"},
    {"Q14",  // promo-ish revenue share
     "SELECT 100.0 * SUM(ol_amount) / (1 + COUNT(*)) FROM order_line "
     "WHERE ol_quantity > 3"},
    {"Q15",  // [S] top supplier by revenue
     "SELECT su.su_suppkey, su.su_name, SUM(ol.ol_amount) AS total FROM "
     "order_line ol JOIN stock st ON st.s_w_id = ol.ol_supply_w_id AND "
     "st.s_i_id = ol.ol_i_id JOIN supplier su ON su.su_suppkey = "
     "(st.s_w_id * st.s_i_id) % 100 GROUP BY su.su_suppkey, su.su_name "
     "ORDER BY total DESC LIMIT 10"},
    {"Q16",  // [S] supplier-part counts
     "SELECT i.i_im_id / 1000, COUNT(*) FROM item i, supplier su WHERE "
     "su.su_suppkey = i.i_im_id % 100 AND su.su_acctbal > 0 GROUP BY "
     "i.i_im_id / 1000 ORDER BY 1"},
    {"Q17",  // small-quantity items
     "SELECT SUM(ol.ol_amount) / 2.0 FROM order_line ol JOIN item i ON "
     "i.i_id = ol.ol_i_id WHERE i.i_price < (SELECT AVG(i_price) FROM "
     "item)"},
    {"Q18",  // large-volume customers
     "SELECT c.c_id, c.c_w_id, SUM(ol.ol_amount) AS spend FROM customer c "
     "JOIN orders o ON o.o_w_id = c.c_w_id AND o.o_d_id = c.c_d_id AND "
     "o.o_c_id = c.c_id JOIN order_line ol ON ol.ol_w_id = o.o_w_id AND "
     "ol.ol_d_id = o.o_d_id AND ol.ol_o_id = o.o_id GROUP BY c.c_id, "
     "c.c_w_id ORDER BY spend DESC LIMIT 10"},
    {"Q19",  // discounted revenue
     "SELECT SUM(ol.ol_amount) FROM order_line ol JOIN item i ON i.i_id = "
     "ol.ol_i_id WHERE i.i_price BETWEEN 10 AND 60 AND ol.ol_quantity "
     "BETWEEN 1 AND 10"},
    {"Q20",  // [S][N] promotion candidates
     "SELECT su.su_name, su.su_address FROM supplier su JOIN nation n ON "
     "n.n_nationkey = su.su_nationkey WHERE su.su_suppkey IN (SELECT "
     "(s_w_id * s_i_id) % 100 FROM stock WHERE s_quantity > 50) ORDER BY "
     "su.su_name LIMIT 20"},
    {"Q21",  // [S][N] suppliers who kept orders waiting
     "SELECT su.su_name, COUNT(*) FROM order_line ol JOIN stock st ON "
     "st.s_w_id = ol.ol_supply_w_id AND st.s_i_id = ol.ol_i_id JOIN "
     "supplier su ON su.su_suppkey = (st.s_w_id * st.s_i_id) % 100 JOIN "
     "nation n ON n.n_nationkey = su.su_nationkey WHERE ol.ol_delivery_d "
     "IS NULL GROUP BY su.su_name ORDER BY 2 DESC LIMIT 20"},
    {"Q22",  // [N] global sales opportunity
     "SELECT n.n_nationkey, COUNT(*), AVG(c.c_balance) FROM customer c "
     "JOIN nation n ON n.n_nationkey = (c.c_w_id * 10 + c.c_d_id) % 25 "
     "WHERE c.c_balance > (SELECT AVG(c_balance) FROM customer) "
     "GROUP BY n.n_nationkey ORDER BY n.n_nationkey"},
};

}  // namespace

benchfw::BenchmarkSuite MakeChBenchmark(benchfw::LoadParams params) {
  // Start from subenchmark (TPC-C DDL + loader + transactions)...
  benchfw::BenchmarkSuite suite = MakeSubenchmark(params);
  suite.name = "ch-benchmark";
  suite.domain = "stitched";
  suite.has_hybrid_txn = false;
  suite.has_real_time_query = false;
  suite.semantically_consistent_schema = false;
  suite.general_benchmark = true;
  suite.domain_specific_benchmark = false;

  // ...then stitch the TPC-H side tables onto schema and loader...
  auto base_schema = suite.create_schema;
  suite.create_schema = [base_schema](engine::Session& s) -> Status {
    OLXP_RETURN_NOT_OK(base_schema(s));
    for (const char* ddl : kStitchDdl) {
      OLXP_RETURN_NOT_OK(Exec(s, ddl));
    }
    return Status::OK();
  };
  auto base_load = suite.load;
  suite.load = [base_load](engine::Database& db,
                           const benchfw::LoadParams& p) -> Status {
    OLXP_RETURN_NOT_OK(LoadStitchTables(db, p));
    return base_load(db, p);
  };

  // ...replace the analytical side with the 22 CH queries and drop hybrids
  // (CH-benCHmark has none).
  suite.queries.clear();
  for (const ChQuery& q : kChQueries) {
    const char* sql = q.sql;
    suite.queries.push_back(TxnProfile{
        q.name, 1.0, true,
        [sql](engine::Session& s, Rng& rng) -> Status {
          auto rs = s.Execute(sql);
          return rs.ok() ? Status::OK() : rs.status();
        }});
  }
  suite.hybrids.clear();
  return suite;
}

}  // namespace olxp::benchmarks
