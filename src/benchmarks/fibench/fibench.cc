#include "benchmarks/fibench/fibench.h"

#include <thread>
#include <vector>

#include "benchmarks/common.h"
#include "common/rng.h"

namespace olxp::benchmarks {

namespace {

using benchfw::TxnProfile;

/// 3 tables, 6 columns, 4 secondary indexes (Table II row). The schema
/// follows SmallBank with integrity constraints adapted to engines without
/// FK support (the FK version is enabled when the profile enforces FKs).
const char* kFibenchDdl[] = {
    "CREATE TABLE account (custid INT PRIMARY KEY, name VARCHAR(64))",
    "CREATE TABLE saving ("
    " custid INT PRIMARY KEY, bal DOUBLE,"
    " FOREIGN KEY (custid) REFERENCES account (custid))",
    "CREATE TABLE checking ("
    " custid INT PRIMARY KEY, bal DOUBLE,"
    " FOREIGN KEY (custid) REFERENCES account (custid))",
    "CREATE INDEX idx_account_name ON account (name)",
    "CREATE INDEX idx_saving_bal ON saving (bal)",
    "CREATE INDEX idx_checking_bal ON checking (bal)",
    "CREATE INDEX idx_account_name_id ON account (name, custid)",
};

constexpr double kInitialBalance = 1000.0;

Status CreateFibenchSchema(engine::Session& s) {
  for (const char* ddl : kFibenchDdl) {
    OLXP_RETURN_NOT_OK(Exec(s, ddl));
  }
  return Status::OK();
}

Status LoadFibench(engine::Database& db, const benchfw::LoadParams& params) {
  const int customers = params.scale * 1000;
  std::vector<std::thread> threads;
  std::vector<Status> results(params.load_threads, Status::OK());
  int per = (customers + params.load_threads - 1) / params.load_threads;
  for (int t = 0; t < params.load_threads; ++t) {
    threads.emplace_back([&, t] {
      auto session = db.CreateSession();
      engine::Session& s = *session;
      s.set_charging_enabled(false);
      Rng rng(params.seed * 131 + t);
      int begin = 1 + t * per;
      int end = std::min(customers + 1, begin + per);
      auto load_range = [&]() -> Status {
        OLXP_RETURN_NOT_OK(s.Begin());
        for (int c = begin; c < end; ++c) {
          OLXP_RETURN_NOT_OK(Exec(
              s, "INSERT INTO account VALUES (?, ?)",
              {Value::Int(c),
               Value::String("cust-" + std::to_string(c) + "-" +
                             rng.AlnumString(8))}));
          OLXP_RETURN_NOT_OK(
              Exec(s, "INSERT INTO saving VALUES (?, ?)",
                   {Value::Int(c), Value::Double(kInitialBalance)}));
          OLXP_RETURN_NOT_OK(
              Exec(s, "INSERT INTO checking VALUES (?, ?)",
                   {Value::Int(c), Value::Double(kInitialBalance)}));
          if ((c - begin) % 250 == 249) {
            OLXP_RETURN_NOT_OK(s.Commit());
            OLXP_RETURN_NOT_OK(s.Begin());
          }
        }
        return s.Commit();
      };
      if (begin < end) results[t] = load_range();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : results) OLXP_RETURN_NOT_OK(st);
  return Status::OK();
}

int64_t RandCustomer(Rng& rng, int customers) {
  // Hotspot access: 25% of traffic hits the first 100 accounts (SmallBank
  // convention) — this is what makes contention observable.
  if (rng.Chance(0.25)) return rng.Uniform(int64_t{1}, int64_t{100});
  return rng.Uniform(int64_t{1}, int64_t{customers});
}

// ------------------------------ OLTP bodies ------------------------------

/// Balance (read-only): total of savings + checking.
Status BalanceBody(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  return InTxn(s, [&]() -> Status {
    auto sv = Query(s, "SELECT bal FROM saving WHERE custid = ?",
                    {Value::Int(c)});
    if (!sv.ok()) return sv.status();
    auto ck = Query(s, "SELECT bal FROM checking WHERE custid = ?",
                    {Value::Int(c)});
    return ck.ok() ? Status::OK() : ck.status();
  });
}

/// DepositChecking: checking += amount.
Status DepositCheckingBody(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  const double amount = rng.Uniform(0.01, 100.0);
  return InTxn(s, [&]() -> Status {
    return Exec(s, "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                {Value::Double(amount), Value::Int(c)});
  });
}

/// TransactSavings: saving += amount (may be negative but not overdrawn).
Status TransactSavingsBody(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  const double amount = rng.Uniform(-50.0, 100.0);
  return InTxn(s, [&]() -> Status {
    auto bal = Query(s, "SELECT bal FROM saving WHERE custid = ?",
                     {Value::Int(c)});
    if (!bal.ok()) return bal.status();
    if (bal->rows.empty()) return Status::NotFound("saving row");
    if (bal->rows[0][0].AsDouble() + amount < 0) {
      return Status::Aborted("would overdraw savings");
    }
    return Exec(s, "UPDATE saving SET bal = bal + ? WHERE custid = ?",
                {Value::Double(amount), Value::Int(c)});
  });
}

/// Amalgamate: move all funds of customer A to the checking of customer B.
Status AmalgamateBody(engine::Session& s, Rng& rng, int customers) {
  const int64_t a = RandCustomer(rng, customers);
  int64_t b = RandCustomer(rng, customers);
  if (b == a) b = a % customers + 1;
  return InTxn(s, [&]() -> Status {
    auto sv = Query(s, "SELECT bal FROM saving WHERE custid = ?",
                    {Value::Int(a)});
    if (!sv.ok()) return sv.status();
    auto ck = Query(s, "SELECT bal FROM checking WHERE custid = ?",
                    {Value::Int(a)});
    if (!ck.ok()) return ck.status();
    if (sv->rows.empty() || ck->rows.empty()) {
      return Status::NotFound("account rows");
    }
    double total = sv->rows[0][0].AsDouble() + ck->rows[0][0].AsDouble();
    OLXP_RETURN_NOT_OK(
        Exec(s, "UPDATE saving SET bal = 0 WHERE custid = ?",
             {Value::Int(a)}));
    OLXP_RETURN_NOT_OK(
        Exec(s, "UPDATE checking SET bal = 0 WHERE custid = ?",
             {Value::Int(a)}));
    return Exec(s, "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                {Value::Double(total), Value::Int(b)});
  });
}

/// SendPayment: checking-to-checking transfer with sufficiency check.
Status SendPaymentBody(engine::Session& s, Rng& rng, int customers) {
  const int64_t a = RandCustomer(rng, customers);
  int64_t b = RandCustomer(rng, customers);
  if (b == a) b = a % customers + 1;
  const double amount = rng.Uniform(0.01, 50.0);
  return InTxn(s, [&]() -> Status {
    auto bal = Query(s, "SELECT bal FROM checking WHERE custid = ?",
                     {Value::Int(a)});
    if (!bal.ok()) return bal.status();
    if (bal->rows.empty()) return Status::NotFound("checking row");
    if (bal->rows[0][0].AsDouble() < amount) {
      return Status::Aborted("insufficient funds");
    }
    OLXP_RETURN_NOT_OK(
        Exec(s, "UPDATE checking SET bal = bal - ? WHERE custid = ?",
             {Value::Double(amount), Value::Int(a)}));
    return Exec(s, "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                {Value::Double(amount), Value::Int(b)});
  });
}

/// WriteCheck: checking -= amount with a $1 penalty when overdrawing.
Status WriteCheckBody(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  const double amount = rng.Uniform(0.01, 50.0);
  return InTxn(s, [&]() -> Status {
    auto sv = Query(s, "SELECT bal FROM saving WHERE custid = ?",
                    {Value::Int(c)});
    if (!sv.ok()) return sv.status();
    auto ck = Query(s, "SELECT bal FROM checking WHERE custid = ?",
                    {Value::Int(c)});
    if (!ck.ok()) return ck.status();
    if (sv->rows.empty() || ck->rows.empty()) {
      return Status::NotFound("account rows");
    }
    double total = sv->rows[0][0].AsDouble() + ck->rows[0][0].AsDouble();
    double debit = total < amount ? amount + 1.0 : amount;
    return Exec(s, "UPDATE checking SET bal = bal - ? WHERE custid = ?",
                {Value::Double(debit), Value::Int(c)});
  });
}

// --------------------------- analytical queries --------------------------

/// Q1: Account Name Query — names joined from ACCOUNT and CHECKING (paper's
/// example).
Status FQ1(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT a.custid, a.name, c.bal FROM account a JOIN checking c "
         "ON c.custid = a.custid WHERE c.bal > ? ORDER BY c.bal DESC "
         "LIMIT 100",
      {Value::Double(rng.Uniform(500.0, 1500.0))});
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q2: total wealth distribution (join + aggregate + arithmetic).
Status FQ2(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT COUNT(*), SUM(sv.bal + ck.bal), AVG(sv.bal + ck.bal), "
         "MIN(sv.bal + ck.bal), MAX(sv.bal + ck.bal) FROM saving sv "
         "JOIN checking ck ON ck.custid = sv.custid");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q3: top savers (Order-By heavy).
Status FQ3(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT custid, bal FROM saving ORDER BY bal DESC LIMIT 10");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q4: overdraft exposure (sub-selection).
Status FQ4(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT COUNT(*) FROM checking WHERE bal < 0 AND custid IN "
         "(SELECT custid FROM saving WHERE bal < 100)");
  return rs.ok() ? Status::OK() : rs.status();
}

// --------------------------- hybrid transactions --------------------------

/// X1 (read-only): balance consultation with a real-time percentile-ish
/// anchor (average balance across the bank).
Status FX1(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  return InTxn(s, [&]() -> Status {
    auto anchor = Query(s, "SELECT AVG(bal) FROM checking");
    if (!anchor.ok()) return anchor.status();
    auto bal = Query(s, "SELECT bal FROM checking WHERE custid = ?",
                     {Value::Int(c)});
    return bal.ok() ? Status::OK() : bal.status();
  });
}

/// X2: deposit preceded by a real-time inflow aggregate (write).
Status FX2(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  const double amount = rng.Uniform(0.01, 100.0);
  return InTxn(s, [&]() -> Status {
    auto agg = Query(s, "SELECT SUM(bal) FROM checking");
    if (!agg.ok()) return agg.status();
    return Exec(s, "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                {Value::Double(amount), Value::Int(c)});
  });
}

/// X3: payment with a real-time recipient-risk scan (write).
Status FX3(engine::Session& s, Rng& rng, int customers) {
  const int64_t a = RandCustomer(rng, customers);
  int64_t b = RandCustomer(rng, customers);
  if (b == a) b = a % customers + 1;
  const double amount = rng.Uniform(0.01, 50.0);
  return InTxn(s, [&]() -> Status {
    auto risk = Query(s, "SELECT COUNT(*) FROM checking WHERE bal < 0");
    if (!risk.ok()) return risk.status();
    OLXP_RETURN_NOT_OK(
        Exec(s, "UPDATE checking SET bal = bal - ? WHERE custid = ?",
             {Value::Double(amount), Value::Int(a)}));
    return Exec(s, "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                {Value::Double(amount), Value::Int(b)});
  });
}

/// X4: savings transaction anchored on the real-time max saving (write).
Status FX4(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  const double amount = rng.Uniform(0.01, 100.0);
  return InTxn(s, [&]() -> Status {
    auto mx = Query(s, "SELECT MAX(bal) FROM saving");
    if (!mx.ok()) return mx.status();
    return Exec(s, "UPDATE saving SET bal = bal + ? WHERE custid = ?",
                {Value::Double(amount), Value::Int(c)});
  });
}

/// X5: amalgamate with a real-time wealth snapshot (write).
Status FX5(engine::Session& s, Rng& rng, int customers) {
  const int64_t a = RandCustomer(rng, customers);
  int64_t b = RandCustomer(rng, customers);
  if (b == a) b = a % customers + 1;
  return InTxn(s, [&]() -> Status {
    auto snap = Query(
        s, "SELECT AVG(sv.bal + ck.bal) FROM saving sv JOIN checking ck "
           "ON ck.custid = sv.custid");
    if (!snap.ok()) return snap.status();
    auto sv = Query(s, "SELECT bal FROM saving WHERE custid = ?",
                    {Value::Int(a)});
    if (!sv.ok()) return sv.status();
    if (sv->rows.empty()) return Status::NotFound("saving");
    OLXP_RETURN_NOT_OK(
        Exec(s, "UPDATE saving SET bal = 0 WHERE custid = ?",
             {Value::Int(a)}));
    return Exec(s, "UPDATE checking SET bal = bal + ? WHERE custid = ?",
                {Value::Double(sv->rows[0][0].AsDouble()), Value::Int(b)});
  });
}

/// X6: the paper's Checking Balance Transaction — verifies that the cheque
/// balance is sufficient and aggregates the minimum savings value (the
/// volatility-of-extremes analysis mentioned in §IV-B2). Write.
Status FX6(engine::Session& s, Rng& rng, int customers) {
  const int64_t c = RandCustomer(rng, customers);
  const double amount = rng.Uniform(0.01, 50.0);
  return InTxn(s, [&]() -> Status {
    auto bal = Query(s, "SELECT bal FROM checking WHERE custid = ?",
                     {Value::Int(c)});
    if (!bal.ok()) return bal.status();
    if (bal->rows.empty()) return Status::NotFound("checking");
    // Real-time extreme-value aggregate.
    auto extreme = Query(s, "SELECT MIN(bal) FROM saving");
    if (!extreme.ok()) return extreme.status();
    if (bal->rows[0][0].AsDouble() < amount) {
      return Status::Aborted("insufficient cheque balance");
    }
    return Exec(s, "UPDATE checking SET bal = bal - ? WHERE custid = ?",
                {Value::Double(amount), Value::Int(c)});
  });
}

}  // namespace

benchfw::BenchmarkSuite MakeFibenchmark(benchfw::LoadParams params) {
  benchfw::BenchmarkSuite suite;
  suite.load_params = params;
  suite.name = "fibenchmark";
  suite.domain = "banking";
  suite.create_schema = CreateFibenchSchema;
  suite.load = LoadFibench;
  suite.has_hybrid_txn = true;
  suite.has_real_time_query = true;
  suite.semantically_consistent_schema = true;
  suite.general_benchmark = false;
  suite.domain_specific_benchmark = true;

  const int customers = params.scale * 1000;
  auto mk = [customers](Status (*fn)(engine::Session&, Rng&, int)) {
    return [fn, customers](engine::Session& s, Rng& r) {
      return fn(s, r, customers);
    };
  };

  // 15% read-only: Balance.
  suite.transactions = {
      {"Amalgamate", 17, false, mk(AmalgamateBody)},
      {"Balance", 15, true, mk(BalanceBody)},
      {"DepositChecking", 17, false, mk(DepositCheckingBody)},
      {"SendPayment", 17, false, mk(SendPaymentBody)},
      {"TransactSavings", 17, false, mk(TransactSavingsBody)},
      {"WriteCheck", 17, false, mk(WriteCheckBody)},
  };
  suite.queries = {
      {"Q1", 1, true, FQ1},
      {"Q2", 1, true, FQ2},
      {"Q3", 1, true, FQ3},
      {"Q4", 1, true, FQ4},
  };
  // 20% read-only: X1.
  suite.hybrids = {
      {"X1", 20, true, mk(FX1)},  {"X2", 16, false, mk(FX2)},
      {"X3", 16, false, mk(FX3)}, {"X4", 16, false, mk(FX4)},
      {"X5", 16, false, mk(FX5)}, {"X6", 16, false, mk(FX6)},
  };
  return suite;
}

}  // namespace olxp::benchmarks
