#ifndef OLXP_BENCHMARKS_FIBENCH_FIBENCH_H_
#define OLXP_BENCHMARKS_FIBENCH_FIBENCH_H_

#include "benchfw/workload.h"

namespace olxp::benchmarks {

/// The banking domain-specific benchmark of OLxPBench (§IV-B2), inspired by
/// SmallBank: 3 tables / 6 columns / 4 indexes, 6 online transactions (15%
/// read-only), 4 analytical queries (real-time customer account analytics),
/// 6 hybrid transactions (20% read-only; X6 is the paper's Checking Balance
/// Transaction that aggregates the minimum savings balance).
///
/// LoadParams: `scale` = thousands of customer accounts.
benchfw::BenchmarkSuite MakeFibenchmark(benchfw::LoadParams params = {});

}  // namespace olxp::benchmarks

#endif  // OLXP_BENCHMARKS_FIBENCH_FIBENCH_H_
