#ifndef OLXP_BENCHMARKS_TABENCH_TABENCH_H_
#define OLXP_BENCHMARKS_TABENCH_TABENCH_H_

#include "benchfw/workload.h"

namespace olxp::benchmarks {

/// The telecom domain-specific benchmark of OLxPBench (§IV-B3), inspired by
/// TATP's Home Location Register: 4 tables / 51 columns / 5 indexes, 7
/// online transactions (80% read-only), 5 analytical queries (including the
/// Start Time Query with arithmetic), 6 hybrid transactions (40% read-only;
/// X6 is the fuzzy-search transaction using LIKE on a substring).
///
/// Following the paper, SUBSCRIBER's primary key is widened to the
/// composite (s_id, sub_nbr): the lookup "SELECT s_id FROM subscriber WHERE
/// sub_nbr = ?" inside DeleteCallForwarding / UpdateLocation can no longer
/// use the primary index and becomes the slow query the evaluation
/// dissects (§VI-C/VI-D).
///
/// LoadParams: `scale` = thousands of subscribers.
benchfw::BenchmarkSuite MakeTabenchmark(benchfw::LoadParams params = {});

}  // namespace olxp::benchmarks

#endif  // OLXP_BENCHMARKS_TABENCH_TABENCH_H_
