#include "benchmarks/tabench/tabench.h"

#include <thread>
#include <vector>

#include "benchmarks/common.h"
#include "common/rng.h"
#include "common/strings.h"

namespace olxp::benchmarks {

namespace {

using benchfw::TxnProfile;

/// 4 tables, 51 columns (34 + 6 + 6 + 5), 5 secondary indexes. SUBSCRIBER's
/// composite primary key (s_id, sub_nbr) is the paper's modification; note
/// there is deliberately NO index on sub_nbr alone.
const char* kTabenchDdl[] = {
    "CREATE TABLE subscriber ("
    " s_id INT, sub_nbr VARCHAR(15),"
    " bit_1 INT, bit_2 INT, bit_3 INT, bit_4 INT, bit_5 INT,"
    " bit_6 INT, bit_7 INT, bit_8 INT, bit_9 INT, bit_10 INT,"
    " hex_1 INT, hex_2 INT, hex_3 INT, hex_4 INT, hex_5 INT,"
    " hex_6 INT, hex_7 INT, hex_8 INT, hex_9 INT, hex_10 INT,"
    " byte2_1 INT, byte2_2 INT, byte2_3 INT, byte2_4 INT, byte2_5 INT,"
    " byte2_6 INT, byte2_7 INT, byte2_8 INT, byte2_9 INT, byte2_10 INT,"
    " msc_location INT, vlr_location INT,"
    " PRIMARY KEY (s_id, sub_nbr))",

    "CREATE TABLE access_info ("
    " s_id INT, ai_type INT, data1 INT, data2 INT,"
    " data3 VARCHAR(3), data4 VARCHAR(5),"
    " PRIMARY KEY (s_id, ai_type))",

    "CREATE TABLE special_facility ("
    " s_id INT, sf_type INT, is_active INT, error_cntrl INT,"
    " data_a INT, data_b VARCHAR(5),"
    " PRIMARY KEY (s_id, sf_type))",

    "CREATE TABLE call_forwarding ("
    " s_id INT, sf_type INT, start_time INT, end_time INT,"
    " numberx VARCHAR(15),"
    " PRIMARY KEY (s_id, sf_type, start_time))",

    "CREATE INDEX idx_ai_sid ON access_info (s_id)",
    "CREATE INDEX idx_sf_active ON special_facility (s_id, is_active)",
    "CREATE INDEX idx_cf_sid ON call_forwarding (s_id, sf_type)",
    "CREATE INDEX idx_sub_vlr ON subscriber (vlr_location)",
    "CREATE INDEX idx_sub_msc ON subscriber (msc_location)",
};

Status CreateTabenchSchema(engine::Session& s) {
  for (const char* ddl : kTabenchDdl) {
    OLXP_RETURN_NOT_OK(Exec(s, ddl));
  }
  return Status::OK();
}

std::string SubNbr(int64_t s_id) { return StrFormat("%015lld",
                                                    static_cast<long long>(
                                                        s_id)); }

Status LoadTabench(engine::Database& db, const benchfw::LoadParams& params) {
  const int subscribers = params.scale * 1000;
  std::vector<std::thread> threads;
  std::vector<Status> results(params.load_threads, Status::OK());
  int per = (subscribers + params.load_threads - 1) / params.load_threads;
  for (int t = 0; t < params.load_threads; ++t) {
    threads.emplace_back([&, t] {
      auto session = db.CreateSession();
      engine::Session& s = *session;
      s.set_charging_enabled(false);
      Rng rng(params.seed * 977 + t);
      int begin = 1 + t * per;
      int end = std::min(subscribers + 1, begin + per);
      auto load_range = [&]() -> Status {
        OLXP_RETURN_NOT_OK(s.Begin());
        for (int id = begin; id < end; ++id) {
          std::vector<Value> sub;
          sub.push_back(Value::Int(id));
          sub.push_back(Value::String(SubNbr(id)));
          for (int b = 0; b < 10; ++b) {
            sub.push_back(Value::Int(rng.Uniform(int64_t{0}, int64_t{1})));
          }
          for (int h = 0; h < 10; ++h) {
            sub.push_back(Value::Int(rng.Uniform(int64_t{0}, int64_t{15})));
          }
          for (int b2 = 0; b2 < 10; ++b2) {
            sub.push_back(Value::Int(rng.Uniform(int64_t{0}, int64_t{255})));
          }
          sub.push_back(Value::Int(rng.Uniform(int64_t{1}, int64_t{1 << 16})));
          sub.push_back(Value::Int(rng.Uniform(int64_t{1}, int64_t{1 << 16})));
          auto rs = s.Execute(
              "INSERT INTO subscriber VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
              " ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
              " ?, ?, ?, ?)",
              std::span<const Value>(sub));
          if (!rs.ok()) return rs.status();

          // 1-4 ACCESS_INFO rows.
          int ai_cnt = static_cast<int>(rng.Uniform(int64_t{1}, int64_t{4}));
          for (int ai = 1; ai <= ai_cnt; ++ai) {
            OLXP_RETURN_NOT_OK(Exec(
                s, "INSERT INTO access_info VALUES (?, ?, ?, ?, ?, ?)",
                {Value::Int(id), Value::Int(ai),
                 Value::Int(rng.Uniform(int64_t{0}, int64_t{255})),
                 Value::Int(rng.Uniform(int64_t{0}, int64_t{255})),
                 Value::String(rng.AlnumString(3)),
                 Value::String(rng.AlnumString(5))}));
          }
          // 1-4 SPECIAL_FACILITY rows, each with 0-3 CALL_FORWARDING rows.
          int sf_cnt = static_cast<int>(rng.Uniform(int64_t{1}, int64_t{4}));
          for (int sf = 1; sf <= sf_cnt; ++sf) {
            OLXP_RETURN_NOT_OK(Exec(
                s,
                "INSERT INTO special_facility VALUES (?, ?, ?, ?, ?, ?)",
                {Value::Int(id), Value::Int(sf),
                 Value::Int(rng.Chance(0.85) ? 1 : 0),
                 Value::Int(rng.Uniform(int64_t{0}, int64_t{255})),
                 Value::Int(rng.Uniform(int64_t{0}, int64_t{255})),
                 Value::String(rng.AlnumString(5))}));
            int cf_cnt = static_cast<int>(rng.Uniform(int64_t{0}, int64_t{3}));
            for (int cf = 0; cf < cf_cnt; ++cf) {
              OLXP_RETURN_NOT_OK(Exec(
                  s, "INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
                  {Value::Int(id), Value::Int(sf), Value::Int(cf * 8),
                   Value::Int(cf * 8 + rng.Uniform(int64_t{1}, int64_t{8})),
                   Value::String(rng.DigitString(15))}));
            }
          }
          if ((id - begin) % 100 == 99) {
            OLXP_RETURN_NOT_OK(s.Commit());
            OLXP_RETURN_NOT_OK(s.Begin());
          }
        }
        return s.Commit();
      };
      if (begin < end) results[t] = load_range();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : results) OLXP_RETURN_NOT_OK(st);
  return Status::OK();
}

int64_t RandSub(Rng& rng, int subscribers) {
  return rng.NURand(65535, 1, subscribers);
}

// ------------------------------ OLTP bodies ------------------------------

/// GetSubscriberData (read-only): full-row point read through the composite
/// pk (both components known).
Status GetSubscriberDataBody(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  auto rs = Query(
      s, "SELECT * FROM subscriber WHERE s_id = ? AND sub_nbr = ?",
      {Value::Int(id), Value::String(SubNbr(id))});
  return rs.ok() ? Status::OK() : rs.status();
}

/// GetNewDestination (read-only): join SPECIAL_FACILITY x CALL_FORWARDING.
Status GetNewDestinationBody(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t sf = rng.Uniform(int64_t{1}, int64_t{4});
  const int64_t start = rng.Uniform(int64_t{0}, int64_t{2}) * 8;
  auto rs = Query(
      s, "SELECT cf.numberx FROM special_facility sf, call_forwarding cf "
         "WHERE sf.s_id = ? AND sf.sf_type = ? AND sf.is_active = 1 AND "
         "cf.s_id = sf.s_id AND cf.sf_type = sf.sf_type AND "
         "cf.start_time <= ? AND cf.end_time > ?",
      {Value::Int(id), Value::Int(sf), Value::Int(start), Value::Int(start)});
  return rs.ok() ? Status::OK() : rs.status();
}

/// GetAccessData (read-only).
Status GetAccessDataBody(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t ai = rng.Uniform(int64_t{1}, int64_t{4});
  auto rs = Query(
      s, "SELECT data1, data2, data3, data4 FROM access_info WHERE "
         "s_id = ? AND ai_type = ?",
      {Value::Int(id), Value::Int(ai)});
  return rs.ok() ? Status::OK() : rs.status();
}

/// UpdateSubscriberData: flip a bit + special-facility data.
Status UpdateSubscriberDataBody(engine::Session& s, Rng& rng,
                                int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t sf = rng.Uniform(int64_t{1}, int64_t{4});
  return InTxn(s, [&]() -> Status {
    OLXP_RETURN_NOT_OK(Exec(
        s, "UPDATE subscriber SET bit_1 = ? WHERE s_id = ? AND sub_nbr = ?",
        {Value::Int(rng.Uniform(int64_t{0}, int64_t{1})), Value::Int(id),
         Value::String(SubNbr(id))}));
    return Exec(
        s, "UPDATE special_facility SET data_a = ? WHERE s_id = ? AND "
           "sf_type = ?",
        {Value::Int(rng.Uniform(int64_t{0}, int64_t{255})), Value::Int(id),
         Value::Int(sf)});
  });
}

/// UpdateLocation: the sub_nbr-only lookup cannot use the composite pk —
/// slow query (full scan on the row store).
Status UpdateLocationBody(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t vlr = rng.Uniform(int64_t{1}, int64_t{1 << 16});
  return InTxn(s, [&]() -> Status {
    return Exec(s, "UPDATE subscriber SET vlr_location = ? WHERE sub_nbr = ?",
                {Value::Int(vlr), Value::String(SubNbr(id))});
  });
}

/// InsertCallForwarding.
Status InsertCallForwardingBody(engine::Session& s, Rng& rng,
                                int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t sf = rng.Uniform(int64_t{1}, int64_t{4});
  const int64_t start = rng.Uniform(int64_t{0}, int64_t{2}) * 8;
  return InTxn(s, [&]() -> Status {
    auto facs = Query(
        s, "SELECT sf_type FROM special_facility WHERE s_id = ?",
        {Value::Int(id)});
    if (!facs.ok()) return facs.status();
    Status st = Exec(
        s, "INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
        {Value::Int(id), Value::Int(sf), Value::Int(start),
         Value::Int(start + rng.Uniform(int64_t{1}, int64_t{8})),
         Value::String(rng.DigitString(15))});
    if (st.code() == StatusCode::kAlreadyExists) {
      return Status::Aborted("duplicate call forwarding");
    }
    return st;
  });
}

/// DeleteCallForwarding: contains the paper's slow query —
/// "SELECT s_id FROM SUBSCRIBER WHERE sub_nbr = ?" against the composite
/// primary key (§VI-C1).
Status DeleteCallForwardingBody(engine::Session& s, Rng& rng,
                                int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t sf = rng.Uniform(int64_t{1}, int64_t{4});
  const int64_t start = rng.Uniform(int64_t{0}, int64_t{2}) * 8;
  return InTxn(s, [&]() -> Status {
    auto sid = Query(s, "SELECT s_id FROM subscriber WHERE sub_nbr = ?",
                     {Value::String(SubNbr(id))});
    if (!sid.ok()) return sid.status();
    if (sid->rows.empty()) return Status::Aborted("unknown subscriber");
    Status st = Exec(
        s, "DELETE FROM call_forwarding WHERE s_id = ? AND sf_type = ? AND "
           "start_time = ?",
        {Value::Int(sid->rows[0][0].AsInt()), Value::Int(sf),
         Value::Int(start)});
    if (st.code() == StatusCode::kNotFound) {
      return Status::Aborted("no matching call forwarding");
    }
    return st;
  });
}

// --------------------------- analytical queries --------------------------

/// Q1: active special-facility ratio per type.
Status TQ1(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT sf_type, COUNT(*), SUM(is_active), AVG(is_active) FROM "
         "special_facility GROUP BY sf_type ORDER BY sf_type");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q2: subscriber density per VLR location band.
Status TQ2(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT vlr_location / 8192, COUNT(*) FROM subscriber "
         "GROUP BY vlr_location / 8192 ORDER BY 1");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q3: Start Time Query — average call-forwarding start time (the paper's
/// load-forecasting example, arithmetic included).
Status TQ3(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT AVG(start_time), AVG(end_time - start_time), COUNT(*) "
         "FROM call_forwarding");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q4: access-data aggregates joined with subscribers.
Status TQ4(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT ai.ai_type, COUNT(*), AVG(ai.data1 + ai.data2) FROM "
         "access_info ai JOIN subscriber su ON su.s_id = ai.s_id "
         "GROUP BY ai.ai_type ORDER BY ai.ai_type");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q5: forwarding coverage per facility type (join + sub-selection).
Status TQ5(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT sf.sf_type, COUNT(*) FROM special_facility sf WHERE "
         "sf.is_active = 1 AND sf.s_id IN (SELECT s_id FROM "
         "call_forwarding WHERE end_time - start_time > 4) "
         "GROUP BY sf.sf_type ORDER BY sf.sf_type");
  return rs.ok() ? Status::OK() : rs.status();
}

// --------------------------- hybrid transactions --------------------------

/// X1 (read-only): subscriber-data read anchored on a real-time active
/// facility count.
Status TX1(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  return InTxn(s, [&]() -> Status {
    auto active = Query(
        s, "SELECT COUNT(*) FROM special_facility WHERE is_active = 1");
    if (!active.ok()) return active.status();
    auto sub = Query(
        s, "SELECT s_id, vlr_location FROM subscriber WHERE s_id = ? AND "
           "sub_nbr = ?",
        {Value::Int(id), Value::String(SubNbr(id))});
    return sub.ok() ? Status::OK() : sub.status();
  });
}

/// X2 (read-only): destination lookup with a real-time forwarding-load
/// aggregate.
Status TX2(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  return InTxn(s, [&]() -> Status {
    auto load = Query(s, "SELECT AVG(start_time) FROM call_forwarding");
    if (!load.ok()) return load.status();
    auto cf = Query(s, "SELECT numberx FROM call_forwarding WHERE s_id = ?",
                    {Value::Int(id)});
    return cf.ok() ? Status::OK() : cf.status();
  });
}

/// X3: location update guided by a real-time density aggregate (write).
Status TX3(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t vlr = rng.Uniform(int64_t{1}, int64_t{1 << 16});
  return InTxn(s, [&]() -> Status {
    auto density = Query(
        s, "SELECT COUNT(*) FROM subscriber WHERE vlr_location = ?",
        {Value::Int(vlr)});
    if (!density.ok()) return density.status();
    return Exec(
        s, "UPDATE subscriber SET vlr_location = ? WHERE s_id = ? AND "
           "sub_nbr = ?",
        {Value::Int(vlr), Value::Int(id), Value::String(SubNbr(id))});
  });
}

/// X4: call-forwarding insert after a real-time duration aggregate (write).
Status TX4(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t sf = rng.Uniform(int64_t{1}, int64_t{4});
  const int64_t start = rng.Uniform(int64_t{0}, int64_t{2}) * 8 + 1;
  return InTxn(s, [&]() -> Status {
    auto dur = Query(
        s, "SELECT AVG(end_time - start_time) FROM call_forwarding");
    if (!dur.ok()) return dur.status();
    Status st = Exec(
        s, "INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
        {Value::Int(id), Value::Int(sf), Value::Int(start),
         Value::Int(start + 4), Value::String(rng.DigitString(15))});
    if (st.code() == StatusCode::kAlreadyExists) {
      return Status::Aborted("duplicate call forwarding");
    }
    return st;
  });
}

/// X5: facility flip with a real-time error-control scan (write).
Status TX5(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  const int64_t sf = rng.Uniform(int64_t{1}, int64_t{4});
  return InTxn(s, [&]() -> Status {
    auto err = Query(s, "SELECT AVG(error_cntrl) FROM special_facility");
    if (!err.ok()) return err.status();
    return Exec(
        s, "UPDATE special_facility SET is_active = 1 - is_active WHERE "
           "s_id = ? AND sf_type = ?",
        {Value::Int(id), Value::Int(sf)});
  });
}

/// X6: the paper's Fuzzy Search Transaction — real-time LIKE sub-string
/// search over subscriber numbers, then a profile update (write).
Status TX6(engine::Session& s, Rng& rng, int subscribers) {
  const int64_t id = RandSub(rng, subscribers);
  // Middle-digits fuzzy pattern, e.g. '%0042%'.
  std::string fragment = SubNbr(id).substr(9, 4);
  return InTxn(s, [&]() -> Status {
    auto fuzzy = Query(
        s, "SELECT s_id, sub_nbr, msc_location FROM subscriber WHERE "
           "sub_nbr LIKE ?",
        {Value::String("%" + fragment + "%")});
    if (!fuzzy.ok()) return fuzzy.status();
    return Exec(
        s, "UPDATE subscriber SET msc_location = msc_location + 1 WHERE "
           "s_id = ? AND sub_nbr = ?",
        {Value::Int(id), Value::String(SubNbr(id))});
  });
}

}  // namespace

benchfw::BenchmarkSuite MakeTabenchmark(benchfw::LoadParams params) {
  benchfw::BenchmarkSuite suite;
  suite.load_params = params;
  suite.name = "tabenchmark";
  suite.domain = "telecom";
  suite.create_schema = CreateTabenchSchema;
  suite.load = LoadTabench;
  suite.has_hybrid_txn = true;
  suite.has_real_time_query = true;
  suite.semantically_consistent_schema = true;
  suite.general_benchmark = false;
  suite.domain_specific_benchmark = true;

  const int subscribers = params.scale * 1000;
  auto mk = [subscribers](Status (*fn)(engine::Session&, Rng&, int)) {
    return [fn, subscribers](engine::Session& s, Rng& r) {
      return fn(s, r, subscribers);
    };
  };

  // 80% read-only: GetSubscriberData + GetNewDestination + GetAccessData.
  suite.transactions = {
      {"GetSubscriberData", 35, true, mk(GetSubscriberDataBody)},
      {"GetNewDestination", 10, true, mk(GetNewDestinationBody)},
      {"GetAccessData", 35, true, mk(GetAccessDataBody)},
      {"UpdateSubscriberData", 2, false, mk(UpdateSubscriberDataBody)},
      {"UpdateLocation", 14, false, mk(UpdateLocationBody)},
      {"InsertCallForwarding", 2, false, mk(InsertCallForwardingBody)},
      {"DeleteCallForwarding", 2, false, mk(DeleteCallForwardingBody)},
  };
  suite.queries = {
      {"Q1", 1, true, TQ1}, {"Q2", 1, true, TQ2}, {"Q3", 1, true, TQ3},
      {"Q4", 1, true, TQ4}, {"Q5", 1, true, TQ5},
  };
  // 40% read-only: X1 + X2.
  suite.hybrids = {
      {"X1", 20, true, mk(TX1)},  {"X2", 20, true, mk(TX2)},
      {"X3", 15, false, mk(TX3)}, {"X4", 15, false, mk(TX4)},
      {"X5", 15, false, mk(TX5)}, {"X6", 15, false, mk(TX6)},
  };
  return suite;
}

}  // namespace olxp::benchmarks
