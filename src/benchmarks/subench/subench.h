#ifndef OLXP_BENCHMARKS_SUBENCH_SUBENCH_H_
#define OLXP_BENCHMARKS_SUBENCH_SUBENCH_H_

#include "benchfw/workload.h"

namespace olxp::benchmarks {

/// The general benchmark of OLxPBench (§IV-B1), inspired by TPC-C: retail
/// activity, write-heavy (8% read-only OLTP), 9 tables / 92 columns /
/// 3 secondary indexes, 5 online transactions, 9 analytical queries
/// (semantically consistent: they analyze HISTORY, WAREHOUSE and DISTRICT
/// too), and 5 hybrid transactions (60% read-only) whose real-time queries
/// mimic e-commerce user behaviour (X1: lowest price before NewOrder).
///
/// LoadParams: `scale` = warehouses, `items` = ITEM cardinality.
benchfw::BenchmarkSuite MakeSubenchmark(benchfw::LoadParams params = {});

/// Number of districts per warehouse / customers per district / initial
/// orders per district in the laptop-calibrated load (ratios follow TPC-C;
/// cardinalities are scaled down — documented in DESIGN.md).
inline constexpr int kSubDistrictsPerWarehouse = 10;
inline constexpr int kSubCustomersPerDistrict = 30;
inline constexpr int kSubInitialOrdersPerDistrict = 100;

}  // namespace olxp::benchmarks

#endif  // OLXP_BENCHMARKS_SUBENCH_SUBENCH_H_
