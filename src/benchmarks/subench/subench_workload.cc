#include <algorithm>
#include <vector>

#include "benchmarks/common.h"
#include "benchmarks/subench/subench.h"
#include "common/clock.h"

namespace olxp::benchmarks {

namespace {

using benchfw::TxnProfile;

struct Scale {
  int warehouses;
  int items;
};

int64_t RandWarehouse(Rng& rng, const Scale& sc) {
  return rng.Uniform(int64_t{1}, int64_t{sc.warehouses});
}
int64_t RandDistrict(Rng& rng) {
  return rng.Uniform(int64_t{1}, int64_t{kSubDistrictsPerWarehouse});
}
int64_t RandCustomer(Rng& rng) {
  return rng.NURand(1023, 1, kSubCustomersPerDistrict);
}
int64_t RandItem(Rng& rng, const Scale& sc) {
  return rng.NURand(8191, 1, sc.items);
}

int64_t UniqueHistoryStamp() {
  static std::atomic<int64_t> counter{0};
  return NowMicros() * 1000 +
         (counter.fetch_add(1, std::memory_order_relaxed) % 1000);
}

// ----------------------------- OLTP bodies -------------------------------

/// TPC-C NewOrder: mid-weight read-write transaction. 1% of requests roll
/// back on an invalid item, as the spec requires. When `with_rt_query` is
/// set this becomes the paper's hybrid X1: the identical transaction with a
/// real-time lowest-price query injected before item selection (§III-B1).
Status NewOrderBody(engine::Session& s, Rng& rng, const Scale& sc,
                    bool with_rt_query = false) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t d = RandDistrict(rng);
  const int64_t c = RandCustomer(rng);
  const int ol_cnt = static_cast<int>(rng.Uniform(int64_t{5}, int64_t{15}));
  const bool rollback = rng.Chance(0.01);
  // Pick items up front and lock stock in sorted order — the standard
  // TPC-C client technique for avoiding deadlocks between NewOrders.
  std::vector<int64_t> item_ids;
  for (int l = 0; l < ol_cnt; ++l) item_ids.push_back(RandItem(rng, sc));
  std::sort(item_ids.begin(), item_ids.end());

  return InTxn(s, [&]() -> Status {
    auto wtax = Query(s, "SELECT w_tax FROM warehouse WHERE w_id = ?",
                      {Value::Int(w)});
    if (!wtax.ok()) return wtax.status();
    if (with_rt_query) {
      // Real-time query: the lowest catalogue price, not a random price.
      auto min_price = Query(s, "SELECT MIN(i_price) FROM item");
      if (!min_price.ok()) return min_price.status();
    }
    auto dist = Query(
        s, "SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND "
           "d_id = ?",
        {Value::Int(w), Value::Int(d)});
    if (!dist.ok()) return dist.status();
    if (dist->rows.empty()) return Status::NotFound("district");
    int64_t o_id = dist->rows[0][1].AsInt();
    OLXP_RETURN_NOT_OK(Exec(
        s, "UPDATE district SET d_next_o_id = ? WHERE d_w_id = ? AND d_id = ?",
        {Value::Int(o_id + 1), Value::Int(w), Value::Int(d)}));
    auto cust = Query(
        s, "SELECT c_discount, c_last, c_credit FROM customer WHERE "
           "c_w_id = ? AND c_d_id = ? AND c_id = ?",
        {Value::Int(w), Value::Int(d), Value::Int(c)});
    if (!cust.ok()) return cust.status();

    Status ord = Exec(
        s, "INSERT INTO orders VALUES (?, ?, ?, ?, ?, NULL, ?, 1)",
        {Value::Int(o_id), Value::Int(d), Value::Int(w), Value::Int(c),
         Value::Timestamp(NowMicros()), Value::Int(ol_cnt)});
    if (ord.code() == StatusCode::kAlreadyExists) {
      // Read-committed engines let two NewOrders observe the same
      // d_next_o_id; the unique-key violation is the client's retry signal.
      return Status::Conflict("duplicate order id under read-committed");
    }
    OLXP_RETURN_NOT_OK(ord);
    OLXP_RETURN_NOT_OK(Exec(s, "INSERT INTO new_order VALUES (?, ?, ?)",
                            {Value::Int(o_id), Value::Int(d), Value::Int(w)}));

    for (int l = 1; l <= ol_cnt; ++l) {
      int64_t i_id = item_ids[l - 1];
      if (rollback && l == ol_cnt) i_id = sc.items + 1;  // invalid item
      auto item = Query(s, "SELECT i_price, i_name FROM item WHERE i_id = ?",
                        {Value::Int(i_id)});
      if (!item.ok()) return item.status();
      if (item->rows.empty()) {
        return Status::Aborted("invalid item (1% forced rollback)");
      }
      double price = item->rows[0][0].AsDouble();
      auto stock = Query(
          s, "SELECT s_quantity, s_ytd, s_order_cnt FROM stock WHERE "
             "s_w_id = ? AND s_i_id = ?",
          {Value::Int(w), Value::Int(i_id)});
      if (!stock.ok()) return stock.status();
      if (stock->rows.empty()) return Status::NotFound("stock");
      int64_t qty = stock->rows[0][0].AsInt();
      int64_t order_qty = rng.Uniform(int64_t{1}, int64_t{10});
      int64_t new_qty =
          qty - order_qty + (qty - order_qty < 10 ? 91 : 0);
      OLXP_RETURN_NOT_OK(Exec(
          s, "UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, "
             "s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_i_id = ?",
          {Value::Int(new_qty), Value::Double(static_cast<double>(order_qty)),
           Value::Int(w), Value::Int(i_id)}));
      OLXP_RETURN_NOT_OK(Exec(
          s, "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, NULL, ?, ?, ?)",
          {Value::Int(o_id), Value::Int(d), Value::Int(w), Value::Int(l),
           Value::Int(i_id), Value::Int(w), Value::Int(order_qty),
           Value::Double(price * static_cast<double>(order_qty)),
           Value::String("dist-info-fixed-24-chars")}));
    }
    return Status::OK();
  });
}

/// TPC-C Payment: 60% of lookups go through the customer last-name index.
Status PaymentBody(engine::Session& s, Rng& rng, const Scale& sc) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t d = RandDistrict(rng);
  const double amount = rng.Uniform(1.0, 5000.0);

  return InTxn(s, [&]() -> Status {
    OLXP_RETURN_NOT_OK(
        Exec(s, "UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
             {Value::Double(amount), Value::Int(w)}));
    OLXP_RETURN_NOT_OK(Exec(
        s, "UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND "
           "d_id = ?",
        {Value::Double(amount), Value::Int(w), Value::Int(d)}));

    int64_t c_id;
    if (rng.Chance(0.6)) {
      std::string last = Rng::LastName(rng.NURand(255, 0, 999));
      auto rows = Query(
          s, "SELECT c_id FROM customer WHERE c_w_id = ? AND c_d_id = ? AND "
             "c_last = ? ORDER BY c_first",
          {Value::Int(w), Value::Int(d), Value::String(last)});
      if (!rows.ok()) return rows.status();
      if (rows->rows.empty()) {
        c_id = RandCustomer(rng);
      } else {
        c_id = rows->rows[rows->rows.size() / 2][0].AsInt();
      }
    } else {
      c_id = RandCustomer(rng);
    }
    OLXP_RETURN_NOT_OK(Exec(
        s, "UPDATE customer SET c_balance = c_balance - ?, "
           "c_ytd_payment = c_ytd_payment + ?, c_payment_cnt = "
           "c_payment_cnt + 1 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
        {Value::Double(amount), Value::Double(amount), Value::Int(w),
         Value::Int(d), Value::Int(c_id)}));
    OLXP_RETURN_NOT_OK(Exec(
        s, "INSERT INTO history VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        {Value::Int(c_id), Value::Int(d), Value::Int(w), Value::Int(d),
         Value::Int(w), Value::Timestamp(UniqueHistoryStamp()),
         Value::Double(amount), Value::String("payment-history-data")}));
    return Status::OK();
  });
}

/// TPC-C OrderStatus (read-only).
Status OrderStatusBody(engine::Session& s, Rng& rng, const Scale& sc) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t d = RandDistrict(rng);
  const int64_t c = RandCustomer(rng);
  return InTxn(s, [&]() -> Status {
    auto cust = Query(
        s, "SELECT c_balance, c_first, c_middle, c_last FROM customer "
           "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
        {Value::Int(w), Value::Int(d), Value::Int(c)});
    if (!cust.ok()) return cust.status();
    auto order = Query(
        s, "SELECT MAX(o_id) FROM orders WHERE o_w_id = ? AND o_d_id = ? "
           "AND o_c_id = ?",
        {Value::Int(w), Value::Int(d), Value::Int(c)});
    if (!order.ok()) return order.status();
    if (order->rows.empty() || order->rows[0][0].is_null()) {
      return Status::OK();  // customer without orders
    }
    int64_t o_id = order->rows[0][0].AsInt();
    auto lines = Query(
        s, "SELECT ol_i_id, ol_quantity, ol_amount, ol_delivery_d FROM "
           "order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
        {Value::Int(w), Value::Int(d), Value::Int(o_id)});
    return lines.ok() ? Status::OK() : lines.status();
  });
}

/// TPC-C Delivery: drains the oldest NEW_ORDER of each district.
Status DeliveryBody(engine::Session& s, Rng& rng, const Scale& sc) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t carrier = rng.Uniform(int64_t{1}, int64_t{10});
  return InTxn(s, [&]() -> Status {
    for (int64_t d = 1; d <= kSubDistrictsPerWarehouse; ++d) {
      auto oldest = Query(
          s, "SELECT MIN(no_o_id) FROM new_order WHERE no_w_id = ? AND "
             "no_d_id = ?",
          {Value::Int(w), Value::Int(d)});
      if (!oldest.ok()) return oldest.status();
      if (oldest->rows.empty() || oldest->rows[0][0].is_null()) continue;
      int64_t o_id = oldest->rows[0][0].AsInt();
      Status del = Exec(
          s, "DELETE FROM new_order WHERE no_w_id = ? AND no_d_id = ? AND "
             "no_o_id = ?",
          {Value::Int(w), Value::Int(d), Value::Int(o_id)});
      if (del.code() == StatusCode::kNotFound) {
        // A concurrent Delivery drained this order between our MIN() and
        // the delete; surface as a retryable conflict (TPC-C semantics).
        return Status::Conflict("delivery raced on oldest order");
      }
      OLXP_RETURN_NOT_OK(del);
      auto cust = Query(
          s, "SELECT o_c_id FROM orders WHERE o_w_id = ? AND o_d_id = ? AND "
             "o_id = ?",
          {Value::Int(w), Value::Int(d), Value::Int(o_id)});
      if (!cust.ok()) return cust.status();
      if (cust->rows.empty()) continue;
      int64_t c_id = cust->rows[0][0].AsInt();
      OLXP_RETURN_NOT_OK(Exec(
          s, "UPDATE orders SET o_carrier_id = ? WHERE o_w_id = ? AND "
             "o_d_id = ? AND o_id = ?",
          {Value::Int(carrier), Value::Int(w), Value::Int(d),
           Value::Int(o_id)}));
      auto total = Query(
          s, "SELECT SUM(ol_amount) FROM order_line WHERE ol_w_id = ? AND "
             "ol_d_id = ? AND ol_o_id = ?",
          {Value::Int(w), Value::Int(d), Value::Int(o_id)});
      if (!total.ok()) return total.status();
      double amount = total->rows.empty() || total->rows[0][0].is_null()
                          ? 0.0
                          : total->rows[0][0].AsDouble();
      OLXP_RETURN_NOT_OK(Exec(
          s, "UPDATE order_line SET ol_delivery_d = ? WHERE ol_w_id = ? AND "
             "ol_d_id = ? AND ol_o_id = ?",
          {Value::Timestamp(NowMicros()), Value::Int(w), Value::Int(d),
           Value::Int(o_id)}));
      OLXP_RETURN_NOT_OK(Exec(
          s, "UPDATE customer SET c_balance = c_balance + ?, "
             "c_delivery_cnt = c_delivery_cnt + 1 WHERE c_w_id = ? AND "
             "c_d_id = ? AND c_id = ?",
          {Value::Double(amount), Value::Int(w), Value::Int(d),
           Value::Int(c_id)}));
    }
    return Status::OK();
  });
}

/// TPC-C StockLevel (read-only): recent orders' items below threshold.
Status StockLevelBody(engine::Session& s, Rng& rng, const Scale& sc) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t d = RandDistrict(rng);
  const int64_t threshold = rng.Uniform(int64_t{10}, int64_t{20});
  return InTxn(s, [&]() -> Status {
    auto next = Query(
        s, "SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
        {Value::Int(w), Value::Int(d)});
    if (!next.ok()) return next.status();
    if (next->rows.empty()) return Status::NotFound("district");
    int64_t next_o = next->rows[0][0].AsInt();
    auto count = Query(
        s, "SELECT COUNT(DISTINCT ol_i_id) FROM order_line, stock WHERE "
           "ol_w_id = ? AND ol_d_id = ? AND ol_o_id >= ? AND ol_o_id < ? AND "
           "s_w_id = ol_w_id AND s_i_id = ol_i_id AND s_quantity < ?",
        {Value::Int(w), Value::Int(d), Value::Int(next_o - 20),
         Value::Int(next_o), Value::Int(threshold)});
    return count.ok() ? Status::OK() : count.status();
  });
}

// ------------------------- analytical queries ----------------------------

/// Q1: Orders Analytical Report — magnitude summary of ORDER_LINE grouped
/// by line number (the paper's flagship subenchmark query).
Status Q1(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT ol_number, SUM(ol_quantity), SUM(ol_amount), "
         "AVG(ol_quantity), AVG(ol_amount), COUNT(*) FROM order_line "
         "GROUP BY ol_number ORDER BY ol_number");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q2: customer balance distribution (CUSTOMER).
Status Q2(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT c_credit, COUNT(*), AVG(c_balance), MIN(c_balance), "
         "MAX(c_balance) FROM customer GROUP BY c_credit ORDER BY c_credit");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q3: spend analysis over HISTORY — the table stitched schemas never
/// analyze (§III-B2).
Status Q3(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT h_w_id, COUNT(*), SUM(h_amount), AVG(h_amount) FROM history "
         "GROUP BY h_w_id ORDER BY h_w_id");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q4: warehouse vs district year-to-date reconciliation (WAREHOUSE +
/// DISTRICT, also ignored by stitched schemas).
Status Q4(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT w.w_id, MAX(w.w_ytd), SUM(d.d_ytd) FROM warehouse w "
         "JOIN district d ON d.d_w_id = w.w_id GROUP BY w.w_id "
         "ORDER BY w.w_id");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q5: top revenue items.
Status Q5(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT ol_i_id, SUM(ol_amount) AS rev FROM order_line "
         "GROUP BY ol_i_id ORDER BY rev DESC LIMIT 10");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q6: stock pressure per warehouse.
Status Q6(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT s_w_id, COUNT(*) FROM stock WHERE s_quantity < ? "
         "GROUP BY s_w_id ORDER BY s_w_id",
      {Value::Int(rng.Uniform(int64_t{20}, int64_t{40}))});
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q7: order behaviour per customer credit class (multi-join).
Status Q7(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT c.c_credit, COUNT(*), AVG(o.o_ol_cnt) FROM orders o "
         "JOIN customer c ON c.c_w_id = o.o_w_id AND c.c_d_id = o.o_d_id "
         "AND c.c_id = o.o_c_id GROUP BY c.c_credit");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q8: undelivered backlog by warehouse.
Status Q8(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT o_w_id, COUNT(*) FROM orders WHERE o_carrier_id IS NULL "
         "GROUP BY o_w_id ORDER BY o_w_id");
  return rs.ok() ? Status::OK() : rs.status();
}

/// Q9: price-band catalogue analysis (CASE + grouping).
Status Q9(engine::Session& s, Rng& rng) {
  auto rs = Query(
      s, "SELECT CASE WHEN i_price < 50 THEN 0 ELSE 1 END AS band, "
         "COUNT(*), AVG(i_price) FROM item GROUP BY "
         "CASE WHEN i_price < 50 THEN 0 ELSE 1 END ORDER BY band");
  return rs.ok() ? Status::OK() : rs.status();
}

// ------------------------- hybrid transactions ---------------------------
// Each performs a real-time query *inside* an online transaction: the
// engine pins the whole transaction to the row store (§V-B2).

/// X1: the paper's flagship hybrid — the NewOrder transaction with a
/// real-time lowest-price query injected in-between (write).
Status X1(engine::Session& s, Rng& rng, const Scale& sc) {
  return NewOrderBody(s, rng, sc, /*with_rt_query=*/true);
}

/// X2: Payment preceded by a real-time district-wide balance aggregate
/// (fraud screening) — write.
Status X2(engine::Session& s, Rng& rng, const Scale& sc) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t d = RandDistrict(rng);
  const int64_t c = RandCustomer(rng);
  const double amount = rng.Uniform(1.0, 5000.0);
  return InTxn(s, [&]() -> Status {
    auto screen = Query(
        s, "SELECT AVG(c_balance), MIN(c_balance) FROM customer WHERE "
           "c_w_id = ?",
        {Value::Int(w)});
    if (!screen.ok()) return screen.status();
    OLXP_RETURN_NOT_OK(
        Exec(s, "UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
             {Value::Double(amount), Value::Int(w)}));
    OLXP_RETURN_NOT_OK(Exec(
        s, "UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND "
           "d_id = ?",
        {Value::Double(amount), Value::Int(w), Value::Int(d)}));
    OLXP_RETURN_NOT_OK(Exec(
        s, "UPDATE customer SET c_balance = c_balance - ? WHERE c_w_id = ? "
           "AND c_d_id = ? AND c_id = ?",
        {Value::Double(amount), Value::Int(w), Value::Int(d), Value::Int(c)}));
    return Status::OK();
  });
}

/// X3: order-status consultation with a real-time open-order count
/// (read-only).
Status X3(engine::Session& s, Rng& rng, const Scale& sc) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t d = RandDistrict(rng);
  const int64_t c = RandCustomer(rng);
  return InTxn(s, [&]() -> Status {
    auto backlog = Query(
        s, "SELECT COUNT(*) FROM new_order WHERE no_w_id = ?",
        {Value::Int(w)});
    if (!backlog.ok()) return backlog.status();
    auto order = Query(
        s, "SELECT MAX(o_id) FROM orders WHERE o_w_id = ? AND o_d_id = ? "
           "AND o_c_id = ?",
        {Value::Int(w), Value::Int(d), Value::Int(c)});
    return order.ok() ? Status::OK() : order.status();
  });
}

/// X4: stock-level check with a real-time warehouse-wide average
/// (read-only).
Status X4(engine::Session& s, Rng& rng, const Scale& sc) {
  const int64_t w = RandWarehouse(rng, sc);
  const int64_t threshold = rng.Uniform(int64_t{10}, int64_t{20});
  return InTxn(s, [&]() -> Status {
    auto avg = Query(s, "SELECT AVG(s_quantity) FROM stock WHERE s_w_id = ?",
                     {Value::Int(w)});
    if (!avg.ok()) return avg.status();
    auto low = Query(
        s, "SELECT COUNT(*) FROM stock WHERE s_w_id = ? AND s_quantity < ?",
        {Value::Int(w), Value::Int(threshold)});
    return low.ok() ? Status::OK() : low.status();
  });
}

/// X5: catalogue browsing with a real-time average-price anchor
/// (read-only).
Status X5(engine::Session& s, Rng& rng, const Scale& sc) {
  return InTxn(s, [&]() -> Status {
    auto avg = Query(s, "SELECT AVG(i_price) FROM item");
    if (!avg.ok()) return avg.status();
    for (int k = 0; k < 5; ++k) {
      auto item = Query(s, "SELECT i_name, i_price FROM item WHERE i_id = ?",
                        {Value::Int(RandItem(rng, sc))});
      if (!item.ok()) return item.status();
    }
    return Status::OK();
  });
}

}  // namespace

void AddSubenchWorkloads(benchfw::BenchmarkSuite* suite) {
  const Scale sc{suite->load_params.scale, suite->load_params.items};

  // OLTP mix follows TPC-C: 8% read-only (OrderStatus + StockLevel).
  suite->transactions = {
      {"NewOrder", 45, false,
       [sc](engine::Session& s, Rng& r) { return NewOrderBody(s, r, sc); }},
      {"Payment", 43, false,
       [sc](engine::Session& s, Rng& r) { return PaymentBody(s, r, sc); }},
      {"OrderStatus", 4, true,
       [sc](engine::Session& s, Rng& r) { return OrderStatusBody(s, r, sc); }},
      {"Delivery", 4, false,
       [sc](engine::Session& s, Rng& r) { return DeliveryBody(s, r, sc); }},
      {"StockLevel", 4, true,
       [sc](engine::Session& s, Rng& r) { return StockLevelBody(s, r, sc); }},
  };
  suite->queries = {
      {"Q1", 1, true, Q1}, {"Q2", 1, true, Q2}, {"Q3", 1, true, Q3},
      {"Q4", 1, true, Q4}, {"Q5", 1, true, Q5}, {"Q6", 1, true, Q6},
      {"Q7", 1, true, Q7}, {"Q8", 1, true, Q8}, {"Q9", 1, true, Q9},
  };
  // Hybrid mix: 60% read-only (X3, X4, X5).
  suite->hybrids = {
      {"X1", 20, false,
       [sc](engine::Session& s, Rng& r) { return X1(s, r, sc); }},
      {"X2", 20, false,
       [sc](engine::Session& s, Rng& r) { return X2(s, r, sc); }},
      {"X3", 20, true,
       [sc](engine::Session& s, Rng& r) { return X3(s, r, sc); }},
      {"X4", 20, true,
       [sc](engine::Session& s, Rng& r) { return X4(s, r, sc); }},
      {"X5", 20, true,
       [sc](engine::Session& s, Rng& r) { return X5(s, r, sc); }},
  };
}

}  // namespace olxp::benchmarks
