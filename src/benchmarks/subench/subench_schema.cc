#include <thread>
#include <vector>

#include "benchmarks/common.h"
#include "benchmarks/subench/subench.h"
#include "common/clock.h"
#include "common/rng.h"

namespace olxp::benchmarks {

namespace {

/// 9 tables, 92 columns total (TPC-C layout), 3 secondary indexes. The
/// HISTORY table uses (h_c_w_id, h_c_d_id, h_c_id, h_date) as its primary
/// key with h_date drawn from a unique microsecond counter.
const char* kSubenchDdl[] = {
    "CREATE TABLE warehouse ("
    " w_id INT PRIMARY KEY, w_name VARCHAR(10), w_street_1 VARCHAR(20),"
    " w_street_2 VARCHAR(20), w_city VARCHAR(20), w_state CHAR(2),"
    " w_zip CHAR(9), w_tax DOUBLE, w_ytd DOUBLE)",

    "CREATE TABLE district ("
    " d_id INT, d_w_id INT, d_name VARCHAR(10), d_street_1 VARCHAR(20),"
    " d_street_2 VARCHAR(20), d_city VARCHAR(20), d_state CHAR(2),"
    " d_zip CHAR(9), d_tax DOUBLE, d_ytd DOUBLE, d_next_o_id INT,"
    " PRIMARY KEY (d_w_id, d_id),"
    " FOREIGN KEY (d_w_id) REFERENCES warehouse (w_id))",

    "CREATE TABLE customer ("
    " c_id INT, c_d_id INT, c_w_id INT, c_first VARCHAR(16),"
    " c_middle CHAR(2), c_last VARCHAR(16), c_street_1 VARCHAR(20),"
    " c_street_2 VARCHAR(20), c_city VARCHAR(20), c_state CHAR(2),"
    " c_zip CHAR(9), c_phone CHAR(16), c_since TIMESTAMP,"
    " c_credit CHAR(2), c_credit_lim DOUBLE, c_discount DOUBLE,"
    " c_balance DOUBLE, c_ytd_payment DOUBLE, c_payment_cnt INT,"
    " c_delivery_cnt INT, c_data VARCHAR(500),"
    " PRIMARY KEY (c_w_id, c_d_id, c_id),"
    " FOREIGN KEY (c_w_id, c_d_id) REFERENCES district (d_w_id, d_id))",

    "CREATE TABLE history ("
    " h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id INT, h_w_id INT,"
    " h_date TIMESTAMP, h_amount DOUBLE, h_data VARCHAR(24),"
    " PRIMARY KEY (h_c_w_id, h_c_d_id, h_c_id, h_date))",

    "CREATE TABLE new_order ("
    " no_o_id INT, no_d_id INT, no_w_id INT,"
    " PRIMARY KEY (no_w_id, no_d_id, no_o_id))",

    "CREATE TABLE orders ("
    " o_id INT, o_d_id INT, o_w_id INT, o_c_id INT, o_entry_d TIMESTAMP,"
    " o_carrier_id INT, o_ol_cnt INT, o_all_local INT,"
    " PRIMARY KEY (o_w_id, o_d_id, o_id))",

    "CREATE TABLE order_line ("
    " ol_o_id INT, ol_d_id INT, ol_w_id INT, ol_number INT, ol_i_id INT,"
    " ol_supply_w_id INT, ol_delivery_d TIMESTAMP, ol_quantity INT,"
    " ol_amount DOUBLE, ol_dist_info CHAR(24),"
    " PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",

    "CREATE TABLE item ("
    " i_id INT PRIMARY KEY, i_im_id INT, i_name VARCHAR(24),"
    " i_price DOUBLE, i_data VARCHAR(50))",

    "CREATE TABLE stock ("
    " s_i_id INT, s_w_id INT, s_quantity INT, s_dist_01 CHAR(24),"
    " s_dist_02 CHAR(24), s_dist_03 CHAR(24), s_dist_04 CHAR(24),"
    " s_dist_05 CHAR(24), s_dist_06 CHAR(24), s_dist_07 CHAR(24),"
    " s_dist_08 CHAR(24), s_dist_09 CHAR(24), s_dist_10 CHAR(24),"
    " s_ytd DOUBLE, s_order_cnt INT, s_remote_cnt INT, s_data VARCHAR(50),"
    " PRIMARY KEY (s_w_id, s_i_id),"
    " FOREIGN KEY (s_i_id) REFERENCES item (i_id))",

    "CREATE INDEX idx_customer_name ON customer (c_w_id, c_d_id, c_last)",
    "CREATE INDEX idx_orders_customer ON orders (o_w_id, o_d_id, o_c_id)",
    "CREATE INDEX idx_item_name ON item (i_name)",
};

Status CreateSubenchSchema(engine::Session& s) {
  for (const char* ddl : kSubenchDdl) {
    OLXP_RETURN_NOT_OK(Exec(s, ddl));
  }
  return Status::OK();
}

/// Monotone unique microsecond stamp shared by loader threads and the
/// Payment transaction (HISTORY pk component).
int64_t UniqueMicros() {
  static std::atomic<int64_t> counter{0};
  return NowMicros() * 1000 +
         (counter.fetch_add(1, std::memory_order_relaxed) % 1000);
}

Status LoadItems(engine::Session& s, Rng& rng, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    OLXP_RETURN_NOT_OK(Exec(
        s, "INSERT INTO item VALUES (?, ?, ?, ?, ?)",
        {Value::Int(i), Value::Int(rng.Uniform(int64_t{1}, int64_t{10000})),
         Value::String("item-" + rng.AlnumString(8)),
         Value::Double(rng.Uniform(1.0, 100.0)),
         Value::String(rng.AlnumString(26, 50))}));
  }
  return Status::OK();
}

Status LoadWarehouse(engine::Database& db, const benchfw::LoadParams& params,
                     int w) {
  auto session = db.CreateSession();
  engine::Session& s = *session;
  s.set_charging_enabled(false);
  Rng rng(params.seed * 7919 + w);

  OLXP_RETURN_NOT_OK(Exec(
      s, "INSERT INTO warehouse VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
      {Value::Int(w), Value::String("wh-" + std::to_string(w)),
       Value::String(rng.AlnumString(10, 20)),
       Value::String(rng.AlnumString(10, 20)),
       Value::String(rng.AlnumString(10, 20)), Value::String("CA"),
       Value::String(rng.DigitString(9)), Value::Double(rng.Uniform(0.0, 0.2)),
       Value::Double(300000.0)}));

  // Stock for every item in this warehouse, batched into transactions.
  OLXP_RETURN_NOT_OK(s.Begin());
  for (int i = 1; i <= params.items; ++i) {
    std::vector<Value> vals;
    vals.push_back(Value::Int(i));
    vals.push_back(Value::Int(w));
    vals.push_back(Value::Int(rng.Uniform(int64_t{10}, int64_t{100})));
    for (int d = 0; d < 10; ++d) {
      vals.push_back(Value::String(rng.AlnumString(24)));
    }
    vals.push_back(Value::Double(0.0));
    vals.push_back(Value::Int(0));
    vals.push_back(Value::Int(0));
    vals.push_back(Value::String(rng.AlnumString(26, 50)));
    auto rs = s.Execute(
        "INSERT INTO stock VALUES "
        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        std::span<const Value>(vals));
    if (!rs.ok()) return rs.status();
    if (i % 500 == 0) {
      OLXP_RETURN_NOT_OK(s.Commit());
      OLXP_RETURN_NOT_OK(s.Begin());
    }
  }
  OLXP_RETURN_NOT_OK(s.Commit());

  for (int d = 1; d <= kSubDistrictsPerWarehouse; ++d) {
    OLXP_RETURN_NOT_OK(Exec(
        s,
        "INSERT INTO district VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        {Value::Int(d), Value::Int(w),
         Value::String("dist-" + std::to_string(d)),
         Value::String(rng.AlnumString(10, 20)),
         Value::String(rng.AlnumString(10, 20)),
         Value::String(rng.AlnumString(10, 20)), Value::String("CA"),
         Value::String(rng.DigitString(9)),
         Value::Double(rng.Uniform(0.0, 0.2)), Value::Double(30000.0),
         Value::Int(kSubInitialOrdersPerDistrict + 1)}));

    OLXP_RETURN_NOT_OK(s.Begin());
    for (int c = 1; c <= kSubCustomersPerDistrict; ++c) {
      OLXP_RETURN_NOT_OK(Exec(
          s,
          "INSERT INTO customer VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
          " ?, ?, ?, ?, ?, ?, ?, ?, ?)",
          {Value::Int(c), Value::Int(d), Value::Int(w),
           Value::String(rng.AlnumString(8, 16)), Value::String("OE"),
           Value::String(Rng::LastName(
               c <= 10 ? c - 1 : rng.NURand(255, 0, 999))),
           Value::String(rng.AlnumString(10, 20)),
           Value::String(rng.AlnumString(10, 20)),
           Value::String(rng.AlnumString(10, 20)), Value::String("CA"),
           Value::String(rng.DigitString(9)),
           Value::String(rng.DigitString(16)), Value::Timestamp(NowMicros()),
           Value::String(rng.Chance(0.1) ? "BC" : "GC"),
           Value::Double(50000.0), Value::Double(rng.Uniform(0.0, 0.5)),
           Value::Double(-10.0), Value::Double(10.0), Value::Int(1),
           Value::Int(0), Value::String(rng.AlnumString(100, 200))}));
      // One initial HISTORY record per customer (this is the data the
      // paper's semantically consistent queries insist on analyzing).
      OLXP_RETURN_NOT_OK(Exec(
          s, "INSERT INTO history VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
          {Value::Int(c), Value::Int(d), Value::Int(w), Value::Int(d),
           Value::Int(w), Value::Timestamp(UniqueMicros()),
           Value::Double(10.0), Value::String(rng.AlnumString(12, 24))}));
    }
    OLXP_RETURN_NOT_OK(s.Commit());

    OLXP_RETURN_NOT_OK(s.Begin());
    for (int o = 1; o <= kSubInitialOrdersPerDistrict; ++o) {
      int ol_cnt = static_cast<int>(rng.Uniform(int64_t{5}, int64_t{15}));
      bool delivered = o <= kSubInitialOrdersPerDistrict - 10;
      OLXP_RETURN_NOT_OK(Exec(
          s, "INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
          {Value::Int(o), Value::Int(d), Value::Int(w),
           Value::Int(rng.Uniform(int64_t{1},
                                  int64_t{kSubCustomersPerDistrict})),
           Value::Timestamp(NowMicros()),
           delivered ? Value::Int(rng.Uniform(int64_t{1}, int64_t{10}))
                     : Value::Null(),
           Value::Int(ol_cnt), Value::Int(1)}));
      if (!delivered) {
        OLXP_RETURN_NOT_OK(Exec(
            s, "INSERT INTO new_order VALUES (?, ?, ?)",
            {Value::Int(o), Value::Int(d), Value::Int(w)}));
      }
      for (int l = 1; l <= ol_cnt; ++l) {
        OLXP_RETURN_NOT_OK(Exec(
            s,
            "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            {Value::Int(o), Value::Int(d), Value::Int(w), Value::Int(l),
             Value::Int(rng.Uniform(int64_t{1}, int64_t{params.items})),
             Value::Int(w),
             delivered ? Value::Timestamp(NowMicros()) : Value::Null(),
             Value::Int(5),
             delivered ? Value::Double(0.0)
                       : Value::Double(rng.Uniform(0.01, 9999.99)),
             Value::String(rng.AlnumString(24))}));
      }
    }
    OLXP_RETURN_NOT_OK(s.Commit());
  }
  return Status::OK();
}

Status LoadSubench(engine::Database& db, const benchfw::LoadParams& params) {
  // Items first (FK target), split across loader threads.
  {
    std::vector<std::thread> threads;
    std::vector<Status> results(params.load_threads, Status::OK());
    int per = (params.items + params.load_threads - 1) / params.load_threads;
    for (int t = 0; t < params.load_threads; ++t) {
      threads.emplace_back([&, t] {
        auto session = db.CreateSession();
        session->set_charging_enabled(false);
        Rng rng(params.seed * 31 + t);
        int begin = 1 + t * per;
        int end = std::min(params.items + 1, begin + per);
        if (begin < end) results[t] = LoadItems(*session, rng, begin, end);
      });
    }
    for (auto& t : threads) t.join();
    for (const Status& st : results) OLXP_RETURN_NOT_OK(st);
  }
  // Warehouses in parallel.
  {
    std::vector<std::thread> threads;
    std::vector<Status> results(params.scale, Status::OK());
    for (int w = 1; w <= params.scale; ++w) {
      threads.emplace_back(
          [&, w] { results[w - 1] = LoadWarehouse(db, params, w); });
    }
    for (auto& t : threads) t.join();
    for (const Status& st : results) OLXP_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace

// Defined in subench_workload.cc.
void AddSubenchWorkloads(benchfw::BenchmarkSuite* suite);

benchfw::BenchmarkSuite MakeSubenchmark(benchfw::LoadParams params) {
  benchfw::BenchmarkSuite suite;
  suite.load_params = params;
  suite.name = "subenchmark";
  suite.domain = "general";
  suite.create_schema = CreateSubenchSchema;
  suite.load = LoadSubench;
  suite.has_hybrid_txn = true;
  suite.has_real_time_query = true;
  suite.semantically_consistent_schema = true;
  suite.general_benchmark = true;
  suite.domain_specific_benchmark = false;
  AddSubenchWorkloads(&suite);
  return suite;
}

}  // namespace olxp::benchmarks
