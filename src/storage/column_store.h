#ifndef OLXP_STORAGE_COLUMN_STORE_H_
#define OLXP_STORAGE_COLUMN_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/value.h"
#include "storage/column_block.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace olxp::obs {
class MetricsRegistry;
}  // namespace olxp::obs

namespace olxp::storage {

/// A window over one table's column storage handed to BatchScan callbacks
/// and built by ScanPin::Chunk: `rows` consecutive slots starting at global
/// slot `base`, live-slot flags, and per-column span descriptors pointing
/// into exactly one sealed block or the mutable tail (a chunk never
/// straddles the boundary). Kernels read the encoded arrays in place;
/// `value_at` is the boxed decode-on-read path for cold code. Pointers are
/// valid only while the scan holds the table's shared latch.
struct ColumnChunkView {
  size_t base = 0;                ///< first global slot of the chunk
  size_t rows = 0;                ///< slots in the chunk
  size_t offset = 0;              ///< base relative to the span arrays
  const uint8_t* live = nullptr;  ///< [rows] 1 = live (chunk-local)
  const ColumnSpan* cols = nullptr;  ///< [num_cols] encoding descriptors
  int num_cols = 0;

  const ColumnSpan& span(int col) const { return cols[col]; }

  bool null_at(int col, size_t i) const {
    const ColumnSpan& s = cols[col];
    return s.nulls != nullptr && s.nulls[offset + i] != 0;
  }

  /// Boxed value of column `col` at chunk-relative row `i` (decodes the
  /// block encoding; NULL for null/dead slots). Replaces the old
  /// reference-returning `at`: encoded slots have no boxed Value to
  /// reference, so the result is by value.
  Value value_at(int col, size_t i) const {
    const ColumnSpan& s = cols[col];
    const size_t p = offset + i;
    if (s.nulls != nullptr && s.nulls[p] != 0) return Value::Null();
    switch (s.enc) {
      case EncodedColumn::Enc::kRaw:
        return s.flat[p];
      case EncodedColumn::Enc::kFlatInt:
        return Rebox(s.type, s.ints[p]);
      case EncodedColumn::Enc::kFlatDbl:
        return Value::Double(s.dbls[p]);
      case EncodedColumn::Enc::kDict:
        return Value::String(s.dict[s.codes[p]]);
      case EncodedColumn::Enc::kRle:
        return Rebox(s.type, s.runs[RleRunIndex(s.runs, s.num_runs, p)].value);
      case EncodedColumn::Enc::kPacked:
        return Rebox(s.type,
                     static_cast<int64_t>(static_cast<uint64_t>(s.pack_base) +
                                          UnpackBits(s.packed, s.pack_width,
                                                     p)));
    }
    return Value::Null();
  }

 private:
  static Value Rebox(ValueType t, int64_t v) {
    return t == ValueType::kTimestamp ? Value::Timestamp(v) : Value::Int(v);
  }
};

/// Columnar replica of one table, stored as immutable sealed blocks of
/// kBlockSlots slots plus a mutable boxed tail. Sealed blocks hold
/// per-column encoded data (dictionary / RLE / bit-packing / flat arrays
/// with a raw fallback) and min/max zone maps; the tail takes replicated
/// writes and seals when full. Deletes against sealed blocks mark slots
/// dead; enough churn re-encodes the block in place (slot numbering never
/// changes). A primary-key hash index maps rows to global slots. Mirrors
/// TiFlash's role: analytical scans run here and take no row-store locks.
class ColumnTable {
 public:
  using ChunkCallback = std::function<bool(const ColumnChunkView&)>;

  /// `encode` false keeps sealed blocks as boxed raw values (slot layout
  /// and scan results identical to encoded mode — zone maps are still
  /// built); the parity sweep runs both.
  explicit ColumnTable(TableSchema schema, bool encode = true);

  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;

  const TableSchema& schema() const { return schema_; }

  /// Applies one replicated mutation (called by the Replicator only).
  void Apply(const LogOp& op);

  /// Scans all live rows, materializing each as a Row in schema order.
  /// Returns rows visited (live slots), the columnar scan cost driver.
  int64_t Scan(const RowCallback& cb) const;

  /// Chunked scan over column storage (the vectorized engine's serial
  /// access path): invokes `cb` with views of up to `chunk_rows`
  /// consecutive slots (less at block boundaries) until the table is
  /// exhausted or `cb` returns false. Returns live rows visited. The whole
  /// scan runs under one shared lock; callbacks must not retain the view
  /// past their invocation.
  int64_t BatchScan(size_t chunk_rows, const ChunkCallback& cb) const;

  /// Point lookup by primary key.
  std::optional<Row> Get(const Row& pk) const;

  size_t LiveRowCount() const;

  /// Total storage slots (live + dead). A raw scan — serial or morsel-
  /// driven — walks every slot, so this is the size the morsel dispatcher
  /// partitions and the router's fan-out estimate must mirror.
  size_t SlotCount() const;

  /// Slots a scan with these zone predicates would actually read: sealed
  /// blocks whose zones cannot refute the predicates, plus the tail. The
  /// router's cost model charges columnar scans by this, not SlotCount().
  size_t EstimateScanSlots(std::span<const ZonePred> preds) const;

  /// Footprint of the current storage: encoded bytes as held in memory vs.
  /// the boxed-Value bytes the same data would occupy. The tail counts as
  /// boxed on both sides.
  size_t EncodedBytes() const;
  size_t RawBytes() const;

  // Scan telemetry (fed to per-table gauges): blocks read vs. blocks
  // skipped by zone maps across all scans so far. Plain atomics — scans
  // hold only the shared latch.
  void RecordScanBlocks(int64_t scanned, int64_t skipped) const {
    blocks_scanned_.fetch_add(scanned, std::memory_order_relaxed);
    blocks_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  }
  int64_t blocks_scanned() const {
    return blocks_scanned_.load(std::memory_order_relaxed);
  }
  int64_t blocks_skipped() const {
    return blocks_skipped_.load(std::memory_order_relaxed);
  }

  // Block introspection for tests.
  size_t SealedBlockCount() const;
  std::vector<EncodedColumn::Enc> BlockEncodings(size_t block) const;

  /// Pins the table for a morsel-driven (possibly multi-threaded) scan:
  /// the shared latch is held for the pin's lifetime, freezing the slot
  /// count, live flags, sealed blocks and tail while any number of
  /// execution lanes read Chunk() views concurrently. Writers (the
  /// replicator) block until the pin is released — the same snapshot
  /// semantics BatchScan gives a serial scan, extended to many readers.
  class SCOPED_CAPABILITY ScanPin {
   public:
    explicit ScanPin(const ColumnTable& table) ACQUIRE_SHARED(table.mu_);
    ~ScanPin() RELEASE();

    ScanPin(const ScanPin&) = delete;
    ScanPin& operator=(const ScanPin&) = delete;

    size_t total_slots() const { return total_; }

    /// View of up to `rows` slots starting at `base`, clamped to the table
    /// and to the containing block (a view never spans two blocks or block
    /// and tail). Valid while the pin is alive; safe to build concurrently
    /// from many threads.
    ColumnChunkView Chunk(size_t base, size_t rows) const;

    /// One flag per kBlockSlots-aligned chunk of the pinned table: 1 when
    /// the whole block is skippable — dead, or some predicate's zone check
    /// refutes it. Tail chunks are never skippable (no zones yet).
    std::vector<uint8_t> ComputeSkipMask(
        std::span<const ZonePred> preds) const;

   private:
    const ColumnTable& table_;
    size_t total_ = 0;
    size_t sealed_ = 0;
    const uint8_t* live_ = nullptr;
    const ColumnBlock* blocks_ = nullptr;
    size_t num_blocks_ = 0;
    std::vector<ColumnSpan> tail_spans_;
    int num_cols_ = 0;
  };

 private:
  /// Encodes the (full) tail into a sealed block and resets the tail.
  void SealTailLocked() REQUIRES(mu_);
  /// Re-encodes sealed block `b` with current live flags: dead payloads
  /// drop out, dictionaries/runs shrink, zone maps tighten.
  void ReencodeBlockLocked(size_t b) REQUIRES(mu_);
  /// Marks a sealed slot dead and re-encodes its block past the churn
  /// threshold.
  void RetireSealedSlotLocked(size_t slot) REQUIRES(mu_);
  /// Boxed value of column `c` at global slot `slot`.
  Value SlotValueLocked(int c, size_t slot) const REQUIRES_SHARED(mu_);
  /// Fills per-column tail span descriptors (kRaw over the tail vectors).
  void FillTailSpansLocked(std::vector<ColumnSpan>* spans) const
      REQUIRES_SHARED(mu_);

  TableSchema schema_;
  const bool encode_;
  mutable sync::SharedMutex mu_{sync::LockRank::kTableLatch, "column.table"};
  std::vector<ColumnBlock> blocks_ GUARDED_BY(mu_);
  size_t sealed_slots_ GUARDED_BY(mu_) = 0;  // == blocks_.size()*kBlockSlots
  std::vector<std::vector<Value>> tail_cols_ GUARDED_BY(mu_);  // [col][idx]
  std::vector<uint8_t> live_ GUARDED_BY(mu_);  // [global slot] 1 = live
  std::vector<size_t> free_slots_ GUARDED_BY(mu_);  // tail slots only
  std::unordered_map<Row, size_t, KeyHash, KeyEq> pk_to_slot_
      GUARDED_BY(mu_);
  mutable std::atomic<int64_t> blocks_scanned_{0};
  mutable std::atomic<int64_t> blocks_skipped_{0};
};

/// The set of columnar replicas plus the replication watermark.
class ColumnStore {
 public:
  /// Registers a replica for `table_id` with the given schema. `encode`
  /// false pins the replica to boxed raw blocks (parity testing).
  void AddTable(int table_id, TableSchema schema, bool encode = true);

  ColumnTable* table(int table_id);
  const ColumnTable* table(int table_id) const;

  /// Applies a full commit record; advances the watermark.
  void ApplyCommit(const CommitRecord& rec);

  /// Publishes per-table storage gauges (column.<table>.bytes_encoded,
  /// .bytes_raw, .blocks_scanned, .blocks_skipped) into `metrics`.
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

  /// Highest commit_ts fully applied (freshness watermark). OLAP snapshot
  /// reads on the replica are "as of" this timestamp.
  uint64_t replicated_ts() const {
    return replicated_ts_.load(std::memory_order_acquire);
  }

  /// Count of live analytical scans on the replica (contention signal for
  /// the latency model; columnar scans do not lock the row store).
  std::atomic<int>& active_scans() { return active_scans_; }

 private:
  std::unordered_map<int, std::unique_ptr<ColumnTable>> tables_;
  std::atomic<uint64_t> replicated_ts_{0};
  std::atomic<int> active_scans_{0};
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_COLUMN_STORE_H_
