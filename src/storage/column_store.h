#ifndef OLXP_STORAGE_COLUMN_STORE_H_
#define OLXP_STORAGE_COLUMN_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/value.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace olxp::storage {

/// A window over one table's raw column storage handed to BatchScan
/// callbacks: `rows` consecutive slots starting at `base`, live-slot flags,
/// and direct pointers to the full column vectors. No per-row
/// materialization happens — the vectorized engine reads values in place.
/// Pointers are valid only for the duration of the callback (the scan holds
/// the table's shared lock).
struct ColumnChunkView {
  size_t base = 0;                               ///< first slot of the chunk
  size_t rows = 0;                               ///< slots in the chunk
  const uint8_t* live = nullptr;                 ///< [rows] 1 = live
  const std::vector<Value>* const* columns = nullptr;  ///< [num_columns]

  /// Value of column `col` at chunk-relative row `i`.
  const Value& at(int col, size_t i) const { return (*columns[col])[base + i]; }
};

/// Columnar replica of one table: one value vector per column plus a
/// primary-key hash index into row slots. Deleted rows leave reusable
/// holes. Mirrors TiFlash's role: analytical scans run here and take no
/// row-store locks.
class ColumnTable {
 public:
  using ChunkCallback = std::function<bool(const ColumnChunkView&)>;

  explicit ColumnTable(TableSchema schema);

  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;

  const TableSchema& schema() const { return schema_; }

  /// Applies one replicated mutation (called by the Replicator only).
  void Apply(const LogOp& op);

  /// Scans all live rows, materializing each as a Row in schema order.
  /// Returns rows visited (live slots), the columnar scan cost driver.
  int64_t Scan(const RowCallback& cb) const;

  /// Chunked scan over raw column storage (the vectorized engine's access
  /// path): invokes `cb` with views of up to `chunk_rows` consecutive slots
  /// until the table is exhausted or `cb` returns false. Returns live rows
  /// visited. The whole scan runs under one shared lock; callbacks must not
  /// retain the view past their invocation.
  int64_t BatchScan(size_t chunk_rows, const ChunkCallback& cb) const;

  /// Point lookup by primary key.
  std::optional<Row> Get(const Row& pk) const;

  size_t LiveRowCount() const;

  /// Total storage slots (live + dead). A raw scan — serial or morsel-
  /// driven — walks every slot, so this is the size the morsel dispatcher
  /// partitions and the router's fan-out estimate must mirror.
  size_t SlotCount() const;

  /// Pins the table for a morsel-driven (possibly multi-threaded) raw scan:
  /// the shared latch is held for the pin's lifetime, freezing the slot
  /// count, live flags and column storage while any number of execution
  /// lanes read Chunk() views concurrently. Writers (the replicator) block
  /// until the pin is released — the same snapshot semantics BatchScan
  /// gives a serial scan, extended to many readers of one scan.
  class SCOPED_CAPABILITY ScanPin {
   public:
    explicit ScanPin(const ColumnTable& table) ACQUIRE_SHARED(table.mu_);
    ~ScanPin() RELEASE();

    ScanPin(const ScanPin&) = delete;
    ScanPin& operator=(const ScanPin&) = delete;

    size_t total_slots() const { return total_; }

    /// View of up to `rows` slots starting at `base` (clamped to the
    /// table). Valid while the pin is alive; safe to build concurrently
    /// from many threads.
    ColumnChunkView Chunk(size_t base, size_t rows) const;

   private:
    const ColumnTable& table_;
    size_t total_ = 0;
    const uint8_t* live_ = nullptr;
    std::vector<const std::vector<Value>*> cols_;
  };

 private:
  TableSchema schema_;
  mutable sync::SharedMutex mu_;
  std::vector<std::vector<Value>> columns_ GUARDED_BY(mu_);  // [col][slot]
  std::vector<uint8_t> live_ GUARDED_BY(mu_);                // [slot] 1 = live
  std::vector<size_t> free_slots_ GUARDED_BY(mu_);
  std::unordered_map<Row, size_t, KeyHash, KeyEq> pk_to_slot_
      GUARDED_BY(mu_);
};

/// The set of columnar replicas plus the replication watermark.
class ColumnStore {
 public:
  /// Registers a replica for `table_id` with the given schema.
  void AddTable(int table_id, TableSchema schema);

  ColumnTable* table(int table_id);
  const ColumnTable* table(int table_id) const;

  /// Applies a full commit record; advances the watermark.
  void ApplyCommit(const CommitRecord& rec);

  /// Highest commit_ts fully applied (freshness watermark). OLAP snapshot
  /// reads on the replica are "as of" this timestamp.
  uint64_t replicated_ts() const {
    return replicated_ts_.load(std::memory_order_acquire);
  }

  /// Count of live analytical scans on the replica (contention signal for
  /// the latency model; columnar scans do not lock the row store).
  std::atomic<int>& active_scans() { return active_scans_; }

 private:
  std::unordered_map<int, std::unique_ptr<ColumnTable>> tables_;
  std::atomic<uint64_t> replicated_ts_{0};
  std::atomic<int> active_scans_{0};
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_COLUMN_STORE_H_
