#include "storage/row_store.h"

#include "common/strings.h"

namespace olxp::storage {

StatusOr<int> RowStore::CreateTable(TableSchema schema) {
  sync::WriterLock lk(mu_);
  std::string key = ToLower(schema.name());
  if (name_to_id_.count(key)) {
    return Status::AlreadyExists("table " + schema.name());
  }
  int id = static_cast<int>(tables_.size());
  tables_.push_back(std::make_unique<MvccTable>(id, std::move(schema)));
  name_to_id_.emplace(std::move(key), id);
  return id;
}

StatusOr<int> RowStore::TableId(std::string_view name) const {
  sync::ReaderLock lk(mu_);
  auto it = name_to_id_.find(ToLower(name));
  if (it == name_to_id_.end()) {
    return Status::NotFound("table " + std::string(name));
  }
  return it->second;
}

MvccTable* RowStore::table(int table_id) {
  sync::ReaderLock lk(mu_);
  if (table_id < 0 || static_cast<size_t>(table_id) >= tables_.size()) {
    return nullptr;
  }
  return tables_[table_id].get();
}

const MvccTable* RowStore::table(int table_id) const {
  sync::ReaderLock lk(mu_);
  if (table_id < 0 || static_cast<size_t>(table_id) >= tables_.size()) {
    return nullptr;
  }
  return tables_[table_id].get();
}

std::vector<int> RowStore::TableIds() const {
  sync::ReaderLock lk(mu_);
  std::vector<int> ids(tables_.size());
  for (size_t i = 0; i < tables_.size(); ++i) ids[i] = static_cast<int>(i);
  return ids;
}

int RowStore::num_tables() const {
  sync::ReaderLock lk(mu_);
  return static_cast<int>(tables_.size());
}

}  // namespace olxp::storage
