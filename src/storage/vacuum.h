#ifndef OLXP_STORAGE_VACUUM_H_
#define OLXP_STORAGE_VACUUM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <unordered_map>

#include "common/sync.h"
#include "obs/metrics.h"
#include "storage/oracle.h"
#include "storage/row_store.h"

namespace olxp::storage {

/// Registry of every live snapshot in the engine: open transactions,
/// the checkpoint writer's image timestamp, and the replicator's apply
/// frontier. The vacuum computes its reclamation watermark as the minimum
/// over all registered snapshots (and the oracle's published counter), so a
/// version visible to ANY live reader is never reclaimed.
///
/// The acquire-vs-watermark race matters: a transaction that reads the
/// oracle and only then registers could observe the counter at c while a
/// concurrent watermark computation (not yet seeing the registration) uses
/// a newer counter value > c. Acquire() therefore reads the oracle UNDER
/// the registry mutex — the same mutex Watermark() holds — so every
/// watermark is <= every snapshot registered after it was computed.
class SnapshotRegistry {
 public:
  using Handle = uint64_t;            ///< 0 = invalid / never registered
  static constexpr uint64_t kUnpinned = ~0ull;  ///< entry holds no snapshot

  /// Atomically reads the oracle's current timestamp and registers it as a
  /// live snapshot. Returns the handle; the snapshot ts lands in `*ts`.
  Handle Acquire(const TimestampOracle& oracle, uint64_t* ts) {
    sync::MutexLock lk(mu_);
    *ts = oracle.Current();
    Handle h = next_handle_++;
    active_.emplace(h, *ts);
    return h;
  }

  /// Registers an externally chosen snapshot (checkpoint writer: its image
  /// timestamp is a reserved commit ts that is not yet published, which is
  /// safe because it is above every watermark computable before publish).
  Handle Register(uint64_t ts) {
    sync::MutexLock lk(mu_);
    Handle h = next_handle_++;
    active_.emplace(h, ts);
    return h;
  }

  /// Moves an entry to a new snapshot (replicator frontier). kUnpinned
  /// makes the entry stop constraining the watermark without releasing it.
  void Update(Handle h, uint64_t ts) {
    sync::MutexLock lk(mu_);
    auto it = active_.find(h);
    if (it != active_.end()) it->second = ts;
  }

  void Release(Handle h) {
    sync::MutexLock lk(mu_);
    active_.erase(h);
  }

  /// The reclamation watermark: min over live snapshots, bounded by the
  /// oracle's published counter (with no snapshots open, everything
  /// committed so far is safe to truncate down to its newest version).
  uint64_t Watermark(const TimestampOracle& oracle) const {
    sync::MutexLock lk(mu_);
    uint64_t w = oracle.Current();
    for (const auto& [h, ts] : active_) {
      if (ts != kUnpinned && ts < w) w = ts;
    }
    return w;
  }

  /// Live registered snapshots (diagnostics).
  size_t ActiveCount() const {
    sync::MutexLock lk(mu_);
    size_t n = 0;
    for (const auto& [h, ts] : active_) {
      if (ts != kUnpinned) ++n;
    }
    return n;
  }

 private:
  mutable sync::Mutex mu_{sync::LockRank::kSnapshotRegistry, "snapshots"};
  std::unordered_map<Handle, uint64_t> active_ GUARDED_BY(mu_);
  Handle next_handle_ GUARDED_BY(mu_) = 1;
};

/// Vacuum knobs (EngineProfile mirrors these as vacuum_interval_us /
/// vacuum_batch_rows / gc_history_us).
struct VacuumConfig {
  /// Background pass period. <= 0 disables the thread; RunOnce() still
  /// works for synchronous callers (bench cells, tests).
  int64_t interval_us = 50000;
  /// Rows examined per exclusive-lock chunk. Bounds how long one vacuum
  /// chunk holds a table's latch against committers.
  size_t batch_rows = 512;
  /// Minimum wall-clock age of history before it may be reclaimed, mapped
  /// onto logical timestamps via (wall time, oracle ts) samples taken each
  /// pass. 0 = reclaim as soon as no live snapshot needs a version.
  int64_t gc_history_us = 0;
  /// Optional metrics sink (vacuum.* counters, pass duration, watermark
  /// age). Must outlive the vacuum.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Background MVCC garbage collector. Each pass computes the active-
/// snapshot watermark and walks every table in lock-bounded chunks,
/// truncating version chains below the watermark, erasing chains whose
/// newest sub-watermark version is a tombstone (with nothing newer), and
/// purging the secondary-index entries those versions backed. Replaces the
/// manual, snapshot-unsafe MvccTable::PruneVersions between-cells hack with
/// the continuous collection real HTAP engines run.
class Vacuum {
 public:
  Vacuum(RowStore* store, SnapshotRegistry* registry,
         const TimestampOracle* oracle, VacuumConfig config);
  ~Vacuum();

  Vacuum(const Vacuum&) = delete;
  Vacuum& operator=(const Vacuum&) = delete;

  /// Starts the background thread (no-op when interval_us <= 0; idempotent).
  void Start();
  /// Stops and joins the background thread (idempotent).
  void Stop();

  /// Runs one synchronous full pass over every table and returns what it
  /// reclaimed. Safe concurrently with the background thread (serialized).
  VacuumStats RunOnce();

  /// Watermark used by the most recent pass (0 before the first pass).
  uint64_t last_watermark() const {
    return last_watermark_.load(std::memory_order_acquire);
  }
  /// Completed passes.
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  /// Cumulative reclamation counters.
  VacuumStats Totals() const;

 private:
  void Run();
  /// gc_history_us mapping: caps the watermark at the newest oracle sample
  /// at least gc_history_us old (0 when no sample is old enough yet).
  uint64_t HistoryCap();

  RowStore* store_;
  SnapshotRegistry* registry_;
  const TimestampOracle* oracle_;
  const VacuumConfig config_;

  /// Serializes RunOnce between thread and callers. Held across table
  /// latches and the snapshot registry, hence the outer rank.
  sync::Mutex pass_mu_{sync::LockRank::kVacuumPass, "vacuum.pass"};
  mutable sync::Mutex totals_mu_{sync::LockRank::kVacuumState,
                                 "vacuum.totals"};
  VacuumStats totals_ GUARDED_BY(totals_mu_);

  sync::Mutex history_mu_{sync::LockRank::kVacuumState, "vacuum.history"};
  /// (wall_us, oracle ts) samples driving the gc_history_us mapping.
  std::deque<std::pair<int64_t, uint64_t>> history_ GUARDED_BY(history_mu_);

  std::atomic<uint64_t> last_watermark_{0};
  std::atomic<uint64_t> passes_{0};

  sync::Mutex wake_mu_{sync::LockRank::kVacuumState, "vacuum.wake"};
  sync::CondVar wake_cv_;  ///< interruptible inter-pass sleep
  std::atomic<bool> running_{false};
  std::thread thread_;

  // Cached metric handles (null when VacuumConfig::metrics is unset).
  obs::Counter* m_passes_ = nullptr;
  obs::Counter* m_versions_ = nullptr;
  obs::Counter* m_tombstones_ = nullptr;
  obs::Counter* m_index_entries_ = nullptr;
  obs::Histogram* m_pass_us_ = nullptr;
  obs::Gauge* m_watermark_ = nullptr;
  obs::Gauge* m_watermark_age_ = nullptr;
  obs::Gauge* m_active_snapshots_ = nullptr;
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_VACUUM_H_
