#ifndef OLXP_STORAGE_REPLICATOR_H_
#define OLXP_STORAGE_REPLICATOR_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/sync.h"
#include "obs/metrics.h"
#include "storage/column_store.h"
#include "storage/vacuum.h"
#include "storage/wal.h"

namespace olxp::storage {

/// Background log-shipping pipeline: tails the CommitLog and applies
/// committed mutations to the ColumnStore after a configurable propagation
/// delay, reproducing TiDB's asynchronous TiKV->TiFlash replication. The
/// delay is the freshness lag an analytical snapshot observes.
class Replicator {
 public:
  /// `lag_micros`: minimum age of a commit before it becomes visible in the
  /// column store. `poll_micros`: tail polling interval.
  Replicator(CommitLog* log, ColumnStore* store, int64_t lag_micros,
             int64_t poll_micros = 200);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Starts the shipping thread (idempotent).
  void Start();

  /// Stops the shipping thread (idempotent), then performs one final
  /// bounded apply of every record already older than the lag, so a replica
  /// read after Stop() observes all commits that were due at stop time.
  /// Records still inside the lag window stay unapplied (use CatchUp() to
  /// force them).
  void Stop();

  /// Blocks until every record committed before this call is applied,
  /// ignoring the lag (loader/test barrier).
  void CatchUp();

  /// Registers this pipeline's apply frontier as a live snapshot: while
  /// commits sit in the log unapplied, the vacuum watermark stays at or
  /// below the oldest pending commit ts (unpinned when fully caught up).
  /// Call before Start(); pass nullptr to detach.
  void set_snapshot_registry(SnapshotRegistry* registry);

  /// Attaches a metrics sink (repl.* counters/gauges). Call before
  /// Start(); the registry must outlive the replicator.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Dynamically adjusts the propagation delay.
  void set_lag_micros(int64_t lag) {
    lag_micros_.store(lag, std::memory_order_relaxed);
  }
  int64_t lag_micros() const {
    return lag_micros_.load(std::memory_order_relaxed);
  }

  /// Records applied so far.
  uint64_t applied_count() const {
    return next_seq_.load(std::memory_order_acquire);
  }

 private:
  void Run();
  /// Applies everything with commit wall time <= max_wall_us.
  void ApplyUpTo(int64_t max_wall_us);

  CommitLog* log_;
  ColumnStore* store_;
  /// apply_mu_ serializes ApplyUpTo between the shipping thread and
  /// CatchUp, and guards the registry/metrics wiring the apply path reads.
  sync::Mutex apply_mu_{sync::LockRank::kReplicatorApply, "replicator.apply"};
  SnapshotRegistry* registry_ GUARDED_BY(apply_mu_) = nullptr;
  SnapshotRegistry::Handle frontier_handle_ GUARDED_BY(apply_mu_) = 0;
  std::atomic<int64_t> lag_micros_;
  const int64_t poll_micros_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_seq_{0};
  std::thread thread_;

  // Cached metric handles (null until set_metrics).
  obs::Counter* m_applied_ GUARDED_BY(apply_mu_) = nullptr;
  obs::Counter* m_apply_batches_ GUARDED_BY(apply_mu_) = nullptr;
  obs::Gauge* m_frontier_seq_ GUARDED_BY(apply_mu_) = nullptr;
  obs::Gauge* m_pending_ GUARDED_BY(apply_mu_) = nullptr;
  obs::Gauge* m_apply_lag_us_ GUARDED_BY(apply_mu_) = nullptr;
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_REPLICATOR_H_
