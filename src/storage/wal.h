#ifndef OLXP_STORAGE_WAL_H_
#define OLXP_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "storage/schema.h"

namespace olxp::storage {

/// One logical row mutation inside a committed transaction.
struct LogOp {
  enum class Kind { kUpsert, kDelete };
  Kind kind = Kind::kUpsert;
  int table_id = 0;
  Row pk;
  Row data;  ///< full row image for upserts; empty for deletes
};

/// A committed transaction's redo record.
struct CommitRecord {
  uint64_t commit_ts = 0;
  int64_t commit_wall_us = 0;  ///< wall time of commit (drives replication lag)
  std::vector<LogOp> ops;
};

// ---------------------------------------------------------------------------
// Durable write-ahead log
// ---------------------------------------------------------------------------

/// How hard commits push their redo record toward the disk. The paper's TiDB
/// deployment persists every commit through a raft log before acking; the
/// seed engine kept the log purely in memory, so durability never cost
/// anything. These modes span that spectrum.
enum class DurabilityMode {
  kOff,    ///< in-memory log only; a restart loses the database
  kAsync,  ///< background writes to the segment file, fsync only on rotation
  kSync,   ///< naive WAL: every commit write()s and fsync()s before acking
  kGroup,  ///< group commit: one fsync covers every commit in the batch
};

const char* DurabilityModeName(DurabilityMode m);
StatusOr<DurabilityMode> DurabilityModeByName(std::string_view name);

/// Configuration for the disk-backed segment writer.
struct WalOptions {
  std::string dir;  ///< segment + checkpoint directory (must be writable)
  DurabilityMode mode = DurabilityMode::kGroup;
  /// Group mode: after the first record of a batch arrives, the flusher
  /// waits this long for stragglers before the covering fsync. 0 still
  /// batches naturally (everything that arrived during the previous fsync).
  int64_t group_commit_window_us = 100;
  uint64_t segment_bytes = 16ull << 20;  ///< rotation threshold
  /// Optional metrics sink (wal.* counters, fsync latency, group-commit
  /// batch size). Must outlive the writer.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One decoded WAL frame. Commit frames carry redo; DDL frames let recovery
/// rebuild the catalog before replaying row mutations into it.
struct WalFrame {
  enum class Type : uint8_t {
    kCommit = 1,
    kCreateTable = 2,
    kCreateIndex = 3,
  };
  Type type = Type::kCommit;
  uint64_t seq = 0;  ///< global WAL sequence number (1-based, monotone)

  CommitRecord commit;      // kCommit
  int table_id = 0;         // kCreateTable
  TableSchema schema;       // kCreateTable
  std::string table_name;   // kCreateIndex
  IndexDef index;           // kCreateIndex
};

/// CRC-32 (ISO-HDLC polynomial) over `data`; every WAL frame and the
/// checkpoint body carry one so recovery can reject torn or corrupt tails.
uint32_t Crc32(const void* data, size_t len);

/// Serializes `frame` as one length+CRC delimited record into `out`
/// (appending). Exposed for tests; WalWriter uses it internally.
void EncodeFrame(const WalFrame& frame, std::string* out);

/// Decodes one frame from `data` at `*offset`, advancing it past the frame.
/// Returns false (without advancing) on a torn/corrupt/short record.
bool DecodeFrame(const std::string& data, size_t* offset, WalFrame* frame);

/// Disk-backed WAL segment writer. Appends are framed, CRC-protected, and
/// assigned monotone sequence numbers; segments rotate at `segment_bytes`
/// and are named by the first sequence number they may contain
/// (wal-<seq>.seg), so a checkpoint can delete fully-covered prefixes.
///
/// Thread-safe. Group commit is leader-based: the first committer to reach
/// WaitDurable performs the write+fsync covering everything enqueued so
/// far, later committers wait and the next one through becomes the next
/// leader — no flusher-thread handoff sits on the commit path. Async mode
/// runs a background flusher (nobody waits on it); sync mode writes and
/// fsyncs inline in Append (the naive per-commit baseline the durability
/// bench contrasts with group commit).
class WalWriter {
 public:
  /// Opens a writer appending from sequence `next_seq` (1 for a fresh
  /// database; recovery passes max replayed seq + 1). Creates the directory
  /// if needed and always starts a fresh segment, so a torn tail left by a
  /// crash is never appended to.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const WalOptions& opts,
                                                   uint64_t next_seq);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  DurabilityMode mode() const { return opts_.mode; }

  /// Appends a commit frame; returns its sequence number. In sync mode the
  /// record is durable on return; in group mode pass the ticket to
  /// WaitDurable(); in async mode durability is best-effort.
  uint64_t AppendCommit(const CommitRecord& rec);

  /// Appends a create-table DDL frame and forces it durable (DDL is rare;
  /// recovery cannot replay rows into a table it does not know).
  uint64_t AppendCreateTable(int table_id, const TableSchema& schema);

  /// Appends a create-index DDL frame and forces it durable.
  uint64_t AppendCreateIndex(const std::string& table_name,
                             const IndexDef& def);

  /// Blocks until frame `seq` is covered by an fsync (group mode only;
  /// sync mode is already durable on Append and async mode never waits —
  /// both just report the sticky I/O state). `seq` 0 skips the wait.
  /// Returns the first write/fsync/rotation failure ever hit: a commit
  /// must not be acknowledged as durable on a log that stopped persisting.
  Status WaitDurable(uint64_t seq) EXCLUDES(mu_, io_mu_);

  /// Writes and fsyncs everything pending (checkpoint barrier, shutdown).
  Status Flush() EXCLUDES(mu_, io_mu_);

  /// First I/O failure this writer hit (sticky), or OK.
  Status last_error() const EXCLUDES(mu_);

  /// Deletes segment files whose every frame has seq < `seq` (called after
  /// a checkpoint covering that prefix landed). The active segment is never
  /// deleted.
  void DeleteSegmentsBefore(uint64_t seq) EXCLUDES(io_mu_);

  /// Next sequence number to be assigned.
  uint64_t next_seq() const EXCLUDES(mu_);

  /// fsync() calls issued so far (durability-cost accounting for benches).
  uint64_t fsync_count() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }
  /// Bytes appended to segment files so far.
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  explicit WalWriter(WalOptions opts);

  Status OpenSegment(uint64_t first_seq) REQUIRES(io_mu_);
  /// Assigns the next sequence number and enqueues one framed record whose
  /// payload is [type, seq, body] (body pre-encoded by the caller, outside
  /// any lock and without copying the source record).
  uint64_t AppendBody(WalFrame::Type type, const std::string& body,
                      bool force_durable) EXCLUDES(mu_);
  /// Marks the sticky I/O failure (first message wins) and wakes every
  /// group-commit waiter so none hangs on a log that stopped persisting.
  Status RecordIoError(const std::string& what) EXCLUDES(mu_);
  /// Writes `buf` (holding `records` frames) to the active segment and
  /// optionally fsyncs; rotates afterwards when the segment outgrew the
  /// threshold.
  Status WriteAndMaybeSync(const std::string& buf, uint64_t last_seq,
                           size_t records, bool sync)
      REQUIRES(io_mu_) EXCLUDES(mu_);
  void FlusherLoop() EXCLUDES(mu_, io_mu_);

  const WalOptions opts_;

  /// io_mu_ serializes file writes so flusher, group-commit leader and
  /// Flush() never interleave frames; mu_ orders sequence assignment and
  /// guards the pending buffer. Whenever both are held, io_mu_ is taken
  /// first and mu_ only for the short buffer swap.
  sync::Mutex io_mu_{sync::LockRank::kWalIo, "wal.io"};
  mutable sync::Mutex mu_ ACQUIRED_AFTER(io_mu_){sync::LockRank::kWalPending,
                                                 "wal.pending"};
  sync::CondVar pending_cv_;  ///< wakes the flusher
  sync::CondVar durable_cv_;  ///< wakes group-commit waiters
  std::string pending_ GUARDED_BY(mu_);  ///< encoded frames awaiting write
  uint64_t pending_last_seq_ GUARDED_BY(mu_) = 0;
  size_t pending_count_ GUARDED_BY(mu_) = 0;  ///< frames in pending_
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::atomic<uint64_t> durable_seq_{0};
  /// A leader holds the fsync baton.
  bool group_flush_in_progress_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::atomic<bool> io_failed_{false};
  Status io_error_ GUARDED_BY(mu_);  ///< first failure, sticky

  int fd_ GUARDED_BY(io_mu_) = -1;
  uint64_t segment_size_ GUARDED_BY(io_mu_) = 0;
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::thread flusher_;

  // Cached metric handles (null when WalOptions::metrics is unset).
  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_fsyncs_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_rotations_ = nullptr;
  obs::Histogram* m_fsync_us_ = nullptr;
  obs::Histogram* m_batch_records_ = nullptr;
};

/// Replays every WAL frame with seq >= `from_seq` in `dir` in sequence
/// order, stopping cleanly at a torn tail (a crash mid-write leaves a
/// partial record at the end of the newest segment; it was never acked, so
/// it is skipped, as is anything after it in that segment). `max_seq_seen`
/// receives the highest sequence number decoded (0 when none).
Status ReplayWal(const std::string& dir, uint64_t from_seq,
                 const std::function<Status(WalFrame&&)>& cb,
                 uint64_t* max_seq_seen);

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Snapshot of one table at checkpoint time: schema (including indexes and
/// resolved foreign keys) plus every committed row with its original commit
/// timestamp. Tombstoned rows are simply absent — segments older than the
/// checkpoint are deleted, so their deletes never replay.
struct CheckpointTable {
  int table_id = 0;
  TableSchema schema;
  std::vector<std::pair<uint64_t, Row>> rows;  // (commit_ts, full row)
};

/// A full database checkpoint: recovery loads this, then replays WAL frames
/// with seq >= wal_next_seq on top.
struct CheckpointImage {
  uint64_t oracle_ts = 0;      ///< timestamp watermark to re-seed the oracle
  uint64_t wal_next_seq = 1;   ///< first WAL seq NOT covered by the image
  std::vector<CheckpointTable> tables;  // creation order (FK refs resolve)
};

/// Atomically replaces the checkpoint in `dir` (write tmp, fsync, rename).
Status WriteCheckpoint(const std::string& dir, const CheckpointImage& image);

/// Loads the checkpoint from `dir`; NotFound when none exists. A corrupt
/// image (bad CRC) fails with Internal rather than silently losing data.
StatusOr<CheckpointImage> ReadCheckpoint(const std::string& dir);

// ---------------------------------------------------------------------------
// In-memory commit log (replication feed)
// ---------------------------------------------------------------------------

/// In-memory ordered redo log connecting the row store to the columnar
/// replica. The paper's TiDB deployment ships TiKV raft logs to TiFlash
/// asynchronously; this log plus the Replicator reproduce that pipeline
/// (ordering, watermarks, configurable lag) without the network. With a
/// WalWriter attached, Append also persists each record to disk — the
/// durable half of the pipeline.
class CommitLog {
 public:
  /// Appends a record (commit_ts must be monotone; enforced by the caller
  /// holding commit order through the timestamp oracle). Returns a
  /// durability ticket for WaitDurable, or 0 when no wait is needed (no WAL
  /// attached, or a mode that does not block commits).
  uint64_t Append(CommitRecord rec);

  /// Blocks until the WAL covered `ticket` with an fsync (ticket 0 skips
  /// the wait) and returns the log's sticky I/O state — non-OK when the
  /// record may never reach disk. Called by committing transactions AFTER
  /// releasing row locks, so the group-commit batch forms across
  /// concurrent committers. OK when no WAL is attached.
  Status WaitDurable(uint64_t ticket);

  /// Attaches the durable segment writer (engine startup, before any
  /// transaction runs). Not thread-safe against concurrent Append.
  void AttachWal(WalWriter* wal) { wal_ = wal; }

  /// When false, Append still feeds the WAL but drops the in-memory record:
  /// unified-store engines never start the Replicator, and retaining every
  /// commit forever would grow memory without bound during long runs.
  void set_retain_records(bool retain) {
    sync::MutexLock lk(mu_);
    retain_records_ = retain;
  }

  /// Drains records with sequence number >= `from_seq` whose wall commit
  /// time is <= `max_wall_us` into `out`, and returns the next sequence
  /// number to resume from. Consuming: each record's op payload is MOVED
  /// out (not deep-copied — a replicator poll would otherwise copy every
  /// row image twice), so a sequence number may be fetched only once. The
  /// Replicator, the single consumer, trims past what it fetched right
  /// after applying.
  uint64_t Fetch(uint64_t from_seq, int64_t max_wall_us,
                 std::vector<CommitRecord>* out);

  /// Drops records with sequence number < `up_to_seq` (applied by all
  /// consumers). Keeps memory bounded during long runs.
  void Trim(uint64_t up_to_seq);

  /// Total records ever appended.
  uint64_t size() const;

  /// Commit timestamp of the oldest record at or after sequence `from_seq`
  /// still retained in memory, or 0 when none is pending. The replicator
  /// pins the MVCC vacuum's watermark here while its apply frontier lags,
  /// so a future replica rebuild from the row store can always reread what
  /// the pipeline has not shipped yet.
  uint64_t OldestPendingCommitTs(uint64_t from_seq) const;

 private:
  mutable sync::Mutex mu_{sync::LockRank::kCommitLog, "commitlog"};
  std::deque<CommitRecord> records_ GUARDED_BY(mu_);
  uint64_t base_seq_ GUARDED_BY(mu_) = 0;  ///< seq of records_.front()
  bool retain_records_ GUARDED_BY(mu_) = true;
  /// Wired once by AttachWal before any transaction runs and immutable
  /// afterwards (deliberately not lock-guarded: Append reads it outside
  /// mu_ so the disk append never runs inside the in-memory critical
  /// section).
  WalWriter* wal_ = nullptr;
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_WAL_H_
