#ifndef OLXP_STORAGE_WAL_H_
#define OLXP_STORAGE_WAL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/value.h"

namespace olxp::storage {

/// One logical row mutation inside a committed transaction.
struct LogOp {
  enum class Kind { kUpsert, kDelete };
  Kind kind = Kind::kUpsert;
  int table_id = 0;
  Row pk;
  Row data;  ///< full row image for upserts; empty for deletes
};

/// A committed transaction's redo record.
struct CommitRecord {
  uint64_t commit_ts = 0;
  int64_t commit_wall_us = 0;  ///< wall time of commit (drives replication lag)
  std::vector<LogOp> ops;
};

/// In-memory ordered redo log connecting the row store to the columnar
/// replica. The paper's TiDB deployment ships TiKV raft logs to TiFlash
/// asynchronously; this log plus the Replicator reproduce that pipeline
/// (ordering, watermarks, configurable lag) without the network.
class CommitLog {
 public:
  /// Appends a record (commit_ts must be monotone; enforced by the caller
  /// holding commit order through the timestamp oracle).
  void Append(CommitRecord rec);

  /// Drains records with sequence number >= `from_seq` whose wall commit
  /// time is <= `max_wall_us` into `out`, and returns the next sequence
  /// number to resume from. Consuming: each record's op payload is MOVED
  /// out (not deep-copied — a replicator poll would otherwise copy every
  /// row image twice), so a sequence number may be fetched only once. The
  /// Replicator, the single consumer, trims past what it fetched right
  /// after applying.
  uint64_t Fetch(uint64_t from_seq, int64_t max_wall_us,
                 std::vector<CommitRecord>* out);

  /// Drops records with sequence number < `up_to_seq` (applied by all
  /// consumers). Keeps memory bounded during long runs.
  void Trim(uint64_t up_to_seq);

  /// Total records ever appended.
  uint64_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<CommitRecord> records_;
  uint64_t base_seq_ = 0;  ///< sequence number of records_.front()
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_WAL_H_
