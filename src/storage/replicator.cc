#include "storage/replicator.h"

#include <limits>

#include "common/clock.h"

namespace olxp::storage {

Replicator::Replicator(CommitLog* log, ColumnStore* store, int64_t lag_micros,
                       int64_t poll_micros)
    : log_(log),
      store_(store),
      lag_micros_(lag_micros),
      poll_micros_(poll_micros) {}

Replicator::~Replicator() {
  Stop();
  if (registry_ != nullptr && frontier_handle_ != 0) {
    registry_->Release(frontier_handle_);
  }
}

void Replicator::set_snapshot_registry(SnapshotRegistry* registry) {
  sync::MutexLock lk(apply_mu_);
  if (registry_ != nullptr && frontier_handle_ != 0) {
    registry_->Release(frontier_handle_);
    frontier_handle_ = 0;
  }
  registry_ = registry;
  if (registry_ != nullptr) {
    frontier_handle_ = registry_->Register(SnapshotRegistry::kUnpinned);
  }
}

void Replicator::set_metrics(obs::MetricsRegistry* metrics) {
  sync::MutexLock lk(apply_mu_);
  if (metrics == nullptr) {
    m_applied_ = nullptr;
    m_apply_batches_ = nullptr;
    m_frontier_seq_ = nullptr;
    m_pending_ = nullptr;
    m_apply_lag_us_ = nullptr;
    return;
  }
  m_applied_ = metrics->GetCounter("repl.records_applied");
  m_apply_batches_ = metrics->GetCounter("repl.apply_batches");
  m_frontier_seq_ = metrics->GetGauge("repl.apply_frontier_seq");
  m_pending_ = metrics->GetGauge("repl.pending_records");
  m_apply_lag_us_ = metrics->GetGauge("repl.apply_lag_us");
}

void Replicator::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { Run(); });
}

void Replicator::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  if (thread_.joinable()) thread_.join();
  // Final bounded drain: the thread may have been sleeping between polls
  // when the flag flipped, leaving records that were already due (older
  // than the lag) unapplied. Without this, a commit immediately before
  // Stop() is silently missing from the replica that tests then read.
  ApplyUpTo(NowMicros() - lag_micros_.load(std::memory_order_relaxed));
}

void Replicator::Run() {
  while (running_.load(std::memory_order_relaxed)) {
    ApplyUpTo(NowMicros() - lag_micros_.load(std::memory_order_relaxed));
    // A real OS sleep, not SleepMicros: the poll interval is scheduling
    // slack, not a simulated device latency, and the spin-wait tail would
    // otherwise burn a full core for the life of the database.
    std::this_thread::sleep_for(std::chrono::microseconds(poll_micros_));
  }
}

void Replicator::ApplyUpTo(int64_t max_wall_us) {
  sync::MutexLock lk(apply_mu_);
  std::vector<CommitRecord> batch;
  uint64_t next = log_->Fetch(next_seq_.load(std::memory_order_relaxed),
                              max_wall_us, &batch);
  for (const CommitRecord& rec : batch) {
    store_->ApplyCommit(rec);
  }
  next_seq_.store(next, std::memory_order_release);
  log_->Trim(next);
  if (m_applied_ != nullptr && !batch.empty()) {
    m_applied_->Add(static_cast<int64_t>(batch.size()));
    m_apply_batches_->Add(1);
    // Replica freshness: age of the newest commit just shipped. With
    // synthetic wall times (commit_wall_us == 0) the lag is meaningless,
    // so skip rather than publish a huge bogus value.
    const int64_t newest_wall = batch.back().commit_wall_us;
    if (newest_wall > 0) {
      const int64_t lag = NowMicros() - newest_wall;
      m_apply_lag_us_->Set(lag > 0 ? lag : 0);
    }
  }
  if (m_frontier_seq_ != nullptr) {
    m_frontier_seq_->Set(static_cast<int64_t>(next));
    const uint64_t appended = log_->size();
    m_pending_->Set(static_cast<int64_t>(appended > next ? appended - next : 0));
  }
  if (registry_ != nullptr && frontier_handle_ != 0) {
    // Pin the vacuum watermark at the oldest commit still awaiting apply
    // (records inside the lag window); unpin when fully caught up.
    uint64_t pending = log_->OldestPendingCommitTs(next);
    registry_->Update(frontier_handle_,
                      pending == 0 ? SnapshotRegistry::kUnpinned : pending);
  }
}

void Replicator::CatchUp() {
  ApplyUpTo(std::numeric_limits<int64_t>::max());
}

}  // namespace olxp::storage
