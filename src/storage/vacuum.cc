#include "storage/vacuum.h"

#include "common/clock.h"

namespace olxp::storage {

Vacuum::Vacuum(RowStore* store, SnapshotRegistry* registry,
               const TimestampOracle* oracle, VacuumConfig config)
    : store_(store), registry_(registry), oracle_(oracle), config_(config) {
  if (config_.metrics != nullptr) {
    m_passes_ = config_.metrics->GetCounter("vacuum.passes");
    m_versions_ = config_.metrics->GetCounter("vacuum.versions_reclaimed");
    m_tombstones_ = config_.metrics->GetCounter("vacuum.tombstones_reclaimed");
    m_index_entries_ =
        config_.metrics->GetCounter("vacuum.index_entries_reclaimed");
    m_pass_us_ = config_.metrics->GetHistogram("vacuum.pass_us");
    m_watermark_ = config_.metrics->GetGauge("vacuum.watermark");
    m_watermark_age_ = config_.metrics->GetGauge("vacuum.watermark_age_ts");
    m_active_snapshots_ = config_.metrics->GetGauge("vacuum.active_snapshots");
  }
}

Vacuum::~Vacuum() { Stop(); }

void Vacuum::Start() {
  if (config_.interval_us <= 0) return;
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { Run(); });
}

void Vacuum::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  {
    // Flag-flip and notify under wake_mu_: notifying outside the mutex can
    // land between the waiter's predicate check and its block, losing the
    // wakeup and stalling Stop() for a whole interval.
    sync::MutexLock lk(wake_mu_);
  }
  wake_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void Vacuum::Run() {
  while (running_.load(std::memory_order_relaxed)) {
    RunOnce();
    // Real OS sleep (scheduling slack, not simulated latency), interruptible
    // so Stop() never waits out a long interval.
    sync::MutexLock lk(wake_mu_);
    // The predicate only reads the atomic running_ flag (nothing guarded),
    // so the predicate overload is safe under the analysis.
    wake_cv_.WaitFor(lk, std::chrono::microseconds(config_.interval_us),
                     [this] {
                       return !running_.load(std::memory_order_relaxed);
                     });
  }
}

uint64_t Vacuum::HistoryCap() {
  sync::MutexLock lk(history_mu_);
  const int64_t now = NowMicros();
  history_.emplace_back(now, oracle_->Current());
  if (config_.gc_history_us <= 0) {
    // No time-based retention: only live snapshots constrain reclamation.
    if (history_.size() > 2) history_.pop_front();
    return ~0ull;
  }
  // Newest sample old enough that everything at or below its timestamp has
  // been history for at least gc_history_us.
  uint64_t cap = 0;
  while (history_.size() > 1 &&
         history_[1].first <= now - config_.gc_history_us) {
    history_.pop_front();
  }
  if (history_.front().first <= now - config_.gc_history_us) {
    cap = history_.front().second;
  }
  return cap;
}

VacuumStats Vacuum::RunOnce() {
  sync::MutexLock pass_lk(pass_mu_);
  const int64_t pass_start_us = NowMicros();
  const uint64_t cap = HistoryCap();
  VacuumStats pass;
  for (int id : store_->TableIds()) {
    MvccTable* t = store_->table(id);
    if (t == nullptr) continue;
    // Recompute per table: a long pass over many tables would otherwise
    // hold reclamation back to a watermark that has since advanced. Using a
    // smaller (older) watermark is always safe; a fresher one reclaims more.
    uint64_t watermark = registry_->Watermark(*oracle_);
    if (watermark > cap) watermark = cap;
    last_watermark_.store(watermark, std::memory_order_release);
    if (watermark == 0) continue;
    pass += t->VacuumBelow(watermark, config_.batch_rows);
  }
  {
    sync::MutexLock lk(totals_mu_);
    totals_ += pass;
  }
  passes_.fetch_add(1, std::memory_order_relaxed);
  if (m_passes_ != nullptr) {
    m_passes_->Add(1);
    m_versions_->Add(static_cast<int64_t>(pass.versions_removed));
    m_tombstones_->Add(static_cast<int64_t>(pass.chains_removed));
    m_index_entries_->Add(static_cast<int64_t>(pass.index_entries_removed));
    m_pass_us_->Record(NowMicros() - pass_start_us);
    // Watermark age in logical-timestamp distance: how far reclamation
    // trails the newest published commit (0 = fully caught up).
    const uint64_t watermark =
        last_watermark_.load(std::memory_order_relaxed);
    const uint64_t current = oracle_->Current();
    m_watermark_->Set(static_cast<int64_t>(watermark));
    m_watermark_age_->Set(
        static_cast<int64_t>(current > watermark ? current - watermark : 0));
    m_active_snapshots_->Set(
        static_cast<int64_t>(registry_->ActiveCount()));
  }
  return pass;
}

VacuumStats Vacuum::Totals() const {
  sync::MutexLock lk(totals_mu_);
  return totals_;
}

}  // namespace olxp::storage
