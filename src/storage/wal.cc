#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/clock.h"
#include "common/strings.h"

namespace olxp::storage {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

uint32_t Crc32(const void* data, size_t len) {
  // ISO-HDLC polynomial (same as zlib), table generated on first use.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Binary encoding (little-endian fixed width; the WAL never crosses hosts)
// ---------------------------------------------------------------------------

namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over a decoded payload. Every Get
/// returns a sane default once `ok` drops; callers check `ok` at the end.
struct Cursor {
  const char* p;
  size_t left;
  bool ok = true;

  bool Take(void* dst, size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  uint8_t GetU8() {
    uint8_t v = 0;
    Take(&v, sizeof v);
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    Take(&v, sizeof v);
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    Take(&v, sizeof v);
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    Take(&v, sizeof v);
    return v;
  }
  int32_t GetI32() {
    int32_t v = 0;
    Take(&v, sizeof v);
    return v;
  }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string s(p, n);
    p += n;
    left -= n;
    return s;
  }
};

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
    case ValueType::kTimestamp:
      PutI64(out, v.AsInt());
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof bits);
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

Value GetValue(Cursor* c) {
  switch (static_cast<ValueType>(c->GetU8())) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt:
      return Value::Int(c->GetI64());
    case ValueType::kTimestamp:
      return Value::Timestamp(c->GetI64());
    case ValueType::kDouble: {
      uint64_t bits = c->GetU64();
      double d;
      std::memcpy(&d, &bits, sizeof d);
      return Value::Double(d);
    }
    case ValueType::kString:
      return Value::String(c->GetString());
    default:
      c->ok = false;
      return Value::Null();
  }
}

void PutRow(std::string* out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(out, v);
}

Row GetRow(Cursor* c) {
  uint32_t n = c->GetU32();
  Row row;
  if (!c->ok || n > c->left) {  // each value takes >= 1 byte
    c->ok = false;
    return row;
  }
  row.reserve(n);
  for (uint32_t i = 0; i < n && c->ok; ++i) row.push_back(GetValue(c));
  return row;
}

void PutIntVec(std::string* out, const std::vector<int>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (int x : v) PutI32(out, x);
}

std::vector<int> GetIntVec(Cursor* c) {
  uint32_t n = c->GetU32();
  std::vector<int> v;
  if (!c->ok || n > c->left / sizeof(int32_t)) {
    c->ok = false;
    return v;
  }
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) v.push_back(c->GetI32());
  return v;
}

void PutIndexDef(std::string* out, const IndexDef& def) {
  PutString(out, def.name);
  PutIntVec(out, def.column_idx);
  PutU8(out, def.unique ? 1 : 0);
}

IndexDef GetIndexDef(Cursor* c) {
  IndexDef def;
  def.name = c->GetString();
  def.column_idx = GetIntVec(c);
  def.unique = c->GetU8() != 0;
  return def;
}

void PutSchema(std::string* out, const TableSchema& schema) {
  PutString(out, schema.name());
  PutU32(out, static_cast<uint32_t>(schema.columns().size()));
  for (const ColumnDef& col : schema.columns()) {
    PutString(out, col.name);
    PutU8(out, static_cast<uint8_t>(col.type));
    PutU8(out, col.nullable ? 1 : 0);
  }
  PutIntVec(out, schema.pk_columns());
  PutU32(out, static_cast<uint32_t>(schema.indexes().size()));
  for (const IndexDef& idx : schema.indexes()) PutIndexDef(out, idx);
  PutU32(out, static_cast<uint32_t>(schema.foreign_keys().size()));
  for (const ForeignKeyDef& fk : schema.foreign_keys()) {
    PutIntVec(out, fk.column_idx);
    PutString(out, fk.ref_table);
    PutIntVec(out, fk.ref_column_idx);
  }
}

// A CRC match only proves the bytes we wrote are the bytes we read; a bug
// (or a hostile log) can still deliver structurally valid, semantically
// poisonous schemas. Everything recovery later trusts blindly — column type
// bytes, pk/index/fk column indices — is validated here, so a bad frame
// degrades to !c->ok (clean replay stop) instead of out-of-bounds indexing
// in ExtractPrimaryKey or an invalid ValueType reaching the type switches.
TableSchema GetSchema(Cursor* c) {
  std::string name = c->GetString();
  uint32_t ncols = c->GetU32();
  std::vector<ColumnDef> cols;
  if (!c->ok || ncols > c->left) {
    c->ok = false;
    return TableSchema();
  }
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols && c->ok; ++i) {
    ColumnDef col;
    col.name = c->GetString();
    const uint8_t type_byte = c->GetU8();
    if (type_byte > static_cast<uint8_t>(ValueType::kTimestamp)) {
      c->ok = false;
      return TableSchema();
    }
    col.type = static_cast<ValueType>(type_byte);
    col.nullable = c->GetU8() != 0;
    cols.push_back(std::move(col));
  }
  std::vector<int> pk = GetIntVec(c);
  for (int idx : pk) {
    if (idx < 0 || static_cast<uint32_t>(idx) >= ncols) {
      c->ok = false;
      return TableSchema();
    }
  }
  TableSchema schema(std::move(name), std::move(cols), std::move(pk));
  uint32_t nidx = c->GetU32();
  for (uint32_t i = 0; i < nidx && c->ok; ++i) {
    // AddIndex bounds-checks the column indices against the schema; a
    // rejected index means a corrupt frame, not an ignorable detail.
    if (!schema.AddIndex(GetIndexDef(c)).ok()) c->ok = false;
  }
  uint32_t nfk = c->GetU32();
  for (uint32_t i = 0; i < nfk && c->ok; ++i) {
    ForeignKeyDef fk;
    fk.column_idx = GetIntVec(c);
    fk.ref_table = c->GetString();
    fk.ref_column_idx = GetIntVec(c);
    for (int idx : fk.column_idx) {
      if (idx < 0 || static_cast<uint32_t>(idx) >= ncols) c->ok = false;
    }
    if (!c->ok) break;
    schema.AddForeignKey(std::move(fk));
  }
  return schema;
}

void PutCommitBody(std::string* out, const CommitRecord& rec) {
  PutU64(out, rec.commit_ts);
  PutI64(out, rec.commit_wall_us);
  PutU32(out, static_cast<uint32_t>(rec.ops.size()));
  for (const LogOp& op : rec.ops) {
    PutU8(out, op.kind == LogOp::Kind::kDelete ? 1 : 0);
    PutI32(out, op.table_id);
    PutRow(out, op.pk);
    PutRow(out, op.data);
  }
}

CommitRecord GetCommitBody(Cursor* c) {
  CommitRecord rec;
  rec.commit_ts = c->GetU64();
  rec.commit_wall_us = c->GetI64();
  uint32_t nops = c->GetU32();
  if (!c->ok || nops > c->left) {
    c->ok = false;
    return rec;
  }
  rec.ops.reserve(nops);
  for (uint32_t i = 0; i < nops && c->ok; ++i) {
    LogOp op;
    op.kind = c->GetU8() != 0 ? LogOp::Kind::kDelete : LogOp::Kind::kUpsert;
    op.table_id = c->GetI32();
    op.pk = GetRow(c);
    op.data = GetRow(c);
    rec.ops.push_back(std::move(op));
  }
  return rec;
}

constexpr uint32_t kMaxFrameLen = 1u << 30;
constexpr uint64_t kCheckpointMagic = 0x4F4C585043503031ull;  // "OLXPCP01"
constexpr const char kCheckpointName[] = "checkpoint";
constexpr const char kSegmentPrefix[] = "wal-";
constexpr const char kSegmentSuffix[] = ".seg";

std::string SegmentName(uint64_t first_seq) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%020llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(first_seq), kSegmentSuffix);
  return buf;
}

/// (first_seq, path) for every segment in `dir`, ascending.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0 ||
        name.size() <= std::strlen(kSegmentPrefix) +
                           std::strlen(kSegmentSuffix) ||
        name.substr(name.size() - std::strlen(kSegmentSuffix)) !=
            kSegmentSuffix) {
      continue;
    }
    uint64_t seq = std::strtoull(name.c_str() + std::strlen(kSegmentPrefix),
                                 nullptr, 10);
    out.emplace_back(seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void EncodeFrame(const WalFrame& frame, std::string* out) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(frame.type));
  PutU64(&payload, frame.seq);
  switch (frame.type) {
    case WalFrame::Type::kCommit:
      PutCommitBody(&payload, frame.commit);
      break;
    case WalFrame::Type::kCreateTable:
      PutI32(&payload, frame.table_id);
      PutSchema(&payload, frame.schema);
      break;
    case WalFrame::Type::kCreateIndex:
      PutString(&payload, frame.table_name);
      PutIndexDef(&payload, frame.index);
      break;
  }
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

bool DecodeFrame(const std::string& data, size_t* offset, WalFrame* frame) {
  size_t off = *offset;
  if (data.size() - off < 8) return false;
  uint32_t len, crc;
  std::memcpy(&len, data.data() + off, 4);
  std::memcpy(&crc, data.data() + off + 4, 4);
  if (len > kMaxFrameLen || data.size() - off - 8 < len) return false;
  const char* payload = data.data() + off + 8;
  if (Crc32(payload, len) != crc) return false;

  Cursor c{payload, len};
  WalFrame f;
  f.type = static_cast<WalFrame::Type>(c.GetU8());
  f.seq = c.GetU64();
  switch (f.type) {
    case WalFrame::Type::kCommit:
      f.commit = GetCommitBody(&c);
      break;
    case WalFrame::Type::kCreateTable:
      f.table_id = c.GetI32();
      f.schema = GetSchema(&c);
      break;
    case WalFrame::Type::kCreateIndex:
      f.table_name = c.GetString();
      f.index = GetIndexDef(&c);
      break;
    default:
      return false;
  }
  if (!c.ok || c.left != 0) return false;
  *frame = std::move(f);
  *offset = off + 8 + len;
  return true;
}

// ---------------------------------------------------------------------------
// DurabilityMode
// ---------------------------------------------------------------------------

const char* DurabilityModeName(DurabilityMode m) {
  switch (m) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kAsync:
      return "async";
    case DurabilityMode::kSync:
      return "sync";
    case DurabilityMode::kGroup:
      return "group";
  }
  return "?";
}

StatusOr<DurabilityMode> DurabilityModeByName(std::string_view name) {
  std::string n = ToLower(name);
  if (n == "off") return DurabilityMode::kOff;
  if (n == "async") return DurabilityMode::kAsync;
  if (n == "sync") return DurabilityMode::kSync;
  if (n == "group") return DurabilityMode::kGroup;
  return Status::InvalidArgument("unknown durability mode: " +
                                 std::string(name));
}

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

WalWriter::WalWriter(WalOptions opts) : opts_(std::move(opts)) {}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const WalOptions& opts,
                                                     uint64_t next_seq) {
  if (opts.dir.empty()) {
    return Status::InvalidArgument("WAL directory not set");
  }
  std::error_code ec;
  fs::create_directories(opts.dir, ec);
  if (ec) {
    return Status::Internal("cannot create WAL dir " + opts.dir + ": " +
                            ec.message());
  }
  std::unique_ptr<WalWriter> w(new WalWriter(opts));
  {
    sync::MutexLock lk(w->mu_);
    w->next_seq_ = next_seq;
  }
  w->durable_seq_.store(next_seq - 1, std::memory_order_relaxed);
  if (opts.metrics != nullptr) {
    w->m_appends_ = opts.metrics->GetCounter("wal.appends");
    w->m_fsyncs_ = opts.metrics->GetCounter("wal.fsyncs");
    w->m_bytes_ = opts.metrics->GetCounter("wal.bytes_written");
    w->m_rotations_ = opts.metrics->GetCounter("wal.segments_rotated");
    w->m_fsync_us_ = opts.metrics->GetHistogram("wal.fsync_us");
    w->m_batch_records_ =
        opts.metrics->GetHistogram("wal.group_batch_records");
  }
  {
    sync::MutexLock io(w->io_mu_);
    OLXP_RETURN_NOT_OK(w->OpenSegment(next_seq));
  }
  if (opts.mode == DurabilityMode::kAsync) {
    w->flusher_ = std::thread([p = w.get()] { p->FlusherLoop(); });
  }
  return w;
}

WalWriter::~WalWriter() {
  {
    sync::MutexLock lk(mu_);
    stop_ = true;
  }
  pending_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  // Sticky-error state is re-read by whoever cares; shutdown cannot
  // propagate it anywhere.
  (void)Flush();
  sync::MutexLock io(io_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::OpenSegment(uint64_t first_seq) {
  if (fd_ >= 0) ::close(fd_);
  const std::string path =
      (fs::path(opts_.dir) / SegmentName(first_seq)).string();
  // O_TRUNC: a file already at this name can only hold bytes replay could
  // not decode — any decodable frame in wal-N.seg has seq >= N, which
  // would have pushed next_seq past N. Concretely: a crash mid-write of a
  // segment's FIRST frame leaves a torn-only file; appending acked commits
  // behind that junk would lose them at the next replay, so discard it.
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::Internal("cannot open WAL segment " + path);
  }
  segment_size_ = 0;
  return Status::OK();
}

uint64_t WalWriter::AppendBody(WalFrame::Type type, const std::string& body,
                               bool force_durable) {
  uint64_t seq;
  {
    sync::MutexLock lk(mu_);
    seq = next_seq_++;
    // Frame wire format (must match EncodeFrame): [len][crc][type,seq,body].
    std::string payload;
    payload.reserve(9 + body.size());
    PutU8(&payload, static_cast<uint8_t>(type));
    PutU64(&payload, seq);
    payload.append(body);
    PutU32(&pending_, static_cast<uint32_t>(payload.size()));
    PutU32(&pending_, Crc32(payload.data(), payload.size()));
    pending_.append(payload);
    pending_last_seq_ = seq;
    ++pending_count_;
  }
  if (m_appends_ != nullptr) m_appends_->Add(1);
  if (opts_.mode == DurabilityMode::kSync || force_durable) {
    // Failure is sticky: Append returns a seq either way and the caller's
    // WaitDurable / last_error reports the I/O state.
    (void)Flush();
  } else if (opts_.mode == DurabilityMode::kAsync) {
    pending_cv_.NotifyOne();  // wake the write-behind flusher
  }
  // Group mode: nothing to wake — the first committer reaching WaitDurable
  // flushes the batch itself.
  return seq;
}

uint64_t WalWriter::AppendCommit(const CommitRecord& rec) {
  // Serialize straight from the caller's record — this runs inside the
  // engine-wide commit critical section, where deep-copying every row
  // image into a scratch frame would lengthen the serial path for nothing.
  std::string body;
  PutCommitBody(&body, rec);
  return AppendBody(WalFrame::Type::kCommit, body, /*force_durable=*/false);
}

uint64_t WalWriter::AppendCreateTable(int table_id,
                                      const TableSchema& schema) {
  std::string body;
  PutI32(&body, table_id);
  PutSchema(&body, schema);
  return AppendBody(WalFrame::Type::kCreateTable, body,
                    /*force_durable=*/true);
}

uint64_t WalWriter::AppendCreateIndex(const std::string& table_name,
                                      const IndexDef& def) {
  std::string body;
  PutString(&body, table_name);
  PutIndexDef(&body, def);
  return AppendBody(WalFrame::Type::kCreateIndex, body,
                    /*force_durable=*/true);
}

Status WalWriter::last_error() const {
  if (!io_failed_.load(std::memory_order_acquire)) return Status::OK();
  sync::MutexLock lk(mu_);
  return io_error_;
}

Status WalWriter::WaitDurable(uint64_t seq) {
  if (opts_.mode != DurabilityMode::kGroup || seq == 0) {
    // Sync already persisted (or failed) in Append; async never waits.
    // Either way the sticky state is the answer.
    return last_error();
  }
  if (durable_seq_.load(std::memory_order_acquire) >= seq) {
    // Durability first, like the loop below: a record synced before some
    // later failure is durable, and its commit must report success.
    return Status::OK();
  }
  sync::MutexLock lk(mu_);
  for (;;) {
    // Durability first: a record synced before a later failure is still
    // durable. Then the sticky error — never report success for a record
    // the log could not persist.
    if (durable_seq_.load(std::memory_order_acquire) >= seq) {
      return Status::OK();
    }
    if (io_failed_.load(std::memory_order_acquire)) return io_error_;
    if (!group_flush_in_progress_) {
      // Become the leader: fsync once for every record enqueued so far
      // (ours included — seq <= pending_last_seq_ by construction). While
      // the fsync sleeps in the kernel, other committers keep enqueueing;
      // the first of them to wake becomes the next leader. A batch forms
      // per fsync without any flusher-thread handoff on the commit path.
      group_flush_in_progress_ = true;
      lk.Unlock();
      if (opts_.group_commit_window_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(opts_.group_commit_window_us));
      }
      {
        // Same order as Flush(): io_mu_ first, then a short mu_ hold for
        // the swap, so concurrent DDL/checkpoint flushes cannot interleave
        // frames out of sequence order in the segment file.
        sync::MutexLock io(io_mu_);
        std::string buf;
        uint64_t last = 0;
        size_t records = 0;
        {
          sync::MutexLock swap_lk(mu_);
          buf.swap(pending_);
          last = pending_last_seq_;
          records = pending_count_;
          pending_count_ = 0;
        }
        if (!buf.empty()) {
          // Failure lands in the sticky state the loop re-reads below.
          (void)WriteAndMaybeSync(buf, last, records, /*sync=*/true);
        }
      }
      // Our record was enqueued before this call, so it was either in the
      // batch just synced or in an earlier completed flush; loop back to
      // report durable success — or the I/O failure the flush just hit.
      lk.Lock();
      group_flush_in_progress_ = false;
      lk.Unlock();
      durable_cv_.NotifyAll();
      lk.Lock();
      continue;
    }
    durable_cv_.Wait(lk);
  }
}

Status WalWriter::Flush() {
  // io_mu_ first, then a short mu_ hold to swap the buffer: the write is
  // outside mu_ (appends keep flowing) but segment bytes stay in seq order.
  sync::MutexLock io(io_mu_);
  std::string buf;
  uint64_t last = 0;
  size_t records = 0;
  {
    sync::MutexLock lk(mu_);
    buf.swap(pending_);
    last = pending_last_seq_;
    records = pending_count_;
    pending_count_ = 0;
  }
  if (!buf.empty()) {
    OLXP_RETURN_NOT_OK(WriteAndMaybeSync(buf, last, records, /*sync=*/true));
  } else if (fd_ >= 0 &&
             durable_seq_.load(std::memory_order_acquire) < last) {
    // Async mode may have written these bytes without syncing them.
    const int64_t t0 = NowMicros();
    if (::fsync(fd_) != 0) {
      return RecordIoError("WAL fsync failed");
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (m_fsyncs_ != nullptr) {
      m_fsyncs_->Add(1);
      m_fsync_us_->Record(NowMicros() - t0);
    }
    durable_seq_.store(last, std::memory_order_release);
    durable_cv_.NotifyAll();
  }
  return last_error();
}

Status WalWriter::RecordIoError(const std::string& what) {
  Status st = Status::Internal(what);
  {
    sync::MutexLock lk(mu_);
    if (!io_failed_.load(std::memory_order_relaxed)) io_error_ = st;
    io_failed_.store(true, std::memory_order_release);
    st = io_error_;
  }
  durable_cv_.NotifyAll();  // waiters must observe the failure, not hang
  return st;
}

Status WalWriter::WriteAndMaybeSync(const std::string& buf, uint64_t last_seq,
                                    size_t records, bool sync) {
  if (fd_ < 0) {
    return RecordIoError("WAL segment unavailable after earlier failure");
  }
  const char* p = buf.data();
  size_t left = buf.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n <= 0) {
      if (errno == EINTR) continue;
      // Poison the segment: a partial write may have left a torn frame,
      // and replay stops at the first torn frame — any frame appended
      // after it would be unreachable, so nothing may ever be appended
      // (let alone acked durable) behind it.
      ::close(fd_);
      fd_ = -1;
      return RecordIoError("WAL write failed");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  bytes_written_.fetch_add(buf.size(), std::memory_order_relaxed);
  segment_size_ += buf.size();
  if (m_bytes_ != nullptr) m_bytes_->Add(static_cast<int64_t>(buf.size()));

  const bool rotate = segment_size_ >= opts_.segment_bytes;
  if (sync || rotate) {
    const int64_t t0 = NowMicros();
    if (::fsync(fd_) != 0) {
      return RecordIoError("WAL fsync failed");
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (m_fsyncs_ != nullptr) {
      m_fsyncs_->Add(1);
      m_fsync_us_->Record(NowMicros() - t0);
      // One fsync covered `records` commits/DDLs: the group-commit batch
      // size distribution the durability figure reasons about.
      m_batch_records_->Record(static_cast<int64_t>(records));
    }
    durable_seq_.store(last_seq, std::memory_order_release);
    {
      sync::MutexLock lk(mu_);  // pairs with WaitDurable's predicate check
    }
    durable_cv_.NotifyAll();
  }
  if (rotate) {
    if (m_rotations_ != nullptr) m_rotations_->Add(1);
    Status st = OpenSegment(last_seq + 1);
    if (!st.ok()) {
      fd_ = -1;  // OpenSegment closed the old fd; nothing usable remains
      return RecordIoError(st.message());
    }
  }
  return Status::OK();
}

void WalWriter::FlusherLoop() {
  // Async mode only: write behind on a coarse cadence, fsync on rotation.
  while (true) {
    {
      sync::MutexLock lk(mu_);
      // Explicit wait loop (not the predicate overload): the predicate
      // reads mu_-guarded state, and the analysis can only see the lock
      // held here, in this function's own scope.
      while (!stop_ && pending_.empty()) pending_cv_.Wait(lk);
      if (stop_) return;  // destructor flushes the remainder
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    sync::MutexLock io(io_mu_);
    std::string buf;
    uint64_t last = 0;
    size_t records = 0;
    {
      sync::MutexLock lk(mu_);
      buf.swap(pending_);
      last = pending_last_seq_;
      records = pending_count_;
      pending_count_ = 0;
    }
    if (!buf.empty()) {
      // Write-behind: failure is sticky and reported by WaitDurable/Flush.
      (void)WriteAndMaybeSync(buf, last, records, /*sync=*/false);
    }
  }
}

void WalWriter::DeleteSegmentsBefore(uint64_t seq) {
  sync::MutexLock io(io_mu_);
  auto segments = ListSegments(opts_.dir);
  // A segment is deletable when the NEXT segment starts at or below `seq`
  // (every frame it holds is then < seq). The newest segment is active.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first <= seq) {
      std::error_code ec;
      fs::remove(segments[i].second, ec);
    }
  }
  FsyncDir(opts_.dir);
}

uint64_t WalWriter::next_seq() const {
  sync::MutexLock lk(mu_);
  return next_seq_;
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

Status ReplayWal(const std::string& dir, uint64_t from_seq,
                 const std::function<Status(WalFrame&&)>& cb,
                 uint64_t* max_seq_seen) {
  *max_seq_seen = 0;
  if (!fs::exists(dir)) return Status::OK();
  for (const auto& [start_seq, path] : ListSegments(dir)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::Internal("cannot read WAL segment " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();
    size_t offset = 0;
    WalFrame frame;
    while (DecodeFrame(data, &offset, &frame)) {
      if (frame.seq > *max_seq_seen) *max_seq_seen = frame.seq;
      if (frame.seq < from_seq) continue;
      OLXP_RETURN_NOT_OK(cb(std::move(frame)));
      frame = WalFrame();
    }
    // A decode failure is a torn tail: the record was mid-write at crash
    // time and never acknowledged, so recovery stops this segment here.
    // Later segments (opened fresh after a previous recovery) still replay.
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

Status WriteCheckpoint(const std::string& dir, const CheckpointImage& image) {
  std::string body;
  PutU64(&body, image.oracle_ts);
  PutU64(&body, image.wal_next_seq);
  PutU32(&body, static_cast<uint32_t>(image.tables.size()));
  for (const CheckpointTable& t : image.tables) {
    PutI32(&body, t.table_id);
    PutSchema(&body, t.schema);
    PutU64(&body, t.rows.size());
    for (const auto& [ts, row] : t.rows) {
      PutU64(&body, ts);
      PutRow(&body, row);
    }
  }

  std::string file;
  PutU64(&file, kCheckpointMagic);
  PutU32(&file, Crc32(body.data(), body.size()));
  PutU64(&file, body.size());
  file.append(body);

  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string tmp = (fs::path(dir) / "checkpoint.tmp").string();
  const std::string final_path = (fs::path(dir) / kCheckpointName).string();
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal("cannot create " + tmp);
  const char* p = file.data();
  size_t left = file.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n <= 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("checkpoint write failed");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  // The fsync must be verified BEFORE the rename installs the image: a
  // checkpoint that never reached disk must not let the caller delete the
  // WAL segments backing the same data.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("checkpoint fsync failed");
  }
  ::close(fd);
  fs::rename(tmp, final_path, ec);
  if (ec) return Status::Internal("checkpoint rename failed: " + ec.message());
  FsyncDir(dir);
  return Status::OK();
}

StatusOr<CheckpointImage> ReadCheckpoint(const std::string& dir) {
  const std::string path = (fs::path(dir) / kCheckpointName).string();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no checkpoint in " + dir);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();

  Cursor header{data.data(), data.size()};
  if (header.GetU64() != kCheckpointMagic) {
    return Status::Internal("bad checkpoint magic in " + path);
  }
  uint32_t crc = header.GetU32();
  uint64_t body_len = header.GetU64();
  if (!header.ok || header.left < body_len) {
    return Status::Internal("truncated checkpoint " + path);
  }
  if (Crc32(header.p, body_len) != crc) {
    return Status::Internal("checkpoint CRC mismatch in " + path);
  }

  Cursor c{header.p, body_len};
  CheckpointImage image;
  image.oracle_ts = c.GetU64();
  image.wal_next_seq = c.GetU64();
  uint32_t ntables = c.GetU32();
  for (uint32_t i = 0; i < ntables && c.ok; ++i) {
    CheckpointTable t;
    t.table_id = c.GetI32();
    t.schema = GetSchema(&c);
    uint64_t nrows = c.GetU64();
    if (!c.ok || nrows > c.left) {
      c.ok = false;
      break;
    }
    t.rows.reserve(nrows);
    for (uint64_t r = 0; r < nrows && c.ok; ++r) {
      uint64_t ts = c.GetU64();
      Row row = GetRow(&c);
      // Recovery indexes these rows by the schema's pk columns without
      // further checks; reject arity mismatches here.
      if (c.ok && row.size() != t.schema.columns().size()) c.ok = false;
      t.rows.emplace_back(ts, std::move(row));
    }
    image.tables.push_back(std::move(t));
  }
  if (!c.ok) return Status::Internal("corrupt checkpoint body in " + path);
  return image;
}

// ---------------------------------------------------------------------------
// CommitLog
// ---------------------------------------------------------------------------

uint64_t CommitLog::Append(CommitRecord rec) {
  uint64_t ticket = 0;
  if (wal_ != nullptr) {
    uint64_t seq = wal_->AppendCommit(rec);
    if (wal_->mode() == DurabilityMode::kGroup) ticket = seq;
  }
  sync::MutexLock lk(mu_);
  if (retain_records_) {
    records_.push_back(std::move(rec));
  } else {
    ++base_seq_;  // keep size() counting appends with nothing retained
  }
  return ticket;
}

Status CommitLog::WaitDurable(uint64_t ticket) {
  if (wal_ == nullptr) return Status::OK();
  return wal_->WaitDurable(ticket);
}

uint64_t CommitLog::Fetch(uint64_t from_seq, int64_t max_wall_us,
                          std::vector<CommitRecord>* out) {
  sync::MutexLock lk(mu_);
  uint64_t seq = from_seq;
  if (seq < base_seq_) seq = base_seq_;
  const size_t first = seq - base_seq_;
  size_t count = 0;
  while (first + count < records_.size() &&
         records_[first + count].commit_wall_us <= max_wall_us) {
    ++count;
  }
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    CommitRecord& rec = records_[first + i];
    CommitRecord drained;
    drained.commit_ts = rec.commit_ts;
    drained.commit_wall_us = rec.commit_wall_us;
    drained.ops = std::move(rec.ops);  // consumed; caller trims past us
    out->push_back(std::move(drained));
  }
  return seq + count;
}

void CommitLog::Trim(uint64_t up_to_seq) {
  sync::MutexLock lk(mu_);
  while (base_seq_ < up_to_seq && !records_.empty()) {
    records_.pop_front();
    ++base_seq_;
  }
}

uint64_t CommitLog::size() const {
  sync::MutexLock lk(mu_);
  return base_seq_ + records_.size();
}

uint64_t CommitLog::OldestPendingCommitTs(uint64_t from_seq) const {
  sync::MutexLock lk(mu_);
  size_t idx = from_seq > base_seq_ ? from_seq - base_seq_ : 0;
  if (idx >= records_.size()) return 0;
  return records_[idx].commit_ts;
}

}  // namespace olxp::storage
