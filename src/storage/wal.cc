#include "storage/wal.h"

namespace olxp::storage {

void CommitLog::Append(CommitRecord rec) {
  std::lock_guard<std::mutex> lk(mu_);
  records_.push_back(std::move(rec));
}

uint64_t CommitLog::Fetch(uint64_t from_seq, int64_t max_wall_us,
                          std::vector<CommitRecord>* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t seq = from_seq;
  if (seq < base_seq_) seq = base_seq_;
  while (seq - base_seq_ < records_.size()) {
    const CommitRecord& rec = records_[seq - base_seq_];
    if (rec.commit_wall_us > max_wall_us) break;
    out->push_back(rec);
    ++seq;
  }
  return seq;
}

void CommitLog::Trim(uint64_t up_to_seq) {
  std::lock_guard<std::mutex> lk(mu_);
  while (base_seq_ < up_to_seq && !records_.empty()) {
    records_.pop_front();
    ++base_seq_;
  }
}

uint64_t CommitLog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return base_seq_ + records_.size();
}

}  // namespace olxp::storage
