#include "storage/wal.h"

namespace olxp::storage {

void CommitLog::Append(CommitRecord rec) {
  std::lock_guard<std::mutex> lk(mu_);
  records_.push_back(std::move(rec));
}

uint64_t CommitLog::Fetch(uint64_t from_seq, int64_t max_wall_us,
                          std::vector<CommitRecord>* out) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t seq = from_seq;
  if (seq < base_seq_) seq = base_seq_;
  const size_t first = seq - base_seq_;
  size_t count = 0;
  while (first + count < records_.size() &&
         records_[first + count].commit_wall_us <= max_wall_us) {
    ++count;
  }
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    CommitRecord& rec = records_[first + i];
    CommitRecord drained;
    drained.commit_ts = rec.commit_ts;
    drained.commit_wall_us = rec.commit_wall_us;
    drained.ops = std::move(rec.ops);  // consumed; caller trims past us
    out->push_back(std::move(drained));
  }
  return seq + count;
}

void CommitLog::Trim(uint64_t up_to_seq) {
  std::lock_guard<std::mutex> lk(mu_);
  while (base_seq_ < up_to_seq && !records_.empty()) {
    records_.pop_front();
    ++base_seq_;
  }
}

uint64_t CommitLog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return base_seq_ + records_.size();
}

}  // namespace olxp::storage
