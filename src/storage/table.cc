#include "storage/table.h"

#include <cassert>
#include <mutex>
#include <shared_mutex>

namespace olxp::storage {

const Version* MvccTable::VisibleVersion(const Chain& chain, uint64_t ts) {
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    if (it->commit_ts <= ts) return &*it;
  }
  return nullptr;
}

uint64_t MvccTable::LatestCommitTs(const Row& pk) const {
  std::shared_lock lk(mu_);
  auto it = rows_.find(pk);
  if (it == rows_.end() || it->second.versions.empty()) return 0;
  return it->second.versions.back().commit_ts;
}

std::optional<Row> MvccTable::Get(const Row& pk, uint64_t snapshot_ts) const {
  std::shared_lock lk(mu_);
  auto it = rows_.find(pk);
  if (it == rows_.end()) return std::nullopt;
  const Version* v = VisibleVersion(it->second, snapshot_ts);
  if (v == nullptr || v->deleted) return std::nullopt;
  return v->data;
}

void MvccTable::InstallVersion(const Row& pk, uint64_t commit_ts,
                               bool deleted, Row data) {
  std::unique_lock lk(mu_);
  if (index_entries_.size() != schema_.indexes().size()) {
    index_entries_.resize(schema_.indexes().size());
  }
  Chain& chain = rows_[pk];
  assert(chain.versions.empty() ||
         chain.versions.back().commit_ts <= commit_ts);
  if (!deleted) {
    for (size_t i = 0; i < schema_.indexes().size(); ++i) {
      Row ikey = schema_.ExtractIndexKey(schema_.indexes()[i], data);
      // Avoid duplicate (ikey, pk) pairs: check the narrow equal_range.
      auto [b, e] = index_entries_[i].equal_range(ikey);
      bool present = false;
      for (auto it = b; it != e; ++it) {
        if (KeyEq()(it->second, pk)) {
          present = true;
          break;
        }
      }
      if (!present) index_entries_[i].emplace(std::move(ikey), pk);
    }
  }
  chain.versions.push_back(Version{commit_ts, deleted, std::move(data)});
}

int64_t MvccTable::Scan(uint64_t snapshot_ts, const RowCallback& cb) const {
  std::shared_lock lk(mu_);
  int64_t visited = 0;
  for (const auto& [pk, chain] : rows_) {
    ++visited;
    const Version* v = VisibleVersion(chain, snapshot_ts);
    if (v == nullptr || v->deleted) continue;
    if (!cb(v->data)) break;
  }
  rows_scanned_.fetch_add(static_cast<uint64_t>(visited),
                          std::memory_order_relaxed);
  return visited;
}

int64_t MvccTable::ScanPkRange(const Row& lo, const Row& hi,
                               uint64_t snapshot_ts,
                               const RowCallback& cb) const {
  std::shared_lock lk(mu_);
  int64_t visited = 0;
  auto it = rows_.lower_bound(lo);
  for (; it != rows_.end(); ++it) {
    // Stop once past `hi`; prefix keys compare less than any extension, so
    // test "hi < pk-prefix(hi.size())" by comparing against the prefix.
    const Row& pk = it->first;
    Row prefix(pk.begin(),
               pk.begin() + std::min(pk.size(), hi.size()));
    if (KeyLess()(hi, prefix)) break;
    ++visited;
    const Version* v = VisibleVersion(it->second, snapshot_ts);
    if (v == nullptr || v->deleted) continue;
    if (!cb(v->data)) break;
  }
  rows_scanned_.fetch_add(static_cast<uint64_t>(visited),
                          std::memory_order_relaxed);
  return visited;
}

int64_t MvccTable::IndexLookup(int index_id, const Row& key,
                               uint64_t snapshot_ts,
                               std::vector<Row>* out) const {
  std::shared_lock lk(mu_);
  if (index_id < 0 ||
      static_cast<size_t>(index_id) >= index_entries_.size()) {
    return 0;
  }
  const IndexDef& def = schema_.indexes()[index_id];
  int64_t visited = 0;
  const auto& idx = index_entries_[index_id];
  // Support prefix lookups: [key, key] as prefix range.
  auto it = idx.lower_bound(key);
  for (; it != idx.end(); ++it) {
    const Row& ikey = it->first;
    Row prefix(ikey.begin(), ikey.begin() + std::min(ikey.size(), key.size()));
    if (KeyLess()(key, prefix)) break;
    ++visited;
    auto rit = rows_.find(it->second);
    if (rit == rows_.end()) continue;
    const Version* v = VisibleVersion(rit->second, snapshot_ts);
    if (v == nullptr || v->deleted) continue;
    // Verify the row still carries this index key (stale-entry filter).
    Row live_key = schema_.ExtractIndexKey(def, v->data);
    Row live_prefix(live_key.begin(),
                    live_key.begin() + std::min(live_key.size(), key.size()));
    if (!KeyEq()(live_prefix, key)) continue;
    out->push_back(v->data);
  }
  rows_scanned_.fetch_add(static_cast<uint64_t>(visited),
                          std::memory_order_relaxed);
  return visited;
}

Status MvccTable::AddIndex(IndexDef def) {
  std::unique_lock lk(mu_);
  OLXP_RETURN_NOT_OK(schema_.AddIndex(def));
  index_entries_.resize(schema_.indexes().size());
  auto& entries = index_entries_.back();
  const IndexDef& added = schema_.indexes().back();
  for (const auto& [pk, chain] : rows_) {
    if (chain.versions.empty() || chain.versions.back().deleted) continue;
    entries.emplace(schema_.ExtractIndexKey(added, chain.versions.back().data),
                    pk);
  }
  return Status::OK();
}

void MvccTable::ForEachCommitted(
    uint64_t snapshot_ts,
    const std::function<bool(const Row& pk, uint64_t commit_ts,
                             const Row& data)>& cb) const {
  // Chunked: the checkpoint writer deep-copies every row it visits, and
  // holding the reader lock across a whole large table would stall every
  // committer's InstallVersion for the duration. Dropping the lock between
  // chunks is safe because visibility is by snapshot_ts — rows installed
  // in between carry newer timestamps and stay invisible to this pass.
  constexpr size_t kChunkRows = 1024;
  Row resume;
  bool has_resume = false;
  for (;;) {
    std::shared_lock lk(mu_);
    auto it = has_resume ? rows_.lower_bound(resume) : rows_.begin();
    size_t n = 0;
    for (; it != rows_.end() && n < kChunkRows; ++it, ++n) {
      const Version* v = VisibleVersion(it->second, snapshot_ts);
      if (v == nullptr || v->deleted) continue;
      if (!cb(it->first, v->commit_ts, v->data)) return;
    }
    if (it == rows_.end()) return;
    resume = it->first;  // first key of the next chunk
    has_resume = true;
  }
}

size_t MvccTable::ApproxRowCount() const {
  std::shared_lock lk(mu_);
  return rows_.size();
}

void MvccTable::PruneVersions(size_t keep) {
  std::unique_lock lk(mu_);
  for (auto& [pk, chain] : rows_) {
    if (chain.versions.size() > keep) {
      chain.versions.erase(chain.versions.begin(),
                           chain.versions.end() - keep);
    }
  }
}

}  // namespace olxp::storage
