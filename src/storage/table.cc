#include "storage/table.h"

namespace olxp::storage {

const Version* MvccTable::VisibleVersion(const Chain& chain, uint64_t ts) {
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    if (it->commit_ts <= ts) return &*it;
  }
  return nullptr;
}

uint64_t MvccTable::LatestCommitTs(const Row& pk) const {
  sync::ReaderLock lk(mu_);
  auto it = rows_.find(pk);
  if (it == rows_.end() || it->second.versions.empty()) return 0;
  return it->second.versions.back().commit_ts;
}

std::optional<Row> MvccTable::Get(const Row& pk, uint64_t snapshot_ts) const {
  sync::ReaderLock lk(mu_);
  auto it = rows_.find(pk);
  if (it == rows_.end()) return std::nullopt;
  const Version* v = VisibleVersion(it->second, snapshot_ts);
  if (v == nullptr || v->deleted) return std::nullopt;
  return v->data;
}

Status MvccTable::InstallVersion(const Row& pk, uint64_t commit_ts,
                                 bool deleted, Row data) {
  sync::WriterLock lk(mu_);
  const TableSchema& sch = schema();
  if (index_entries_.size() != sch.indexes().size()) {
    index_entries_.resize(sch.indexes().size());
  }
  Chain& chain = rows_[pk];
  if (!chain.versions.empty() &&
      chain.versions.back().commit_ts > commit_ts) {
    // Refuse rather than corrupt: VisibleVersion walks chains newest-first
    // assuming ascending commit_ts, so an out-of-order install would make
    // every later read of this row wrong. (If the install created the
    // chain just now, leaving the empty shell behind is harmless — it
    // reads as absent and the vacuum reclaims it.)
    return Status::Internal(
        "non-monotone commit ts on " + sch.name() + ": chain at " +
        std::to_string(chain.versions.back().commit_ts) + ", installing " +
        std::to_string(commit_ts));
  }
  if (!deleted) {
    for (size_t i = 0; i < sch.indexes().size(); ++i) {
      Row ikey = sch.ExtractIndexKey(sch.indexes()[i], data);
      // Avoid duplicate (ikey, pk) pairs: check the narrow equal_range.
      auto [b, e] = index_entries_[i].equal_range(ikey);
      bool present = false;
      for (auto it = b; it != e; ++it) {
        if (KeyEq()(it->second, pk)) {
          present = true;
          break;
        }
      }
      if (!present) index_entries_[i].emplace(std::move(ikey), pk);
    }
  }
  chain.versions.push_back(Version{commit_ts, deleted, std::move(data)});
  return Status::OK();
}

int64_t MvccTable::Scan(uint64_t snapshot_ts, const RowCallback& cb) const {
  const size_t chunk = scan_chunk_rows_.load(std::memory_order_relaxed);
  int64_t visited = 0;
  bool stopped = false;
  Row resume;
  bool has_resume = false;
  // Chunked latch-dropping sweep (same pattern as ForEachCommitted): the
  // shared lock covers at most `chunk` rows at a time, so InstallVersion
  // never waits behind a whole-table analytical scan. Per-key snapshot
  // visibility keeps the merged result consistent across the gaps.
  while (!stopped) {
    sync::ReaderLock lk(mu_);
    auto it = has_resume ? rows_.lower_bound(resume) : rows_.begin();
    size_t n = 0;
    for (; it != rows_.end() && (chunk == 0 || n < chunk); ++it, ++n) {
      ++visited;
      const Version* v = VisibleVersion(it->second, snapshot_ts);
      if (v == nullptr || v->deleted) continue;
      if (!cb(v->data)) {
        stopped = true;
        break;
      }
    }
    if (it == rows_.end()) break;
    resume = it->first;  // first key of the next chunk
    has_resume = true;
  }
  rows_scanned_.fetch_add(static_cast<uint64_t>(visited),
                          std::memory_order_relaxed);
  return visited;
}

int64_t MvccTable::ScanPkRange(const Row& lo, const Row& hi,
                               uint64_t snapshot_ts,
                               const RowCallback& cb) const {
  const size_t chunk = scan_chunk_rows_.load(std::memory_order_relaxed);
  int64_t visited = 0;
  bool stopped = false;
  Row resume;
  bool has_resume = false;
  while (!stopped) {
    sync::ReaderLock lk(mu_);
    auto it = has_resume ? rows_.lower_bound(resume) : rows_.lower_bound(lo);
    size_t n = 0;
    for (; it != rows_.end() && (chunk == 0 || n < chunk); ++it, ++n) {
      // Stop once past `hi`; prefix keys compare less than any extension,
      // so test hi < prefix(pk, hi.size()) — in place, no per-row copy.
      const Row& pk = it->first;
      if (ComparePrefix(pk, hi.size(), hi) > 0) {
        stopped = true;
        break;
      }
      ++visited;
      const Version* v = VisibleVersion(it->second, snapshot_ts);
      if (v == nullptr || v->deleted) continue;
      if (!cb(v->data)) {
        stopped = true;
        break;
      }
    }
    if (it == rows_.end()) break;
    resume = it->first;
    has_resume = true;
  }
  rows_scanned_.fetch_add(static_cast<uint64_t>(visited),
                          std::memory_order_relaxed);
  return visited;
}

int64_t MvccTable::IndexLookup(int index_id, const Row& key,
                               uint64_t snapshot_ts,
                               std::vector<Row>* out) const {
  sync::ReaderLock lk(mu_);
  if (index_id < 0 ||
      static_cast<size_t>(index_id) >= index_entries_.size()) {
    return 0;
  }
  const TableSchema& sch = schema();
  const IndexDef& def = sch.indexes()[index_id];
  int64_t visited = 0;
  const auto& idx = index_entries_[index_id];
  // Support prefix lookups: [key, key] as prefix range.
  auto it = idx.lower_bound(key);
  for (; it != idx.end(); ++it) {
    const Row& ikey = it->first;
    if (ComparePrefix(ikey, key.size(), key) > 0) break;
    ++visited;
    auto rit = rows_.find(it->second);
    if (rit == rows_.end()) continue;
    const Version* v = VisibleVersion(rit->second, snapshot_ts);
    if (v == nullptr || v->deleted) continue;
    // Verify the row still carries this index key (stale-entry filter).
    Row live_key = sch.ExtractIndexKey(def, v->data);
    if (!PrefixEq(live_key, key.size(), key)) continue;
    out->push_back(v->data);
  }
  rows_scanned_.fetch_add(static_cast<uint64_t>(visited),
                          std::memory_order_relaxed);
  return visited;
}

Status MvccTable::AddIndex(IndexDef def) {
  sync::WriterLock lk(mu_);
  // Copy-on-write: never mutate the published snapshot in place — lock-free
  // schema() readers may be walking it right now. Build the successor,
  // backfill its entries, then publish.
  auto next = std::make_unique<TableSchema>(schema());
  OLXP_RETURN_NOT_OK(next->AddIndex(def));
  index_entries_.resize(next->indexes().size());
  auto& entries = index_entries_.back();
  const IndexDef& added = next->indexes().back();
  for (const auto& [pk, chain] : rows_) {
    if (chain.versions.empty() || chain.versions.back().deleted) continue;
    entries.emplace(next->ExtractIndexKey(added, chain.versions.back().data),
                    pk);
  }
  schema_history_.push_back(std::move(next));
  schema_ptr_.store(schema_history_.back().get(), std::memory_order_release);
  return Status::OK();
}

void MvccTable::ForEachCommitted(
    uint64_t snapshot_ts,
    const std::function<bool(const Row& pk, uint64_t commit_ts,
                             const Row& data)>& cb) const {
  // Chunked: the checkpoint writer deep-copies every row it visits, and
  // holding the reader lock across a whole large table would stall every
  // committer's InstallVersion for the duration. Dropping the lock between
  // chunks is safe because visibility is by snapshot_ts — rows installed
  // in between carry newer timestamps and stay invisible to this pass.
  constexpr size_t kChunkRows = 1024;
  Row resume;
  bool has_resume = false;
  for (;;) {
    sync::ReaderLock lk(mu_);
    auto it = has_resume ? rows_.lower_bound(resume) : rows_.begin();
    size_t n = 0;
    for (; it != rows_.end() && n < kChunkRows; ++it, ++n) {
      const Version* v = VisibleVersion(it->second, snapshot_ts);
      if (v == nullptr || v->deleted) continue;
      if (!cb(it->first, v->commit_ts, v->data)) return;
    }
    if (it == rows_.end()) return;
    resume = it->first;  // first key of the next chunk
    has_resume = true;
  }
}

size_t MvccTable::ApproxRowCount() const {
  sync::ReaderLock lk(mu_);
  return rows_.size();
}

size_t MvccTable::TotalVersionCount() const {
  sync::ReaderLock lk(mu_);
  size_t n = 0;
  for (const auto& [pk, chain] : rows_) n += chain.versions.size();
  return n;
}

size_t MvccTable::IndexEntryCount() const {
  sync::ReaderLock lk(mu_);
  size_t n = 0;
  for (const auto& idx : index_entries_) n += idx.size();
  return n;
}

size_t MvccTable::EraseIndexEntry(size_t idx, const Row& ikey,
                                  const Row& pk) {
  auto [b, e] = index_entries_[idx].equal_range(ikey);
  for (auto it = b; it != e; ++it) {
    if (KeyEq()(it->second, pk)) {
      index_entries_[idx].erase(it);
      return 1;
    }
  }
  return 0;
}

VacuumStats MvccTable::VacuumBelow(uint64_t watermark, size_t batch_rows) {
  VacuumStats stats;
  if (watermark == 0) return stats;
  if (batch_rows == 0) batch_rows = 1;
  Row resume;
  bool has_resume = false;
  // Scratch buffers hoisted out of the loop (reused across chains).
  std::vector<Row> erased_keys;
  std::vector<Row> survivor_keys;
  for (;;) {
    sync::WriterLock lk(mu_);
    auto it = has_resume ? rows_.lower_bound(resume) : rows_.begin();
    size_t n = 0;
    while (it != rows_.end() && n < batch_rows) {
      ++n;
      Chain& chain = it->second;
      // Newest version with commit_ts <= watermark: everything strictly
      // older is unreachable from any snapshot >= watermark, and the
      // registry guarantees no live snapshot is below the watermark.
      size_t wm_idx = chain.versions.size();
      for (size_t i = chain.versions.size(); i-- > 0;) {
        if (chain.versions[i].commit_ts <= watermark) {
          wm_idx = i;
          break;
        }
      }
      if (wm_idx == chain.versions.size()) {
        ++it;  // nothing at or below the watermark (or empty chain)
        continue;
      }
      const bool dead_chain = chain.versions[wm_idx].deleted &&
                              wm_idx + 1 == chain.versions.size();
      const size_t erase_end = dead_chain ? chain.versions.size() : wm_idx;
      if (erase_end == 0) {
        ++it;
        continue;
      }
      // Purge index entries backed only by erased versions: an (ikey, pk)
      // pair must survive iff some surviving version still carries ikey
      // (readers above the watermark can see exactly those versions).
      for (size_t i = 0; i < index_entries_.size(); ++i) {
        const IndexDef& def = schema().indexes()[i];
        erased_keys.clear();
        survivor_keys.clear();
        for (size_t v = 0; v < erase_end; ++v) {
          if (chain.versions[v].deleted) continue;
          erased_keys.push_back(
              schema().ExtractIndexKey(def, chain.versions[v].data));
        }
        if (erased_keys.empty()) continue;
        for (size_t v = erase_end; v < chain.versions.size(); ++v) {
          if (chain.versions[v].deleted) continue;
          survivor_keys.push_back(
              schema().ExtractIndexKey(def, chain.versions[v].data));
        }
        for (const Row& ikey : erased_keys) {
          bool still_carried = false;
          for (const Row& skey : survivor_keys) {
            if (KeyEq()(skey, ikey)) {
              still_carried = true;
              break;
            }
          }
          if (!still_carried) {
            stats.index_entries_removed += EraseIndexEntry(i, ikey, it->first);
          }
        }
      }
      stats.versions_removed += erase_end;
      if (dead_chain) {
        ++stats.chains_removed;
        it = rows_.erase(it);
      } else {
        chain.versions.erase(chain.versions.begin(),
                             chain.versions.begin() +
                                 static_cast<std::ptrdiff_t>(erase_end));
        ++it;
      }
    }
    if (it == rows_.end()) return stats;
    resume = it->first;  // latch drops here; committers interleave
    has_resume = true;
  }
}

void MvccTable::PruneVersions(size_t keep) {
  sync::WriterLock lk(mu_);
  for (auto& [pk, chain] : rows_) {
    if (chain.versions.size() > keep) {
      chain.versions.erase(chain.versions.begin(),
                           chain.versions.end() - keep);
    }
  }
}

}  // namespace olxp::storage
