#ifndef OLXP_STORAGE_LOCK_MANAGER_H_
#define OLXP_STORAGE_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace olxp::storage {

/// Aggregate lock statistics. This is the reproduction of the paper's
/// `perf`-based Fig. 4 measurement: instead of sampling mutex/futex symbols
/// externally, the lock manager accounts wait time directly. The "lock
/// overhead" for a run is wait_nanos / busy_nanos (busy time reported by the
/// benchmark driver).
struct LockStats {
  std::atomic<uint64_t> acquisitions{0};   ///< successful lock grants
  std::atomic<uint64_t> waits{0};          ///< grants that had to block
  std::atomic<uint64_t> wait_nanos{0};     ///< total blocked nanoseconds
  std::atomic<uint64_t> timeouts{0};       ///< deadline-expired acquisitions

  void Reset() {
    acquisitions = 0;
    waits = 0;
    wait_nanos = 0;
    timeouts = 0;
  }
};

/// Striped exclusive row-lock table keyed by (table_id, primary key).
/// Grants are reentrant per transaction. Waiting is bounded by a deadline;
/// expiry returns LockTimeout (the engine's deadlock breaker, surfaced to
/// the harness as a retryable abort).
class LockManager {
 public:
  explicit LockManager(int num_shards = 64);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires the exclusive lock on (table_id, key) for `txn_id`, waiting at
  /// most `timeout_micros`. Reentrant for the owning transaction.
  Status Acquire(uint64_t txn_id, int table_id, const Row& key,
                 int64_t timeout_micros);

  /// Releases one lock owned by `txn_id`. No-op if not held.
  void Release(uint64_t txn_id, int table_id, const Row& key);

  /// True if `txn_id` currently owns the lock (test helper).
  bool Holds(uint64_t txn_id, int table_id, const Row& key);

  /// Total lock-table entries across all shards. With no lock held and no
  /// waiter blocked this must be zero — stale entries would grow resident
  /// memory for the life of the database (regression guard).
  size_t EntryCount();

  LockStats& stats() { return stats_; }
  const LockStats& stats() const { return stats_; }

 private:
  struct LockEntry {
    uint64_t owner = 0;  ///< 0 = free
    int reentry = 0;
    int waiters = 0;
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<size_t, LockEntry> locks;  // hash -> entry
  };

  /// Collapses (table_id, key) to the lock hash. Collisions between
  /// distinct keys are acceptable: they only add (rare) false contention,
  /// never lost exclusion.
  static size_t LockHash(int table_id, const Row& key);

  Shard& ShardFor(size_t hash) { return shards_[hash % shards_.size()]; }

  std::vector<Shard> shards_;
  LockStats stats_;
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_LOCK_MANAGER_H_
