#ifndef OLXP_STORAGE_LOCK_MANAGER_H_
#define OLXP_STORAGE_LOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "storage/schema.h"

namespace olxp::storage {

/// Aggregate lock statistics. This is the reproduction of the paper's
/// `perf`-based Fig. 4 measurement: instead of sampling mutex/futex symbols
/// externally, the lock manager accounts wait time directly. The "lock
/// overhead" for a run is wait_nanos / busy_nanos (busy time reported by the
/// benchmark driver).
struct LockStats {
  std::atomic<uint64_t> acquisitions{0};   ///< successful lock grants
  std::atomic<uint64_t> waits{0};          ///< grants that had to block
  std::atomic<uint64_t> wait_nanos{0};     ///< total blocked nanoseconds
  std::atomic<uint64_t> timeouts{0};       ///< deadline-expired acquisitions

  void Reset() {
    acquisitions = 0;
    waits = 0;
    wait_nanos = 0;
    timeouts = 0;
  }
};

/// Striped exclusive row-lock table keyed by (table_id, primary key).
/// Grants are reentrant per transaction. Waiting is bounded by a deadline;
/// expiry returns LockTimeout (the engine's deadlock breaker, surfaced to
/// the harness as a retryable abort).
///
/// Entries are keyed by the FULL (table_id, key) identity, hash-bucketed
/// into shards. Keying by the raw hash (the original design) let two
/// distinct keys that collide share one entry — and a transaction holding
/// one of them got a *false reentrant grant* on the other, silently
/// breaking mutual exclusion. A hash now only picks the shard, where a
/// collision costs contention on the shard mutex, never exclusion.
class LockManager {
 public:
  /// Maps (table_id, key) to a shard-selection hash. Injectable so tests
  /// can force all keys into one value and prove that colliding hashes
  /// still get distinct, correctly-exclusive lock entries.
  using ShardHashFn = size_t (*)(int table_id, const Row& key);

  explicit LockManager(int num_shards = 64, ShardHashFn hash = &LockHash);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires the exclusive lock on (table_id, key) for `txn_id`, waiting at
  /// most `timeout_micros`. Reentrant for the owning transaction.
  Status Acquire(uint64_t txn_id, int table_id, const Row& key,
                 int64_t timeout_micros);

  /// Releases one lock owned by `txn_id`. No-op if not held.
  void Release(uint64_t txn_id, int table_id, const Row& key);

  /// True if `txn_id` currently owns the lock (test helper).
  bool Holds(uint64_t txn_id, int table_id, const Row& key);

  /// Total lock-table entries across all shards. With no lock held and no
  /// waiter blocked this must be zero — stale entries would grow resident
  /// memory for the life of the database (regression guard).
  size_t EntryCount();

  /// Default shard hash.
  static size_t LockHash(int table_id, const Row& key);

  LockStats& stats() { return stats_; }
  const LockStats& stats() const { return stats_; }

  /// Attaches a metrics sink (lock.* counters, mirroring LockStats). Call
  /// before concurrent Acquire traffic; the registry must outlive this.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct LockEntry {
    uint64_t owner = 0;  ///< 0 = free
    int reentry = 0;
    int waiters = 0;
  };
  /// Full lock identity. The Row is copied in once per live entry (entries
  /// are erased as soon as they have no owner and no waiters).
  struct TableKey {
    int table_id;
    Row key;
  };
  /// Heterogeneous lookup view: lets find() run without copying the Row.
  struct TableKeyView {
    int table_id;
    const Row* key;
  };
  struct TableKeyHash {
    using is_transparent = void;
    size_t operator()(const TableKey& k) const {
      return HashRow(k.key) ^
             static_cast<size_t>(k.table_id) * 0x9e3779b97f4a7c15ULL;
    }
    size_t operator()(const TableKeyView& k) const {
      return HashRow(*k.key) ^
             static_cast<size_t>(k.table_id) * 0x9e3779b97f4a7c15ULL;
    }
  };
  struct TableKeyEq {
    using is_transparent = void;
    bool operator()(const TableKey& a, const TableKey& b) const {
      return a.table_id == b.table_id && KeyEq()(a.key, b.key);
    }
    bool operator()(const TableKey& a, const TableKeyView& b) const {
      return a.table_id == b.table_id && KeyEq()(a.key, *b.key);
    }
    bool operator()(const TableKeyView& a, const TableKey& b) const {
      return b.table_id == a.table_id && KeyEq()(b.key, *a.key);
    }
  };
  struct Shard {
    /// All shards share one rank: two shard mutexes are never nested.
    sync::Mutex mu{sync::LockRank::kLockManagerShard, "lockmgr.shard"};
    sync::CondVar cv;
    std::unordered_map<TableKey, LockEntry, TableKeyHash, TableKeyEq> locks
        GUARDED_BY(mu);
  };

  Shard& ShardFor(size_t hash) { return shards_[hash % shards_.size()]; }

  std::vector<Shard> shards_;
  ShardHashFn hash_;
  LockStats stats_;

  // Cached metric handles (null until set_metrics).
  obs::Counter* m_acquires_ = nullptr;
  obs::Counter* m_conflicts_ = nullptr;
  obs::Counter* m_waits_ = nullptr;
  obs::Counter* m_wait_ns_ = nullptr;
  obs::Counter* m_timeouts_ = nullptr;
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_LOCK_MANAGER_H_
