#include "storage/column_block.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace olxp::storage {

bool ZoneExcludes(const ZonePred& pred, const Value& zmin, const Value& zmax) {
  if (zmin.is_null() || zmax.is_null()) return true;  // no live non-null rows
  if (pred.lit.is_null()) return true;  // NULL comparison is never true
  switch (pred.op) {
    case ZonePred::Op::kEq:
      return pred.lit.Compare(zmin) < 0 || pred.lit.Compare(zmax) > 0;
    case ZonePred::Op::kLt:
      return zmin.Compare(pred.lit) >= 0;
    case ZonePred::Op::kLe:
      return zmin.Compare(pred.lit) > 0;
    case ZonePred::Op::kGt:
      return zmax.Compare(pred.lit) <= 0;
    case ZonePred::Op::kGe:
      return zmax.Compare(pred.lit) < 0;
  }
  return false;
}

namespace {

/// Boxed footprint of one value: the Value object plus string heap chars.
size_t BoxedBytes(const Value& v) {
  size_t b = sizeof(Value);
  if (v.type() == ValueType::kString) b += v.AsString().size();
  return b;
}

}  // namespace

EncodedColumn EncodedColumn::Encode(const std::vector<Value>& vals,
                                    ValueType decl, const uint8_t* live,
                                    bool encode) {
  EncodedColumn c;
  c.type_ = decl;
  c.rows_ = vals.size();
  const size_t n = vals.size();

  size_t raw = 0;
  for (const Value& v : vals) raw += BoxedBytes(v);
  c.raw_bytes_ = raw;

  // One pass: null/dead map, zone map, and a type check. Typed encodings
  // require every live value to carry exactly the declared type (decode
  // reboxes with the declared tag, which must be lossless); anything else —
  // mixed types, values that dodged NormalizeRow — falls back to kRaw.
  std::vector<uint8_t> nulls(n, 0);
  bool any_null = false;
  bool matches_decl = true;
  size_t live_vals = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value& v = vals[i];
    if ((live != nullptr && live[i] == 0) || v.is_null()) {
      nulls[i] = 1;
      any_null = true;
      continue;
    }
    ++live_vals;
    if (v.type() != decl) matches_decl = false;
    if (c.zmin_.is_null() || v.Compare(c.zmin_) < 0) c.zmin_ = v;
    if (c.zmax_.is_null() || v.Compare(c.zmax_) > 0) c.zmax_ = v;
  }
  if (any_null) c.nulls_ = std::move(nulls);

  // Entirely null/dead: one RLE run of zeroes regardless of declared type
  // (every slot reads back NULL through the bitmap).
  if (encode && live_vals == 0 && n > 0) {
    c.enc_ = Enc::kRle;
    c.runs_ = {RleRun{0, 0}};
    c.encoded_bytes_ = sizeof(RleRun) + c.nulls_.size();
    return c;
  }

  const bool int_family =
      decl == ValueType::kInt || decl == ValueType::kTimestamp;
  const bool encodable =
      matches_decl &&
      (int_family || decl == ValueType::kDouble || decl == ValueType::kString);
  if (!encode || !encodable) {
    // Raw fallback: boxed values, dead slots nulled so their payloads
    // (e.g. strings) are dropped on re-encode. Slot layout is identical
    // to the pre-block storage, which is what the raw/encoded parity
    // sweep relies on.
    c.enc_ = Enc::kRaw;
    c.raw_.reserve(n);
    size_t bytes = 0;
    for (size_t i = 0; i < n; ++i) {
      c.raw_.push_back(c.null_at(i) ? Value::Null() : vals[i]);
      bytes += BoxedBytes(c.raw_.back());
    }
    c.encoded_bytes_ = bytes + c.nulls_.size();
    return c;
  }

  if (decl == ValueType::kDouble) {
    c.enc_ = Enc::kFlatDbl;
    c.dbls_.resize(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (!c.null_at(i)) c.dbls_[i] = vals[i].AsDouble();
    }
    c.encoded_bytes_ = n * sizeof(double) + c.nulls_.size();
    return c;
  }

  if (decl == ValueType::kString) {
    // Sorted dictionary: code order == lexicographic order, so range
    // predicates can compare codes directly. Overflowing kDictMax
    // distinct values falls back to raw.
    std::vector<std::string> dict;
    dict.reserve(64);
    for (size_t i = 0; i < n; ++i) {
      if (!c.null_at(i)) dict.push_back(vals[i].AsString());
    }
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    if (dict.size() > kDictMax) {
      c.enc_ = Enc::kRaw;
      c.raw_.reserve(n);
      size_t bytes = 0;
      for (size_t i = 0; i < n; ++i) {
        c.raw_.push_back(c.null_at(i) ? Value::Null() : vals[i]);
        bytes += BoxedBytes(c.raw_.back());
      }
      c.encoded_bytes_ = bytes + c.nulls_.size();
      return c;
    }
    c.enc_ = Enc::kDict;
    c.dict_ = std::move(dict);
    c.codes_.resize(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (c.null_at(i)) continue;
      auto it = std::lower_bound(c.dict_.begin(), c.dict_.end(),
                                 vals[i].AsString());
      c.codes_[i] = static_cast<uint32_t>(it - c.dict_.begin());
    }
    size_t dict_bytes = c.dict_.size() * sizeof(std::string);
    for (const std::string& s : c.dict_) dict_bytes += s.size();
    c.encoded_bytes_ = n * sizeof(uint32_t) + dict_bytes + c.nulls_.size();
    return c;
  }

  // Integer family (INT and TIMESTAMP share int64 storage; the declared
  // type reboxes on decode). Null/dead slots store the minimum so their
  // packed offset is zero and they merge into neighboring RLE runs.
  std::vector<int64_t> xs(n, 0);
  int64_t mn = std::numeric_limits<int64_t>::max();
  int64_t mx = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < n; ++i) {
    if (c.null_at(i)) continue;
    xs[i] = vals[i].AsInt();
    mn = std::min(mn, xs[i]);
    mx = std::max(mx, xs[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (c.null_at(i)) xs[i] = mn;
  }

  size_t num_runs = n > 0 ? 1 : 0;
  for (size_t i = 1; i < n; ++i) num_runs += xs[i] != xs[i - 1] ? 1 : 0;

  // Unsigned subtraction is two's-complement-safe for any int64 range,
  // including INT64_MIN..INT64_MAX (range wraps to 2^64-1 -> width 64 ->
  // not packable).
  const uint64_t range =
      static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
  if (range == 0) {
    // Constant column (after placeholder substitution): one run.
    c.enc_ = Enc::kRle;
    c.runs_ = {RleRun{0, mn}};
    c.encoded_bytes_ = sizeof(RleRun) + c.nulls_.size();
    return c;
  }
  const int width = 64 - std::countl_zero(range);
  const size_t flat_bytes = n * sizeof(int64_t);
  const size_t rle_bytes = num_runs * sizeof(RleRun);
  const size_t packed_bytes =
      width >= 64 ? flat_bytes : ((n * width + 63) / 64) * sizeof(uint64_t);

  // RLE pays a binary search per random access, so it must win by 4x over
  // the cheapest positional encoding to be worth it.
  if (rle_bytes * 4 <= std::min(packed_bytes, flat_bytes)) {
    c.enc_ = Enc::kRle;
    c.runs_.reserve(num_runs);
    for (size_t i = 0; i < n; ++i) {
      if (i == 0 || xs[i] != xs[i - 1]) {
        c.runs_.push_back(RleRun{static_cast<uint32_t>(i), xs[i]});
      }
    }
    c.encoded_bytes_ = c.runs_.size() * sizeof(RleRun) + c.nulls_.size();
    return c;
  }
  if (width < 64 && packed_bytes < flat_bytes) {
    c.enc_ = Enc::kPacked;
    c.base_ = mn;
    c.width_ = static_cast<uint8_t>(width);
    c.packed_.assign((n * width + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t off =
          static_cast<uint64_t>(xs[i]) - static_cast<uint64_t>(mn);
      const size_t bit = i * width;
      const size_t word = bit >> 6;
      const unsigned sh = static_cast<unsigned>(bit & 63);
      c.packed_[word] |= off << sh;
      if (sh + width > 64) c.packed_[word + 1] |= off >> (64 - sh);
    }
    c.encoded_bytes_ = packed_bytes + c.nulls_.size();
    return c;
  }
  c.enc_ = Enc::kFlatInt;
  c.ints_ = std::move(xs);
  c.encoded_bytes_ = flat_bytes + c.nulls_.size();
  return c;
}

Value EncodedColumn::ValueAt(size_t i) const {
  if (null_at(i)) return Value::Null();
  switch (enc_) {
    case Enc::kRaw:
      return raw_[i];
    case Enc::kFlatInt:
      return ReboxInt(ints_[i]);
    case Enc::kFlatDbl:
      return Value::Double(dbls_[i]);
    case Enc::kDict:
      return Value::String(dict_[codes_[i]]);
    case Enc::kRle:
      return ReboxInt(runs_[RleRunIndex(runs_.data(), runs_.size(), i)].value);
    case Enc::kPacked: {
      const uint64_t off = UnpackBits(packed_.data(), width_, i);
      return ReboxInt(
          static_cast<int64_t>(static_cast<uint64_t>(base_) + off));
    }
  }
  return Value::Null();
}

std::vector<Value> EncodedColumn::Materialize() const {
  std::vector<Value> out;
  out.reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) out.push_back(ValueAt(i));
  return out;
}

void ColumnBlock::RebuildSpans() {
  spans.resize(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    const EncodedColumn& e = cols[c];
    ColumnSpan& s = spans[c];
    s = ColumnSpan{};
    s.enc = e.enc();
    s.type = e.decl_type();
    s.nulls = e.null_map();
    switch (e.enc()) {
      case EncodedColumn::Enc::kRaw:
        s.flat = e.raw_data();
        break;
      case EncodedColumn::Enc::kFlatInt:
        s.ints = e.int_data();
        break;
      case EncodedColumn::Enc::kFlatDbl:
        s.dbls = e.dbl_data();
        break;
      case EncodedColumn::Enc::kDict:
        s.codes = e.codes();
        s.dict = e.dict();
        s.dict_size = e.dict_size();
        break;
      case EncodedColumn::Enc::kRle:
        s.runs = e.runs();
        s.num_runs = e.num_runs();
        break;
      case EncodedColumn::Enc::kPacked:
        s.packed = e.packed();
        s.pack_base = e.pack_base();
        s.pack_width = e.pack_width();
        break;
    }
  }
}

size_t ColumnBlock::encoded_bytes() const {
  size_t b = 0;
  for (const EncodedColumn& c : cols) b += c.encoded_bytes();
  return b;
}

size_t ColumnBlock::raw_bytes() const {
  size_t b = 0;
  for (const EncodedColumn& c : cols) b += c.raw_bytes();
  return b;
}

}  // namespace olxp::storage
