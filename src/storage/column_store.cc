#include "storage/column_store.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace olxp::storage {

namespace {

/// Dead-slot fraction of a sealed block that triggers re-encoding.
bool ReencodeDue(size_t dead_since_encode) {
  return dead_since_encode * 2 >= kBlockSlots;
}

size_t BoxedColumnBytes(const std::vector<Value>& col) {
  size_t b = col.size() * sizeof(Value);
  for (const Value& v : col) {
    if (v.type() == ValueType::kString) b += v.AsString().size();
  }
  return b;
}

}  // namespace

ColumnTable::ColumnTable(TableSchema schema, bool encode)
    : schema_(std::move(schema)), encode_(encode) {
  sync::WriterLock lk(mu_);
  tail_cols_.resize(schema_.num_columns());
}

void ColumnTable::SealTailLocked() {
  assert(free_slots_.empty());  // a full tail has every slot live
  assert(tail_cols_.empty() || tail_cols_[0].size() == kBlockSlots);
  ColumnBlock blk;
  blk.cols.reserve(tail_cols_.size());
  for (size_t c = 0; c < tail_cols_.size(); ++c) {
    blk.cols.push_back(EncodedColumn::Encode(
        tail_cols_[c], schema_.columns()[c].type, nullptr, encode_));
  }
  blk.live_count = kBlockSlots;
  blk.RebuildSpans();
  blocks_.push_back(std::move(blk));
  sealed_slots_ += kBlockSlots;
  for (auto& col : tail_cols_) col.clear();
}

void ColumnTable::ReencodeBlockLocked(size_t b) {
  ColumnBlock& blk = blocks_[b];
  const uint8_t* lv = live_.data() + b * kBlockSlots;
  for (size_t c = 0; c < blk.cols.size(); ++c) {
    std::vector<Value> vals = blk.cols[c].Materialize();
    blk.cols[c] = EncodedColumn::Encode(vals, schema_.columns()[c].type, lv,
                                        encode_);
  }
  blk.RebuildSpans();
  blk.dead_since_encode = 0;
}

void ColumnTable::RetireSealedSlotLocked(size_t slot) {
  live_[slot] = 0;
  const size_t b = slot / kBlockSlots;
  ColumnBlock& blk = blocks_[b];
  --blk.live_count;
  ++blk.dead_since_encode;
  if (ReencodeDue(blk.dead_since_encode)) ReencodeBlockLocked(b);
}

void ColumnTable::Apply(const LogOp& op) {
  sync::WriterLock lk(mu_);
  auto it = pk_to_slot_.find(op.pk);
  if (op.kind == LogOp::Kind::kDelete) {
    if (it == pk_to_slot_.end()) return;  // replicated delete of absent row
    const size_t slot = it->second;
    pk_to_slot_.erase(it);
    if (slot < sealed_slots_) {
      RetireSealedSlotLocked(slot);
    } else {
      live_[slot] = 0;
      free_slots_.push_back(slot);  // tail slots are reusable holes
    }
    return;
  }
  assert(op.data.size() == static_cast<size_t>(schema_.num_columns()));
  if (it != pk_to_slot_.end()) {
    const size_t slot = it->second;
    if (slot >= sealed_slots_) {
      // Tail rows update in place.
      const size_t t = slot - sealed_slots_;
      for (int c = 0; c < schema_.num_columns(); ++c) {
        tail_cols_[c][t] = op.data[c];
      }
      return;
    }
    // Sealed blocks are immutable: retire the old slot and re-insert the
    // row into the tail below.
    pk_to_slot_.erase(it);
    RetireSealedSlotLocked(slot);
  }
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    const size_t t = slot - sealed_slots_;
    for (int c = 0; c < schema_.num_columns(); ++c) {
      tail_cols_[c][t] = op.data[c];
    }
    live_[slot] = 1;
  } else {
    slot = live_.size();
    live_.push_back(1);
    for (int c = 0; c < schema_.num_columns(); ++c) {
      tail_cols_[c].push_back(op.data[c]);
    }
    if (!tail_cols_.empty() && tail_cols_[0].size() == kBlockSlots) {
      SealTailLocked();
    }
  }
  pk_to_slot_.emplace(op.pk, slot);
}

Value ColumnTable::SlotValueLocked(int c, size_t slot) const {
  if (slot < sealed_slots_) {
    return blocks_[slot / kBlockSlots].cols[c].ValueAt(slot % kBlockSlots);
  }
  return tail_cols_[c][slot - sealed_slots_];
}

int64_t ColumnTable::Scan(const RowCallback& cb) const {
  sync::ReaderLock lk(mu_);
  int64_t visited = 0;
  Row row(schema_.num_columns());
  for (size_t slot = 0; slot < live_.size(); ++slot) {
    if (!live_[slot]) continue;
    ++visited;
    for (int c = 0; c < schema_.num_columns(); ++c) {
      row[c] = SlotValueLocked(c, slot);
    }
    if (!cb(row)) break;
  }
  return visited;
}

void ColumnTable::FillTailSpansLocked(std::vector<ColumnSpan>* spans) const {
  spans->resize(tail_cols_.size());
  for (size_t c = 0; c < tail_cols_.size(); ++c) {
    ColumnSpan& s = (*spans)[c];
    s = ColumnSpan{};
    s.enc = EncodedColumn::Enc::kRaw;
    s.type = schema_.columns()[c].type;
    s.flat = tail_cols_[c].data();
  }
}

int64_t ColumnTable::BatchScan(size_t chunk_rows,
                               const ChunkCallback& cb) const {
  assert(chunk_rows > 0);
  ScanPin pin(*this);
  int64_t visited = 0;
  const size_t total = pin.total_slots();
  for (size_t base = 0; base < total;) {
    ColumnChunkView view = pin.Chunk(base, chunk_rows);
    for (size_t i = 0; i < view.rows; ++i) visited += view.live[i];
    if (!cb(view)) break;
    base += view.rows;
  }
  return visited;
}

ColumnTable::ScanPin::ScanPin(const ColumnTable& table) : table_(table) {
  table_.mu_.LockShared();
  total_ = table.live_.size();
  sealed_ = table.sealed_slots_;
  live_ = table.live_.data();
  blocks_ = table.blocks_.data();
  num_blocks_ = table.blocks_.size();
  num_cols_ = table.schema_.num_columns();
  table.FillTailSpansLocked(&tail_spans_);
}

ColumnTable::ScanPin::~ScanPin() { table_.mu_.UnlockShared(); }

ColumnChunkView ColumnTable::ScanPin::Chunk(size_t base, size_t rows) const {
  ColumnChunkView view;
  view.base = base;
  view.num_cols = num_cols_;
  if (base >= total_) {
    view.rows = 0;
    return view;
  }
  rows = std::min(rows, total_ - base);
  if (base < sealed_) {
    const size_t b = base / kBlockSlots;
    rows = std::min(rows, (b + 1) * kBlockSlots - base);
    view.cols = blocks_[b].spans.data();
    view.offset = base - b * kBlockSlots;
  } else {
    view.cols = tail_spans_.data();
    view.offset = base - sealed_;
  }
  view.rows = rows;
  view.live = live_ + base;
  return view;
}

std::vector<uint8_t> ColumnTable::ScanPin::ComputeSkipMask(
    std::span<const ZonePred> preds) const {
  const size_t nchunks = (total_ + kBlockSlots - 1) / kBlockSlots;
  std::vector<uint8_t> mask(nchunks, 0);
  for (size_t b = 0; b < num_blocks_ && b < nchunks; ++b) {
    if (blocks_[b].live_count == 0) {
      mask[b] = 1;
      continue;
    }
    for (const ZonePred& p : preds) {
      if (p.col < 0 || p.col >= num_cols_) continue;
      const EncodedColumn& c = blocks_[b].cols[p.col];
      if (ZoneExcludes(p, c.zone_min(), c.zone_max())) {
        mask[b] = 1;
        break;
      }
    }
  }
  return mask;
}

std::optional<Row> ColumnTable::Get(const Row& pk) const {
  sync::ReaderLock lk(mu_);
  auto it = pk_to_slot_.find(pk);
  if (it == pk_to_slot_.end()) return std::nullopt;
  Row row(schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    row[c] = SlotValueLocked(c, it->second);
  }
  return row;
}

size_t ColumnTable::LiveRowCount() const {
  sync::ReaderLock lk(mu_);
  return pk_to_slot_.size();
}

size_t ColumnTable::SlotCount() const {
  sync::ReaderLock lk(mu_);
  return live_.size();
}

size_t ColumnTable::EstimateScanSlots(std::span<const ZonePred> preds) const {
  sync::ReaderLock lk(mu_);
  size_t slots = live_.size() - sealed_slots_;  // the tail is always read
  for (const ColumnBlock& blk : blocks_) {
    if (blk.live_count == 0) continue;
    bool skip = false;
    for (const ZonePred& p : preds) {
      if (p.col < 0 || p.col >= static_cast<int>(blk.cols.size())) continue;
      const EncodedColumn& c = blk.cols[p.col];
      if (ZoneExcludes(p, c.zone_min(), c.zone_max())) {
        skip = true;
        break;
      }
    }
    if (!skip) slots += kBlockSlots;
  }
  return slots;
}

size_t ColumnTable::EncodedBytes() const {
  sync::ReaderLock lk(mu_);
  size_t b = 0;
  for (const ColumnBlock& blk : blocks_) b += blk.encoded_bytes();
  for (const auto& col : tail_cols_) b += BoxedColumnBytes(col);
  return b;
}

size_t ColumnTable::RawBytes() const {
  sync::ReaderLock lk(mu_);
  size_t b = 0;
  for (const ColumnBlock& blk : blocks_) b += blk.raw_bytes();
  for (const auto& col : tail_cols_) b += BoxedColumnBytes(col);
  return b;
}

size_t ColumnTable::SealedBlockCount() const {
  sync::ReaderLock lk(mu_);
  return blocks_.size();
}

std::vector<EncodedColumn::Enc> ColumnTable::BlockEncodings(
    size_t block) const {
  sync::ReaderLock lk(mu_);
  std::vector<EncodedColumn::Enc> encs;
  if (block >= blocks_.size()) return encs;
  encs.reserve(blocks_[block].cols.size());
  for (const EncodedColumn& c : blocks_[block].cols) encs.push_back(c.enc());
  return encs;
}

void ColumnStore::AddTable(int table_id, TableSchema schema, bool encode) {
  tables_[table_id] =
      std::make_unique<ColumnTable>(std::move(schema), encode);
}

ColumnTable* ColumnStore::table(int table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

const ColumnTable* ColumnStore::table(int table_id) const {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

void ColumnStore::ApplyCommit(const CommitRecord& rec) {
  for (const LogOp& op : rec.ops) {
    ColumnTable* t = table(op.table_id);
    if (t != nullptr) t->Apply(op);
  }
  replicated_ts_.store(rec.commit_ts, std::memory_order_release);
}

void ColumnStore::PublishMetrics(obs::MetricsRegistry* metrics) const {
  for (const auto& [id, t] : tables_) {
    const std::string prefix = "column." + t->schema().name() + ".";
    metrics->GetGauge(prefix + "bytes_encoded")
        ->Set(static_cast<double>(t->EncodedBytes()));
    metrics->GetGauge(prefix + "bytes_raw")
        ->Set(static_cast<double>(t->RawBytes()));
    metrics->GetGauge(prefix + "blocks_scanned")
        ->Set(static_cast<double>(t->blocks_scanned()));
    metrics->GetGauge(prefix + "blocks_skipped")
        ->Set(static_cast<double>(t->blocks_skipped()));
  }
}

}  // namespace olxp::storage
