#include "storage/column_store.h"

#include <algorithm>

#include <cassert>

namespace olxp::storage {

ColumnTable::ColumnTable(TableSchema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
}

void ColumnTable::Apply(const LogOp& op) {
  sync::WriterLock lk(mu_);
  auto it = pk_to_slot_.find(op.pk);
  if (op.kind == LogOp::Kind::kDelete) {
    if (it == pk_to_slot_.end()) return;  // replicated delete of absent row
    live_[it->second] = 0;
    free_slots_.push_back(it->second);
    pk_to_slot_.erase(it);
    return;
  }
  assert(op.data.size() == static_cast<size_t>(schema_.num_columns()));
  size_t slot;
  if (it != pk_to_slot_.end()) {
    slot = it->second;
  } else if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    live_[slot] = 1;
    pk_to_slot_.emplace(op.pk, slot);
  } else {
    slot = live_.size();
    if (live_.size() == live_.capacity()) {
      // Grow all column vectors in lockstep so a replicated burst does one
      // coordinated reallocation instead of num_columns independent ones.
      size_t cap = std::max<size_t>(1024, live_.capacity() * 2);
      live_.reserve(cap);
      for (auto& col : columns_) col.reserve(cap);
    }
    live_.push_back(1);
    for (int c = 0; c < schema_.num_columns(); ++c) {
      columns_[c].push_back(op.data[c]);
    }
    pk_to_slot_.emplace(op.pk, slot);
    return;
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    columns_[c][slot] = op.data[c];
  }
}

int64_t ColumnTable::Scan(const RowCallback& cb) const {
  sync::ReaderLock lk(mu_);
  int64_t visited = 0;
  Row row(schema_.num_columns());
  for (size_t slot = 0; slot < live_.size(); ++slot) {
    if (!live_[slot]) continue;
    ++visited;
    for (int c = 0; c < schema_.num_columns(); ++c) row[c] = columns_[c][slot];
    if (!cb(row)) break;
  }
  return visited;
}

int64_t ColumnTable::BatchScan(size_t chunk_rows,
                               const ChunkCallback& cb) const {
  assert(chunk_rows > 0);
  sync::ReaderLock lk(mu_);
  std::vector<const std::vector<Value>*> cols;
  cols.reserve(columns_.size());
  for (const auto& col : columns_) cols.push_back(&col);

  int64_t visited = 0;
  const size_t total = live_.size();
  for (size_t base = 0; base < total; base += chunk_rows) {
    ColumnChunkView view;
    view.base = base;
    view.rows = std::min(chunk_rows, total - base);
    view.live = live_.data() + base;
    view.columns = cols.data();
    for (size_t i = 0; i < view.rows; ++i) visited += view.live[i];
    if (!cb(view)) break;
  }
  return visited;
}

ColumnTable::ScanPin::ScanPin(const ColumnTable& table) : table_(table) {
  table_.mu_.LockShared();
  total_ = table.live_.size();
  live_ = table.live_.data();
  cols_.reserve(table.columns_.size());
  for (const auto& col : table.columns_) cols_.push_back(&col);
}

ColumnTable::ScanPin::~ScanPin() { table_.mu_.UnlockShared(); }

ColumnChunkView ColumnTable::ScanPin::Chunk(size_t base, size_t rows) const {
  ColumnChunkView view;
  view.base = base;
  view.rows = base < total_ ? std::min(rows, total_ - base) : 0;
  view.live = live_ + base;
  view.columns = cols_.data();
  return view;
}

std::optional<Row> ColumnTable::Get(const Row& pk) const {
  sync::ReaderLock lk(mu_);
  auto it = pk_to_slot_.find(pk);
  if (it == pk_to_slot_.end()) return std::nullopt;
  Row row(schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    row[c] = columns_[c][it->second];
  }
  return row;
}

size_t ColumnTable::LiveRowCount() const {
  sync::ReaderLock lk(mu_);
  return pk_to_slot_.size();
}

size_t ColumnTable::SlotCount() const {
  sync::ReaderLock lk(mu_);
  return live_.size();
}

void ColumnStore::AddTable(int table_id, TableSchema schema) {
  tables_[table_id] = std::make_unique<ColumnTable>(std::move(schema));
}

ColumnTable* ColumnStore::table(int table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

const ColumnTable* ColumnStore::table(int table_id) const {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

void ColumnStore::ApplyCommit(const CommitRecord& rec) {
  for (const LogOp& op : rec.ops) {
    ColumnTable* t = table(op.table_id);
    if (t != nullptr) t->Apply(op);
  }
  replicated_ts_.store(rec.commit_ts, std::memory_order_release);
}

}  // namespace olxp::storage
