#include "storage/column_store.h"

#include <mutex>
#include <shared_mutex>

#include <cassert>

namespace olxp::storage {

ColumnTable::ColumnTable(TableSchema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
}

void ColumnTable::Apply(const LogOp& op) {
  std::unique_lock lk(mu_);
  auto it = pk_to_slot_.find(op.pk);
  if (op.kind == LogOp::Kind::kDelete) {
    if (it == pk_to_slot_.end()) return;  // replicated delete of absent row
    live_[it->second] = 0;
    free_slots_.push_back(it->second);
    pk_to_slot_.erase(it);
    return;
  }
  assert(op.data.size() == static_cast<size_t>(schema_.num_columns()));
  size_t slot;
  if (it != pk_to_slot_.end()) {
    slot = it->second;
  } else if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    live_[slot] = 1;
    pk_to_slot_.emplace(op.pk, slot);
  } else {
    slot = live_.size();
    live_.push_back(1);
    for (auto& col : columns_) col.emplace_back();
    pk_to_slot_.emplace(op.pk, slot);
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    columns_[c][slot] = op.data[c];
  }
}

int64_t ColumnTable::Scan(const RowCallback& cb) const {
  std::shared_lock lk(mu_);
  int64_t visited = 0;
  Row row(schema_.num_columns());
  for (size_t slot = 0; slot < live_.size(); ++slot) {
    if (!live_[slot]) continue;
    ++visited;
    for (int c = 0; c < schema_.num_columns(); ++c) row[c] = columns_[c][slot];
    if (!cb(row)) break;
  }
  return visited;
}

std::optional<Row> ColumnTable::Get(const Row& pk) const {
  std::shared_lock lk(mu_);
  auto it = pk_to_slot_.find(pk);
  if (it == pk_to_slot_.end()) return std::nullopt;
  Row row(schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    row[c] = columns_[c][it->second];
  }
  return row;
}

size_t ColumnTable::LiveRowCount() const {
  std::shared_lock lk(mu_);
  return pk_to_slot_.size();
}

void ColumnStore::AddTable(int table_id, TableSchema schema) {
  tables_[table_id] = std::make_unique<ColumnTable>(std::move(schema));
}

ColumnTable* ColumnStore::table(int table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

const ColumnTable* ColumnStore::table(int table_id) const {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

void ColumnStore::ApplyCommit(const CommitRecord& rec) {
  for (const LogOp& op : rec.ops) {
    ColumnTable* t = table(op.table_id);
    if (t != nullptr) t->Apply(op);
  }
  replicated_ts_.store(rec.commit_ts, std::memory_order_release);
}

}  // namespace olxp::storage
