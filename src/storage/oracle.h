#ifndef OLXP_STORAGE_ORACLE_H_
#define OLXP_STORAGE_ORACLE_H_

#include <atomic>
#include <cstdint>

#include "common/sync.h"

namespace olxp::storage {

/// Global logical-timestamp dispenser with an atomic commit-publish
/// protocol. Start timestamps observe the published counter; a committing
/// transaction (a) enters the commit critical section, (b) installs its
/// versions with timestamp counter+1 — invisible to every open snapshot
/// because the counter has not moved — and (c) publishes by advancing the
/// counter. Without this two-phase publish, a transaction beginning between
/// timestamp allocation and version installation would read a torn snapshot
/// (observed as lost updates in the banking conservation property test).
class TimestampOracle {
 public:
  /// Snapshot timestamp for a beginning transaction / statement.
  uint64_t Current() const { return counter_.load(std::memory_order_acquire); }

  /// RAII commit critical section: exposes the reserved (unpublished)
  /// commit timestamp; publishes it on destruction.
  class CommitScope {
   public:
    explicit CommitScope(TimestampOracle* oracle)
        : oracle_(oracle), lock_(oracle->commit_mu_) {
      ts_ = oracle_->counter_.load(std::memory_order_relaxed) + 1;
    }
    ~CommitScope() {
      oracle_->counter_.store(ts_, std::memory_order_release);
    }
    CommitScope(const CommitScope&) = delete;
    CommitScope& operator=(const CommitScope&) = delete;

    uint64_t commit_ts() const { return ts_; }

   private:
    TimestampOracle* oracle_;
    sync::MutexLock lock_;
    uint64_t ts_ = 0;
  };

  /// Legacy one-shot advance (single-writer contexts: loaders in tests,
  /// micro benches). Equivalent to an empty CommitScope.
  uint64_t Advance() {
    sync::MutexLock lk(commit_mu_);
    uint64_t ts = counter_.load(std::memory_order_relaxed) + 1;
    counter_.store(ts, std::memory_order_release);
    return ts;
  }

  /// Fast-forwards the counter to at least `ts` (crash recovery: new
  /// commits must land after every replayed commit timestamp). Called
  /// before any transaction starts; never moves the counter backwards.
  void SeedTo(uint64_t ts) {
    sync::MutexLock lk(commit_mu_);
    if (counter_.load(std::memory_order_relaxed) < ts) {
      counter_.store(ts, std::memory_order_release);
    }
  }

 private:
  friend class CommitScope;
  std::atomic<uint64_t> counter_{0};
  sync::Mutex commit_mu_{sync::LockRank::kOracleCommit, "oracle.commit"};
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_ORACLE_H_
