#ifndef OLXP_STORAGE_ROW_STORE_H_
#define OLXP_STORAGE_ROW_STORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "storage/table.h"

namespace olxp::storage {

/// The transactional row store: owns all MvccTables and the name -> id map
/// (physical catalog). Table ids are dense and stable for the lifetime of
/// the store.
class RowStore {
 public:
  RowStore() = default;
  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;

  /// Creates a table; fails with AlreadyExists on duplicate name.
  StatusOr<int> CreateTable(TableSchema schema);

  /// Id by (case-insensitive) name, or NotFound.
  StatusOr<int> TableId(std::string_view name) const;

  /// Table by id; nullptr when out of range.
  MvccTable* table(int table_id);
  const MvccTable* table(int table_id) const;

  /// All table ids in creation order.
  std::vector<int> TableIds() const;

  int num_tables() const;

  /// Count of live analytical scans running against the row store
  /// (unified-store engines send OLAP here; the latency model reads this
  /// as the buffer-pressure signal).
  std::atomic<int>& active_scans() { return active_scans_; }

 private:
  mutable sync::SharedMutex mu_{sync::LockRank::kCatalog, "rowstore.catalog"};
  std::vector<std::unique_ptr<MvccTable>> tables_ GUARDED_BY(mu_);
  /// Lower-cased names.
  std::unordered_map<std::string, int> name_to_id_ GUARDED_BY(mu_);
  std::atomic<int> active_scans_{0};
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_ROW_STORE_H_
