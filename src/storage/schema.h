#ifndef OLXP_STORAGE_SCHEMA_H_
#define OLXP_STORAGE_SCHEMA_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace olxp::storage {

/// One column of a table.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt;
  bool nullable = true;
};

/// A secondary index over one or more columns (by schema position).
struct IndexDef {
  std::string name;
  std::vector<int> column_idx;
  bool unique = false;
};

/// Table definition: columns, composite primary key, secondary indexes,
/// optional foreign keys (metadata only — enforcement is a profile choice,
/// mirroring the paper's two schema versions for MemSQL compatibility).
struct ForeignKeyDef {
  std::vector<int> column_idx;       ///< referencing columns in this table
  std::string ref_table;             ///< referenced table name
  std::vector<int> ref_column_idx;   ///< referenced columns (by position)
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns,
              std::vector<int> pk_columns)
      : name_(std::move(name)),
        cols_(std::move(columns)),
        pk_columns_(std::move(pk_columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return cols_; }
  int num_columns() const { return static_cast<int>(cols_.size()); }
  const std::vector<int>& pk_columns() const { return pk_columns_; }
  const std::vector<IndexDef>& indexes() const { return indexes_; }
  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  /// Position of column `name` (case-insensitive), or -1.
  int ColumnIndex(std::string_view col_name) const;

  /// Adds a secondary index; fails on duplicate name or bad column.
  Status AddIndex(IndexDef def);

  void AddForeignKey(ForeignKeyDef fk) {
    foreign_keys_.push_back(std::move(fk));
  }

  /// Mutable FK access for DDL-time reference resolution.
  std::vector<ForeignKeyDef>* mutable_foreign_keys() { return &foreign_keys_; }

  /// Extracts the primary key values of `row` (schema order of pk columns).
  Row ExtractPrimaryKey(const Row& row) const;

  /// Extracts an index key for index `idx` from `row`.
  Row ExtractIndexKey(const IndexDef& idx, const Row& row) const;

  /// Validates arity, NOT NULL, and coerces each value to the column type.
  /// Returns the normalized row.
  StatusOr<Row> NormalizeRow(const Row& row) const;

 private:
  std::string name_;
  std::vector<ColumnDef> cols_;
  std::vector<int> pk_columns_;
  std::vector<IndexDef> indexes_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

/// Three-way lexicographic comparison of the first min(key.size(), n)
/// values of `key` against `bound` (shorter compares less on a tie), i.e.
/// the comparison KeyLess would make against the materialized prefix
/// Row(key.begin(), key.begin() + min(key.size(), n)) — without building
/// that Row. Range scans and index lookups test every visited entry
/// against a prefix bound; the per-entry copy dominated their cost.
inline int ComparePrefix(const Row& key, size_t n, const Row& bound) {
  const size_t klen = std::min(key.size(), n);
  const size_t m = std::min(klen, bound.size());
  for (size_t i = 0; i < m; ++i) {
    int c = key[i].Compare(bound[i]);
    if (c != 0) return c;
  }
  if (klen < bound.size()) return -1;
  return klen > bound.size() ? 1 : 0;
}

/// prefix(key, n) < bound, allocation-free.
inline bool PrefixLess(const Row& key, size_t n, const Row& bound) {
  return ComparePrefix(key, n, bound) < 0;
}

/// prefix(key, n) == bound, allocation-free.
inline bool PrefixEq(const Row& key, size_t n, const Row& bound) {
  return ComparePrefix(key, n, bound) == 0;
}

/// Lexicographic comparator over composite keys (Row used as key).
struct KeyLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Equality + hashing for unordered containers keyed by composite key.
struct KeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};
struct KeyHash {
  size_t operator()(const Row& k) const { return HashRow(k); }
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_SCHEMA_H_
