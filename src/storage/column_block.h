#ifndef OLXP_STORAGE_COLUMN_BLOCK_H_
#define OLXP_STORAGE_COLUMN_BLOCK_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/schema.h"

namespace olxp::storage {

/// Slots per sealed block. Equal to the vectorized engine's chunk size
/// (kVecChunkRows) and a divisor of every normalized morsel size, so one
/// execution chunk never straddles two blocks: a chunk is either a window
/// into exactly one sealed block or into the mutable tail.
inline constexpr size_t kBlockSlots = 1024;

/// One run of an RLE-encoded integer column. `start` is the first slot of
/// the run; the run extends to the next run's start (or the block end).
/// Runs are sorted by start, so positional access is a binary search and
/// a forward scan is a pointer walk.
struct RleRun {
  uint32_t start = 0;
  int64_t value = 0;
};

/// A sargable predicate bound lowered from a filter conjunct, evaluated
/// against per-block zone maps to skip whole blocks. `!=` is deliberately
/// absent: a min/max range can almost never refute it.
struct ZonePred {
  enum class Op : uint8_t { kEq, kLt, kLe, kGt, kGe };
  int col = 0;
  Op op = Op::kEq;
  Value lit;
};

/// True when the zone [zmin, zmax] proves no row in the block can satisfy
/// `pred`. A null zmin means the block holds no live non-null value in the
/// column, which refutes every comparison (SQL comparisons with NULL are
/// never true). Conservative: false never causes a wrong skip, it only
/// costs a scan.
bool ZoneExcludes(const ZonePred& pred, const Value& zmin, const Value& zmax);

/// Reads `width` bits (1..63) at logical index `i` from a little-endian
/// packed word array. Hot path of the packed-integer scan kernels.
inline uint64_t UnpackBits(const uint64_t* words, uint8_t width, size_t i) {
  const size_t bit = i * width;
  const size_t word = bit >> 6;
  const unsigned off = static_cast<unsigned>(bit & 63);
  uint64_t v = words[word] >> off;
  if (off + width > 64) v |= words[word + 1] << (64 - off);
  return v & ((uint64_t{1} << width) - 1);
}

/// Index of the RLE run covering slot `i` (binary search over run starts).
inline size_t RleRunIndex(const RleRun* runs, size_t num_runs, size_t i) {
  size_t lo = 0;
  size_t hi = num_runs;  // invariant: runs[lo].start <= i < runs[hi].start
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (runs[mid].start <= i) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// One column of one sealed block in its encoded form, plus the metadata
/// scans need: a null/dead bitmap, a min/max zone map over live non-null
/// values, and footprint accounting. Immutable once built; re-encoding
/// replaces the whole object under the table's writer latch.
///
/// Encodings (selected per block per column at seal time):
///   kRaw      boxed Values — mixed-type columns or when encoding is off
///   kFlatInt  plain int64 array (ints/timestamps with no cheaper form)
///   kFlatDbl  plain double array
///   kDict     sorted string dictionary + uint32 codes; code order equals
///             lexicographic order, so range predicates compare codes
///   kRle      run-length-encoded int64s (few long runs)
///   kPacked   bit-packed offsets from a base (frame of reference)
class EncodedColumn {
 public:
  enum class Enc : uint8_t { kRaw, kFlatInt, kFlatDbl, kDict, kRle, kPacked };

  /// Distinct-value ceiling for dictionary encoding; beyond it the column
  /// falls back to kRaw (codes would stop paying for the dictionary).
  static constexpr size_t kDictMax = 4096;

  /// Encodes `vals` (one block's worth of one column). `live`, when
  /// non-null, marks dead slots (0 = dead) that are stored as NULL
  /// placeholders — they are never read (LiveRows filters them) but keep
  /// slot positions stable. `encode` false keeps boxed kRaw storage with
  /// zone maps still computed, so raw and encoded tables skip identically.
  static EncodedColumn Encode(const std::vector<Value>& vals, ValueType decl,
                              const uint8_t* live, bool encode);

  /// Boxed value at slot `i` (NULL for null/dead slots). Positional,
  /// decode-on-read; the vectorized kernels use the flat arrays instead.
  Value ValueAt(size_t i) const;

  /// Boxed copy of the whole column (used to re-encode a churned block).
  std::vector<Value> Materialize() const;

  Enc enc() const { return enc_; }
  ValueType decl_type() const { return type_; }
  const Value& zone_min() const { return zmin_; }
  const Value& zone_max() const { return zmax_; }
  size_t rows() const { return rows_; }
  size_t encoded_bytes() const { return encoded_bytes_; }
  size_t raw_bytes() const { return raw_bytes_; }

  bool null_at(size_t i) const { return !nulls_.empty() && nulls_[i] != 0; }

  // Encoded payload accessors (valid per enc(); pointers are stable for
  // the lifetime of this object — heap buffers survive vector moves).
  const Value* raw_data() const { return raw_.data(); }
  const int64_t* int_data() const { return ints_.data(); }
  const double* dbl_data() const { return dbls_.data(); }
  const uint32_t* codes() const { return codes_.data(); }
  const std::string* dict() const { return dict_.data(); }
  uint32_t dict_size() const { return static_cast<uint32_t>(dict_.size()); }
  const RleRun* runs() const { return runs_.data(); }
  uint32_t num_runs() const { return static_cast<uint32_t>(runs_.size()); }
  const uint64_t* packed() const { return packed_.data(); }
  int64_t pack_base() const { return base_; }
  uint8_t pack_width() const { return width_; }
  const uint8_t* null_map() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

 private:
  /// Reboxes a decoded int64 with the column's declared type tag.
  Value ReboxInt(int64_t v) const {
    return type_ == ValueType::kTimestamp ? Value::Timestamp(v)
                                          : Value::Int(v);
  }

  Enc enc_ = Enc::kRaw;
  ValueType type_ = ValueType::kNull;
  size_t rows_ = 0;
  std::vector<Value> raw_;        // kRaw
  std::vector<int64_t> ints_;     // kFlatInt
  std::vector<double> dbls_;      // kFlatDbl
  std::vector<uint32_t> codes_;   // kDict
  std::vector<std::string> dict_; // kDict, sorted ascending
  std::vector<RleRun> runs_;      // kRle
  std::vector<uint64_t> packed_;  // kPacked
  int64_t base_ = 0;              // kPacked frame-of-reference bias
  uint8_t width_ = 0;             // kPacked bits per value (1..63)
  std::vector<uint8_t> nulls_;    // 1 = null/dead; empty = none
  Value zmin_;                    // min over live non-null (kNull if none)
  Value zmax_;
  size_t encoded_bytes_ = 0;
  size_t raw_bytes_ = 0;
};

/// Per-column view descriptor handed to scan kernels: the encoding tag
/// plus direct pointers into the block's (or tail's) storage. Kernels
/// switch on `enc` once per chunk and then run tight flat-array loops.
/// All array pointers address FULL-block slot positions; chunk views add
/// their `offset` before indexing.
struct ColumnSpan {
  EncodedColumn::Enc enc = EncodedColumn::Enc::kRaw;
  ValueType type = ValueType::kNull;
  const uint8_t* nulls = nullptr;   // 1 = null/dead; nullptr = none
  const Value* flat = nullptr;      // kRaw
  const int64_t* ints = nullptr;    // kFlatInt
  const double* dbls = nullptr;     // kFlatDbl
  const uint32_t* codes = nullptr;  // kDict
  const std::string* dict = nullptr;
  uint32_t dict_size = 0;
  const RleRun* runs = nullptr;     // kRle
  uint32_t num_runs = 0;
  const uint64_t* packed = nullptr; // kPacked
  int64_t pack_base = 0;
  uint8_t pack_width = 0;
};

/// One sealed block: every column encoded, plus live-row bookkeeping that
/// drives zone-map skipping (live_count == 0 skips unconditionally) and
/// the re-encode policy (dead_since_encode accumulates delete churn).
/// `spans` is rebuilt whenever `cols` changes; its pointers target the
/// EncodedColumns' heap buffers, so they stay valid across vector moves
/// of the ColumnBlock itself.
struct ColumnBlock {
  std::vector<EncodedColumn> cols;
  std::vector<ColumnSpan> spans;
  size_t live_count = 0;
  size_t dead_since_encode = 0;

  void RebuildSpans();
  size_t encoded_bytes() const;
  size_t raw_bytes() const;
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_COLUMN_BLOCK_H_
