#include "storage/lock_manager.h"

#include <chrono>

#include "common/clock.h"

namespace olxp::storage {

LockManager::LockManager(int num_shards, ShardHashFn hash)
    : shards_(num_shards), hash_(hash) {}

void LockManager::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_acquires_ = nullptr;
    m_conflicts_ = nullptr;
    m_waits_ = nullptr;
    m_wait_ns_ = nullptr;
    m_timeouts_ = nullptr;
    return;
  }
  m_acquires_ = metrics->GetCounter("lock.acquires");
  m_conflicts_ = metrics->GetCounter("lock.conflicts");
  m_waits_ = metrics->GetCounter("lock.waits");
  m_wait_ns_ = metrics->GetCounter("lock.wait_ns");
  m_timeouts_ = metrics->GetCounter("lock.timeouts");
}

size_t LockManager::LockHash(int table_id, const Row& key) {
  size_t h = HashRow(key);
  h ^= static_cast<size_t>(table_id) * 0x9e3779b97f4a7c15ULL;
  return h;
}

Status LockManager::Acquire(uint64_t txn_id, int table_id, const Row& key,
                            int64_t timeout_micros) {
  Shard& shard = ShardFor(hash_(table_id, key));
  const TableKeyView view{table_id, &key};
  sync::MutexLock lk(shard.mu);
  auto it = shard.locks.find(view);
  if (it == shard.locks.end()) {
    // Free: the Row is copied into the table only on this entry-creating
    // grant; reentries and waiters hit the heterogeneous find above.
    it = shard.locks.emplace(TableKey{table_id, key}, LockEntry{}).first;
    it->second.owner = txn_id;
    it->second.reentry = 1;
    stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (m_acquires_ != nullptr) m_acquires_->Add(1);
    return Status::OK();
  }
  if (it->second.owner == txn_id) {
    it->second.reentry++;
    stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (m_acquires_ != nullptr) m_acquires_->Add(1);
    return Status::OK();
  }
  if (it->second.owner == 0) {
    it->second.owner = txn_id;
    it->second.reentry = 1;
    stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (m_acquires_ != nullptr) m_acquires_->Add(1);
    return Status::OK();
  }
  // Contended: block with a deadline.
  stats_.waits.fetch_add(1, std::memory_order_relaxed);
  if (m_conflicts_ != nullptr) m_conflicts_->Add(1);
  const int64_t t0 = NowNanos();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  it->second.waiters++;
  bool granted = false;
  while (true) {
    // Re-find every iteration: the map may rehash while unlocked during
    // the wait, invalidating references.
    LockEntry& cur = shard.locks.find(view)->second;
    if (cur.owner == 0) {
      cur.owner = txn_id;
      cur.reentry = 1;
      granted = true;
      break;
    }
    // Deadline expiry is a hard timeout: a waiter that slept its whole
    // budget fails deterministically instead of racing the releaser for a
    // last-instant grant (the caller retries the transaction anyway).
    if (shard.cv.WaitUntil(lk, deadline) == std::cv_status::timeout) break;
  }
  auto fit = shard.locks.find(view);
  fit->second.waiters--;
  const int64_t waited_ns = NowNanos() - t0;
  stats_.wait_nanos.fetch_add(static_cast<uint64_t>(waited_ns),
                              std::memory_order_relaxed);
  if (m_wait_ns_ != nullptr) m_wait_ns_->Add(waited_ns);
  if (granted) {
    stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (m_acquires_ != nullptr) {
      m_acquires_->Add(1);
      m_waits_->Add(1);  // blocked, then granted
    }
    return Status::OK();
  }
  stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
  if (m_timeouts_ != nullptr) m_timeouts_->Add(1);
  uint64_t owner_now = fit->second.owner;
  // Last-waiter exit without a grant: Release keeps an unowned entry alive
  // whenever waiters are registered (handoff), so when the handoff is
  // declined by a timeout nobody else is left to erase it — the last
  // timed-out waiter must reap it or shard.locks grows without bound under
  // contention churn.
  if (fit->second.owner == 0 && fit->second.waiters == 0) {
    shard.locks.erase(fit);
  }
  return Status::LockTimeout("row lock wait exceeded deadline; owner txn " +
                             std::to_string(owner_now) + " me " +
                             std::to_string(txn_id));
}

void LockManager::Release(uint64_t txn_id, int table_id, const Row& key) {
  Shard& shard = ShardFor(hash_(table_id, key));
  const TableKeyView view{table_id, &key};
  sync::MutexLock lk(shard.mu);
  auto it = shard.locks.find(view);
  if (it == shard.locks.end() || it->second.owner != txn_id) return;
  if (--it->second.reentry > 0) return;
  it->second.owner = 0;
  bool has_waiters = it->second.waiters > 0;
  if (!has_waiters) {
    shard.locks.erase(it);
  }
  lk.Unlock();
  if (has_waiters) shard.cv.NotifyAll();
}

size_t LockManager::EntryCount() {
  size_t n = 0;
  for (Shard& shard : shards_) {
    sync::MutexLock lk(shard.mu);
    n += shard.locks.size();
  }
  return n;
}

bool LockManager::Holds(uint64_t txn_id, int table_id, const Row& key) {
  Shard& shard = ShardFor(hash_(table_id, key));
  const TableKeyView view{table_id, &key};
  sync::MutexLock lk(shard.mu);
  auto it = shard.locks.find(view);
  return it != shard.locks.end() && it->second.owner == txn_id;
}

}  // namespace olxp::storage
