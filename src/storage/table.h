#ifndef OLXP_STORAGE_TABLE_H_
#define OLXP_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/value.h"
#include "storage/schema.h"

namespace olxp::storage {

/// One committed version of a row. Chains are ordered by ascending
/// commit_ts; a deleted version is a tombstone.
struct Version {
  uint64_t commit_ts = 0;
  bool deleted = false;
  Row data;
};

/// Reclamation counts of one vacuum sweep over a table (accumulated into
/// pass/total stats by storage::Vacuum).
struct VacuumStats {
  uint64_t versions_removed = 0;       ///< version-chain entries erased
  uint64_t chains_removed = 0;         ///< whole rows erased (dead tombstones)
  uint64_t index_entries_removed = 0;  ///< stale (index_key, pk) pairs erased

  VacuumStats& operator+=(const VacuumStats& o) {
    versions_removed += o.versions_removed;
    chains_removed += o.chains_removed;
    index_entries_removed += o.index_entries_removed;
    return *this;
  }
};

/// Callback receiving a visible row during a scan. Return false to stop.
using RowCallback = std::function<bool(const Row&)>;

/// Multi-version row table ordered by composite primary key, with
/// secondary indexes. Writes are *installed* here only at transaction
/// commit (the transaction layer buffers them and owns the row locks);
/// readers are lock-free with respect to row locks and see a consistent
/// snapshot chosen by timestamp.
///
/// Concurrency: a table-level shared_mutex protects the tree structure;
/// version installs take it exclusively (short critical section), reads and
/// scans take it shared. Version chains are only appended under the
/// exclusive lock, so shared-lock readers can safely walk them. Scans are
/// chunked (see scan_chunk_rows): the shared lock drops every chunk so a
/// multi-second analytical sweep never blocks committers for its whole
/// duration — per-key MVCC visibility keeps the result a consistent
/// snapshot anyway (rows installed between chunks carry newer timestamps;
/// rows vacuumed between chunks were invisible at any registered snapshot).
class MvccTable {
 public:
  MvccTable(int table_id, TableSchema schema) : table_id_(table_id) {
    schema_history_.push_back(
        std::make_unique<const TableSchema>(std::move(schema)));
    schema_ptr_.store(schema_history_.back().get(),
                      std::memory_order_release);
  }

  MvccTable(const MvccTable&) = delete;
  MvccTable& operator=(const MvccTable&) = delete;

  int table_id() const { return table_id_; }

  /// Current schema snapshot. Lock-free and safe under concurrent DDL:
  /// AddIndex never mutates a published snapshot — it publishes a new
  /// immutable copy and retains the old one for the table's lifetime, so a
  /// reference obtained here stays valid and self-consistent even while a
  /// concurrent CREATE INDEX lands (it just describes the pre-DDL shape).
  const TableSchema& schema() const {
    return *schema_ptr_.load(std::memory_order_acquire);
  }

  /// Latest commit timestamp of any version of `pk`; 0 when unknown.
  /// Used by snapshot-isolation first-committer-wins validation.
  uint64_t LatestCommitTs(const Row& pk) const;

  /// Reads the version of `pk` visible at `snapshot_ts` (the newest version
  /// with commit_ts <= snapshot_ts). Returns nullopt when absent/deleted.
  std::optional<Row> Get(const Row& pk, uint64_t snapshot_ts) const;

  /// Installs a new committed version. Caller (the committing transaction)
  /// must hold the row lock. Fails with Internal when `commit_ts` is below
  /// the chain's newest version — installing it would corrupt the ascending
  /// order VisibleVersion depends on (a real check, not a debug assert:
  /// release builds must refuse the commit rather than corrupt the chain).
  Status InstallVersion(const Row& pk, uint64_t commit_ts, bool deleted,
                        Row data);

  /// Full scan of rows visible at `snapshot_ts` in primary-key order.
  /// Returns the number of rows *visited* (versions inspected), which the
  /// latency model uses as scan cost.
  int64_t Scan(uint64_t snapshot_ts, const RowCallback& cb) const;

  /// Range scan over primary keys in [lo, hi] (inclusive; either may be a
  /// key prefix). Visible rows only.
  int64_t ScanPkRange(const Row& lo, const Row& hi, uint64_t snapshot_ts,
                      const RowCallback& cb) const;

  /// Point lookups through secondary index `index_id` (position in
  /// schema().indexes()). Appends visible matching rows to `out`; stale
  /// index entries are verified against the row and skipped (and physically
  /// purged by VacuumBelow once no snapshot can need them).
  /// Returns number of index entries visited.
  int64_t IndexLookup(int index_id, const Row& key, uint64_t snapshot_ts,
                      std::vector<Row>* out) const;

  /// Adds a secondary index to the live table and backfills entries from
  /// the newest committed version of every row.
  Status AddIndex(IndexDef def);

  /// Visits the version of every row visible at `snapshot_ts` together with
  /// its commit timestamp, in primary-key order (checkpoint writer). Rows
  /// deleted as of the snapshot are skipped. Return false to stop.
  void ForEachCommitted(
      uint64_t snapshot_ts,
      const std::function<bool(const Row& pk, uint64_t commit_ts,
                               const Row& data)>& cb) const;

  /// Number of distinct primary keys currently in the tree (incl. rows
  /// whose newest version is a tombstone).
  size_t ApproxRowCount() const;

  /// Garbage-collects history no live snapshot can observe, in exclusive-
  /// lock chunks of `batch_rows` rows (the latch drops between chunks so
  /// committers interleave). For every chain: versions strictly older than
  /// the newest version with commit_ts <= `watermark` are erased; when that
  /// watermark version is a tombstone with nothing newer above it, the
  /// whole chain (the row) is erased. Secondary-index entries backed only
  /// by erased versions are purged. Safe while scans/reads at snapshots
  /// >= `watermark` run concurrently; the caller (storage::Vacuum) derives
  /// `watermark` from the live-snapshot registry.
  VacuumStats VacuumBelow(uint64_t watermark, size_t batch_rows);

  /// DEPRECATED: prunes version chains down to the newest `keep` versions
  /// with no snapshot safety and no index-entry maintenance. Kept as a shim
  /// for legacy tests; new code (and the bench harness) uses the
  /// watermark-driven vacuum instead.
  void PruneVersions(size_t keep);

  /// Total version-chain entries across all rows (vacuum diagnostics).
  size_t TotalVersionCount() const;

  /// Total secondary-index entries across all indexes (stale included).
  size_t IndexEntryCount() const;

  /// Rows each shared-lock scan chunk visits before dropping the table
  /// latch (0 = hold the latch for the whole sweep — the pre-chunking
  /// behaviour, kept for the fig1/fig4 before/after ablation).
  void set_scan_chunk_rows(size_t rows) {
    scan_chunk_rows_.store(rows, std::memory_order_relaxed);
  }
  size_t scan_chunk_rows() const {
    return scan_chunk_rows_.load(std::memory_order_relaxed);
  }

  /// Cumulative count of rows visited by scans (interference metric).
  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }

  /// Live analytical scans touching THIS table. Buffer/latch pressure is
  /// per-data: the latency model inflates the cost of operations on a table
  /// by the scans concurrently sweeping it. Scans of tables the OLTP
  /// workload never touches (e.g. CH-benCHmark's SUPPLIER/NATION/REGION)
  /// therefore do not slow OLTP down — the asymmetry §V-B1 measures.
  std::atomic<int>& active_scans() { return active_scans_; }
  int active_scan_count() const {
    return active_scans_.load(std::memory_order_relaxed);
  }

 private:
  struct Chain {
    std::vector<Version> versions;  // ascending commit_ts
  };

  /// Newest version with commit_ts <= ts, or nullptr.
  static const Version* VisibleVersion(const Chain& chain, uint64_t ts);

  /// Erases one (ikey, pk) pair from index `idx` if present. Returns 1 when
  /// an entry was erased.
  size_t EraseIndexEntry(size_t idx, const Row& ikey, const Row& pk)
      REQUIRES(mu_);

  const int table_id_;

  /// All table latches share one rank: the executor pins one table per
  /// scan and never acquires another table's latch inside a scan callback.
  mutable sync::SharedMutex mu_{sync::LockRank::kTableLatch, "mvcc.table"};
  /// Every schema snapshot ever published, oldest first; the newest is the
  /// one schema() serves. Grows only on AddIndex (bounded by DDL count), so
  /// retaining the history keeps old references valid forever instead of
  /// racing readers against an in-place mutation.
  std::vector<std::unique_ptr<const TableSchema>> schema_history_
      GUARDED_BY(mu_);
  std::atomic<const TableSchema*> schema_ptr_{nullptr};
  std::map<Row, Chain, KeyLess> rows_ GUARDED_BY(mu_);
  /// One multimap per IndexDef: index key -> primary key. Entries are
  /// inserted on install, verified (lazily invalidated) on lookup, and
  /// physically erased by VacuumBelow when the versions backing them go.
  std::vector<std::multimap<Row, Row, KeyLess>> index_entries_
      GUARDED_BY(mu_);

  std::atomic<size_t> scan_chunk_rows_{1024};
  mutable std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<int> active_scans_{0};
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_TABLE_H_
