#ifndef OLXP_STORAGE_TABLE_H_
#define OLXP_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace olxp::storage {

/// One committed version of a row. Chains are ordered by ascending
/// commit_ts; a deleted version is a tombstone.
struct Version {
  uint64_t commit_ts = 0;
  bool deleted = false;
  Row data;
};

/// Callback receiving a visible row during a scan. Return false to stop.
using RowCallback = std::function<bool(const Row&)>;

/// Multi-version row table ordered by composite primary key, with
/// secondary indexes. Writes are *installed* here only at transaction
/// commit (the transaction layer buffers them and owns the row locks);
/// readers are lock-free with respect to row locks and see a consistent
/// snapshot chosen by timestamp.
///
/// Concurrency: a table-level shared_mutex protects the tree structure;
/// version installs take it exclusively (short critical section), reads and
/// scans take it shared. Version chains are only appended under the
/// exclusive lock, so shared-lock readers can safely walk them.
class MvccTable {
 public:
  MvccTable(int table_id, TableSchema schema)
      : table_id_(table_id), schema_(std::move(schema)) {}

  MvccTable(const MvccTable&) = delete;
  MvccTable& operator=(const MvccTable&) = delete;

  int table_id() const { return table_id_; }
  const TableSchema& schema() const { return schema_; }

  /// Latest commit timestamp of any version of `pk`; 0 when unknown.
  /// Used by snapshot-isolation first-committer-wins validation.
  uint64_t LatestCommitTs(const Row& pk) const;

  /// Reads the version of `pk` visible at `snapshot_ts` (the newest version
  /// with commit_ts <= snapshot_ts). Returns nullopt when absent/deleted.
  std::optional<Row> Get(const Row& pk, uint64_t snapshot_ts) const;

  /// Installs a new committed version. Caller (the committing transaction)
  /// must hold the row lock; commit timestamps must be monotone per row.
  void InstallVersion(const Row& pk, uint64_t commit_ts, bool deleted,
                      Row data);

  /// Full scan of rows visible at `snapshot_ts` in primary-key order.
  /// Returns the number of rows *visited* (versions inspected), which the
  /// latency model uses as scan cost.
  int64_t Scan(uint64_t snapshot_ts, const RowCallback& cb) const;

  /// Range scan over primary keys in [lo, hi] (inclusive; either may be a
  /// key prefix). Visible rows only.
  int64_t ScanPkRange(const Row& lo, const Row& hi, uint64_t snapshot_ts,
                      const RowCallback& cb) const;

  /// Point lookups through secondary index `index_id` (position in
  /// schema().indexes()). Appends visible matching rows to `out`; stale
  /// index entries are verified against the row and skipped.
  /// Returns number of index entries visited.
  int64_t IndexLookup(int index_id, const Row& key, uint64_t snapshot_ts,
                      std::vector<Row>* out) const;

  /// Adds a secondary index to the live table and backfills entries from
  /// the newest committed version of every row.
  Status AddIndex(IndexDef def);

  /// Visits the version of every row visible at `snapshot_ts` together with
  /// its commit timestamp, in primary-key order (checkpoint writer). Rows
  /// deleted as of the snapshot are skipped. Return false to stop.
  void ForEachCommitted(
      uint64_t snapshot_ts,
      const std::function<bool(const Row& pk, uint64_t commit_ts,
                               const Row& data)>& cb) const;

  /// Number of distinct primary keys currently in the tree (incl. rows
  /// whose newest version is a tombstone).
  size_t ApproxRowCount() const;

  /// Prunes version chains down to the newest `keep` versions. Benchmarks
  /// call this between measurement cells; safe only when no transaction
  /// holds a snapshot older than the pruned versions.
  void PruneVersions(size_t keep);

  /// Cumulative count of rows visited by scans (interference metric).
  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }

  /// Live analytical scans touching THIS table. Buffer/latch pressure is
  /// per-data: the latency model inflates the cost of operations on a table
  /// by the scans concurrently sweeping it. Scans of tables the OLTP
  /// workload never touches (e.g. CH-benCHmark's SUPPLIER/NATION/REGION)
  /// therefore do not slow OLTP down — the asymmetry §V-B1 measures.
  std::atomic<int>& active_scans() { return active_scans_; }
  int active_scan_count() const {
    return active_scans_.load(std::memory_order_relaxed);
  }

 private:
  struct Chain {
    std::vector<Version> versions;  // ascending commit_ts
  };

  /// Newest version with commit_ts <= ts, or nullptr.
  static const Version* VisibleVersion(const Chain& chain, uint64_t ts);

  const int table_id_;
  TableSchema schema_;

  mutable std::shared_mutex mu_;
  std::map<Row, Chain, KeyLess> rows_;
  /// One multimap per IndexDef: index key -> primary key. Entries are
  /// inserted on install and verified (lazily invalidated) on lookup.
  std::vector<std::multimap<Row, Row, KeyLess>> index_entries_;

  mutable std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<int> active_scans_{0};
};

}  // namespace olxp::storage

#endif  // OLXP_STORAGE_TABLE_H_
