#include "storage/schema.h"

#include "common/strings.h"

namespace olxp::storage {

int TableSchema::ColumnIndex(std::string_view col_name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (EqualsNoCase(cols_[i].name, col_name)) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::AddIndex(IndexDef def) {
  for (const auto& idx : indexes_) {
    if (EqualsNoCase(idx.name, def.name)) {
      return Status::AlreadyExists("index " + def.name);
    }
  }
  for (int c : def.column_idx) {
    if (c < 0 || c >= num_columns()) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  indexes_.push_back(std::move(def));
  return Status::OK();
}

Row TableSchema::ExtractPrimaryKey(const Row& row) const {
  Row key;
  key.reserve(pk_columns_.size());
  for (int c : pk_columns_) key.push_back(row[c]);
  return key;
}

Row TableSchema::ExtractIndexKey(const IndexDef& idx, const Row& row) const {
  Row key;
  key.reserve(idx.column_idx.size());
  for (int c : idx.column_idx) key.push_back(row[c]);
  return key;
}

StatusOr<Row> TableSchema::NormalizeRow(const Row& row) const {
  if (row.size() != cols_.size()) {
    return Status::InvalidArgument(
        StrFormat("table %s expects %d values, got %d", name_.c_str(),
                  num_columns(), static_cast<int>(row.size())));
  }
  Row out;
  out.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (!cols_[i].nullable) {
        return Status::InvalidArgument("column " + cols_[i].name +
                                       " is NOT NULL");
      }
      out.push_back(Value::Null());
      continue;
    }
    auto cast = row[i].CastTo(cols_[i].type);
    if (!cast.ok()) {
      return Status::InvalidArgument("column " + cols_[i].name + ": " +
                                     cast.status().message());
    }
    out.push_back(std::move(cast).value());
  }
  return out;
}

}  // namespace olxp::storage
