#include "txn/transaction.h"

#include <algorithm>
#include <cassert>

#include "common/clock.h"

namespace olxp::txn {

const char* IsolationLevelName(IsolationLevel lvl) {
  switch (lvl) {
    case IsolationLevel::kReadCommitted:
      return "read-committed";
    case IsolationLevel::kSnapshotIsolation:
      return "snapshot-isolation";
  }
  return "?";
}

Transaction::Transaction(uint64_t id, IsolationLevel isolation,
                         uint64_t start_ts, storage::RowStore* store,
                         storage::LockManager* locks,
                         storage::TimestampOracle* oracle,
                         storage::CommitLog* log,
                         int64_t lock_timeout_micros,
                         storage::SnapshotRegistry* snapshots,
                         storage::SnapshotRegistry::Handle snapshot_handle)
    : id_(id),
      isolation_(isolation),
      start_ts_(start_ts),
      store_(store),
      locks_(locks),
      oracle_(oracle),
      log_(log),
      lock_timeout_micros_(lock_timeout_micros),
      snapshots_(snapshots),
      snapshot_handle_(snapshot_handle) {}

Transaction::~Transaction() {
  if (state_ == TxnState::kActive) {
    (void)Abort();  // Status unreportable from a destructor
  }
  ReleaseSnapshot();  // Abort/Commit already did; idempotent backstop
}

void Transaction::ReleaseSnapshot() {
  if (snapshots_ != nullptr && snapshot_handle_ != 0) {
    snapshots_->Release(snapshot_handle_);
    snapshot_handle_ = 0;
  }
}

uint64_t Transaction::StatementSnapshot() const {
  return isolation_ == IsolationLevel::kSnapshotIsolation ? start_ts_
                                                          : oracle_->Current();
}

StatusOr<std::optional<Row>> Transaction::Get(int table_id, const Row& pk) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  ++seeks_;
  auto ws = write_sets_.find(table_id);
  if (ws != write_sets_.end()) {
    auto it = ws->second.find(pk);
    if (it != ws->second.end()) {
      if (it->second.deleted) return std::optional<Row>();
      return std::optional<Row>(it->second.data);
    }
  }
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  ++rows_visited_;
  return t->Get(pk, StatementSnapshot());
}

Status Transaction::MergedScan(
    storage::MvccTable* t,
    const std::function<bool(const Row&)>& key_filter,
    const std::function<int64_t(const storage::RowCallback&)>& scan,
    const storage::RowCallback& cb, int64_t* rows_visited) {
  const WriteMap* ws = nullptr;
  auto wit = write_sets_.find(t->table_id());
  if (wit != write_sets_.end()) ws = &wit->second;

  // Merge the write set (a KeyLess-ordered map) into the storage scan so
  // the caller sees one primary-key-ordered stream: buffered inserts used
  // to be appended after the scan, breaking the PK-order contract.
  storage::KeyLess less;
  auto pending = ws != nullptr ? ws->begin() : WriteMap::const_iterator();
  bool keep_going = true;
  int64_t ws_visited = 0;
  // Emits pending writes strictly before `bound` (all of them when null).
  auto emit_pending_before = [&](const Row* bound) {
    while (ws != nullptr && pending != ws->end() &&
           (bound == nullptr || less(pending->first, *bound))) {
      const PendingWrite& w = pending->second;
      if (key_filter != nullptr && !key_filter(pending->first)) {
        ++pending;
        continue;
      }
      ++ws_visited;
      ++pending;
      if (w.deleted) continue;
      if (!cb(w.data)) {
        keep_going = false;
        return;
      }
    }
  };

  int64_t visited = scan([&](const Row& row) {
    if (ws == nullptr) {
      keep_going = cb(row);
      return keep_going;
    }
    Row pk = t->schema().ExtractPrimaryKey(row);
    emit_pending_before(&pk);
    if (!keep_going) return false;
    if (pending != ws->end() && !less(pk, pending->first)) {
      // Equal key: our buffered write supersedes the stored image. (The
      // storage row already passed the scan's own bounds, so the equal
      // write-set key needs no key_filter check.)
      ++ws_visited;
      const PendingWrite& w = pending->second;
      ++pending;
      if (w.deleted) return true;
      keep_going = cb(w.data);
      return keep_going;
    }
    keep_going = cb(row);
    return keep_going;
  });
  if (keep_going) emit_pending_before(nullptr);
  rows_visited_ += visited + ws_visited;
  if (rows_visited != nullptr) *rows_visited = visited + ws_visited;
  return Status::OK();
}

Status Transaction::Scan(int table_id, const storage::RowCallback& cb,
                         int64_t* rows_visited) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  return MergedScan(
      t, nullptr,
      [&](const storage::RowCallback& merged) {
        return t->Scan(StatementSnapshot(), merged);
      },
      cb, rows_visited);
}

Status Transaction::ScanPkRange(int table_id, const Row& lo, const Row& hi,
                                const storage::RowCallback& cb,
                                int64_t* rows_visited) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  ++seeks_;
  // In-range test with prefix semantics matching ScanPkRange, applied to
  // write-set keys (storage rows are bounded by the scan itself) so a
  // range read inside the transaction sees its own inserts in PK position.
  auto in_range = [&](const Row& pk) {
    return storage::ComparePrefix(pk, lo.size(), lo) >= 0 &&
           storage::ComparePrefix(pk, hi.size(), hi) <= 0;
  };
  return MergedScan(
      t, in_range,
      [&](const storage::RowCallback& merged) {
        return t->ScanPkRange(lo, hi, StatementSnapshot(), merged);
      },
      cb, rows_visited);
}

Status Transaction::IndexLookup(int table_id, int index_id, const Row& key,
                                std::vector<Row>* out,
                                int64_t* rows_visited) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  ++seeks_;
  std::vector<Row> stored;
  int64_t visited =
      t->IndexLookup(index_id, key, StatementSnapshot(), &stored);

  const WriteMap* ws = nullptr;
  auto wit = write_sets_.find(table_id);
  if (wit != write_sets_.end()) ws = &wit->second;
  const storage::IndexDef& def = t->schema().indexes()[index_id];

  for (Row& row : stored) {
    if (ws != nullptr) {
      Row pk = t->schema().ExtractPrimaryKey(row);
      if (ws->count(pk)) continue;  // superseded below
    }
    out->push_back(std::move(row));
  }
  if (ws != nullptr) {
    for (const auto& [pk, w] : *ws) {
      if (w.deleted) continue;
      Row ikey = t->schema().ExtractIndexKey(def, w.data);
      ++visited;
      if (storage::PrefixEq(ikey, key.size(), key)) out->push_back(w.data);
    }
  }
  rows_visited_ += visited;
  if (rows_visited != nullptr) *rows_visited = visited;
  return Status::OK();
}

StatusOr<std::optional<Row>> Transaction::LockAndGet(int table_id,
                                                     const Row& pk) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  OLXP_RETURN_NOT_OK(LockAndValidate(table_id, pk));
  ++seeks_;
  ++rows_visited_;
  auto ws = write_sets_.find(table_id);
  if (ws != write_sets_.end()) {
    auto it = ws->second.find(pk);
    if (it != ws->second.end()) {
      if (it->second.deleted) return std::optional<Row>();
      return std::optional<Row>(it->second.data);
    }
  }
  // Freshest committed version: we hold the lock, so nothing newer can
  // land while this statement runs.
  return t->Get(pk, oracle_->Current());
}

Status Transaction::LockAndValidate(int table_id, const Row& pk) {
  Status lock = locks_->Acquire(id_, table_id, pk, lock_timeout_micros_);
  if (!lock.ok()) {
    if (lock.code() == StatusCode::kLockTimeout) {
      storage::MvccTable* t = store_->table(table_id);
      std::string key_str;
      for (const Value& v : pk) key_str += v.ToString() + ",";
      return Status::LockTimeout(
          (t != nullptr ? t->schema().name() : "?") + " key=(" + key_str +
          ") txn=" + std::to_string(id_) + " [" + lock.message() + "]");
    }
    return lock;
  }
  held_locks_.emplace_back(table_id, pk);
  if (isolation_ == IsolationLevel::kSnapshotIsolation) {
    // First-committer-wins: abort if someone committed this row after our
    // snapshot was taken.
    storage::MvccTable* t = store_->table(table_id);
    if (t != nullptr && t->LatestCommitTs(pk) > start_ts_) {
      return Status::Conflict("write-write conflict on " +
                              t->schema().name());
    }
  }
  return Status::OK();
}

Status Transaction::Insert(int table_id, Row row) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  auto normalized = t->schema().NormalizeRow(row);
  if (!normalized.ok()) return normalized.status();
  Row pk = t->schema().ExtractPrimaryKey(*normalized);
  OLXP_RETURN_NOT_OK(LockAndValidate(table_id, pk));

  WriteMap& ws = write_sets_[table_id];
  auto wit = ws.find(pk);
  if (wit != ws.end()) {
    if (!wit->second.deleted) {
      return Status::AlreadyExists("duplicate key in " + t->schema().name());
    }
  } else if (t->Get(pk, StatementSnapshot()).has_value()) {
    return Status::AlreadyExists("duplicate key in " + t->schema().name());
  }
  ws[pk] = PendingWrite{false, std::move(*normalized)};
  ++writes_;
  return Status::OK();
}

Status Transaction::Update(int table_id, Row row) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  auto normalized = t->schema().NormalizeRow(row);
  if (!normalized.ok()) return normalized.status();
  Row pk = t->schema().ExtractPrimaryKey(*normalized);
  OLXP_RETURN_NOT_OK(LockAndValidate(table_id, pk));

  WriteMap& ws = write_sets_[table_id];
  auto wit = ws.find(pk);
  bool exists = wit != ws.end()
                    ? !wit->second.deleted
                    : t->Get(pk, StatementSnapshot()).has_value();
  if (!exists) return Status::NotFound("update of absent row");
  ws[pk] = PendingWrite{false, std::move(*normalized)};
  ++writes_;
  return Status::OK();
}

Status Transaction::Delete(int table_id, const Row& pk) {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  storage::MvccTable* t = store_->table(table_id);
  if (t == nullptr) return Status::NotFound("bad table id");
  OLXP_RETURN_NOT_OK(LockAndValidate(table_id, pk));

  WriteMap& ws = write_sets_[table_id];
  auto wit = ws.find(pk);
  bool exists = wit != ws.end()
                    ? !wit->second.deleted
                    : t->Get(pk, StatementSnapshot()).has_value();
  if (!exists) return Status::NotFound("delete of absent row");
  ws[pk] = PendingWrite{true, Row{}};
  ++writes_;
  return Status::OK();
}

Status Transaction::Commit() {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  if (write_sets_.empty()) {
    state_ = TxnState::kCommitted;
    ReleaseAllLocks();
    ReleaseSnapshot();
    return Status::OK();
  }
  uint64_t durable_ticket = 0;
  Status validate = Status::OK();
  {
    // Two-phase commit publish: versions install with a reserved timestamp
    // that no open snapshot can observe until the scope ends (see
    // TimestampOracle). The critical section also serializes the redo-log
    // append with the publish so the log stays in commit order. Row locks
    // MUST outlive the publish: releasing them earlier lets a waiting
    // read-committed writer read the pre-publish value and lose our update.
    // Conversely, lock RELEASE must wait for the scope to end: the oracle's
    // commit mutex ranks above the lock-manager shards, so releasing inside
    // the scope would invert the lock order (and needlessly extend the
    // publish critical section).
    storage::TimestampOracle::CommitScope scope(oracle_);
    const uint64_t commit_ts = scope.commit_ts();
    // Validate EVERY chain head against commit_ts before installing
    // ANYTHING: failing mid-loop would leave a torn commit (rows already
    // installed and visible, nothing logged or replicated). We hold all
    // row locks and chains only grow under those locks, so a head that
    // passes here cannot move before its install below.
    for (auto& [table_id, ws] : write_sets_) {
      storage::MvccTable* t = store_->table(table_id);
      assert(t != nullptr);
      for (auto& [pk, w] : ws) {
        (void)w;
        if (t->LatestCommitTs(pk) > commit_ts) {
          validate = Status::Internal("non-monotone commit ts on " +
                                      t->schema().name());
          break;
        }
      }
      if (!validate.ok()) break;
    }
    if (validate.ok()) {
      storage::CommitRecord rec;
      rec.commit_ts = commit_ts;
      rec.commit_wall_us = NowMicros();
      for (auto& [table_id, ws] : write_sets_) {
        storage::MvccTable* t = store_->table(table_id);
        for (auto& [pk, w] : ws) {
          // Cannot fail: the chain heads were validated above and are
          // pinned by our row locks. The check stays for non-commit
          // callers (recovery, loaders); a failure here would be a
          // locking bug.
          Status install = t->InstallVersion(pk, commit_ts, w.deleted,
                                             w.data);
          assert(install.ok());
          (void)install;
          storage::LogOp op;
          op.kind = w.deleted ? storage::LogOp::Kind::kDelete
                              : storage::LogOp::Kind::kUpsert;
          op.table_id = table_id;
          op.pk = pk;
          op.data = std::move(w.data);
          rec.ops.push_back(std::move(op));
        }
      }
      if (log_ != nullptr) durable_ticket = log_->Append(std::move(rec));
    }
  }  // timestamp published (or reservation retired) here
  write_sets_.clear();
  if (!validate.ok()) {
    state_ = TxnState::kAborted;
    ReleaseAllLocks();
    ReleaseSnapshot();
    return validate;
  }
  state_ = TxnState::kCommitted;
  ReleaseAllLocks();
  ReleaseSnapshot();
  // Group commit: block for the covering fsync only after the publish and
  // the lock release, so concurrent committers pile into the same batch
  // instead of serializing behind our wait. The transaction does not report
  // success until its record is durable; a crash before the fsync loses a
  // commit that nobody was told succeeded. Caveat (shared with every
  // early-lock-release group-commit design): between the publish and the
  // fsync the versions are already visible, so a concurrent reader can
  // observe a commit that a crash then erases — readers needing
  // durable-only data must externally await the writer's acknowledgment.
  // A WAL I/O failure surfaces here as a non-OK status: the versions stay
  // visible in memory, but the caller must not treat the commit as durable.
  if (log_ != nullptr) {
    return log_->WaitDurable(durable_ticket);
  }
  return Status::OK();
}

Status Transaction::Abort() {
  if (state_ != TxnState::kActive) return Status::Aborted("txn not active");
  write_sets_.clear();
  state_ = TxnState::kAborted;
  ReleaseAllLocks();
  ReleaseSnapshot();
  return Status::OK();
}

size_t Transaction::WriteSetSize() const {
  size_t n = 0;
  for (const auto& [tid, ws] : write_sets_) n += ws.size();
  return n;
}

void Transaction::ReleaseAllLocks() {
  // Release in reverse acquisition order.
  for (auto it = held_locks_.rbegin(); it != held_locks_.rend(); ++it) {
    locks_->Release(id_, it->first, it->second);
  }
  held_locks_.clear();
}

TransactionManager::TransactionManager(storage::RowStore* store,
                                       storage::LockManager* locks,
                                       storage::TimestampOracle* oracle,
                                       storage::CommitLog* log,
                                       int64_t lock_timeout_micros,
                                       storage::SnapshotRegistry* snapshots)
    : store_(store),
      locks_(locks),
      oracle_(oracle),
      log_(log),
      lock_timeout_micros_(lock_timeout_micros),
      snapshots_(snapshots) {}

std::unique_ptr<Transaction> TransactionManager::Begin(
    IsolationLevel isolation) {
  uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  // The registry assigns the start timestamp when present: reading the
  // oracle and registering under one mutex closes the race where a vacuum
  // watermark computed between the two steps advances past a snapshot that
  // is about to become live.
  uint64_t start_ts;
  storage::SnapshotRegistry::Handle handle = 0;
  if (snapshots_ != nullptr) {
    handle = snapshots_->Acquire(*oracle_, &start_ts);
  } else {
    start_ts = oracle_->Current();
  }
  return std::make_unique<Transaction>(id, isolation, start_ts, store_,
                                       locks_, oracle_, log_,
                                       lock_timeout_micros_, snapshots_,
                                       handle);
}

}  // namespace olxp::txn
