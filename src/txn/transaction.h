#ifndef OLXP_TXN_TRANSACTION_H_
#define OLXP_TXN_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/lock_manager.h"
#include "storage/oracle.h"
#include "storage/row_store.h"
#include "storage/vacuum.h"
#include "storage/wal.h"

namespace olxp::txn {

/// Isolation levels offered by the engine. The paper's SUTs run
/// repeatable-read (TiDB, implemented there as snapshot isolation) and
/// read-committed (MemSQL); we expose exactly those two semantics.
enum class IsolationLevel {
  kReadCommitted,     ///< each statement sees the latest committed state
  kSnapshotIsolation, ///< txn-wide snapshot + first-committer-wins writes
};

const char* IsolationLevelName(IsolationLevel lvl);

enum class TxnState { kActive, kCommitted, kAborted };

/// A transaction: buffered write set + held row locks + snapshot timestamps.
/// Reads merge the write set over the storage snapshot (read-own-writes).
/// Created via TransactionManager::Begin().
class Transaction {
 public:
  /// `snapshots`/`snapshot_handle`: registration of `start_ts` as a live
  /// snapshot in the engine's registry (nullable/0 when the engine runs no
  /// vacuum). The transaction releases it when it leaves the active state,
  /// letting the vacuum watermark advance past its snapshot.
  Transaction(uint64_t id, IsolationLevel isolation, uint64_t start_ts,
              storage::RowStore* store, storage::LockManager* locks,
              storage::TimestampOracle* oracle, storage::CommitLog* log,
              int64_t lock_timeout_micros,
              storage::SnapshotRegistry* snapshots = nullptr,
              storage::SnapshotRegistry::Handle snapshot_handle = 0);
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t id() const { return id_; }
  uint64_t start_ts() const { return start_ts_; }
  IsolationLevel isolation() const { return isolation_; }
  TxnState state() const { return state_; }

  /// Snapshot timestamp for a *new statement*: the txn snapshot under SI,
  /// the latest committed timestamp under read-committed.
  uint64_t StatementSnapshot() const;

  /// Point read by primary key (merges the write set).
  StatusOr<std::optional<Row>> Get(int table_id, const Row& pk);

  /// Acquires the write lock on `pk` (with SI first-committer-wins
  /// validation) and returns the current row under the lock: this txn's own
  /// buffered write if any, else the newest committed version. The
  /// foundation of atomic read-modify-write UPDATEs.
  StatusOr<std::optional<Row>> LockAndGet(int table_id, const Row& pk);

  /// Scans visible rows of a table in primary-key order, write set merged
  /// in key position (updated rows replace stored images; buffered inserts
  /// interleave at their PK slot; buffered deletes are skipped).
  Status Scan(int table_id, const storage::RowCallback& cb,
              int64_t* rows_visited = nullptr);

  /// Primary-key range scan with write-set merge in key order, [lo, hi]
  /// inclusive (prefixes allowed).
  Status ScanPkRange(int table_id, const Row& lo, const Row& hi,
                     const storage::RowCallback& cb,
                     int64_t* rows_visited = nullptr);

  /// Secondary-index lookup with write-set merge.
  Status IndexLookup(int table_id, int index_id, const Row& key,
                     std::vector<Row>* out, int64_t* rows_visited = nullptr);

  /// Inserts a full row; AlreadyExists if a visible duplicate primary key
  /// exists (or one is buffered).
  Status Insert(int table_id, Row row);

  /// Replaces the row at its primary key with `row` (pk must not change).
  /// NotFound when no visible row.
  Status Update(int table_id, Row row);

  /// Deletes by primary key. NotFound when no visible row.
  Status Delete(int table_id, const Row& pk);

  /// Commits: installs all buffered versions at a fresh commit timestamp,
  /// appends the redo record, releases locks.
  Status Commit();

  /// Drops the write set and releases locks.
  Status Abort();

  /// Number of buffered writes (test/diagnostic).
  size_t WriteSetSize() const;

  /// Cumulative count of storage rows visited by this txn's reads — the
  /// latency model charges per-row scan cost from it.
  int64_t rows_visited() const { return rows_visited_; }
  /// Cumulative count of point/index seeks issued.
  int64_t seeks() const { return seeks_; }
  /// Write-set mutation count for cost accounting.
  int64_t writes() const { return writes_; }

 private:
  struct PendingWrite {
    bool deleted = false;
    Row data;
  };
  using WriteMap = std::map<Row, PendingWrite, storage::KeyLess>;

  /// Shared ordered-merge core of Scan/ScanPkRange: runs `scan` (which
  /// must deliver storage rows in primary-key order) and interleaves this
  /// transaction's write set at its key positions — equal keys supersede
  /// the stored image, buffered deletes drop it. `key_filter` (nullable)
  /// restricts which write-set keys participate (range scans pass their
  /// bounds check; storage rows are pre-filtered by the scan itself).
  Status MergedScan(
      storage::MvccTable* t,
      const std::function<bool(const Row&)>& key_filter,
      const std::function<int64_t(const storage::RowCallback&)>& scan,
      const storage::RowCallback& cb, int64_t* rows_visited);

  /// Acquires the row lock and performs SI first-committer-wins validation.
  Status LockAndValidate(int table_id, const Row& pk);

  void ReleaseAllLocks();

  /// Unregisters start_ts from the snapshot registry (idempotent). Called
  /// on every transition out of the active state.
  void ReleaseSnapshot();

  const uint64_t id_;
  const IsolationLevel isolation_;
  const uint64_t start_ts_;
  storage::RowStore* store_;
  storage::LockManager* locks_;
  storage::TimestampOracle* oracle_;
  storage::CommitLog* log_;
  const int64_t lock_timeout_micros_;
  storage::SnapshotRegistry* snapshots_;
  storage::SnapshotRegistry::Handle snapshot_handle_;

  TxnState state_ = TxnState::kActive;
  std::unordered_map<int, WriteMap> write_sets_;  // table_id -> writes
  std::vector<std::pair<int, Row>> held_locks_;

  int64_t rows_visited_ = 0;
  int64_t seeks_ = 0;
  int64_t writes_ = 0;
};

/// Factory for transactions; owns nothing but wires the shared substrate
/// (store, locks, oracle, log) into each transaction.
class TransactionManager {
 public:
  /// `snapshots` (nullable): live-snapshot registry; when present, Begin
  /// atomically acquires-and-registers each transaction's start timestamp
  /// so the MVCC vacuum never reclaims a version an open transaction can
  /// still read.
  TransactionManager(storage::RowStore* store, storage::LockManager* locks,
                     storage::TimestampOracle* oracle,
                     storage::CommitLog* log,
                     int64_t lock_timeout_micros = 100000,
                     storage::SnapshotRegistry* snapshots = nullptr);

  std::unique_ptr<Transaction> Begin(IsolationLevel isolation);

  storage::TimestampOracle* oracle() { return oracle_; }
  storage::LockManager* locks() { return locks_; }

  /// Transactions started since construction.
  uint64_t started_count() const {
    return next_txn_id_.load(std::memory_order_relaxed) - 1;
  }

 private:
  storage::RowStore* store_;
  storage::LockManager* locks_;
  storage::TimestampOracle* oracle_;
  storage::CommitLog* log_;
  const int64_t lock_timeout_micros_;
  storage::SnapshotRegistry* snapshots_;
  std::atomic<uint64_t> next_txn_id_{1};
};

}  // namespace olxp::txn

#endif  // OLXP_TXN_TRANSACTION_H_
