#include "sql/ast.h"

namespace olxp::sql {

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->param_index = param_index;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  out->agg = agg;
  out->negated_in = negated_in;
  out->subquery = subquery;  // subqueries are shared immutable
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  for (const auto& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeParam(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParam;
  e->param_index = index;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeAggregate(AggFunc fn, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg = fn;
  if (arg) e->children.push_back(std::move(arg));
  return e;
}

}  // namespace olxp::sql
