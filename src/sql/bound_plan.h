#ifndef OLXP_SQL_BOUND_PLAN_H_
#define OLXP_SQL_BOUND_PLAN_H_

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/checked_arith.h"
#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "storage/schema.h"

/// Bound (compiled) plan representation shared by the row-at-a-time
/// interpreter (sql/executor.cc) and the vectorized columnar engine
/// (src/exec/). The compiler in executor.cc produces these; exec/ lowers the
/// single-table analytical subset onto typed column vectors.

namespace olxp::sql {

struct BoundSelect;

/// Bound expression node kinds (post name-resolution).
enum class BKind {
  kLiteral,
  kSlot,
  kParam,
  kUnary,
  kBinary,
  kAggRef,
  kBetween,
  kInList,
  kInSubquery,
  kScalarSubquery,
  kCase,
};

struct BoundExpr {
  BKind kind = BKind::kLiteral;
  Value literal;
  int slot = -1;
  int param_index = -1;
  UnaryOp uop = UnaryOp::kNeg;
  BinaryOp bop = BinaryOp::kEq;
  int agg_index = -1;
  bool negated_in = false;
  int sub_id = -1;
  std::vector<std::unique_ptr<BoundExpr>> children;
  std::shared_ptr<BoundSelect> subplan;
  int max_slot = -1;  ///< highest tuple slot referenced in this subtree
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Deep copy of a bound expression (subplans shared).
inline BoundExprPtr CloneBound(const BoundExpr& e) {
  auto out = std::make_unique<BoundExpr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->slot = e.slot;
  out->param_index = e.param_index;
  out->uop = e.uop;
  out->bop = e.bop;
  out->agg_index = e.agg_index;
  out->negated_in = e.negated_in;
  out->sub_id = e.sub_id;
  out->subplan = e.subplan;
  out->max_slot = e.max_slot;
  for (const auto& c : e.children) out->children.push_back(CloneBound(*c));
  return out;
}

/// True when the subtree contains an IN (subquery) or scalar subquery.
bool ContainsSubquery(const BoundExpr& e);

struct AggSpec {
  AggFunc fn = AggFunc::kCountStar;
  BoundExprPtr arg;  // null for COUNT(*)
};

struct TableStep {
  enum class Path { kFull, kPkPoint, kPkPrefixRange, kIndexPrefix };

  int table_id = -1;
  const storage::TableSchema* schema = nullptr;
  int base = 0;
  int ncols = 0;
  Path path = Path::kFull;
  int index_id = -1;
  /// Equality values for the key prefix (pk or index column order).
  std::vector<BoundExprPtr> key_exprs;
  /// Optional inclusive range bounds on the pk column following the
  /// equality prefix (kPkPrefixRange only).
  BoundExprPtr range_lo;
  BoundExprPtr range_hi;
  /// All conjuncts placed at this step (always re-checked).
  std::vector<BoundExprPtr> filters;
};

struct BoundOrderItem {
  BoundExprPtr expr;  // null when proj_index >= 0
  int proj_index = -1;
  bool desc = false;
};

struct BoundSelect {
  std::vector<TableStep> steps;
  int total_slots = 0;
  bool aggregate_mode = false;
  std::vector<BoundExprPtr> group_by;
  std::vector<AggSpec> aggs;
  std::vector<BoundExprPtr> projections;
  std::vector<std::string> column_names;
  BoundExprPtr having;
  std::vector<BoundOrderItem> order_by;
  int64_t limit = -1;
  bool distinct = false;
};

struct BoundInsert {
  int table_id = -1;
  const storage::TableSchema* schema = nullptr;
  /// For each statement column list entry, its schema position. Empty when
  /// the statement uses schema order.
  std::vector<int> col_map;
  std::vector<std::vector<BoundExprPtr>> rows;
};

struct BoundUpdate {
  TableStep step;
  std::vector<std::pair<int, BoundExprPtr>> assignments;  // schema pos
};

struct BoundDelete {
  TableStep step;
};

struct BoundCreateTable {
  storage::TableSchema schema;
};

struct BoundCreateIndex {
  std::string table_name;
  storage::IndexDef def;
};

enum class StmtKind { kSelect, kInsert, kUpdate, kDelete, kCreateTable,
                      kCreateIndex };

/// Aggregate accumulator with the engine's SQL semantics (NULLs skipped,
/// int/double promotion, AVG always double). Shared by the interpreter and
/// the vectorized engine so both produce bit-identical aggregate results.
/// Double sums are Neumaier-compensated: the running error term keeps the
/// final rounded sum independent of accumulation order, so morsel-driven
/// parallel partials merged out of scan order still agree with a serial
/// pass to the last bit for all practical inputs.
struct AggAccum {
  int64_t count = 0;
  double dsum = 0;
  double dcomp = 0;  ///< Neumaier compensation term for dsum
  int64_t isum = 0;
  bool isum_overflow = false;  ///< SUM over INTs left int64 range -> NULL
  bool any_double = false;
  Value min, max;  // NULL until first value

  /// Checked integer-sum accumulation: overflow poisons the integer sum
  /// (SUM yields NULL) instead of signed-overflow UB.
  void AddInt(int64_t x) {
    if (auto r = CheckedAdd(isum, x)) {
      isum = *r;
    } else {
      isum_overflow = true;
    }
  }

  void AddDouble(double x) {
    double t = dsum + x;
    if (std::abs(dsum) >= std::abs(x)) {
      dcomp += (dsum - t) + x;
    } else {
      dcomp += (x - t) + dsum;
    }
    dsum = t;
  }

  double DoubleSum() const { return dsum + dcomp; }

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      if (v.type() == ValueType::kDouble) {
        any_double = true;
        AddDouble(v.AsDouble());
      } else {
        AddInt(v.AsInt());
        AddDouble(v.AsDouble());
      }
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  /// Folds a partial accumulator over a disjoint row subset into this one.
  /// Partial-state merge for parallel aggregation: merging per-morsel
  /// partials in morsel order reproduces the serial result (counts, integer
  /// sums and extremes exactly; double sums to compensated precision).
  void MergeFrom(const AggAccum& o) {
    count += o.count;
    isum_overflow = isum_overflow || o.isum_overflow;
    AddInt(o.isum);
    any_double = any_double || o.any_double;
    AddDouble(o.dsum);
    AddDouble(o.dcomp);
    if (!o.min.is_null() && (min.is_null() || o.min.Compare(min) < 0)) {
      min = o.min;
    }
    if (!o.max.is_null() && (max.is_null() || o.max.Compare(max) > 0)) {
      max = o.max;
    }
  }

  Value Result(AggFunc fn, int64_t star_count) const {
    switch (fn) {
      case AggFunc::kCountStar:
        return Value::Int(star_count);
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        if (any_double) return Value::Double(DoubleSum());
        return isum_overflow ? Value::Null() : Value::Int(isum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(DoubleSum() / static_cast<double>(count));
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return Value::Null();
  }
};

/// Compiled-statement implementation: the bound plan variants. Public so the
/// vectorized engine can inspect and lower plans; treat as read-only outside
/// sql/executor.cc.
struct CompiledStatement::Impl {
  StmtKind kind = StmtKind::kSelect;
  std::shared_ptr<BoundSelect> select;
  std::unique_ptr<BoundInsert> insert;
  std::unique_ptr<BoundUpdate> update;
  std::unique_ptr<BoundDelete> del;
  std::unique_ptr<BoundCreateTable> create_table;
  std::unique_ptr<BoundCreateIndex> create_index;
  int param_count = 0;
  int num_subqueries = 0;
};

/// Evaluates a bound scalar expression row-at-a-time with the interpreter's
/// exact semantics. `tuple` supplies slot values, `agg_values` the per-group
/// aggregate results for kAggRef nodes (may be null outside group context).
/// Precondition: the expression contains no subqueries (check with
/// ContainsSubquery); the vectorized engine uses this for post-aggregation
/// projections, HAVING and ORDER BY keys so both engines agree exactly.
StatusOr<Value> EvalBound(const BoundExpr& e, const Row& tuple,
                          std::span<const Value> params,
                          const std::vector<Value>* agg_values);

}  // namespace olxp::sql

#endif  // OLXP_SQL_BOUND_PLAN_H_
