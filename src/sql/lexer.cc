#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_set>

#include "common/strings.h"

namespace olxp::sql {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",   "BY",      "HAVING",
      "ORDER",  "ASC",    "DESC",   "LIMIT",   "INSERT",  "INTO",
      "VALUES", "UPDATE", "SET",    "DELETE",  "CREATE",  "TABLE",
      "INDEX",  "UNIQUE", "ON",     "PRIMARY", "KEY",     "FOREIGN",
      "REFERENCES",       "NOT",    "NULL",    "AND",     "OR",
      "IN",     "BETWEEN", "LIKE",  "IS",      "AS",      "JOIN",
      "INNER",  "DISTINCT", "MIN",  "MAX",     "SUM",     "AVG",
      "COUNT",  "INT",    "BIGINT", "DOUBLE",  "DECIMAL", "FLOAT",
      "VARCHAR", "CHAR",  "TEXT",   "TIMESTAMP", "BEGIN", "COMMIT",
      "ROLLBACK", "ABORT", "EXISTS", "CASE",   "WHEN",    "THEN",
      "ELSE",   "END",
  };
  return *kSet;
}

}  // namespace

bool IsKeyword(const std::string& upper_word) {
  return KeywordSet().count(upper_word) > 0;
}

StatusOr<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenKind k, std::string text, int pos) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.pos = pos;
    out.push_back(std::move(t));
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    int pos = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t b = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word(sql.substr(b, i - b));
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        push(TokenKind::kKeyword, std::move(upper), pos);
      } else {
        push(TokenKind::kIdentifier, std::move(word), pos);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t b = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string num(sql.substr(b, i - b));
      Token t;
      t.pos = pos;
      t.text = num;
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_val = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kIntLiteral;
        errno = 0;
        t.int_val = std::strtoll(num.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          // strtoll saturates silently; surface the range error instead of
          // lexing a wrong INT64_MAX.
          return Status::InvalidArgument("integer literal out of range: " +
                                         num);
        }
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            body.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at %d", pos));
      }
      push(TokenKind::kStringLiteral, std::move(body), pos);
      continue;
    }
    switch (c) {
      case '?':
        push(TokenKind::kParam, "?", pos);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, ",", pos);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot, ".", pos);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, "(", pos);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", pos);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, "*", pos);
        ++i;
        continue;
      case '+':
        push(TokenKind::kPlus, "+", pos);
        ++i;
        continue;
      case '-':
        push(TokenKind::kMinus, "-", pos);
        ++i;
        continue;
      case '/':
        push(TokenKind::kSlash, "/", pos);
        ++i;
        continue;
      case '%':
        push(TokenKind::kPercent, "%", pos);
        ++i;
        continue;
      case ';':
        push(TokenKind::kSemicolon, ";", pos);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, "=", pos);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kNe, "!=", pos);
          i += 2;
          continue;
        }
        return Status::InvalidArgument(StrFormat("stray '!' at %d", pos));
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kLe, "<=", pos);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenKind::kNe, "<>", pos);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", pos);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kGe, ">=", pos);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", pos);
          ++i;
        }
        continue;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at %d", c, pos));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = static_cast<int>(n);
  out.push_back(std::move(end));
  return out;
}

}  // namespace olxp::sql
