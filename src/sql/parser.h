#ifndef OLXP_SQL_PARSER_H_
#define OLXP_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace olxp::sql {

/// Parses one SQL statement (optionally ';'-terminated) into an AST.
/// The supported dialect covers the OLxPBench workloads: SELECT with joins
/// (comma and INNER JOIN..ON), WHERE (AND/OR/NOT, comparisons, BETWEEN, IN,
/// LIKE, IS [NOT] NULL, scalar/IN subqueries, CASE), GROUP BY / HAVING /
/// ORDER BY / LIMIT / DISTINCT, aggregate functions, arithmetic; plus
/// INSERT / UPDATE / DELETE / CREATE TABLE / CREATE [UNIQUE] INDEX.
StatusOr<Statement> Parse(std::string_view sql);

/// Parses a SELECT and returns it as a shared statement (for subqueries and
/// prepared-statement caches).
StatusOr<std::shared_ptr<SelectStmt>> ParseSelect(std::string_view sql);

}  // namespace olxp::sql

#endif  // OLXP_SQL_PARSER_H_
