#include "sql/parser.h"

#include <cassert>

#include "common/strings.h"
#include "sql/lexer.h"

namespace olxp::sql {

namespace {

/// Recursive-descent parser over the token stream. Expression parsing uses
/// precedence climbing: OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS <
/// add/sub < mul/div/mod < unary < primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    if (AtKeyword("SELECT")) {
      auto sel = ParseSelectStmt();
      if (!sel.ok()) return sel.status();
      OLXP_RETURN_NOT_OK(ExpectEndOfStatement());
      return Statement(std::move(*sel.value()));
    }
    if (AtKeyword("INSERT")) {
      auto st = ParseInsert();
      if (!st.ok()) return st.status();
      OLXP_RETURN_NOT_OK(ExpectEndOfStatement());
      return Statement(std::move(*st));
    }
    if (AtKeyword("UPDATE")) {
      auto st = ParseUpdate();
      if (!st.ok()) return st.status();
      OLXP_RETURN_NOT_OK(ExpectEndOfStatement());
      return Statement(std::move(*st));
    }
    if (AtKeyword("DELETE")) {
      auto st = ParseDelete();
      if (!st.ok()) return st.status();
      OLXP_RETURN_NOT_OK(ExpectEndOfStatement());
      return Statement(std::move(*st));
    }
    if (AtKeyword("CREATE")) {
      Advance();
      if (AtKeyword("TABLE")) {
        auto st = ParseCreateTable();
        if (!st.ok()) return st.status();
        OLXP_RETURN_NOT_OK(ExpectEndOfStatement());
        return Statement(std::move(*st));
      }
      bool unique = false;
      if (AtKeyword("UNIQUE")) {
        unique = true;
        Advance();
      }
      if (AtKeyword("INDEX")) {
        auto st = ParseCreateIndex(unique);
        if (!st.ok()) return st.status();
        OLXP_RETURN_NOT_OK(ExpectEndOfStatement());
        return Statement(std::move(*st));
      }
      return Error("expected TABLE or INDEX after CREATE");
    }
    return Error("unrecognized statement");
  }

  StatusOr<std::shared_ptr<SelectStmt>> ParseSelectShared() {
    auto sel = ParseSelectStmt();
    if (!sel.ok()) return sel.status();
    OLXP_RETURN_NOT_OK(ExpectEndOfStatement());
    return std::move(sel).value();
  }

 private:
  // ---- token helpers ----
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(int ahead = 1) const {
    size_t p = pos_ + ahead;
    return p < tokens_.size() ? tokens_[p] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool AtKeyword(const char* kw) const {
    return Cur().kind == TokenKind::kKeyword && Cur().text == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (AtKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Accept(TokenKind k) {
    if (At(k)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(StrFormat("expected %s", kw));
    }
    return Status::OK();
  }
  Status Expect(TokenKind k, const char* what) {
    if (!Accept(k)) return Error(StrFormat("expected %s", what));
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %d near '%s': %s", Cur().pos,
                  Cur().text.c_str(), msg.c_str()));
  }
  Status ExpectEndOfStatement() {
    Accept(TokenKind::kSemicolon);
    if (!At(TokenKind::kEnd)) return Error("trailing tokens");
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdentifier(const char* what) {
    if (!At(TokenKind::kIdentifier)) {
      return Error(StrFormat("expected %s", what));
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // ---- statements ----
  StatusOr<std::shared_ptr<SelectStmt>> ParseSelectStmt() {
    OLXP_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_shared<SelectStmt>();
    stmt->distinct = AcceptKeyword("DISTINCT");
    // select list
    while (true) {
      SelectItem item;
      if (At(TokenKind::kStar)) {
        item.is_star = true;
        Advance();
      } else {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(e).value();
        if (AcceptKeyword("AS")) {
          OLXP_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (At(TokenKind::kIdentifier)) {
          item.alias = Cur().text;
          Advance();
        }
      }
      stmt->items.push_back(std::move(item));
      if (!Accept(TokenKind::kComma)) break;
    }
    // FROM
    if (AcceptKeyword("FROM")) {
      OLXP_RETURN_NOT_OK(ParseFromClause(stmt.get()));
    }
    // WHERE
    if (AcceptKeyword("WHERE")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt->where = MergeConjunct(std::move(stmt->where),
                                  std::move(e).value());
    }
    // GROUP BY
    if (AtKeyword("GROUP")) {
      Advance();
      OLXP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        stmt->group_by.push_back(std::move(e).value());
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    // HAVING
    if (AcceptKeyword("HAVING")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt->having = std::move(e).value();
    }
    // ORDER BY
    if (AtKeyword("ORDER")) {
      Advance();
      OLXP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem oi;
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        oi.expr = std::move(e).value();
        if (AcceptKeyword("DESC")) {
          oi.desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(oi));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    // LIMIT
    if (AcceptKeyword("LIMIT")) {
      if (!At(TokenKind::kIntLiteral)) return Error("expected LIMIT count");
      stmt->limit = Cur().int_val;
      Advance();
    }
    return stmt;
  }

  /// FROM t1 [a] [, t2 [b]]* [ [INNER] JOIN t ON expr ]*
  Status ParseFromClause(SelectStmt* stmt) {
    OLXP_RETURN_NOT_OK(ParseTableRef(stmt));
    while (true) {
      if (Accept(TokenKind::kComma)) {
        OLXP_RETURN_NOT_OK(ParseTableRef(stmt));
        continue;
      }
      if (AtKeyword("INNER") || AtKeyword("JOIN")) {
        AcceptKeyword("INNER");
        OLXP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        OLXP_RETURN_NOT_OK(ParseTableRef(stmt));
        OLXP_RETURN_NOT_OK(ExpectKeyword("ON"));
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        stmt->where = MergeConjunct(std::move(stmt->where),
                                    std::move(e).value());
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseTableRef(SelectStmt* stmt) {
    TableRef ref;
    OLXP_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
    if (AcceptKeyword("AS")) {
      OLXP_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
    } else if (At(TokenKind::kIdentifier)) {
      ref.alias = Cur().text;
      Advance();
    } else {
      ref.alias = ref.table_name;
    }
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  }

  static ExprPtr MergeConjunct(ExprPtr acc, ExprPtr extra) {
    if (!acc) return extra;
    return MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(extra));
  }

  StatusOr<InsertStmt> ParseInsert() {
    OLXP_RETURN_NOT_OK(ExpectKeyword("INSERT"));
    OLXP_RETURN_NOT_OK(ExpectKeyword("INTO"));
    InsertStmt stmt;
    OLXP_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier("table name"));
    if (Accept(TokenKind::kLParen)) {
      while (true) {
        OLXP_ASSIGN_OR_RETURN(std::string col,
                              ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(col));
        if (!Accept(TokenKind::kComma)) break;
      }
      OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
    }
    OLXP_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    while (true) {
      OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      std::vector<ExprPtr> row;
      while (true) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        row.push_back(std::move(e).value());
        if (!Accept(TokenKind::kComma)) break;
      }
      OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      stmt.rows.push_back(std::move(row));
      if (!Accept(TokenKind::kComma)) break;
    }
    return stmt;
  }

  StatusOr<UpdateStmt> ParseUpdate() {
    OLXP_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    UpdateStmt stmt;
    OLXP_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier("table name"));
    OLXP_RETURN_NOT_OK(ExpectKeyword("SET"));
    while (true) {
      OLXP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      OLXP_RETURN_NOT_OK(Expect(TokenKind::kEq, "="));
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.assignments.emplace_back(std::move(col), std::move(e).value());
      if (!Accept(TokenKind::kComma)) break;
    }
    if (AcceptKeyword("WHERE")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.where = std::move(e).value();
    }
    return stmt;
  }

  StatusOr<DeleteStmt> ParseDelete() {
    OLXP_RETURN_NOT_OK(ExpectKeyword("DELETE"));
    OLXP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    OLXP_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.where = std::move(e).value();
    }
    return stmt;
  }

  StatusOr<ValueType> ParseType() {
    if (!At(TokenKind::kKeyword)) return Error("expected type name");
    std::string t = Cur().text;
    Advance();
    // Optional (len) / (p, s) suffix, ignored for storage purposes.
    if (Accept(TokenKind::kLParen)) {
      while (!At(TokenKind::kRParen) && !At(TokenKind::kEnd)) Advance();
      OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
    }
    if (t == "INT" || t == "BIGINT") return ValueType::kInt;
    if (t == "DOUBLE" || t == "DECIMAL" || t == "FLOAT") {
      return ValueType::kDouble;
    }
    if (t == "VARCHAR" || t == "CHAR" || t == "TEXT") {
      return ValueType::kString;
    }
    if (t == "TIMESTAMP") return ValueType::kTimestamp;
    return Error("unknown type " + t);
  }

  StatusOr<CreateTableStmt> ParseCreateTable() {
    OLXP_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    CreateTableStmt stmt;
    OLXP_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier("table name"));
    OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
    while (true) {
      if (AtKeyword("PRIMARY")) {
        Advance();
        OLXP_RETURN_NOT_OK(ExpectKeyword("KEY"));
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
        while (true) {
          OLXP_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdentifier("pk column"));
          stmt.primary_key.push_back(std::move(col));
          if (!Accept(TokenKind::kComma)) break;
        }
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      } else if (AtKeyword("FOREIGN")) {
        Advance();
        OLXP_RETURN_NOT_OK(ExpectKeyword("KEY"));
        ForeignKeySpec fk;
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
        while (true) {
          OLXP_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdentifier("fk column"));
          fk.columns.push_back(std::move(col));
          if (!Accept(TokenKind::kComma)) break;
        }
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        OLXP_RETURN_NOT_OK(ExpectKeyword("REFERENCES"));
        OLXP_ASSIGN_OR_RETURN(fk.ref_table,
                              ExpectIdentifier("referenced table"));
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
        while (true) {
          OLXP_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdentifier("referenced column"));
          fk.ref_columns.push_back(std::move(col));
          if (!Accept(TokenKind::kComma)) break;
        }
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        stmt.foreign_keys.push_back(std::move(fk));
      } else {
        ColumnSpec col;
        OLXP_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
        OLXP_ASSIGN_OR_RETURN(col.type, ParseType());
        while (true) {
          if (AtKeyword("NOT")) {
            Advance();
            OLXP_RETURN_NOT_OK(ExpectKeyword("NULL"));
            col.not_null = true;
            continue;
          }
          if (AtKeyword("PRIMARY")) {
            Advance();
            OLXP_RETURN_NOT_OK(ExpectKeyword("KEY"));
            col.primary_key = true;
            col.not_null = true;
            continue;
          }
          break;
        }
        stmt.columns.push_back(std::move(col));
      }
      if (!Accept(TokenKind::kComma)) break;
    }
    OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
    return stmt;
  }

  StatusOr<CreateIndexStmt> ParseCreateIndex(bool unique) {
    OLXP_RETURN_NOT_OK(ExpectKeyword("INDEX"));
    CreateIndexStmt stmt;
    stmt.unique = unique;
    OLXP_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier("index name"));
    OLXP_RETURN_NOT_OK(ExpectKeyword("ON"));
    OLXP_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier("table name"));
    OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
    while (true) {
      OLXP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      stmt.columns.push_back(std::move(col));
      if (!Accept(TokenKind::kComma)) break;
    }
    OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
    return stmt;
  }

  // ---- expressions (precedence climbing) ----
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (AcceptKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(BinaryOp::kOr, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  StatusOr<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (AtKeyword("AND")) {
      Advance();
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(BinaryOp::kAnd, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      auto child = ParseNot();
      if (!child.ok()) return child;
      return MakeUnary(UnaryOp::kNot, std::move(child).value());
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();

    // IS [NOT] NULL
    if (AtKeyword("IS")) {
      Advance();
      bool negate = AcceptKeyword("NOT");
      OLXP_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return MakeUnary(negate ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                       std::move(e));
    }
    // [NOT] BETWEEN / IN / LIKE
    bool negate = false;
    if (AtKeyword("NOT") &&
        (Peek().text == "BETWEEN" || Peek().text == "IN" ||
         Peek().text == "LIKE")) {
      negate = true;
      Advance();
    }
    if (AcceptKeyword("BETWEEN")) {
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo;
      OLXP_RETURN_NOT_OK(ExpectKeyword("AND"));
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi;
      auto b = std::make_unique<Expr>();
      b->kind = ExprKind::kBetween;
      b->children.push_back(std::move(e));
      b->children.push_back(std::move(lo).value());
      b->children.push_back(std::move(hi).value());
      if (negate) return MakeUnary(UnaryOp::kNot, std::move(b));
      return b;
    }
    if (AcceptKeyword("IN")) {
      OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
      if (AtKeyword("SELECT")) {
        auto sub = ParseSelectStmt();
        if (!sub.ok()) return sub.status();
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        auto in = std::make_unique<Expr>();
        in->kind = ExprKind::kInSubquery;
        in->negated_in = negate;
        in->children.push_back(std::move(e));
        in->subquery = std::move(sub).value();
        return in;
      }
      auto in = std::make_unique<Expr>();
      in->kind = ExprKind::kInList;
      in->negated_in = negate;
      in->children.push_back(std::move(e));
      while (true) {
        auto item = ParseExpr();
        if (!item.ok()) return item;
        in->children.push_back(std::move(item).value());
        if (!Accept(TokenKind::kComma)) break;
      }
      OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      return in;
    }
    if (AcceptKeyword("LIKE")) {
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs;
      return MakeBinary(negate ? BinaryOp::kNotLike : BinaryOp::kLike,
                        std::move(e), std::move(rhs).value());
    }

    BinaryOp op;
    switch (Cur().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return e;
    }
    Advance();
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs;
    return MakeBinary(op, std::move(e), std::move(rhs).value());
  }

  StatusOr<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      BinaryOp op = At(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) ||
           At(TokenKind::kPercent)) {
      BinaryOp op = At(TokenKind::kStar)
                        ? BinaryOp::kMul
                        : (At(TokenKind::kSlash) ? BinaryOp::kDiv
                                                 : BinaryOp::kMod);
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      auto child = ParseUnary();
      if (!child.ok()) return child;
      return MakeUnary(UnaryOp::kNeg, std::move(child).value());
    }
    if (Accept(TokenKind::kPlus)) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        auto e = MakeLiteral(Value::Int(t.int_val));
        Advance();
        return e;
      }
      case TokenKind::kDoubleLiteral: {
        auto e = MakeLiteral(Value::Double(t.double_val));
        Advance();
        return e;
      }
      case TokenKind::kStringLiteral: {
        auto e = MakeLiteral(Value::String(t.text));
        Advance();
        return e;
      }
      case TokenKind::kParam: {
        auto e = MakeParam(next_param_++);
        Advance();
        return e;
      }
      case TokenKind::kLParen: {
        Advance();
        if (AtKeyword("SELECT")) {
          auto sub = ParseSelectStmt();
          if (!sub.ok()) return sub.status();
          OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kScalarSubquery;
          e->subquery = std::move(sub).value();
          return e;
        }
        auto inner = ParseExpr();
        if (!inner.ok()) return inner;
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        return inner;
      }
      case TokenKind::kKeyword: {
        if (t.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (t.text == "CASE") return ParseCase();
        AggFunc fn;
        if (t.text == "COUNT") {
          fn = AggFunc::kCount;
        } else if (t.text == "SUM") {
          fn = AggFunc::kSum;
        } else if (t.text == "AVG") {
          fn = AggFunc::kAvg;
        } else if (t.text == "MIN") {
          fn = AggFunc::kMin;
        } else if (t.text == "MAX") {
          fn = AggFunc::kMax;
        } else {
          return Error("unexpected keyword in expression");
        }
        Advance();
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
        if (fn == AggFunc::kCount && Accept(TokenKind::kStar)) {
          OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
          return MakeAggregate(AggFunc::kCountStar, nullptr);
        }
        AcceptKeyword("DISTINCT");  // COUNT(DISTINCT x) ~ COUNT(x): accepted
        auto arg = ParseExpr();
        if (!arg.ok()) return arg;
        OLXP_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        return MakeAggregate(fn, std::move(arg).value());
      }
      case TokenKind::kIdentifier: {
        std::string first = t.text;
        Advance();
        if (Accept(TokenKind::kDot)) {
          if (At(TokenKind::kStar)) {
            return Error("qualified * is not supported");
          }
          OLXP_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdentifier("column name"));
          return MakeColumnRef(std::move(first), std::move(col));
        }
        return MakeColumnRef("", std::move(first));
      }
      default:
        return Error("expected expression");
    }
  }

  StatusOr<ExprPtr> ParseCase() {
    OLXP_RETURN_NOT_OK(ExpectKeyword("CASE"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    while (AcceptKeyword("WHEN")) {
      auto cond = ParseExpr();
      if (!cond.ok()) return cond;
      OLXP_RETURN_NOT_OK(ExpectKeyword("THEN"));
      auto val = ParseExpr();
      if (!val.ok()) return val;
      e->children.push_back(std::move(cond).value());
      e->children.push_back(std::move(val).value());
    }
    if (e->children.empty()) return Error("CASE requires WHEN");
    if (AcceptKeyword("ELSE")) {
      auto val = ParseExpr();
      if (!val.ok()) return val;
      e->children.push_back(std::move(val).value());
    }
    OLXP_RETURN_NOT_OK(ExpectKeyword("END"));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;
};

}  // namespace

StatusOr<Statement> Parse(std::string_view sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(tokens).value());
  return p.ParseStatement();
}

StatusOr<std::shared_ptr<SelectStmt>> ParseSelect(std::string_view sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(tokens).value());
  return p.ParseSelectShared();
}

}  // namespace olxp::sql
