#ifndef OLXP_SQL_STORAGE_IFACE_H_
#define OLXP_SQL_STORAGE_IFACE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace olxp::sql {

/// Schema resolution used at statement-compile time. Implemented by the
/// engine's catalog; the SQL layer never sees physical storage here.
class Catalog {
 public:
  virtual ~Catalog() = default;
  /// Resolves a table name (case-insensitive) to its id.
  virtual StatusOr<int> TableId(std::string_view name) const = 0;
  /// Schema of table `table_id` (must be valid).
  virtual const storage::TableSchema& GetSchema(int table_id) const = 0;
};

/// Data-plane interface the executor runs against. The engine implements it
/// twice per session: routed to the transactional row store (possibly inside
/// an open transaction) or to the columnar replica snapshot. All access
/// costs (rows visited, seeks) are accounted by the implementation so the
/// latency model can charge them.
class StorageIface : public Catalog {
 public:
  using RowCallback = std::function<bool(const Row&)>;

  /// Full scan of visible rows.
  virtual Status ScanTable(int table_id, const RowCallback& cb) = 0;
  /// Primary-key range scan, [lo, hi] inclusive, prefixes allowed.
  virtual Status ScanPkRange(int table_id, const Row& lo, const Row& hi,
                             const RowCallback& cb) = 0;
  /// Secondary-index prefix lookup.
  virtual Status IndexLookup(int table_id, int index_id, const Row& key,
                             std::vector<Row>* out) = 0;
  /// Point read by full primary key.
  virtual StatusOr<std::optional<Row>> GetByPk(int table_id,
                                               const Row& pk) = 0;

  /// Acquires the row's write lock, then reads its CURRENT version (the
  /// freshest committed value, or this transaction's own write). UPDATE and
  /// DELETE re-evaluate against this row so read-committed read-modify-
  /// writes do not lose updates. Read-only snapshots reject it.
  virtual StatusOr<std::optional<Row>> LockAndGet(int table_id,
                                                  const Row& pk) = 0;

  /// Mutations (always transactional; rejected on read-only snapshots).
  virtual Status Insert(int table_id, Row row) = 0;
  virtual Status Update(int table_id, Row row) = 0;
  virtual Status Delete(int table_id, const Row& pk) = 0;

  /// DDL.
  virtual Status CreateTable(storage::TableSchema schema) = 0;
  virtual Status CreateIndex(std::string_view table_name,
                             storage::IndexDef def) = 0;
};

/// Result of executing one statement.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  int64_t affected_rows = 0;

  /// Single-cell helpers for the common benchmark pattern
  /// "SELECT <aggregate> ..." — asserts shape in debug builds.
  const Value& ScalarAt(size_t r, size_t c) const { return rows[r][c]; }
  bool empty() const { return rows.empty(); }
};

}  // namespace olxp::sql

#endif  // OLXP_SQL_STORAGE_IFACE_H_
