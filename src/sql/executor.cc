#include "sql/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/checked_arith.h"
#include "common/clock.h"
#include "common/strings.h"
#include "sql/bound_plan.h"
#include "sql/parser.h"

namespace olxp::sql {

// Bound-plan node definitions (BoundExpr, TableStep, BoundSelect, ...) live
// in sql/bound_plan.h so the vectorized engine in src/exec/ can lower them.

bool ContainsSubquery(const BoundExpr& e) {
  if (e.kind == BKind::kInSubquery || e.kind == BKind::kScalarSubquery) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ContainsSubquery(*c)) return true;
  }
  return false;
}

namespace {

// ================================ compiler =================================

struct TableBinding {
  std::string alias;
  int table_id = -1;
  const storage::TableSchema* schema = nullptr;
  int base = 0;
};

class Compiler {
 public:
  explicit Compiler(const Catalog& catalog) : catalog_(catalog) {}

  StatusOr<std::unique_ptr<CompiledStatement::Impl>> CompileStatement(
      const Statement& stmt) {
    auto impl = std::make_unique<CompiledStatement::Impl>();
    if (const auto* s = std::get_if<SelectStmt>(&stmt)) {
      impl->kind = StmtKind::kSelect;
      auto plan = CompileSelect(*s);
      if (!plan.ok()) return plan.status();
      impl->select = std::move(plan).value();
    } else if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
      impl->kind = StmtKind::kInsert;
      auto b = CompileInsert(*s);
      if (!b.ok()) return b.status();
      impl->insert = std::move(b).value();
    } else if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
      impl->kind = StmtKind::kUpdate;
      auto b = CompileUpdate(*s);
      if (!b.ok()) return b.status();
      impl->update = std::move(b).value();
    } else if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
      impl->kind = StmtKind::kDelete;
      auto b = CompileDelete(*s);
      if (!b.ok()) return b.status();
      impl->del = std::move(b).value();
    } else if (const auto* s = std::get_if<CreateTableStmt>(&stmt)) {
      impl->kind = StmtKind::kCreateTable;
      auto b = CompileCreateTable(*s);
      if (!b.ok()) return b.status();
      impl->create_table = std::move(b).value();
    } else if (const auto* s = std::get_if<CreateIndexStmt>(&stmt)) {
      impl->kind = StmtKind::kCreateIndex;
      auto b = CompileCreateIndex(*s);
      if (!b.ok()) return b.status();
      impl->create_index = std::move(b).value();
    } else {
      return Status::Internal("unknown statement variant");
    }
    impl->param_count = max_param_ + 1;
    impl->num_subqueries = num_subqueries_;
    return impl;
  }

 private:
  StatusOr<std::shared_ptr<BoundSelect>> CompileSelect(
      const SelectStmt& stmt) {
    if (stmt.from.empty()) {
      return Status::Unsupported("SELECT without FROM");
    }
    // --- scope ---
    std::vector<TableBinding> scope;
    int base = 0;
    for (const TableRef& ref : stmt.from) {
      auto tid = catalog_.TableId(ref.table_name);
      if (!tid.ok()) return tid.status();
      TableBinding b;
      b.alias = ToLower(ref.alias);
      b.table_id = *tid;
      b.schema = &catalog_.GetSchema(*tid);
      b.base = base;
      base += b.schema->num_columns();
      scope.push_back(std::move(b));
    }
    auto plan = std::make_shared<BoundSelect>();
    plan->total_slots = base;
    plan->distinct = stmt.distinct;
    plan->limit = stmt.limit;

    // --- aggregate mode detection ---
    bool has_agg = !stmt.group_by.empty();
    for (const SelectItem& item : stmt.items) {
      if (!item.is_star && item.expr->ContainsAggregate()) has_agg = true;
    }
    if (stmt.having && stmt.having->ContainsAggregate()) has_agg = true;
    plan->aggregate_mode = has_agg;

    // --- group by ---
    for (const ExprPtr& g : stmt.group_by) {
      auto e = CompileExpr(*g, scope, /*allow_agg=*/false, plan.get());
      if (!e.ok()) return e.status();
      plan->group_by.push_back(std::move(e).value());
    }

    // --- projections ---
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        if (has_agg) {
          return Status::InvalidArgument("SELECT * with aggregates");
        }
        for (const TableBinding& b : scope) {
          for (int c = 0; c < b.schema->num_columns(); ++c) {
            auto e = std::make_unique<BoundExpr>();
            e->kind = BKind::kSlot;
            e->slot = b.base + c;
            e->max_slot = e->slot;
            plan->projections.push_back(std::move(e));
            plan->column_names.push_back(b.schema->columns()[c].name);
          }
        }
        continue;
      }
      auto e = CompileExpr(*item.expr, scope, has_agg, plan.get());
      if (!e.ok()) return e.status();
      plan->projections.push_back(std::move(e).value());
      plan->column_names.push_back(
          !item.alias.empty() ? item.alias : DeriveName(*item.expr));
    }

    // --- having ---
    if (stmt.having) {
      auto e = CompileExpr(*stmt.having, scope, has_agg, plan.get());
      if (!e.ok()) return e.status();
      plan->having = std::move(e).value();
    }

    // --- where: split conjuncts, compile, place ---
    plan->steps.reserve(scope.size());
    for (const TableBinding& b : scope) {
      TableStep step;
      step.table_id = b.table_id;
      step.schema = b.schema;
      step.base = b.base;
      step.ncols = b.schema->num_columns();
      plan->steps.push_back(std::move(step));
    }
    if (stmt.where) {
      std::vector<const Expr*> conjuncts;
      CollectConjuncts(*stmt.where, &conjuncts);
      for (const Expr* c : conjuncts) {
        auto e = CompileExpr(*c, scope, /*allow_agg=*/false, plan.get());
        if (!e.ok()) return e.status();
        BoundExprPtr be = std::move(e).value();
        int step_idx = StepForSlot(*plan, be->max_slot);
        plan->steps[step_idx].filters.push_back(std::move(be));
      }
    }
    for (TableStep& step : plan->steps) ChooseAccessPath(&step);

    // --- order by ---
    for (const OrderItem& oi : stmt.order_by) {
      BoundOrderItem bo;
      bo.desc = oi.desc;
      // ORDER BY <position>
      if (oi.expr->kind == ExprKind::kLiteral &&
          oi.expr->literal.type() == ValueType::kInt) {
        int pos = static_cast<int>(oi.expr->literal.AsInt()) - 1;
        if (pos < 0 || pos >= static_cast<int>(plan->projections.size())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        bo.proj_index = pos;
        plan->order_by.push_back(std::move(bo));
        continue;
      }
      // ORDER BY <alias>
      if (oi.expr->kind == ExprKind::kColumnRef && oi.expr->table.empty()) {
        int pos = -1;
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          if (!stmt.items[i].is_star &&
              EqualsNoCase(stmt.items[i].alias, oi.expr->column)) {
            pos = static_cast<int>(i);
            break;
          }
        }
        if (pos >= 0) {
          bo.proj_index = pos;
          plan->order_by.push_back(std::move(bo));
          continue;
        }
      }
      auto e = CompileExpr(*oi.expr, scope, has_agg, plan.get());
      if (!e.ok()) return e.status();
      bo.expr = std::move(e).value();
      plan->order_by.push_back(std::move(bo));
    }
    return plan;
  }

  StatusOr<std::unique_ptr<BoundInsert>> CompileInsert(
      const InsertStmt& stmt) {
    auto tid = catalog_.TableId(stmt.table_name);
    if (!tid.ok()) return tid.status();
    auto b = std::make_unique<BoundInsert>();
    b->table_id = *tid;
    b->schema = &catalog_.GetSchema(*tid);
    if (!stmt.columns.empty()) {
      for (const std::string& col : stmt.columns) {
        int pos = b->schema->ColumnIndex(col);
        if (pos < 0) {
          return Status::InvalidArgument("unknown column " + col + " in " +
                                         stmt.table_name);
        }
        b->col_map.push_back(pos);
      }
    }
    size_t expect = stmt.columns.empty()
                        ? static_cast<size_t>(b->schema->num_columns())
                        : stmt.columns.size();
    std::vector<TableBinding> empty_scope;
    for (const auto& row : stmt.rows) {
      if (row.size() != expect) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      std::vector<BoundExprPtr> bound_row;
      for (const ExprPtr& v : row) {
        auto e = CompileExpr(*v, empty_scope, false, nullptr);
        if (!e.ok()) return e.status();
        bound_row.push_back(std::move(e).value());
      }
      b->rows.push_back(std::move(bound_row));
    }
    return b;
  }

  StatusOr<TableStep> CompileSingleTableStep(const std::string& table_name,
                                             const ExprPtr& where,
                                             std::vector<TableBinding>* scope) {
    auto tid = catalog_.TableId(table_name);
    if (!tid.ok()) return tid.status();
    TableBinding b;
    b.alias = ToLower(table_name);
    b.table_id = *tid;
    b.schema = &catalog_.GetSchema(*tid);
    b.base = 0;
    scope->push_back(b);

    TableStep step;
    step.table_id = b.table_id;
    step.schema = b.schema;
    step.base = 0;
    step.ncols = b.schema->num_columns();
    if (where) {
      std::vector<const Expr*> conjuncts;
      CollectConjuncts(*where, &conjuncts);
      for (const Expr* c : conjuncts) {
        auto e = CompileExpr(*c, *scope, false, nullptr);
        if (!e.ok()) return e.status();
        step.filters.push_back(std::move(e).value());
      }
    }
    ChooseAccessPath(&step);
    return step;
  }

  StatusOr<std::unique_ptr<BoundUpdate>> CompileUpdate(
      const UpdateStmt& stmt) {
    auto b = std::make_unique<BoundUpdate>();
    std::vector<TableBinding> scope;
    auto step = CompileSingleTableStep(stmt.table_name, stmt.where, &scope);
    if (!step.ok()) return step.status();
    b->step = std::move(step).value();
    for (const auto& [col, expr] : stmt.assignments) {
      int pos = b->step.schema->ColumnIndex(col);
      if (pos < 0) {
        return Status::InvalidArgument("unknown column " + col);
      }
      auto e = CompileExpr(*expr, scope, false, nullptr);
      if (!e.ok()) return e.status();
      b->assignments.emplace_back(pos, std::move(e).value());
    }
    return b;
  }

  StatusOr<std::unique_ptr<BoundDelete>> CompileDelete(
      const DeleteStmt& stmt) {
    auto b = std::make_unique<BoundDelete>();
    std::vector<TableBinding> scope;
    auto step = CompileSingleTableStep(stmt.table_name, stmt.where, &scope);
    if (!step.ok()) return step.status();
    b->step = std::move(step).value();
    return b;
  }

  StatusOr<std::unique_ptr<BoundCreateTable>> CompileCreateTable(
      const CreateTableStmt& stmt) {
    std::vector<storage::ColumnDef> cols;
    std::vector<int> pk;
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      const ColumnSpec& c = stmt.columns[i];
      cols.push_back(storage::ColumnDef{c.name, c.type, !c.not_null});
      if (c.primary_key) pk.push_back(static_cast<int>(i));
    }
    storage::TableSchema tmp(stmt.table_name, cols, {});
    for (const std::string& col : stmt.primary_key) {
      int pos = tmp.ColumnIndex(col);
      if (pos < 0) {
        return Status::InvalidArgument("unknown pk column " + col);
      }
      pk.push_back(pos);
    }
    if (pk.empty()) {
      return Status::InvalidArgument("table " + stmt.table_name +
                                     " needs a primary key");
    }
    // PK columns are implicitly NOT NULL.
    for (int p : pk) cols[p].nullable = false;
    auto b = std::make_unique<BoundCreateTable>();
    b->schema = storage::TableSchema(stmt.table_name, cols, pk);
    for (const ForeignKeySpec& fk : stmt.foreign_keys) {
      storage::ForeignKeyDef def;
      def.ref_table = fk.ref_table;
      for (const std::string& col : fk.columns) {
        int pos = b->schema.ColumnIndex(col);
        if (pos < 0) {
          return Status::InvalidArgument("unknown fk column " + col);
        }
        def.column_idx.push_back(pos);
      }
      // Referenced column positions resolved by the engine at DDL time.
      b->schema.AddForeignKey(std::move(def));
    }
    return b;
  }

  StatusOr<std::unique_ptr<BoundCreateIndex>> CompileCreateIndex(
      const CreateIndexStmt& stmt) {
    auto tid = catalog_.TableId(stmt.table_name);
    if (!tid.ok()) return tid.status();
    const storage::TableSchema& schema = catalog_.GetSchema(*tid);
    storage::IndexDef def;
    def.name = stmt.index_name;
    def.unique = stmt.unique;
    for (const std::string& col : stmt.columns) {
      int pos = schema.ColumnIndex(col);
      if (pos < 0) {
        return Status::InvalidArgument("unknown index column " + col);
      }
      def.column_idx.push_back(pos);
    }
    auto b = std::make_unique<BoundCreateIndex>();
    b->table_name = stmt.table_name;
    b->def = std::move(def);
    return b;
  }

  static void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
    if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
      CollectConjuncts(*e.children[0], out);
      CollectConjuncts(*e.children[1], out);
      return;
    }
    out->push_back(&e);
  }

  static int StepForSlot(const BoundSelect& plan, int max_slot) {
    if (max_slot < 0) return 0;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const TableStep& s = plan.steps[i];
      if (max_slot < s.base + s.ncols) return static_cast<int>(i);
    }
    return static_cast<int>(plan.steps.size()) - 1;
  }

  /// Chooses an index-backed access path from the step's filters.
  static void ChooseAccessPath(TableStep* step) {
    // Collect candidate equalities col_slot -> value expr, and range bounds.
    std::map<int, const BoundExpr*> equalities;   // local col idx -> value
    std::map<int, std::pair<const BoundExpr*, const BoundExpr*>> ranges;
    for (const BoundExprPtr& f : step->filters) {
      const BoundExpr* col = nullptr;
      const BoundExpr* val = nullptr;
      BinaryOp op;
      if (f->kind == BKind::kBinary) {
        op = f->bop;
        const BoundExpr* l = f->children[0].get();
        const BoundExpr* r = f->children[1].get();
        auto in_step = [&](const BoundExpr* e) {
          return e->kind == BKind::kSlot && e->slot >= step->base &&
                 e->slot < step->base + step->ncols;
        };
        auto bound_before = [&](const BoundExpr* e) {
          return e->max_slot < step->base;
        };
        if (in_step(l) && bound_before(r)) {
          col = l;
          val = r;
        } else if (in_step(r) && bound_before(l)) {
          col = r;
          val = l;
          // flip comparison direction
          switch (op) {
            case BinaryOp::kLt: op = BinaryOp::kGt; break;
            case BinaryOp::kLe: op = BinaryOp::kGe; break;
            case BinaryOp::kGt: op = BinaryOp::kLt; break;
            case BinaryOp::kGe: op = BinaryOp::kLe; break;
            default: break;
          }
        } else {
          continue;
        }
        int local = col->slot - step->base;
        switch (op) {
          case BinaryOp::kEq:
            equalities[local] = val;
            break;
          case BinaryOp::kGe:
          case BinaryOp::kGt:
            if (ranges[local].first == nullptr) ranges[local].first = val;
            break;
          case BinaryOp::kLe:
          case BinaryOp::kLt:
            if (ranges[local].second == nullptr) ranges[local].second = val;
            break;
          default:
            break;
        }
      } else if (f->kind == BKind::kBetween) {
        const BoundExpr* subj = f->children[0].get();
        if (subj->kind == BKind::kSlot && subj->slot >= step->base &&
            subj->slot < step->base + step->ncols &&
            f->children[1]->max_slot < step->base &&
            f->children[2]->max_slot < step->base) {
          int local = subj->slot - step->base;
          ranges[local] = {f->children[1].get(), f->children[2].get()};
        }
      }
    }

    const auto& pk = step->schema->pk_columns();
    // Longest pk equality prefix.
    size_t pk_prefix = 0;
    while (pk_prefix < pk.size() && equalities.count(pk[pk_prefix])) {
      ++pk_prefix;
    }
    if (pk_prefix == pk.size() && !pk.empty()) {
      step->path = TableStep::Path::kPkPoint;
      for (int c : pk) step->key_exprs.push_back(CloneBound(*equalities[c]));
      return;
    }
    // pk prefix (possibly empty) + optional range on the next pk column.
    const BoundExpr* lo = nullptr;
    const BoundExpr* hi = nullptr;
    if (pk_prefix < pk.size()) {
      auto it = ranges.find(pk[pk_prefix]);
      if (it != ranges.end()) {
        lo = it->second.first;
        hi = it->second.second;
      }
    }
    if (pk_prefix > 0 || lo != nullptr || hi != nullptr) {
      step->path = TableStep::Path::kPkPrefixRange;
      for (size_t i = 0; i < pk_prefix; ++i) {
        step->key_exprs.push_back(CloneBound(*equalities[pk[i]]));
      }
      if (lo != nullptr) step->range_lo = CloneBound(*lo);
      if (hi != nullptr) step->range_hi = CloneBound(*hi);
      return;
    }
    // Secondary indexes: longest equality prefix wins.
    int best_index = -1;
    size_t best_len = 0;
    const auto& indexes = step->schema->indexes();
    for (size_t i = 0; i < indexes.size(); ++i) {
      size_t len = 0;
      while (len < indexes[i].column_idx.size() &&
             equalities.count(indexes[i].column_idx[len])) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_index = static_cast<int>(i);
      }
    }
    if (best_index >= 0 && best_len > 0) {
      step->path = TableStep::Path::kIndexPrefix;
      step->index_id = best_index;
      for (size_t i = 0; i < best_len; ++i) {
        step->key_exprs.push_back(
            CloneBound(*equalities[indexes[best_index].column_idx[i]]));
      }
      return;
    }
    step->path = TableStep::Path::kFull;
  }

  static std::string DeriveName(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kColumnRef:
        return e.column;
      case ExprKind::kAggregate:
        switch (e.agg) {
          case AggFunc::kCountStar:
          case AggFunc::kCount:
            return "count";
          case AggFunc::kSum:
            return "sum";
          case AggFunc::kAvg:
            return "avg";
          case AggFunc::kMin:
            return "min";
          case AggFunc::kMax:
            return "max";
        }
        return "agg";
      default:
        return "expr";
    }
  }

  StatusOr<BoundExprPtr> CompileExpr(const Expr& e,
                                     const std::vector<TableBinding>& scope,
                                     bool allow_agg, BoundSelect* plan) {
    auto out = std::make_unique<BoundExpr>();
    out->max_slot = -1;
    switch (e.kind) {
      case ExprKind::kLiteral:
        out->kind = BKind::kLiteral;
        out->literal = e.literal;
        return out;
      case ExprKind::kParam:
        out->kind = BKind::kParam;
        out->param_index = e.param_index;
        max_param_ = std::max(max_param_, e.param_index);
        return out;
      case ExprKind::kColumnRef: {
        int slot = -1;
        if (!e.table.empty()) {
          std::string alias = ToLower(e.table);
          for (const TableBinding& b : scope) {
            if (b.alias == alias) {
              int pos = b.schema->ColumnIndex(e.column);
              if (pos < 0) {
                return Status::InvalidArgument("unknown column " + e.table +
                                               "." + e.column);
              }
              slot = b.base + pos;
              break;
            }
          }
          if (slot < 0) {
            return Status::InvalidArgument("unknown table alias " + e.table);
          }
        } else {
          int hits = 0;
          for (const TableBinding& b : scope) {
            int pos = b.schema->ColumnIndex(e.column);
            if (pos >= 0) {
              slot = b.base + pos;
              ++hits;
            }
          }
          if (hits == 0) {
            return Status::InvalidArgument("unknown column " + e.column);
          }
          if (hits > 1) {
            return Status::InvalidArgument("ambiguous column " + e.column);
          }
        }
        out->kind = BKind::kSlot;
        out->slot = slot;
        out->max_slot = slot;
        return out;
      }
      case ExprKind::kAggregate: {
        if (!allow_agg || plan == nullptr) {
          return Status::InvalidArgument("aggregate not allowed here");
        }
        AggSpec spec;
        spec.fn = e.agg;
        if (!e.children.empty()) {
          auto arg = CompileExpr(*e.children[0], scope, false, plan);
          if (!arg.ok()) return arg.status();
          spec.arg = std::move(arg).value();
        }
        out->kind = BKind::kAggRef;
        out->agg_index = static_cast<int>(plan->aggs.size());
        plan->aggs.push_back(std::move(spec));
        return out;
      }
      case ExprKind::kUnary: {
        out->kind = BKind::kUnary;
        out->uop = e.unary_op;
        auto c = CompileExpr(*e.children[0], scope, allow_agg, plan);
        if (!c.ok()) return c.status();
        out->max_slot = (*c)->max_slot;
        out->children.push_back(std::move(c).value());
        return out;
      }
      case ExprKind::kBinary: {
        out->kind = BKind::kBinary;
        out->bop = e.binary_op;
        for (int i = 0; i < 2; ++i) {
          auto c = CompileExpr(*e.children[i], scope, allow_agg, plan);
          if (!c.ok()) return c.status();
          out->max_slot = std::max(out->max_slot, (*c)->max_slot);
          out->children.push_back(std::move(c).value());
        }
        return out;
      }
      case ExprKind::kBetween: {
        out->kind = BKind::kBetween;
        for (int i = 0; i < 3; ++i) {
          auto c = CompileExpr(*e.children[i], scope, allow_agg, plan);
          if (!c.ok()) return c.status();
          out->max_slot = std::max(out->max_slot, (*c)->max_slot);
          out->children.push_back(std::move(c).value());
        }
        return out;
      }
      case ExprKind::kInList: {
        out->kind = BKind::kInList;
        out->negated_in = e.negated_in;
        for (const auto& child : e.children) {
          auto c = CompileExpr(*child, scope, allow_agg, plan);
          if (!c.ok()) return c.status();
          out->max_slot = std::max(out->max_slot, (*c)->max_slot);
          out->children.push_back(std::move(c).value());
        }
        return out;
      }
      case ExprKind::kInSubquery:
      case ExprKind::kScalarSubquery: {
        out->kind = e.kind == ExprKind::kInSubquery ? BKind::kInSubquery
                                                    : BKind::kScalarSubquery;
        out->negated_in = e.negated_in;
        if (!e.children.empty()) {
          auto c = CompileExpr(*e.children[0], scope, allow_agg, plan);
          if (!c.ok()) return c.status();
          out->max_slot = (*c)->max_slot;
          out->children.push_back(std::move(c).value());
        }
        // Subqueries compile in a fresh scope: correlation is intentionally
        // unsupported (documented dialect restriction).
        auto sub = CompileSelect(*e.subquery);
        if (!sub.ok()) return sub.status();
        out->subplan = std::move(sub).value();
        out->sub_id = num_subqueries_++;
        return out;
      }
      case ExprKind::kCase: {
        out->kind = BKind::kCase;
        for (const auto& child : e.children) {
          auto c = CompileExpr(*child, scope, allow_agg, plan);
          if (!c.ok()) return c.status();
          out->max_slot = std::max(out->max_slot, (*c)->max_slot);
          out->children.push_back(std::move(c).value());
        }
        return out;
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  const Catalog& catalog_;
  int max_param_ = -1;
  int num_subqueries_ = 0;
};

}  // namespace

// ================================ execution ================================

namespace {

struct ExecContext {
  std::span<const Value> params;
  StorageIface* storage = nullptr;
  /// Materialized uncorrelated subquery results, by sub_id.
  std::vector<std::optional<std::vector<Row>>> sub_cache;
};

StatusOr<ResultSet> ExecuteSelectPlan(const BoundSelect& plan,
                                      ExecContext* ctx,
                                      obs::QueryTrace* trace = nullptr);

StatusOr<Value> Eval(const BoundExpr& e, const Row& tuple, ExecContext* ctx,
                     const std::vector<Value>* agg_values);

StatusOr<const std::vector<Row>*> MaterializeSubquery(const BoundExpr& e,
                                                      ExecContext* ctx) {
  assert(e.sub_id >= 0);
  if (static_cast<size_t>(e.sub_id) >= ctx->sub_cache.size()) {
    ctx->sub_cache.resize(e.sub_id + 1);
  }
  if (!ctx->sub_cache[e.sub_id].has_value()) {
    auto rs = ExecuteSelectPlan(*e.subplan, ctx);
    if (!rs.ok()) return rs.status();
    ctx->sub_cache[e.sub_id] = std::move(rs->rows);
  }
  return &*ctx->sub_cache[e.sub_id];
}

/// Executes every subquery reachable from `e` into the sub_cache. RunJoin
/// calls this before taking any table latch: evaluating a subquery lazily
/// from inside a scan callback would open a nested scan under the SHARED
/// table latch — the lock-order hazard that kept TSan's deadlock detection
/// off. Correlation is unsupported (subqueries compile in a fresh scope),
/// so every subquery is loop-invariant and safe to run up front.
Status PrematerializeSubqueries(const BoundExpr& e, ExecContext* ctx) {
  if (e.sub_id >= 0) {
    auto rows = MaterializeSubquery(e, ctx);
    if (!rows.ok()) return rows.status();
  }
  for (const auto& c : e.children) {
    OLXP_RETURN_NOT_OK(PrematerializeSubqueries(*c, ctx));
  }
  return Status::OK();
}

/// Walks every expression position in the plan (step keys, ranges and
/// filters; projections; grouping, aggregate arguments, HAVING; ORDER BY)
/// and pre-materializes the subqueries found there.
Status PrematerializePlanSubqueries(const BoundSelect& plan,
                                    ExecContext* ctx) {
  auto walk = [&](const BoundExprPtr& p) -> Status {
    if (p == nullptr) return Status::OK();
    return PrematerializeSubqueries(*p, ctx);
  };
  for (const TableStep& step : plan.steps) {
    for (const auto& k : step.key_exprs) OLXP_RETURN_NOT_OK(walk(k));
    OLXP_RETURN_NOT_OK(walk(step.range_lo));
    OLXP_RETURN_NOT_OK(walk(step.range_hi));
    for (const auto& f : step.filters) OLXP_RETURN_NOT_OK(walk(f));
  }
  for (const auto& p : plan.projections) OLXP_RETURN_NOT_OK(walk(p));
  for (const auto& g : plan.group_by) OLXP_RETURN_NOT_OK(walk(g));
  for (const AggSpec& a : plan.aggs) OLXP_RETURN_NOT_OK(walk(a.arg));
  OLXP_RETURN_NOT_OK(walk(plan.having));
  for (const BoundOrderItem& oi : plan.order_by) {
    OLXP_RETURN_NOT_OK(walk(oi.expr));
  }
  return Status::OK();
}

/// Numeric binary op with int/double promotion.
StatusOr<Value> Arith(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  const bool as_double = a.type() == ValueType::kDouble ||
                         b.type() == ValueType::kDouble ||
                         op == BinaryOp::kDiv;
  if (as_double) {
    double x = a.AsDouble(), y = b.AsDouble();
    switch (op) {
      case BinaryOp::kAdd: return Value::Double(x + y);
      case BinaryOp::kSub: return Value::Double(x - y);
      case BinaryOp::kMul: return Value::Double(x * y);
      case BinaryOp::kDiv:
        if (y == 0) return Value::Null();
        return Value::Double(x / y);
      case BinaryOp::kMod:
        if (y == 0) return Value::Null();
        return Value::Double(std::fmod(x, y));
      default: break;
    }
  } else {
    // Overflow (and INT64_MIN % -1, which traps in hardware) is NULL, the
    // same answer the dialect gives x % 0.
    int64_t x = a.AsInt(), y = b.AsInt();
    std::optional<int64_t> r;
    switch (op) {
      case BinaryOp::kAdd: r = CheckedAdd(x, y); break;
      case BinaryOp::kSub: r = CheckedSub(x, y); break;
      case BinaryOp::kMul: r = CheckedMul(x, y); break;
      case BinaryOp::kMod: r = CheckedMod(x, y); break;
      default: return Status::Internal("bad arith op");
    }
    return r ? Value::Int(*r) : Value::Null();
  }
  return Status::Internal("bad arith op");
}

StatusOr<Value> Eval(const BoundExpr& e, const Row& tuple, ExecContext* ctx,
                     const std::vector<Value>* agg_values) {
  switch (e.kind) {
    case BKind::kLiteral:
      return e.literal;
    case BKind::kSlot:
      assert(e.slot >= 0 && static_cast<size_t>(e.slot) < tuple.size());
      return tuple[e.slot];
    case BKind::kParam:
      if (e.param_index < 0 ||
          static_cast<size_t>(e.param_index) >= ctx->params.size()) {
        return Status::InvalidArgument("missing statement parameter");
      }
      return ctx->params[e.param_index];
    case BKind::kAggRef:
      if (agg_values == nullptr) {
        return Status::Internal("aggregate referenced outside group context");
      }
      return (*agg_values)[e.agg_index];
    case BKind::kUnary: {
      auto c = Eval(*e.children[0], tuple, ctx, agg_values);
      if (!c.ok()) return c;
      const Value& v = *c;
      switch (e.uop) {
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.type() == ValueType::kDouble) {
            return Value::Double(-v.AsDouble());
          }
          if (auto r = CheckedNeg(v.AsInt())) return Value::Int(*r);
          return Value::Null();  // -INT64_MIN is unrepresentable
        case UnaryOp::kNot:
          return Value::Bool(!v.AsBool());
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("bad unary op");
    }
    case BKind::kBinary: {
      // Short-circuit logical ops.
      if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
        auto l = Eval(*e.children[0], tuple, ctx, agg_values);
        if (!l.ok()) return l;
        bool lv = l->AsBool();
        if (e.bop == BinaryOp::kAnd && !lv) return Value::Bool(false);
        if (e.bop == BinaryOp::kOr && lv) return Value::Bool(true);
        auto r = Eval(*e.children[1], tuple, ctx, agg_values);
        if (!r.ok()) return r;
        return Value::Bool(r->AsBool());
      }
      auto l = Eval(*e.children[0], tuple, ctx, agg_values);
      if (!l.ok()) return l;
      auto r = Eval(*e.children[1], tuple, ctx, agg_values);
      if (!r.ok()) return r;
      switch (e.bop) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return Arith(e.bop, *l, *r);
        case BinaryOp::kEq:
          if (l->is_null() || r->is_null()) return Value::Bool(false);
          return Value::Bool(l->Compare(*r) == 0);
        case BinaryOp::kNe:
          if (l->is_null() || r->is_null()) return Value::Bool(false);
          return Value::Bool(l->Compare(*r) != 0);
        case BinaryOp::kLt:
          if (l->is_null() || r->is_null()) return Value::Bool(false);
          return Value::Bool(l->Compare(*r) < 0);
        case BinaryOp::kLe:
          if (l->is_null() || r->is_null()) return Value::Bool(false);
          return Value::Bool(l->Compare(*r) <= 0);
        case BinaryOp::kGt:
          if (l->is_null() || r->is_null()) return Value::Bool(false);
          return Value::Bool(l->Compare(*r) > 0);
        case BinaryOp::kGe:
          if (l->is_null() || r->is_null()) return Value::Bool(false);
          return Value::Bool(l->Compare(*r) >= 0);
        case BinaryOp::kLike:
        case BinaryOp::kNotLike: {
          if (l->is_null() || r->is_null()) return Value::Bool(false);
          if (l->type() != ValueType::kString ||
              r->type() != ValueType::kString) {
            return Status::InvalidArgument("LIKE requires strings");
          }
          bool m = SqlLike(l->AsString(), r->AsString());
          return Value::Bool(e.bop == BinaryOp::kLike ? m : !m);
        }
        default:
          return Status::Internal("bad binary op");
      }
    }
    case BKind::kBetween: {
      auto v = Eval(*e.children[0], tuple, ctx, agg_values);
      if (!v.ok()) return v;
      auto lo = Eval(*e.children[1], tuple, ctx, agg_values);
      if (!lo.ok()) return lo;
      auto hi = Eval(*e.children[2], tuple, ctx, agg_values);
      if (!hi.ok()) return hi;
      if (v->is_null() || lo->is_null() || hi->is_null()) {
        return Value::Bool(false);
      }
      return Value::Bool(v->Compare(*lo) >= 0 && v->Compare(*hi) <= 0);
    }
    case BKind::kInList: {
      auto v = Eval(*e.children[0], tuple, ctx, agg_values);
      if (!v.ok()) return v;
      bool found = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto item = Eval(*e.children[i], tuple, ctx, agg_values);
        if (!item.ok()) return item;
        if (!v->is_null() && !item->is_null() && v->Compare(*item) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(e.negated_in ? !found : found);
    }
    case BKind::kInSubquery: {
      auto v = Eval(*e.children[0], tuple, ctx, agg_values);
      if (!v.ok()) return v;
      auto rows = MaterializeSubquery(e, ctx);
      if (!rows.ok()) return rows.status();
      bool found = false;
      for (const Row& r : **rows) {
        if (!r.empty() && !v->is_null() && !r[0].is_null() &&
            v->Compare(r[0]) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(e.negated_in ? !found : found);
    }
    case BKind::kScalarSubquery: {
      auto rows = MaterializeSubquery(e, ctx);
      if (!rows.ok()) return rows.status();
      if ((*rows)->empty()) return Value::Null();
      if ((**rows)[0].empty()) return Value::Null();
      return (**rows)[0][0];
    }
    case BKind::kCase: {
      size_t n = e.children.size();
      bool has_else = n % 2 == 1;
      size_t pairs = n / 2;
      for (size_t i = 0; i < pairs; ++i) {
        auto cond = Eval(*e.children[2 * i], tuple, ctx, agg_values);
        if (!cond.ok()) return cond;
        if (cond->AsBool()) {
          return Eval(*e.children[2 * i + 1], tuple, ctx, agg_values);
        }
      }
      if (has_else) return Eval(*e.children[n - 1], tuple, ctx, agg_values);
      return Value::Null();
    }
  }
  return Status::Internal("unhandled bound expr kind");
}

/// Evaluates the step's key expressions against the tuple built so far and
/// coerces each to the corresponding key column's type.
Status EvalKey(const TableStep& step, const std::vector<int>& key_cols,
               const Row& tuple, ExecContext* ctx, Row* out) {
  out->clear();
  for (size_t i = 0; i < step.key_exprs.size(); ++i) {
    auto v = Eval(*step.key_exprs[i], tuple, ctx, nullptr);
    if (!v.ok()) return v.status();
    ValueType want = step.schema->columns()[key_cols[i]].type;
    auto cast = v->CastTo(want);
    if (!cast.ok()) return cast.status();
    out->push_back(std::move(cast).value());
  }
  return Status::OK();
}

// AggAccum lives in sql/bound_plan.h (shared with the vectorized engine).

struct Group {
  Row repr;  ///< representative input tuple (first of the group)
  std::vector<AggAccum> accums;
  int64_t star_count = 0;
};

/// Drives the join pipeline: emits every joined tuple passing all filters.
///
/// Latch discipline: multi-step plans take ONE table latch at a time, like
/// the vectorized path's one-ScanPin-per-table rule. Recursing into the
/// next step from inside a scan callback would nest that table's SHARED
/// latch under the current one; two joins ordering the tables differently
/// (or a concurrent exclusive-latch taker such as CREATE INDEX backfill)
/// then form an acquired-after cycle — a real deadlock, and the reason
/// TSan ran with detect_deadlocks=0. So for nested plans every scan-style
/// step materializes its rows first and recursion only ever walks
/// in-memory vectors; kFull inner tables cache once per statement, which
/// also removes the O(outer x inner) rescan. Single-step plans keep the
/// streaming path (LIMIT early-stop, no copy): with subqueries
/// pre-materialized, their callbacks touch no storage.
Status RunJoin(const BoundSelect& plan, ExecContext* ctx,
               const std::function<Status(const Row&)>& emit,
               bool* stop_flag) {
  OLXP_RETURN_NOT_OK(PrematerializePlanSubqueries(plan, ctx));

  Row tuple(plan.total_slots, Value::Null());
  const bool nested = plan.steps.size() > 1;
  // Per-statement cache of fully-scanned tables (kFull and degenerate
  // range steps of nested plans), keyed by step index.
  std::vector<std::optional<std::vector<Row>>> full_cache(plan.steps.size());
  auto ensure_full = [&](size_t k) -> Status {
    if (full_cache[k].has_value()) return Status::OK();
    std::vector<Row> rows;
    OLXP_RETURN_NOT_OK(
        ctx->storage->ScanTable(plan.steps[k].table_id, [&](const Row& row) {
          rows.push_back(row);
          return true;
        }));
    full_cache[k] = std::move(rows);
    return Status::OK();
  };

  // Recursive step executor.
  std::function<Status(size_t)> do_step = [&](size_t k) -> Status {
    if (*stop_flag) return Status::OK();
    if (k == plan.steps.size()) return emit(tuple);
    const TableStep& step = plan.steps[k];

    Status inner_status;
    auto consume = [&](const Row& row) -> bool {
      // Copy into slots.
      for (int c = 0; c < step.ncols; ++c) tuple[step.base + c] = row[c];
      // Filters.
      for (const BoundExprPtr& f : step.filters) {
        auto v = Eval(*f, tuple, ctx, nullptr);
        if (!v.ok()) {
          inner_status = v.status();
          return false;
        }
        if (!v->AsBool()) return true;  // skip row
      }
      Status st = do_step(k + 1);
      if (!st.ok()) {
        inner_status = st;
        return false;
      }
      return !*stop_flag;
    };

    switch (step.path) {
      case TableStep::Path::kPkPoint: {
        Row key;
        OLXP_RETURN_NOT_OK(
            EvalKey(step, step.schema->pk_columns(), tuple, ctx, &key));
        auto row = ctx->storage->GetByPk(step.table_id, key);
        if (!row.ok()) return row.status();
        if (row->has_value()) {
          consume(**row);
        }
        return inner_status;
      }
      case TableStep::Path::kPkPrefixRange: {
        Row prefix;
        OLXP_RETURN_NOT_OK(
            EvalKey(step, step.schema->pk_columns(), tuple, ctx, &prefix));
        Row lo = prefix, hi = prefix;
        int next_col = step.schema->pk_columns().size() > prefix.size()
                           ? step.schema->pk_columns()[prefix.size()]
                           : -1;
        if (step.range_lo && next_col >= 0) {
          auto v = Eval(*step.range_lo, tuple, ctx, nullptr);
          if (!v.ok()) return v.status();
          auto cast = v->CastTo(step.schema->columns()[next_col].type);
          if (!cast.ok()) return cast.status();
          lo.push_back(std::move(cast).value());
        }
        if (step.range_hi && next_col >= 0) {
          auto v = Eval(*step.range_hi, tuple, ctx, nullptr);
          if (!v.ok()) return v.status();
          auto cast = v->CastTo(step.schema->columns()[next_col].type);
          if (!cast.ok()) return cast.status();
          hi.push_back(std::move(cast).value());
        }
        if (lo.empty() && hi.empty()) {
          // Degenerate: treat as full scan.
          if (nested) {
            OLXP_RETURN_NOT_OK(ensure_full(k));
            for (const Row& row : *full_cache[k]) {
              if (!consume(row)) break;
            }
            return inner_status;
          }
          OLXP_RETURN_NOT_OK(ctx->storage->ScanTable(step.table_id, consume));
          return inner_status;
        }
        if (nested) {
          // Key depends on outer slots: collect under the latch, consume
          // (and recurse) after it drops.
          std::vector<Row> rows;
          OLXP_RETURN_NOT_OK(ctx->storage->ScanPkRange(
              step.table_id, lo, hi, [&](const Row& row) {
                rows.push_back(row);
                return true;
              }));
          for (const Row& row : rows) {
            if (!consume(row)) break;
          }
          return inner_status;
        }
        OLXP_RETURN_NOT_OK(
            ctx->storage->ScanPkRange(step.table_id, lo, hi, consume));
        return inner_status;
      }
      case TableStep::Path::kIndexPrefix: {
        const storage::IndexDef& def =
            step.schema->indexes()[step.index_id];
        std::vector<int> cols(def.column_idx.begin(),
                              def.column_idx.begin() + step.key_exprs.size());
        Row key;
        OLXP_RETURN_NOT_OK(EvalKey(step, cols, tuple, ctx, &key));
        std::vector<Row> rows;
        OLXP_RETURN_NOT_OK(ctx->storage->IndexLookup(step.table_id,
                                                     step.index_id, key,
                                                     &rows));
        for (const Row& row : rows) {
          if (!consume(row)) break;
        }
        return inner_status;
      }
      case TableStep::Path::kFull: {
        if (nested) {
          OLXP_RETURN_NOT_OK(ensure_full(k));
          for (const Row& row : *full_cache[k]) {
            if (!consume(row)) break;
          }
          return inner_status;
        }
        OLXP_RETURN_NOT_OK(ctx->storage->ScanTable(step.table_id, consume));
        return inner_status;
      }
    }
    return Status::Internal("bad access path");
  };

  return do_step(0);
}

StatusOr<ResultSet> ExecuteSelectPlan(const BoundSelect& plan,
                                      ExecContext* ctx,
                                      obs::QueryTrace* trace) {
  ResultSet rs;
  rs.column_names = plan.column_names;
  bool stop = false;
  // EXPLAIN ANALYZE capture (coarse: the interpreter fuses its stages, so
  // ops report the pipeline's phase boundaries, not inner-loop splits).
  const bool tracing = trace != nullptr;
  int64_t tuples = 0;  ///< joined tuples reaching projection/aggregation
  const int64_t t_start = tracing ? NowNanos() : 0;
  int64_t t_join_end = 0;

  struct PendingRow {
    Row out;
    Row order_keys;
  };
  std::vector<PendingRow> pending;
  // DISTINCT dedup: hash buckets of materialized rows, compared by value
  // (hash-only dedup would silently drop rows on collision).
  std::unordered_map<size_t, std::vector<Row>> distinct_seen;

  const bool can_stop_early = !plan.aggregate_mode && plan.order_by.empty() &&
                              !plan.distinct && plan.limit >= 0;

  auto project_and_collect = [&](const Row& tuple,
                                 const std::vector<Value>* aggs) -> Status {
    PendingRow pr;
    pr.out.reserve(plan.projections.size());
    for (const BoundExprPtr& p : plan.projections) {
      auto v = Eval(*p, tuple, ctx, aggs);
      if (!v.ok()) return v.status();
      pr.out.push_back(std::move(v).value());
    }
    if (plan.distinct) {
      size_t h = HashRow(pr.out);
      auto& bucket = distinct_seen[h];
      for (const Row& seen : bucket) {
        if (seen.size() == pr.out.size()) {
          bool eq = true;
          for (size_t i = 0; i < seen.size(); ++i) {
            if (seen[i].Compare(pr.out[i]) != 0) {
              eq = false;
              break;
            }
          }
          if (eq) return Status::OK();
        }
      }
      bucket.push_back(pr.out);
    }
    for (const BoundOrderItem& oi : plan.order_by) {
      if (oi.proj_index >= 0) {
        pr.order_keys.push_back(pr.out[oi.proj_index]);
      } else {
        auto v = Eval(*oi.expr, tuple, ctx, aggs);
        if (!v.ok()) return v.status();
        pr.order_keys.push_back(std::move(v).value());
      }
    }
    pending.push_back(std::move(pr));
    if (can_stop_early &&
        pending.size() >= static_cast<size_t>(plan.limit)) {
      stop = true;
    }
    return Status::OK();
  };

  if (!plan.aggregate_mode) {
    OLXP_RETURN_NOT_OK(RunJoin(
        plan, ctx,
        [&](const Row& tuple) {
          ++tuples;
          return project_and_collect(tuple, nullptr);
        },
        &stop));
    if (tracing) t_join_end = NowNanos();
  } else {
    // Hash aggregation.
    std::unordered_map<size_t, std::vector<Group>> groups;
    size_t total_groups = 0;
    OLXP_RETURN_NOT_OK(RunJoin(
        plan, ctx,
        [&](const Row& tuple) -> Status {
          ++tuples;
          Row key;
          key.reserve(plan.group_by.size());
          for (const BoundExprPtr& g : plan.group_by) {
            auto v = Eval(*g, tuple, ctx, nullptr);
            if (!v.ok()) return v.status();
            key.push_back(std::move(v).value());
          }
          size_t h = HashRow(key);
          Group* grp = nullptr;
          auto& bucket = groups[h];
          for (Group& g : bucket) {
            // Compare group keys via representative re-evaluation-free
            // stored keys: reuse repr? store keys in repr prefix instead.
            // We stash the key at the front of repr for equality checks.
            bool eq = true;
            for (size_t i = 0; i < key.size(); ++i) {
              if (g.repr[i].Compare(key[i]) != 0) {
                eq = false;
                break;
              }
            }
            if (eq) {
              grp = &g;
              break;
            }
          }
          if (grp == nullptr) {
            bucket.emplace_back();
            grp = &bucket.back();
            grp->repr = key;  // group key prefix
            grp->repr.insert(grp->repr.end(), tuple.begin(), tuple.end());
            grp->accums.resize(plan.aggs.size());
            ++total_groups;
          }
          grp->star_count++;
          for (size_t a = 0; a < plan.aggs.size(); ++a) {
            const AggSpec& spec = plan.aggs[a];
            if (spec.arg) {
              auto v = Eval(*spec.arg, tuple, ctx, nullptr);
              if (!v.ok()) return v.status();
              grp->accums[a].Add(*v);
            } else {
              grp->accums[a].Add(Value::Int(1));
            }
          }
          return Status::OK();
        },
        &stop));
    if (tracing) t_join_end = NowNanos();

    // Global aggregate over empty input still yields one row.
    if (total_groups == 0 && plan.group_by.empty()) {
      Group g;
      g.repr.assign(plan.total_slots, Value::Null());
      g.accums.resize(plan.aggs.size());
      groups[0].push_back(std::move(g));
    }

    const size_t key_len = plan.group_by.size();
    for (auto& [h, bucket] : groups) {
      for (Group& g : bucket) {
        std::vector<Value> agg_values(plan.aggs.size());
        for (size_t a = 0; a < plan.aggs.size(); ++a) {
          agg_values[a] = g.accums[a].Result(plan.aggs[a].fn, g.star_count);
        }
        // Representative tuple: stored after the key prefix.
        Row tuple(g.repr.begin() + key_len, g.repr.end());
        if (plan.having) {
          auto v = Eval(*plan.having, tuple, ctx, &agg_values);
          if (!v.ok()) return v.status();
          if (!v->AsBool()) continue;
        }
        OLXP_RETURN_NOT_OK(project_and_collect(tuple, &agg_values));
      }
    }
  }

  if (tracing) {
    obs::TraceOp pipe;
    pipe.op = plan.steps.size() > 1 ? "join" : "scan";
    pipe.detail = "steps=" + std::to_string(plan.steps.size());
    pipe.rows_in = tuples;
    pipe.rows_out = tuples;
    pipe.wall_us = (t_join_end - t_start) / 1000;
    trace->ops.push_back(std::move(pipe));
    obs::TraceOp sinkop;
    sinkop.op = plan.aggregate_mode ? "aggregate" : "project";
    if (plan.distinct) sinkop.detail = "distinct";
    sinkop.rows_in = tuples;
    sinkop.rows_out = static_cast<int64_t>(pending.size());
    sinkop.wall_us = (NowNanos() - t_join_end) / 1000;
    trace->ops.push_back(std::move(sinkop));
  }

  // Sort / limit / emit.
  const int64_t t_sort = tracing ? NowNanos() : 0;
  if (!plan.order_by.empty()) {
    std::stable_sort(pending.begin(), pending.end(),
                     [&](const PendingRow& a, const PendingRow& b) {
                       for (size_t i = 0; i < plan.order_by.size(); ++i) {
                         int c = a.order_keys[i].Compare(b.order_keys[i]);
                         if (c != 0) {
                           return plan.order_by[i].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    if (tracing) {
      obs::TraceOp order;
      order.op = "order";
      order.detail = std::to_string(plan.order_by.size()) + " keys";
      order.rows_in = static_cast<int64_t>(pending.size());
      order.rows_out = static_cast<int64_t>(pending.size());
      order.wall_us = (NowNanos() - t_sort) / 1000;
      trace->ops.push_back(std::move(order));
    }
  }
  size_t n = pending.size();
  if (plan.limit >= 0) n = std::min(n, static_cast<size_t>(plan.limit));
  rs.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rs.rows.push_back(std::move(pending[i].out));
  rs.affected_rows = 0;
  if (tracing) {
    obs::TraceOp emit;
    emit.op = "emit";
    if (plan.limit >= 0) emit.detail = "limit=" + std::to_string(plan.limit);
    emit.rows_in = static_cast<int64_t>(pending.size());
    emit.rows_out = static_cast<int64_t>(rs.rows.size());
    trace->ops.push_back(std::move(emit));
  }
  return rs;
}

StatusOr<ResultSet> ExecuteInsertPlan(const BoundInsert& plan,
                                      ExecContext* ctx) {
  ResultSet rs;
  Row empty_tuple;
  for (const auto& bound_row : plan.rows) {
    Row row(plan.schema->num_columns(), Value::Null());
    for (size_t i = 0; i < bound_row.size(); ++i) {
      auto v = Eval(*bound_row[i], empty_tuple, ctx, nullptr);
      if (!v.ok()) return v.status();
      int pos = plan.col_map.empty() ? static_cast<int>(i) : plan.col_map[i];
      row[pos] = std::move(v).value();
    }
    OLXP_RETURN_NOT_OK(ctx->storage->Insert(plan.table_id, std::move(row)));
    rs.affected_rows++;
  }
  return rs;
}

/// Materializes all rows matched by a single-table step (used by UPDATE and
/// DELETE before mutating, so the scan never observes its own writes).
Status CollectMatches(const TableStep& step, ExecContext* ctx,
                      std::vector<Row>* out) {
  BoundSelect shim;
  // Borrow the step without copying its exprs: wrap via a local plan whose
  // single step aliases the original through pointers. Since TableStep holds
  // unique_ptrs we construct a lightweight clone.
  TableStep copy;
  copy.table_id = step.table_id;
  copy.schema = step.schema;
  copy.base = step.base;
  copy.ncols = step.ncols;
  copy.path = step.path;
  copy.index_id = step.index_id;
  for (const auto& k : step.key_exprs) copy.key_exprs.push_back(CloneBound(*k));
  if (step.range_lo) copy.range_lo = CloneBound(*step.range_lo);
  if (step.range_hi) copy.range_hi = CloneBound(*step.range_hi);
  for (const auto& f : step.filters) copy.filters.push_back(CloneBound(*f));
  shim.steps.push_back(std::move(copy));
  shim.total_slots = step.ncols;
  bool stop = false;
  return RunJoin(shim, ctx,
                 [&](const Row& tuple) -> Status {
                   out->push_back(tuple);
                   return Status::OK();
                 },
                 &stop);
}

/// Re-checks the step's filters against the freshly locked row.
StatusOr<bool> StillMatches(const TableStep& step, const Row& row,
                            ExecContext* ctx) {
  for (const BoundExprPtr& f : step.filters) {
    auto v = Eval(*f, row, ctx, nullptr);
    if (!v.ok()) return v.status();
    if (!v->AsBool()) return false;
  }
  return true;
}

StatusOr<ResultSet> ExecuteUpdatePlan(const BoundUpdate& plan,
                                      ExecContext* ctx) {
  std::vector<Row> matches;
  OLXP_RETURN_NOT_OK(CollectMatches(plan.step, ctx, &matches));
  ResultSet rs;
  for (const Row& matched : matches) {
    Row pk = plan.step.schema->ExtractPrimaryKey(matched);
    // Atomic read-modify-write: lock the row, re-read its CURRENT value,
    // re-check the predicate and evaluate assignments against it. Without
    // the relock, read-committed engines lose concurrent updates (e.g.
    // TPC-C's d_next_o_id counter handing out duplicate order ids).
    auto current = ctx->storage->LockAndGet(plan.step.table_id, pk);
    if (!current.ok()) return current.status();
    if (!current->has_value()) continue;  // deleted concurrently
    auto matches_now = StillMatches(plan.step, **current, ctx);
    if (!matches_now.ok()) return matches_now.status();
    if (!*matches_now) continue;
    Row new_row = **current;
    for (const auto& [pos, expr] : plan.assignments) {
      auto v = Eval(*expr, **current, ctx, nullptr);
      if (!v.ok()) return v.status();
      new_row[pos] = std::move(v).value();
    }
    OLXP_RETURN_NOT_OK(
        ctx->storage->Update(plan.step.table_id, std::move(new_row)));
    rs.affected_rows++;
  }
  return rs;
}

StatusOr<ResultSet> ExecuteDeletePlan(const BoundDelete& plan,
                                      ExecContext* ctx) {
  std::vector<Row> matches;
  OLXP_RETURN_NOT_OK(CollectMatches(plan.step, ctx, &matches));
  ResultSet rs;
  for (const Row& row : matches) {
    Row pk = plan.step.schema->ExtractPrimaryKey(row);
    auto current = ctx->storage->LockAndGet(plan.step.table_id, pk);
    if (!current.ok()) return current.status();
    if (!current->has_value()) continue;  // already gone
    auto matches_now = StillMatches(plan.step, **current, ctx);
    if (!matches_now.ok()) return matches_now.status();
    if (!*matches_now) continue;
    OLXP_RETURN_NOT_OK(ctx->storage->Delete(plan.step.table_id, pk));
    rs.affected_rows++;
  }
  return rs;
}

}  // namespace

StatusOr<Value> EvalBound(const BoundExpr& e, const Row& tuple,
                          std::span<const Value> params,
                          const std::vector<Value>* agg_values) {
  assert(!ContainsSubquery(e));
  ExecContext ctx;
  ctx.params = params;
  ctx.storage = nullptr;  // subquery-free: never dereferenced
  return Eval(e, tuple, &ctx, agg_values);
}

// ============================ public interface =============================

CompiledStatement::CompiledStatement(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
CompiledStatement::~CompiledStatement() = default;
CompiledStatement::CompiledStatement(CompiledStatement&&) noexcept = default;
CompiledStatement& CompiledStatement::operator=(CompiledStatement&&) noexcept =
    default;

bool CompiledStatement::IsSelect() const {
  return impl_->kind == StmtKind::kSelect;
}

bool CompiledStatement::IsAnalyticalShape() const {
  if (impl_->kind != StmtKind::kSelect) return false;
  return impl_->select->aggregate_mode || impl_->select->steps.size() > 1;
}

bool CompiledStatement::IsPointRead() const {
  return impl_->kind == StmtKind::kSelect && impl_->select->steps.size() == 1 &&
         impl_->select->steps[0].path == TableStep::Path::kPkPoint;
}

int CompiledStatement::ParamCount() const { return impl_->param_count; }

StatusOr<std::unique_ptr<CompiledStatement>> Compile(const Statement& stmt,
                                                     const Catalog& catalog) {
  Compiler compiler(catalog);
  auto impl = compiler.CompileStatement(stmt);
  if (!impl.ok()) return impl.status();
  return std::unique_ptr<CompiledStatement>(
      new CompiledStatement(std::move(impl).value()));
}

namespace {

/// DML trace: one "write" op plus the closing "emit" (DML result sets carry
/// no rows, so emit's rows_out is 0 — the statement's result cardinality).
StatusOr<ResultSet> TraceWrite(StatusOr<ResultSet> rs, obs::QueryTrace* trace,
                               const char* kind, int64_t t_start) {
  if (trace == nullptr || !rs.ok()) return rs;
  obs::TraceOp write;
  write.op = "write";
  write.detail = kind;
  write.rows_in = rs->affected_rows;
  write.rows_out = rs->affected_rows;
  write.wall_us = (NowNanos() - t_start) / 1000;
  trace->ops.push_back(std::move(write));
  obs::TraceOp emit;
  emit.op = "emit";
  emit.rows_in = static_cast<int64_t>(rs->rows.size());
  emit.rows_out = static_cast<int64_t>(rs->rows.size());
  trace->ops.push_back(std::move(emit));
  return rs;
}

}  // namespace

StatusOr<ResultSet> Execute(const CompiledStatement& stmt,
                            std::span<const Value> params,
                            StorageIface* storage, obs::QueryTrace* trace) {
  ExecContext ctx;
  ctx.params = params;
  ctx.storage = storage;
  ctx.sub_cache.resize(stmt.impl().num_subqueries);
  const int64_t t_start = trace != nullptr ? NowNanos() : 0;
  switch (stmt.impl().kind) {
    case StmtKind::kSelect:
      return ExecuteSelectPlan(*stmt.impl().select, &ctx, trace);
    case StmtKind::kInsert:
      return TraceWrite(ExecuteInsertPlan(*stmt.impl().insert, &ctx), trace,
                        "insert", t_start);
    case StmtKind::kUpdate:
      return TraceWrite(ExecuteUpdatePlan(*stmt.impl().update, &ctx), trace,
                        "update", t_start);
    case StmtKind::kDelete:
      return TraceWrite(ExecuteDeletePlan(*stmt.impl().del, &ctx), trace,
                        "delete", t_start);
    case StmtKind::kCreateTable: {
      OLXP_RETURN_NOT_OK(
          storage->CreateTable(stmt.impl().create_table->schema));
      return ResultSet{};
    }
    case StmtKind::kCreateIndex: {
      OLXP_RETURN_NOT_OK(
          storage->CreateIndex(stmt.impl().create_index->table_name,
                               stmt.impl().create_index->def));
      return ResultSet{};
    }
  }
  return Status::Internal("bad statement kind");
}

StatusOr<ResultSet> ExecuteSql(std::string_view sql,
                               std::span<const Value> params,
                               StorageIface* storage) {
  auto stmt = Parse(sql);
  if (!stmt.ok()) return stmt.status();
  auto compiled = Compile(*stmt, *storage);
  if (!compiled.ok()) return compiled.status();
  return Execute(**compiled, params, storage);
}

}  // namespace olxp::sql
