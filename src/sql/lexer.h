#ifndef OLXP_SQL_LEXER_H_
#define OLXP_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace olxp::sql {

/// Token categories produced by the lexer. Keywords arrive as kKeyword with
/// upper-cased text; identifiers keep their original spelling.
enum class TokenKind {
  kEnd,
  kKeyword,
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kParam,      ///< '?' positional parameter
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,         ///< != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< keyword (UPPER), identifier, or literal body
  int64_t int_val = 0;
  double double_val = 0;
  int pos = 0;          ///< byte offset in the statement (error messages)
};

/// Tokenizes one SQL statement. Strings use single quotes with '' escape.
/// Line comments (--) and whitespace are skipped.
StatusOr<std::vector<Token>> Tokenize(std::string_view sql);

/// True when `word` (upper-cased) is a reserved keyword.
bool IsKeyword(const std::string& upper_word);

}  // namespace olxp::sql

#endif  // OLXP_SQL_LEXER_H_
