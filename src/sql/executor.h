#ifndef OLXP_SQL_EXECUTOR_H_
#define OLXP_SQL_EXECUTOR_H_

#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "obs/query_trace.h"
#include "sql/ast.h"
#include "sql/storage_iface.h"

namespace olxp::sql {

/// A compiled (bound + planned) statement: column references resolved to
/// tuple slots, access paths chosen (pk point / pk prefix range / secondary
/// index / full scan), conjuncts placed at the deepest join step that can
/// evaluate them, subqueries compiled. Immutable after compilation; safe to
/// execute repeatedly with different parameters from ONE thread at a time
/// per execution (sessions own their own caches).
class CompiledStatement {
 public:
  ~CompiledStatement();
  CompiledStatement(CompiledStatement&&) noexcept;
  CompiledStatement& operator=(CompiledStatement&&) noexcept;

  /// What kind of statement this is (for routing decisions in the engine).
  bool IsSelect() const;
  /// True when the select reads a single table with a full-pk point path
  /// (cheap OLTP read; used by the engine's cost model).
  bool IsPointRead() const;

  /// True for SELECTs with aggregate functions or multiple tables — the
  /// "analytical shape" the engine treats specially inside transactions.
  bool IsAnalyticalShape() const;

  /// Number of '?' parameters expected.
  int ParamCount() const;

  /// Bound plan (defined in sql/bound_plan.h); public so the compiler and
  /// executor free functions construct/consume it and so the vectorized
  /// engine in src/exec/ can lower analytical shapes onto column vectors.
  struct Impl;
  explicit CompiledStatement(std::unique_ptr<Impl> impl);
  const Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Compiles a parsed statement against a catalog.
StatusOr<std::unique_ptr<CompiledStatement>> Compile(const Statement& stmt,
                                                     const Catalog& catalog);

/// Executes a compiled statement with positional parameters. When `trace`
/// is non-null, per-operator row counts and wall times are appended
/// (EXPLAIN ANALYZE capture; subquery evaluation stays untraced). Tracing
/// never changes results.
StatusOr<ResultSet> Execute(const CompiledStatement& stmt,
                            std::span<const Value> params,
                            StorageIface* storage,
                            obs::QueryTrace* trace = nullptr);

/// One-shot convenience: parse + compile + execute (used by DDL, loaders
/// and tests; hot paths go through Session's prepared-statement cache).
StatusOr<ResultSet> ExecuteSql(std::string_view sql,
                               std::span<const Value> params,
                               StorageIface* storage);

}  // namespace olxp::sql

#endif  // OLXP_SQL_EXECUTOR_H_
