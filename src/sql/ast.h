#ifndef OLXP_SQL_AST_H_
#define OLXP_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/value.h"

namespace olxp::sql {

struct SelectStmt;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,    ///< constant Value
  kColumnRef,  ///< [table_or_alias.]column
  kParam,      ///< positional '?' parameter
  kUnary,      ///< op child[0]
  kBinary,     ///< child[0] op child[1]
  kAggregate,  ///< COUNT/SUM/AVG/MIN/MAX over child[0] (COUNT(*) childless)
  kBetween,    ///< child[0] BETWEEN child[1] AND child[2]
  kInList,     ///< child[0] IN (child[1..])
  kInSubquery, ///< child[0] IN (subquery)
  kScalarSubquery, ///< (SELECT single value)
  kCase,       ///< CASE WHEN c THEN v ... [ELSE e] END; children alternate
};

enum class UnaryOp { kNeg, kNot, kIsNull, kIsNotNull };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike, kNotLike,
};

enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

/// A single expression tree node. One struct for all kinds keeps the parser
/// and evaluator compact; unused fields stay defaulted.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                     // kLiteral
  std::string table;                 // kColumnRef (optional qualifier)
  std::string column;                // kColumnRef
  int param_index = -1;              // kParam (0-based)
  UnaryOp unary_op = UnaryOp::kNeg;  // kUnary
  BinaryOp binary_op = BinaryOp::kEq;  // kBinary
  AggFunc agg = AggFunc::kCountStar;   // kAggregate
  bool negated_in = false;             // kInList/kInSubquery: NOT IN

  std::vector<std::unique_ptr<Expr>> children;
  std::shared_ptr<SelectStmt> subquery;  // kScalarSubquery / kInSubquery

  /// Deep copy (prepared statements are shared across threads; plans copy
  /// what they rewrite).
  std::unique_ptr<Expr> Clone() const;

  /// True if any node in this subtree is an aggregate call.
  bool ContainsAggregate() const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Convenience constructors.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeParam(int index);
ExprPtr MakeUnary(UnaryOp op, ExprPtr child);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAggregate(AggFunc fn, ExprPtr arg);

/// One item of a SELECT list: expression plus optional alias; a bare `*`
/// is flagged instead.
struct SelectItem {
  ExprPtr expr;      // null when is_star
  std::string alias; // output column name when set
  bool is_star = false;
};

/// One table in FROM, with optional alias. JOIN ... ON is desugared by the
/// parser into the table list plus extra WHERE conjuncts.
struct TableRef {
  std::string table_name;
  std::string alias;  // defaults to table_name
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string table_name;
  ExprPtr where;  // may be null
};

struct ColumnSpec {
  std::string name;
  ValueType type = ValueType::kInt;
  bool not_null = false;
  bool primary_key = false;  // inline PRIMARY KEY
};

struct ForeignKeySpec {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

struct CreateTableStmt {
  std::string table_name;
  std::vector<ColumnSpec> columns;
  std::vector<std::string> primary_key;  // table-level PRIMARY KEY(...)
  std::vector<ForeignKeySpec> foreign_keys;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table_name;
  std::vector<std::string> columns;
  bool unique = false;
};

/// A parsed SQL statement.
using Statement = std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt,
                               CreateTableStmt, CreateIndexStmt>;

}  // namespace olxp::sql

#endif  // OLXP_SQL_AST_H_
