#include "engine/database.h"

#include <cassert>

#include "engine/session.h"

namespace olxp::engine {

Database::Database(EngineProfile profile) : profile_(std::move(profile)) {
  replicator_ = std::make_unique<storage::Replicator>(
      &commit_log_, &column_store_, profile_.replication_lag_micros);
  txn_manager_ = std::make_unique<txn::TransactionManager>(
      &row_store_, &lock_manager_, &oracle_, &commit_log_,
      profile_.lock_timeout_micros);
  if (profile_.architecture == StoreArchitecture::kSeparated) {
    replicator_->Start();
  }
}

Database::~Database() {
  if (replicator_) replicator_->Stop();
}

std::unique_ptr<Session> Database::CreateSession() {
  return std::unique_ptr<Session>(new Session(this));
}

StatusOr<int> Database::TableId(std::string_view name) const {
  return row_store_.TableId(name);
}

const storage::TableSchema& Database::GetSchema(int table_id) const {
  const storage::MvccTable* t = row_store_.table(table_id);
  assert(t != nullptr);
  return t->schema();
}

Status Database::CreateTableEverywhere(storage::TableSchema schema) {
  // Resolve FK referenced-column positions against live tables.
  for (auto& fk : *schema.mutable_foreign_keys()) {
    auto rid = row_store_.TableId(fk.ref_table);
    if (!rid.ok()) {
      return Status::InvalidArgument("foreign key references unknown table " +
                                     fk.ref_table);
    }
    // Reference the target's primary key (the only supported form).
    fk.ref_column_idx = row_store_.table(*rid)->schema().pk_columns();
  }
  auto tid = row_store_.CreateTable(schema);
  if (!tid.ok()) return tid.status();
  if (profile_.architecture == StoreArchitecture::kSeparated) {
    column_store_.AddTable(*tid, schema);
  }
  return Status::OK();
}

Status Database::CreateIndexOn(std::string_view table_name,
                               storage::IndexDef def) {
  auto tid = row_store_.TableId(table_name);
  if (!tid.ok()) return tid.status();
  return row_store_.table(*tid)->AddIndex(std::move(def));
}

void Database::WaitReplicaCaughtUp() {
  if (profile_.architecture == StoreArchitecture::kSeparated) {
    replicator_->CatchUp();
  }
}

void Database::PruneAllVersions(size_t keep) {
  for (int id : row_store_.TableIds()) {
    row_store_.table(id)->PruneVersions(keep);
  }
}

}  // namespace olxp::engine
