#include "engine/database.h"

#include <cassert>
#include <cstdlib>
#include <utility>

#include "engine/session.h"

namespace olxp::engine {

namespace {
/// Replica-rebuild feed granularity: recovered rows re-enter the Replicator
/// pipeline in records of this many ops (one giant record per table would
/// hold the commit-log lock across the whole table).
constexpr size_t kRecoveryOpsPerRecord = 4096;
}  // namespace

Database::Database(EngineProfile profile)
    : profile_(std::move(profile)),
      slow_log_(profile_.slow_query_log_capacity) {
  // CI (and operators) force intra-query parallelism onto every instance
  // without touching call sites: the TSan job runs the whole suite with
  // OLXP_EXEC_THREADS=4 so the pool, dispatcher and partial-state merges
  // are race-checked by the existing tests.
  if (const char* env = std::getenv("OLXP_EXEC_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) profile_.exec_threads = n;
  }
  lock_manager_.set_metrics(&metrics_);
  if (profile_.exec_threads > 1) {
    exec_pool_ = std::make_unique<exec::WorkerPool>(profile_.exec_threads);
    exec_pool_->set_metrics(&metrics_);
  }
  replicator_ = std::make_unique<storage::Replicator>(
      &commit_log_, &column_store_, profile_.replication_lag_micros);
  replicator_->set_metrics(&metrics_);
  txn_manager_ = std::make_unique<txn::TransactionManager>(
      &row_store_, &lock_manager_, &oracle_, &commit_log_,
      profile_.lock_timeout_micros, &snapshots_);
  if (profile_.architecture == StoreArchitecture::kUnified) {
    // No replica tails the log: dropping records (while still feeding the
    // WAL) keeps a long-running unified engine's memory bounded.
    commit_log_.set_retain_records(false);
  }
  const bool durable = profile_.durability != storage::DurabilityMode::kOff &&
                       !profile_.wal_dir.empty();
  if (durable) {
    recovery_status_ = RecoverFromWal();
  }
  if (profile_.architecture == StoreArchitecture::kSeparated) {
    // Pin the vacuum watermark at the replication apply frontier before
    // shipping starts, so the registry never reports "caught up" while
    // recovered records still sit in the log.
    replicator_->set_snapshot_registry(&snapshots_);
    replicator_->Start();
    // Make recovered commits visible on the replica before the first query
    // (they are already past any replication lag — they predate the crash).
    if (durable && recovery_status_.ok()) replicator_->CatchUp();
  }
  storage::VacuumConfig vcfg;
  vcfg.interval_us = profile_.vacuum_interval_us;
  vcfg.batch_rows = profile_.vacuum_batch_rows;
  vcfg.gc_history_us = profile_.gc_history_us;
  vcfg.metrics = &metrics_;
  vacuum_ = std::make_unique<storage::Vacuum>(&row_store_, &snapshots_,
                                              &oracle_, vcfg);
  vacuum_->Start();
}

Database::~Database() {
  // Teardown order is load-bearing. The exec pool goes first: a morsel in
  // flight holds a replica table's shared latch and reads its raw column
  // vectors, so every lane must have drained before the replicator (which
  // mutates those vectors) or the vacuum (which sweeps the row store) is
  // stopped and the stores destruct. Then the sweepers stop before any
  // substrate they walk is torn down.
  if (exec_pool_) exec_pool_->Shutdown();
  if (vacuum_) vacuum_->Stop();
  if (replicator_) replicator_->Stop();
}

void Database::set_exec_threads(int n) {
  if (exec_pool_) exec_pool_->Shutdown();
  exec_pool_.reset();
  profile_.exec_threads = n;
  if (n > 1) {
    exec_pool_ = std::make_unique<exec::WorkerPool>(n);
    exec_pool_->set_metrics(&metrics_);
  }
}

std::unique_ptr<Session> Database::CreateSession() {
  return std::unique_ptr<Session>(new Session(this));
}

StatusOr<int> Database::TableId(std::string_view name) const {
  return row_store_.TableId(name);
}

const storage::TableSchema& Database::GetSchema(int table_id) const {
  const storage::MvccTable* t = row_store_.table(table_id);
  assert(t != nullptr);
  return t->schema();
}

void Database::set_scan_chunk_rows(size_t rows) {
  profile_.scan_chunk_rows = rows;
  for (int id : row_store_.TableIds()) {
    row_store_.table(id)->set_scan_chunk_rows(rows);
  }
}

Status Database::CreateTableEverywhere(storage::TableSchema schema) {
  // Resolve FK referenced-column positions against live tables.
  for (auto& fk : *schema.mutable_foreign_keys()) {
    auto rid = row_store_.TableId(fk.ref_table);
    if (!rid.ok()) {
      return Status::InvalidArgument("foreign key references unknown table " +
                                     fk.ref_table);
    }
    // Reference the target's primary key (the only supported form).
    fk.ref_column_idx = row_store_.table(*rid)->schema().pk_columns();
  }
  auto tid = row_store_.CreateTable(schema);
  if (!tid.ok()) return tid.status();
  row_store_.table(*tid)->set_scan_chunk_rows(profile_.scan_chunk_rows);
  if (profile_.architecture == StoreArchitecture::kSeparated) {
    column_store_.AddTable(*tid, schema, profile_.columnar_encoding);
  }
  // wal_ is null while recovery replays DDL frames, so replay never re-logs.
  if (wal_ != nullptr) {
    wal_->AppendCreateTable(*tid, schema);
    OLXP_RETURN_NOT_OK(wal_->last_error());
  }
  schema_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Database::CreateIndexOn(std::string_view table_name,
                               storage::IndexDef def) {
  auto tid = row_store_.TableId(table_name);
  if (!tid.ok()) return tid.status();
  storage::IndexDef logged = def;
  OLXP_RETURN_NOT_OK(row_store_.table(*tid)->AddIndex(std::move(def)));
  if (wal_ != nullptr) {
    wal_->AppendCreateIndex(std::string(table_name), logged);
    OLXP_RETURN_NOT_OK(wal_->last_error());
  }
  schema_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

void Database::WaitReplicaCaughtUp() {
  if (profile_.architecture == StoreArchitecture::kSeparated) {
    replicator_->CatchUp();
  }
}

storage::VacuumStats Database::RunVacuum() { return vacuum_->RunOnce(); }

std::string Database::StatsJson() {
  // Storage gauges (per-table footprint and block-skip telemetry) are
  // pull-published: refresh them right before snapshotting.
  column_store_.PublishMetrics(&metrics_);
  // Lock-hierarchy coverage: distinct acquired-after pairs the debug
  // witness has observed (0 in Release builds, where the witness compiles
  // out entirely).
  metrics_.GetGauge("lockorder.edges_observed")
      ->Set(sync::lockorder::EdgesObserved());
  std::string out = "{\"metrics\":";
  out += metrics_.Snapshot().ToJson();
  out += ",\"slow_query_total\":";
  out += std::to_string(slow_log_.total_recorded());
  out += ",\"slow_queries\":[";
  bool first = true;
  for (const obs::SlowQueryEntry& e : slow_log_.Entries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"sql\":\"" + obs::JsonEscape(e.sql) + '"';
    out += ",\"route\":\"" + obs::JsonEscape(e.route) + '"';
    out += ",\"wall_us\":" + std::to_string(e.wall_us);
    out += ",\"charged_us\":" + std::to_string(e.charged_us) + '}';
  }
  out += "]}";
  return out;
}

std::string Database::MetricsText() {
  column_store_.PublishMetrics(&metrics_);
  metrics_.GetGauge("lockorder.edges_observed")
      ->Set(sync::lockorder::EdgesObserved());
  return metrics_.Snapshot().ToPrometheusText();
}

void Database::PruneAllVersions(size_t keep) {
  for (int id : row_store_.TableIds()) {
    row_store_.table(id)->PruneVersions(keep);
  }
}

Status Database::RecoverFromWal() {
  const std::string& dir = profile_.wal_dir;
  const bool separated = profile_.architecture == StoreArchitecture::kSeparated;
  uint64_t replay_from = 1;  // first segment frame the checkpoint misses
  uint64_t max_ts = 0;
  uint64_t max_seq = 0;

  auto ckpt = storage::ReadCheckpoint(dir);
  if (ckpt.ok()) {
    replay_from = ckpt->wal_next_seq;
    max_ts = ckpt->oracle_ts;
    for (storage::CheckpointTable& t : ckpt->tables) {
      OLXP_RETURN_NOT_OK(CreateTableEverywhere(t.schema));
      auto tid = row_store_.TableId(t.schema.name());
      if (!tid.ok() || *tid != t.table_id) {
        return Status::Internal("checkpoint table id mismatch for " +
                                t.schema.name());
      }
      storage::MvccTable* table = row_store_.table(*tid);
      storage::CommitRecord feed;
      feed.commit_ts = ckpt->oracle_ts;
      feed.commit_wall_us = 0;  // long past any replication lag
      for (auto& [ts, row] : t.rows) {
        Row pk = table->schema().ExtractPrimaryKey(row);
        if (ts > max_ts) max_ts = ts;
        if (separated) {
          storage::LogOp op;
          op.kind = storage::LogOp::Kind::kUpsert;
          op.table_id = *tid;
          op.pk = pk;
          op.data = row;
          feed.ops.push_back(std::move(op));
          if (feed.ops.size() >= kRecoveryOpsPerRecord) {
            commit_log_.Append(std::move(feed));
            feed = storage::CommitRecord();
            feed.commit_ts = ckpt->oracle_ts;
            feed.commit_wall_us = 0;
          }
        }
        OLXP_RETURN_NOT_OK(
            table->InstallVersion(pk, ts, /*deleted=*/false, std::move(row)));
      }
      if (!feed.ops.empty()) commit_log_.Append(std::move(feed));
    }
  } else if (ckpt.status().code() != StatusCode::kNotFound) {
    return ckpt.status();
  }

  Status replay = storage::ReplayWal(
      dir, replay_from,
      [&](storage::WalFrame&& frame) -> Status {
        switch (frame.type) {
          case storage::WalFrame::Type::kCreateTable: {
            Status st = CreateTableEverywhere(std::move(frame.schema));
            // Tolerate a DDL frame that raced an in-flight checkpoint and
            // landed in both the image and the surviving segments.
            if (st.code() == StatusCode::kAlreadyExists) return Status::OK();
            return st;
          }
          case storage::WalFrame::Type::kCreateIndex: {
            Status st = CreateIndexOn(frame.table_name, std::move(frame.index));
            if (st.code() == StatusCode::kAlreadyExists) return Status::OK();
            return st;
          }
          case storage::WalFrame::Type::kCommit: {
            for (storage::LogOp& op : frame.commit.ops) {
              storage::MvccTable* t = row_store_.table(op.table_id);
              if (t == nullptr) {
                return Status::Internal("WAL commit references unknown table " +
                                        std::to_string(op.table_id));
              }
              // A CRC-valid frame can still carry rows that don't fit the
              // table; installing them would plant out-of-arity tuples that
              // blow up much later, under a scan. Reject at the source.
              const storage::TableSchema& schema = t->schema();
              if (op.pk.size() != schema.pk_columns().size()) {
                return Status::Internal(
                    "WAL commit pk arity mismatch for table " +
                    std::to_string(op.table_id));
              }
              if (op.kind == storage::LogOp::Kind::kUpsert &&
                  op.data.size() != schema.columns().size()) {
                return Status::Internal(
                    "WAL commit row arity mismatch for table " +
                    std::to_string(op.table_id));
              }
              OLXP_RETURN_NOT_OK(t->InstallVersion(
                  op.pk, frame.commit.commit_ts,
                  op.kind == storage::LogOp::Kind::kDelete, op.data));
            }
            if (frame.commit.commit_ts > max_ts) {
              max_ts = frame.commit.commit_ts;
            }
            // The recorded wall time came from a previous process's steady
            // clock; zero it so the replicator sees the record as due now.
            frame.commit.commit_wall_us = 0;
            commit_log_.Append(std::move(frame.commit));
            return Status::OK();
          }
        }
        return Status::Internal("unknown WAL frame type");
      },
      &max_seq);
  OLXP_RETURN_NOT_OK(replay);

  oracle_.SeedTo(max_ts);

  storage::WalOptions wopts;
  wopts.dir = dir;
  wopts.mode = profile_.durability;
  wopts.group_commit_window_us = profile_.group_commit_window_us;
  wopts.segment_bytes = profile_.wal_segment_bytes;
  wopts.metrics = &metrics_;
  OLXP_ASSIGN_OR_RETURN(
      wal_, storage::WalWriter::Open(
                wopts, std::max(max_seq + 1, replay_from)));
  commit_log_.AttachWal(wal_.get());
  return Status::OK();
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "checkpoint requires durability on and a wal_dir");
  }
  // One checkpoint at a time: two racing writers would interleave into the
  // same checkpoint.tmp and then delete the segments backing the good
  // image. Commits are not meaningfully blocked by a running checkpoint:
  // they only cross the short CommitScope below and the per-chunk reader
  // locks of ForEachCommitted.
  sync::MutexLock ckpt_lk(checkpoint_mu_);
  storage::CheckpointImage image;
  storage::SnapshotRegistry::Handle snapshot_handle = 0;
  {
    // Holding the commit mutex pins (snapshot ts, WAL seq) to the same
    // point in commit order: every commit at or below oracle_ts has both
    // installed its versions and appended its WAL frame below wal_next_seq.
    storage::TimestampOracle::CommitScope scope(&oracle_);
    image.oracle_ts = scope.commit_ts();
    image.wal_next_seq = wal_->next_seq();
    // Register the image timestamp as a live snapshot BEFORE it publishes:
    // the vacuum must not reclaim versions the ForEachCommitted sweep below
    // still needs. (Registering inside the scope is race-free — every
    // watermark computable before the publish is < oracle_ts.)
    snapshot_handle = snapshots_.Register(image.oracle_ts);
  }
  // Watermark awareness both ways: the registration above holds the vacuum
  // horizon at or below the image ts, and a checkpoint must never snapshot
  // below history the vacuum already reclaimed.
  if (image.oracle_ts < vacuum_->last_watermark()) {
    snapshots_.Release(snapshot_handle);
    return Status::Internal("checkpoint ts below the vacuum watermark");
  }
  for (int id : row_store_.TableIds()) {
    const storage::MvccTable* t = row_store_.table(id);
    storage::CheckpointTable ct;
    ct.table_id = id;
    ct.schema = t->schema();
    t->ForEachCommitted(image.oracle_ts,
                        [&](const Row& pk, uint64_t ts, const Row& data) {
                          (void)pk;
                          ct.rows.emplace_back(ts, data);
                          return true;
                        });
    image.tables.push_back(std::move(ct));
  }
  snapshots_.Release(snapshot_handle);  // chains copied; vacuum may proceed
  OLXP_RETURN_NOT_OK(storage::WriteCheckpoint(profile_.wal_dir, image));
  OLXP_RETURN_NOT_OK(wal_->Flush());
  wal_->DeleteSegmentsBefore(image.wal_next_seq);
  return Status::OK();
}

}  // namespace olxp::engine
