#include "engine/session.h"

#include <cassert>
#include <cctype>

#include <algorithm>
#include <cmath>
#include <string_view>

#include "common/clock.h"
#include "engine/database.h"
#include "exec/vectorized.h"
#include "sql/parser.h"

namespace olxp::engine {

namespace {

/// Charges `ns` of simulated replica work: `concurrent` is the number of
/// other analytical scans active when this one started; scans slow each
/// other sublinearly (bandwidth sharing). Shared by the interpreter and
/// vectorized column paths so their contention models can never diverge.
void ChargeReplicaWork(Session* session, const LatencyModel& m, double ns,
                       int concurrent) {
  double pressure = 1.0;
  if (concurrent > 0) pressure += 0.15 * m.scan_contention * concurrent;
  session->InlineCharge(static_cast<int64_t>(ns * pressure / 1000.0));
}

/// StorageIface over the transactional row store. Forwards reads/writes to
/// a Transaction and accounts access costs. FK enforcement happens here when
/// the profile asks for it.
class TxnStorage : public sql::StorageIface {
 public:
  /// `standalone_analytical`: the statement is an analytical-shaped SELECT
  /// running outside any explicit transaction (a true OLAP statement that
  /// the optimizer sent to the row store). Its reads use the expensive
  /// analytic per-row rate and hold per-table pressure markers for their
  /// whole simulated duration. `scan_penalty` applies instead when the
  /// statement is an analytical-shaped SELECT INSIDE a transaction (the
  /// hybrid real-time query; §VI-A1 vertical-partitioning effect).
  TxnStorage(Database* db, txn::Transaction* txn, AccessStats* stats,
             Session* session, bool standalone_analytical,
             double scan_penalty)
      : db_(db),
        txn_(txn),
        stats_(stats),
        session_(session),
        standalone_analytical_(standalone_analytical),
        scan_penalty_(scan_penalty) {}

  StatusOr<int> TableId(std::string_view name) const override {
    return db_->TableId(name);
  }
  const storage::TableSchema& GetSchema(int table_id) const override {
    return db_->GetSchema(table_id);
  }

  Status ScanTable(int table_id, const RowCallback& cb) override {
    ScanMarker marker(this, table_id);
    int64_t visited = 0;
    Status st = txn_->Scan(table_id, cb, &visited);
    stats_->row_rows += visited;
    const LatencyModel& m = db_->profile().latency;
    double per_row = standalone_analytical_
                         ? static_cast<double>(m.row_analytic_scan_row_ns)
                         : static_cast<double>(m.row_scan_row_ns) *
                               scan_penalty_;
    // Charge the scan's simulated duration while the pressure marker is
    // held so concurrent operations on this table observe it. Scans slow
    // each other sublinearly (bandwidth sharing).
    session_->InlineCharge(static_cast<int64_t>(
        static_cast<double>(visited) * per_row * marker.SelfPressure() /
        1000.0));
    return st;
  }

  Status ScanPkRange(int table_id, const Row& lo, const Row& hi,
                     const RowCallback& cb) override {
    int64_t visited = 0;
    Status st = txn_->ScanPkRange(table_id, lo, hi, cb, &visited);
    ChargeRead(table_id, 1, visited);
    return st;
  }

  Status IndexLookup(int table_id, int index_id, const Row& key,
                     std::vector<Row>* out) override {
    int64_t visited = 0;
    Status st = txn_->IndexLookup(table_id, index_id, key, out, &visited);
    ChargeRead(table_id, 1, visited);
    return st;
  }

  StatusOr<std::optional<Row>> GetByPk(int table_id, const Row& pk) override {
    ChargeRead(table_id, 1, 1);
    return txn_->Get(table_id, pk);
  }

  StatusOr<std::optional<Row>> LockAndGet(int table_id,
                                          const Row& pk) override {
    ChargeRead(table_id, 1, 1);
    return txn_->LockAndGet(table_id, pk);
  }

  Status Insert(int table_id, Row row) override {
    if (db_->profile().enforce_foreign_keys) {
      OLXP_RETURN_NOT_OK(CheckForeignKeys(table_id, row));
    }
    ChargeWrite(table_id);
    return txn_->Insert(table_id, std::move(row));
  }
  Status Update(int table_id, Row row) override {
    ChargeWrite(table_id);
    return txn_->Update(table_id, std::move(row));
  }
  Status Delete(int table_id, const Row& pk) override {
    ChargeWrite(table_id);
    return txn_->Delete(table_id, pk);
  }

  Status CreateTable(storage::TableSchema schema) override {
    return db_->CreateTableEverywhere(std::move(schema));
  }
  Status CreateIndex(std::string_view table_name,
                     storage::IndexDef def) override {
    return db_->CreateIndexOn(table_name, std::move(def));
  }

 private:
  /// RAII pressure marker on one table (row-store side).
  class ScanMarker {
   public:
    ScanMarker(TxnStorage* owner, int table_id) : owner_(owner) {
      table_ = owner_->db_->row_store().table(table_id);
      owner_->db_->row_store().active_scans().fetch_add(
          1, std::memory_order_relaxed);
      if (table_ != nullptr) {
        others_ = table_->active_scans().fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    ~ScanMarker() {
      if (table_ != nullptr) {
        table_->active_scans().fetch_sub(1, std::memory_order_relaxed);
      }
      owner_->db_->row_store().active_scans().fetch_sub(
          1, std::memory_order_relaxed);
    }
    /// Sublinear scan-on-scan slowdown (bandwidth sharing). Applies to
    /// standalone analytical scans only; in-transaction real-time reads
    /// are small aggregates that do not saturate scan bandwidth.
    double SelfPressure() const {
      if (!owner_->standalone_analytical_) return 1.0;
      double f = owner_->db_->profile().latency.scan_contention;
      return 1.0 + 0.15 * f * others_;
    }

   private:
    TxnStorage* owner_;
    storage::MvccTable* table_ = nullptr;
    int others_ = 0;
  };

  /// Pressure multiplier OLTP-sized operations observe from analytical
  /// scans sweeping the same table.
  double Pressure(int table_id) const {
    const storage::MvccTable* t = db_->row_store().table(table_id);
    int scans = t == nullptr ? 0 : t->active_scan_count();
    return 1.0 + db_->profile().latency.scan_contention * scans;
  }

  /// Writes into a table under analytical scan pressure pay extra latch /
  /// MVCC-install cost (a seek-equivalent per pressure unit).
  void ChargeWrite(int table_id) {
    stats_->writes += 1;
    double pressure = Pressure(table_id);
    if (pressure > 1.0) stats_->seek_cost += pressure - 1.0;
  }

  /// Accounts one seek + `rows` visited. Standalone analytical statements
  /// charge inline under a pressure marker at the analytic rate; OLTP
  /// statements accumulate weighted costs charged at statement end.
  void ChargeRead(int table_id, int64_t seeks, int64_t rows) {
    const LatencyModel& m = db_->profile().latency;
    stats_->row_seeks += seeks;
    stats_->row_rows += rows;
    if (standalone_analytical_) {
      ScanMarker marker(this, table_id);
      double ns = static_cast<double>(seeks) * m.row_seek_ns +
                  static_cast<double>(rows) * m.row_analytic_scan_row_ns;
      session_->InlineCharge(
          static_cast<int64_t>(ns * marker.SelfPressure() / 1000.0));
      return;
    }
    double pressure = Pressure(table_id);
    stats_->seek_cost += static_cast<double>(seeks) * pressure;
    stats_->row_cost +=
        static_cast<double>(rows) * pressure * scan_penalty_;
  }

  Status CheckForeignKeys(int table_id, const Row& row) {
    const storage::TableSchema& schema = db_->GetSchema(table_id);
    for (const storage::ForeignKeyDef& fk : schema.foreign_keys()) {
      auto rid = db_->TableId(fk.ref_table);
      if (!rid.ok()) continue;  // resolved at DDL; defensive
      Row key;
      key.reserve(fk.column_idx.size());
      bool any_null = false;
      for (int c : fk.column_idx) {
        if (row[c].is_null()) {
          any_null = true;
          break;
        }
        key.push_back(row[c]);
      }
      if (any_null) continue;  // NULL FK values are not checked
      stats_->row_seeks += 1;
      stats_->seek_cost += 1;
      auto parent = txn_->Get(*rid, key);
      if (!parent.ok()) return parent.status();
      if (!parent->has_value()) {
        return Status::InvalidArgument("foreign key violation: " +
                                       schema.name() + " -> " + fk.ref_table);
      }
    }
    return Status::OK();
  }

  Database* db_;
  txn::Transaction* txn_;
  AccessStats* stats_;
  Session* session_;
  bool standalone_analytical_;
  double scan_penalty_;
};

/// Read-only StorageIface over the columnar replica snapshot. Analytical
/// scans here never take row-store locks — the separated-architecture
/// isolation advantage the paper measures.
class ColumnSnapshotStorage : public sql::StorageIface {
 public:
  ColumnSnapshotStorage(Database* db, AccessStats* stats, Session* session)
      : db_(db), stats_(stats), session_(session) {}

  StatusOr<int> TableId(std::string_view name) const override {
    return db_->TableId(name);
  }
  const storage::TableSchema& GetSchema(int table_id) const override {
    return db_->GetSchema(table_id);
  }

  Status ScanTable(int table_id, const RowCallback& cb) override {
    const storage::ColumnTable* t = db_->column_store().table(table_id);
    if (t == nullptr) return Status::NotFound("no columnar replica");
    auto& counter = db_->column_store().active_scans();
    int concurrent = counter.fetch_add(1, std::memory_order_relaxed);
    int64_t visited = t->Scan(cb);
    stats_->col_rows += visited;
    const LatencyModel& m = db_->profile().latency;
    ChargeReplicaWork(session_, m,
                      static_cast<double>(visited) *
                          static_cast<double>(m.col_scan_row_ns),
                      concurrent);
    counter.fetch_sub(1, std::memory_order_relaxed);
    return Status::OK();
  }

  /// The replica has no ordered pk index: ranges and index lookups degrade
  /// to filtered full scans (realistic for a column store).
  Status ScanPkRange(int table_id, const Row& lo, const Row& hi,
                     const RowCallback& cb) override {
    const storage::TableSchema& schema = GetSchema(table_id);
    return ScanTable(table_id, [&](const Row& row) {
      Row pk = schema.ExtractPrimaryKey(row);
      if (storage::ComparePrefix(pk, lo.size(), lo) < 0 ||
          storage::ComparePrefix(pk, hi.size(), hi) > 0) {
        return true;
      }
      return cb(row);
    });
  }

  Status IndexLookup(int table_id, int index_id, const Row& key,
                     std::vector<Row>* out) override {
    const storage::TableSchema& schema = GetSchema(table_id);
    const storage::IndexDef& def = schema.indexes()[index_id];
    return ScanTable(table_id, [&](const Row& row) {
      Row ikey = schema.ExtractIndexKey(def, row);
      if (storage::PrefixEq(ikey, key.size(), key)) out->push_back(row);
      return true;
    });
  }

  StatusOr<std::optional<Row>> GetByPk(int table_id, const Row& pk) override {
    const storage::ColumnTable* t = db_->column_store().table(table_id);
    if (t == nullptr) return Status::NotFound("no columnar replica");
    stats_->col_rows += 1;
    return t->Get(pk);
  }

  StatusOr<std::optional<Row>> LockAndGet(int, const Row&) override {
    return Status::Unsupported("columnar replica is read-only");
  }

  Status Insert(int, Row) override {
    return Status::Unsupported("columnar replica is read-only");
  }
  Status Update(int, Row) override {
    return Status::Unsupported("columnar replica is read-only");
  }
  Status Delete(int, const Row&) override {
    return Status::Unsupported("columnar replica is read-only");
  }
  Status CreateTable(storage::TableSchema) override {
    return Status::Unsupported("DDL on replica");
  }
  Status CreateIndex(std::string_view, storage::IndexDef) override {
    return Status::Unsupported("DDL on replica");
  }

 private:
  Database* db_;
  AccessStats* stats_;
  Session* session_;
};

}  // namespace

namespace {

/// Matches (case-insensitively) an `EXPLAIN ANALYZE ` prefix and returns the
/// inner statement text, or false when the SQL is a plain statement.
bool StripExplainAnalyze(const std::string& sql, std::string* inner) {
  auto skip_spaces = [&](size_t i) {
    while (i < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
    return i;
  };
  auto match_word = [&](size_t i, std::string_view word) -> size_t {
    if (sql.size() - i < word.size()) return std::string::npos;
    for (size_t k = 0; k < word.size(); ++k) {
      if (std::toupper(static_cast<unsigned char>(sql[i + k])) != word[k]) {
        return std::string::npos;
      }
    }
    const size_t end = i + word.size();
    // Must be followed by whitespace (EXPLAINANALYZE is not a keyword).
    if (end >= sql.size() ||
        !std::isspace(static_cast<unsigned char>(sql[end]))) {
      return std::string::npos;
    }
    return end;
  };
  size_t i = skip_spaces(0);
  i = match_word(i, "EXPLAIN");
  if (i == std::string::npos) return false;
  i = match_word(skip_spaces(i), "ANALYZE");
  if (i == std::string::npos) return false;
  i = skip_spaces(i);
  if (i >= sql.size()) return false;  // nothing to explain
  *inner = sql.substr(i);
  return true;
}

/// Renders a completed capture as the one-column result set EXPLAIN ANALYZE
/// returns (one row per rendered line).
sql::ResultSet RenderTrace(const obs::QueryTrace& trace) {
  sql::ResultSet rs;
  rs.column_names = {"EXPLAIN ANALYZE"};
  const std::string text = trace.ToString();
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) {
      rs.rows.push_back({Value::String(text.substr(start, end - start))});
    }
    start = end + 1;
  }
  return rs;
}

}  // namespace

Session::Session(Database* db)
    : db_(db),
      route_rng_state_(0x9e3779b97f4a7c15ULL ^
                       reinterpret_cast<uint64_t>(this)),
      trace_level_(db->profile().trace_level) {
  obs::MetricsRegistry& m = db->metrics();
  m_statements_ = m.GetCounter("session.statements");
  m_route_col_vec_ = m.GetCounter("router.route.column_vectorized");
  m_route_col_interp_ = m.GetCounter("router.route.column_interpreter");
  m_route_row_ = m.GetCounter("router.route.row");
  m_cost_override_ = m.GetCounter("router.cost_overrides_to_row");
  m_stoch_override_ = m.GetCounter("router.stochastic_overrides_to_row");
  m_morsels_ = m.GetCounter("exec.morsels_dispatched");
  m_slow_ = m.GetCounter("session.slow_queries");
  m_statement_us_ = m.GetHistogram("session.statement_us");
  m_residual_pct_ = m.GetHistogram("router.cost_residual_pct");
}

Session::~Session() {
  // Abort's Status is unreportable from a destructor; the abort path itself
  // is infallible on the storage side (locks and snapshot always release).
  if (txn_) (void)txn_->Abort();
}

StatusOr<const Session::Prepared*> Session::Prepare(
    const std::string& sql_text) {
  auto it = cache_.find(sql_text);
  if (it != cache_.end()) {
    if (it->second.schema_version == db_->schema_version()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return &it->second;
    }
    // DDL landed since this plan compiled: drop it and re-prepare below so
    // neither the access path nor the router's PlanShape goes stale.
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
  // Stamp before compiling: DDL racing the compile leaves the entry with an
  // older version, forcing a recompile on the next hit instead of silently
  // serving a half-fresh plan.
  const uint64_t version = db_->schema_version();
  auto parsed = sql::Parse(sql_text);
  if (!parsed.ok()) return parsed.status();
  auto compiled = sql::Compile(*parsed, *db_);
  if (!compiled.ok()) return compiled.status();
  Prepared p;
  p.compiled = std::move(compiled).value();
  p.shape = exec::InspectPlan(*p.compiled);
  p.schema_version = version;
  // Bounded cache: evict least-recently-used plans before inserting so
  // ad-hoc SQL (inlined literals) cannot grow a long-lived session without
  // limit. The new entry is inserted after eviction and is never evicted
  // here, so the returned pointer stays valid for the whole Execute.
  const size_t cap = db_->profile().prepared_statement_cache_capacity;
  if (cap > 0) {
    while (cache_.size() >= cap && !lru_.empty()) {
      cache_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  lru_.push_front(sql_text);
  p.lru_it = lru_.begin();
  return &cache_.emplace(sql_text, std::move(p)).first->second;
}

StatusOr<sql::ResultSet> Session::Execute(const std::string& sql_text,
                                          std::span<const Value> params) {
  std::string inner;
  const bool explain = StripExplainAnalyze(sql_text, &inner);
  const std::string& effective = explain ? inner : sql_text;
  const bool tracing = explain || trace_level_ > 0;
  obs::QueryTrace* trace = nullptr;
  if (tracing) {
    last_trace_.Clear();
    last_trace_.sql = effective;
    last_trace_.level = std::max(trace_level_, 1);
    trace = &last_trace_;
  }
  predicted_cost_ns_ = -1;
  const int64_t wall_t0 = NowMicros();
  const int64_t charged_before = charged_micros_;

  auto rs = ExecuteRouted(effective, params, trace);

  const int64_t wall_us = NowMicros() - wall_t0;
  m_statements_->Add(1);
  m_statement_us_->Record(wall_us);
  if (last_route_ == RoutedStore::kColumnStore) {
    (last_vectorized_ ? m_route_col_vec_ : m_route_col_interp_)->Add(1);
  } else {
    m_route_row_->Add(1);
  }
  const int64_t actual_us = charged_micros_ - charged_before;
  if (predicted_cost_ns_ > 0 && actual_us > 0) {
    // Predicted-vs-actual residual of the deterministic cost comparison,
    // in percent of the prediction (simulated charge is the ground truth
    // the router tried to predict).
    const double predicted_us = predicted_cost_ns_ / 1000.0;
    m_residual_pct_->Record(static_cast<int64_t>(
        std::abs(static_cast<double>(actual_us) - predicted_us) * 100.0 /
        std::max(predicted_us, 1.0)));
  }
  const char* route = last_route_ == RoutedStore::kColumnStore
                          ? (last_vectorized_ ? "column/vectorized"
                                              : "column/interpreter")
                          : "row/interpreter";
  if (tracing) {
    last_trace_.route = route;
    last_trace_.total_us = wall_us;
  }
  const int64_t threshold = db_->profile().slow_query_threshold_us;
  if (threshold > 0 && wall_us >= threshold) {
    obs::SlowQueryEntry entry;
    entry.sql = effective;
    entry.route = route;
    entry.wall_us = wall_us;
    entry.charged_us = actual_us;
    db_->slow_query_log().Add(std::move(entry));
    m_slow_->Add(1);
  }
  if (explain && rs.ok()) return RenderTrace(last_trace_);
  return rs;
}

StatusOr<sql::ResultSet> Session::ExecuteRouted(const std::string& sql_text,
                                                std::span<const Value> params,
                                                obs::QueryTrace* trace) {
  auto prepared = Prepare(sql_text);
  if (!prepared.ok()) return prepared.status();
  const sql::CompiledStatement& stmt = *(*prepared)->compiled;
  const exec::PlanShape& shape = (*prepared)->shape;

  AccessStats stats;
  const bool in_txn = txn_ != nullptr;
  last_vectorized_ = false;
  bool route_to_column =
      !in_txn && stmt.IsSelect() && !stmt.IsPointRead() &&
      db_->profile().architecture == StoreArchitecture::kSeparated;
  if (route_to_column && db_->profile().olap_row_fraction > 0) {
    // Cost-based optimizer model: a fraction of analytical statements run
    // on the row store even when a columnar replica exists.
    route_rng_state_ = route_rng_state_ * 6364136223846793005ULL +
                       1442695040888963407ULL;
    double u = static_cast<double>(route_rng_state_ >> 11) *
               (1.0 / 9007199254740992.0);
    if (u < db_->profile().olap_row_fraction) {
      route_to_column = false;
      m_stoch_override_->Add(1);
    }
  }

  // Effective speedup morsel-driven parallelism gives a vectorized plan
  // (sub-linear in lanes). Shared by the router's cost estimate and the
  // post-execution charge so they can never disagree about the model.
  const auto parallel_factor = [this](int lanes) {
    if (lanes <= 1) return 1.0;
    return 1.0 + db_->profile().latency.parallel_efficiency * (lanes - 1);
  };

  if (route_to_column && db_->profile().cost_based_routing) {
    const LatencyModel& m = db_->profile().latency;
    auto live_rows = [&](int table_id) {
      const storage::ColumnTable* ct = db_->column_store().table(table_id);
      return ct != nullptr ? static_cast<double>(ct->LiveRowCount()) : 0.0;
    };
    auto slot_rows = [&](int table_id) {
      const storage::ColumnTable* ct = db_->column_store().table(table_id);
      return ct != nullptr ? static_cast<double>(ct->SlotCount()) : 0.0;
    };
    constexpr double kIndexedSelectivity = 0.01;
    const bool vectorizes =
        db_->profile().vectorized_execution && shape.vectorizable;
    // Parallel cost term: a vectorizable replica plan's DRIVING scan fans
    // out over the worker pool, so its estimated cost shrinks by the
    // parallel factor. Early-stop LIMIT plans never fan out (the serial
    // path quits after LIMIT rows) and get no discount; the row store's
    // seek paths stay serial (and point reads never route here at all),
    // so seek-dominated shapes still win the comparison. The lane count is
    // clamped by the driving table's morsel count over its SLOT count
    // (live + dead — a raw scan walks every slot), exactly the clamp
    // RunMorselFanOut applies — a table smaller than one morsel runs
    // serially and must not be costed as if it fanned out.
    const auto col_parallel_for = [&](double driver_slots) {
      if (!vectorizes || shape.early_stop_limit ||
          db_->exec_pool() == nullptr) {
        return 1.0;
      }
      const double per_morsel = static_cast<double>(
          exec::NormalizedMorselRows(db_->profile().morsel_rows));
      const auto morsels =
          static_cast<int>(std::ceil(driver_slots / per_morsel));
      return parallel_factor(
          std::min(db_->exec_pool()->lanes(), std::max(1, morsels)));
    };
    const double col_base_row_ns =
        vectorizes ? static_cast<double>(m.col_vector_row_ns)
                   : static_cast<double>(m.col_scan_row_ns);
    if (shape.single_table && shape.indexed_path) {
      // Deterministic cost comparison: the replica serves this plan with a
      // sweep (it keeps no ordered index), but zone maps let it skip sealed
      // blocks the plan's sargable bounds refute — so the columnar side is
      // charged by the fraction of slots a zone-mapped scan actually reads.
      // The parallel clamp stays on the TOTAL slot count: the morsel
      // dispatcher partitions every slot and skipping happens per chunk.
      const double live = live_rows(shape.table_id);
      const double slots = slot_rows(shape.table_id);
      double read_frac = 1.0;
      const storage::ColumnTable* ct =
          db_->column_store().table(shape.table_id);
      if (ct != nullptr && slots > 0) {
        read_frac =
            static_cast<double>(exec::EstimateScanSlots(stmt, params, *ct)) /
            slots;
      }
      const double col_ns =
          live * read_frac * col_base_row_ns / col_parallel_for(slots);
      const double row_ns =
          static_cast<double>(m.row_seek_ns) +
          std::max(1.0, live * kIndexedSelectivity) *
              static_cast<double>(m.row_analytic_scan_row_ns);
      if (row_ns < col_ns) {
        route_to_column = false;
        m_cost_override_->Add(1);
      }
      predicted_cost_ns_ = route_to_column ? col_ns : row_ns;
    } else if (shape.table_ids.size() > 1 && shape.indexed_driver &&
               shape.inner_steps_indexed) {
      // Selective indexed join: the row store drives it with an index probe
      // and joins by per-row seeks, while the replica must sweep (and hash)
      // every table. Large joinable analytical statements keep routing to
      // the replica; only seek-dominated shapes come back.
      const double driver_live = live_rows(shape.table_ids[0]);
      double total_live = 0;
      for (size_t i = 0; i < shape.table_ids.size(); ++i) {
        total_live += live_rows(shape.table_ids[i]);
      }
      double build_live = total_live - driver_live;
      double stream_live = driver_live;
      int stream_id = shape.table_ids[0];
      if (shape.table_ids.size() == 2) {
        // Two-table joins build from the smaller side and stream the
        // bigger one (when parity allows), so estimate that split.
        const double other = live_rows(shape.table_ids[1]);
        build_live = std::min(driver_live, other);
        stream_live = std::max(driver_live, other);
        if (other > driver_live) stream_id = shape.table_ids[1];
      }
      // Only the stream-side sweep (and probe) fans out across lanes; the
      // hash-table builds — their sweeps included — are single-threaded
      // (HashJoinTable::Build), so they are estimated at the serial rate.
      const double col_parallel = col_parallel_for(slot_rows(stream_id));
      double col_ns = stream_live * col_base_row_ns / col_parallel +
                      (total_live - stream_live) * col_base_row_ns;
      if (vectorizes) {
        // The vectorized path also charges hashing the build sides and
        // emitting joined tuples (estimated one per streamed row, the
        // fk-join shape); the estimate mirrors what execution bills.
        col_ns += build_live * static_cast<double>(m.col_join_build_row_ns) +
                  stream_live * static_cast<double>(m.col_join_row_ns) /
                      col_parallel;
      }
      const double probes = std::max(1.0, driver_live * kIndexedSelectivity);
      const double inner_seeks =
          static_cast<double>(shape.table_ids.size() - 1) *
          static_cast<double>(m.row_seek_ns);
      const double row_ns =
          static_cast<double>(m.row_seek_ns) +
          probes * (static_cast<double>(m.row_analytic_scan_row_ns) +
                    inner_seeks);
      if (row_ns < col_ns) {
        route_to_column = false;
        m_cost_override_->Add(1);
      }
      predicted_cost_ns_ = route_to_column ? col_ns : row_ns;
    }
  }

  if (route_to_column) {
    last_route_ = RoutedStore::kColumnStore;
    last_snapshot_ts_ = db_->column_store().replicated_ts();
    if (db_->profile().vectorized_execution && shape.vectorizable) {
      // Vectorized columnar execution "as of" the replication watermark.
      const LatencyModel& m = db_->profile().latency;
      auto& counter = db_->column_store().active_scans();
      int concurrent = counter.fetch_add(1, std::memory_order_relaxed);
      exec::VecExecStats vstats;
      exec::VecExecOptions vopts;
      vopts.pool = db_->exec_pool();
      vopts.morsel_rows = db_->profile().morsel_rows;
      vopts.trace = trace;
      vopts.morsel_counter = m_morsels_;
      auto rs = exec::ExecuteVectorized(stmt, params, db_->column_store(),
                                        vopts, &vstats);
      counter.fetch_sub(1, std::memory_order_relaxed);
      if (rs.ok()) {
        // Charge and account only on success: an aborted partial scan
        // (late unsupported-shape detection) must not double-bill the
        // statement on top of the interpreter re-execution below.
        stats.col_rows += vstats.rows_scanned;
        // Parallel lanes overlap the DRIVING scan and probe in wall-clock
        // terms — divide those by the same factor the router estimated
        // with. Hash-join builds (their sweeps included) ran serially and
        // are charged undivided; with a serial execution lanes_used is 1
        // and the split is a no-op.
        const double driver_ns =
            static_cast<double>(vstats.rows_scanned_driver) *
                static_cast<double>(m.col_vector_row_ns) +
            static_cast<double>(vstats.rows_joined) *
                static_cast<double>(m.col_join_row_ns);
        const double build_ns =
            static_cast<double>(vstats.rows_scanned -
                                vstats.rows_scanned_driver) *
                static_cast<double>(m.col_vector_row_ns) +
            static_cast<double>(vstats.rows_built) *
                static_cast<double>(m.col_join_build_row_ns);
        const double ns =
            driver_ns / parallel_factor(vstats.lanes_used) + build_ns;
        ChargeReplicaWork(this, m, ns, concurrent);
        last_vectorized_ = true;
        ChargeStatement(stats);
        FlushCharge();
        return rs;
      }
      // Fall through to the interpreter on any vectorized-engine error
      // (unsupported construct discovered at lowering/evaluation time or a
      // table without a replica): behavior is never lost, and genuine
      // statement errors resurface with the interpreter's diagnostics.
      if (trace != nullptr) {
        // Drop any partial ops the aborted vectorized attempt captured; the
        // interpreter re-execution below records the statement's real plan.
        trace->ops.clear();
        trace->lanes = 1;
        trace->morsels = 0;
      }
    }
    ColumnSnapshotStorage storage(db_, &stats, this);
    auto rs = sql::Execute(stmt, params, &storage, trace);
    ChargeStatement(stats);
    FlushCharge();
    return rs;
  }

  last_route_ = RoutedStore::kRowStore;
  // Auto-commit wrapper when no transaction is open.
  std::unique_ptr<txn::Transaction> auto_txn;
  txn::Transaction* txn = txn_.get();
  if (!in_txn) {
    auto_txn = db_->txn_manager().Begin(db_->profile().isolation);
    txn = auto_txn.get();
  }

  const bool analytical = stmt.IsAnalyticalShape();
  const double scan_penalty =
      (in_txn && analytical) ? db_->profile().txn_analytical_scan_penalty
                             : 1.0;
  TxnStorage storage(db_, txn, &stats, this,
                     /*standalone_analytical=*/!in_txn && analytical,
                     scan_penalty);
  auto rs = sql::Execute(stmt, params, &storage, trace);
  ChargeStatement(stats);

  if (!rs.ok()) {
    // Abort whichever transaction was in flight; explicit transactions are
    // dead after a failure (Rollback becomes a no-op). The statement's own
    // error is what the caller sees; the abort Status carries nothing new.
    if (in_txn) {
      (void)txn_->Abort();
      txn_.reset();
      txn_writes_ = 0;
    } else {
      (void)auto_txn->Abort();
    }
    FlushCharge();
    return rs.status();
  }

  if (in_txn) {
    txn_writes_ += stats.writes;
    return rs;
  }
  Status commit = auto_txn->Commit();
  if (!commit.ok()) {
    FlushCharge();
    return commit;
  }
  if (stats.writes > 0) ChargeCommit(stats.writes);
  FlushCharge();
  return rs;
}

Status Session::Begin() {
  if (txn_) return Status::InvalidArgument("transaction already open");
  txn_ = db_->txn_manager().Begin(db_->profile().isolation);
  txn_writes_ = 0;
  return Status::OK();
}

Status Session::Commit() {
  if (!txn_) return Status::InvalidArgument("no open transaction");
  Status st = txn_->Commit();
  if (st.ok() && txn_writes_ > 0) ChargeCommit(txn_writes_);
  txn_.reset();
  txn_writes_ = 0;
  FlushCharge();
  return st;
}

Status Session::Rollback() {
  if (!txn_) {
    FlushCharge();
    return Status::OK();  // failed statements already aborted
  }
  Status st = txn_->Abort();
  txn_.reset();
  txn_writes_ = 0;
  FlushCharge();
  return st;
}

void Session::InlineCharge(int64_t micros) {
  if (micros <= 0) return;
  charged_micros_ += micros;
  if (charging_enabled_) SleepMicros(micros);
}

void Session::DeferCharge(int64_t micros) {
  if (micros <= 0) return;
  charged_micros_ += micros;
  pending_charge_micros_ += micros;
}

void Session::FlushCharge() {
  if (pending_charge_micros_ <= 0) return;
  int64_t micros = pending_charge_micros_;
  pending_charge_micros_ = 0;
  if (charging_enabled_) SleepMicros(micros);
}

void Session::ChargeStatement(const AccessStats& stats) {
  const LatencyModel& m = db_->profile().latency;
  const ClusterModel& c = db_->profile().cluster;
  double ns = static_cast<double>(m.statement_overhead_ns) * c.ReadFactor();
  // Row-store costs use the contention-weighted units accumulated per
  // operation (per-table buffer/latch pressure).
  ns += stats.seek_cost * static_cast<double>(m.row_seek_ns);
  ns += stats.row_cost * static_cast<double>(m.row_scan_row_ns);
  // Column-store scan costs and row-store full-scan costs were charged
  // inline (while their pressure markers were held); only seeks, range
  // scans and index probes remain here.
  DeferCharge(static_cast<int64_t>(ns / 1000.0));
}

void Session::ChargeCommit(int64_t writes) {
  const LatencyModel& m = db_->profile().latency;
  const ClusterModel& c = db_->profile().cluster;
  double ns = static_cast<double>(m.commit_base_ns) * c.CommitFactor();
  ns += static_cast<double>(writes) * m.write_ns;
  DeferCharge(static_cast<int64_t>(ns / 1000.0));
}

}  // namespace olxp::engine
