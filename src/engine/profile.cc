#include "engine/profile.h"

#include "common/strings.h"

namespace olxp::engine {

EngineProfile EngineProfile::MemSqlLike() {
  EngineProfile p;
  p.name = "memsql-like";
  p.architecture = StoreArchitecture::kUnified;
  p.isolation = txn::IsolationLevel::kReadCommitted;
  // Memory-resident: cheap seeks/scans, local commit. OLAP shares the row
  // store, so scan contention bites hard (the paper's interference story).
  p.latency.row_seek_ns = 4000;
  p.latency.row_scan_row_ns = 400;
  p.latency.row_analytic_scan_row_ns = 12000;
  p.latency.col_scan_row_ns = 400;  // unused (no replica)
  p.latency.write_ns = 800;
  p.latency.commit_base_ns = 200000;   // 2PC aggregator -> leaves
  p.latency.statement_overhead_ns = 20000;  // aggregator network hop
  p.latency.scan_contention = 2.5;
  p.cluster.commit_scale_per_doubling = 0.30;
  p.cluster.read_scale_per_doubling = 0.15;
  p.txn_analytical_scan_penalty = 45.0;  // vertical-table joins in hybrids
  p.lock_timeout_micros = 15000;  // fast timeout-based deadlock breaking
  p.enforce_foreign_keys = false;  // MemSQL has no FK support
  return p;
}

EngineProfile EngineProfile::TiDbLike() {
  EngineProfile p;
  p.name = "tidb-like";
  p.architecture = StoreArchitecture::kSeparated;
  p.isolation = txn::IsolationLevel::kSnapshotIsolation;  // repeatable read
  // SSD-resident TiKV: expensive random seeks; raft-quorum commits across
  // the network; TiFlash replica scans are cheap per row and do not touch
  // row-store locks.
  p.latency.row_seek_ns = 55000;
  p.latency.row_scan_row_ns = 2500;
  p.latency.row_analytic_scan_row_ns = 60000;
  p.latency.col_scan_row_ns = 15000;
  p.latency.col_vector_row_ns = 1800;  // TiFlash-style batch execution
  p.latency.col_join_build_row_ns = 2200;  // hash-table insert per build row
  p.latency.col_join_row_ns = 2600;        // per joined tuple materialized
  p.latency.write_ns = 2500;
  p.latency.commit_base_ns = 450000;
  p.latency.statement_overhead_ns = 35000;
  p.latency.scan_contention = 5.0;
  p.txn_analytical_scan_penalty = 2.4;
  p.cluster.commit_scale_per_doubling = 0.55;
  p.cluster.read_scale_per_doubling = 0.35;
  p.replication_lag_micros = 20000;
  p.olap_row_fraction = 0.65;
  p.enforce_foreign_keys = true;
  return p;
}

EngineProfile EngineProfile::OceanBaseLike() {
  EngineProfile p;
  p.name = "oceanbase-like";
  p.architecture = StoreArchitecture::kUnified;
  p.isolation = txn::IsolationLevel::kSnapshotIsolation;
  p.latency.row_seek_ns = 45000;
  p.latency.row_scan_row_ns = 2000;
  p.latency.row_analytic_scan_row_ns = 40000;
  p.latency.col_scan_row_ns = 2000;  // unified store
  p.latency.write_ns = 2200;
  p.latency.commit_base_ns = 380000;
  p.latency.statement_overhead_ns = 30000;
  p.latency.scan_contention = 4.0;
  p.txn_analytical_scan_penalty = 3.0;
  // Shared-nothing without a decoupled analytical store scales worse under
  // mixed load (Fig. 10 contrast).
  p.cluster.commit_scale_per_doubling = 0.75;
  p.cluster.read_scale_per_doubling = 0.5;
  p.lock_timeout_micros = 20000;
  p.enforce_foreign_keys = true;
  return p;
}

StatusOr<EngineProfile> EngineProfile::ByName(std::string_view name) {
  std::string n = ToLower(name);
  if (n == "memsql-like" || n == "memsql") return MemSqlLike();
  if (n == "tidb-like" || n == "tidb") return TiDbLike();
  if (n == "oceanbase-like" || n == "oceanbase") return OceanBaseLike();
  return Status::InvalidArgument("unknown engine profile: " +
                                 std::string(name));
}

}  // namespace olxp::engine
