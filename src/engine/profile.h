#ifndef OLXP_ENGINE_PROFILE_H_
#define OLXP_ENGINE_PROFILE_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "txn/transaction.h"

namespace olxp::engine {

/// Which physical stores exist and how OLAP is routed.
enum class StoreArchitecture {
  kUnified,    ///< one store; OLAP scans run on the transactional row store
               ///< (MemSQL-style)
  kSeparated,  ///< row store + columnar replica fed by async replication;
               ///< large reads route to the replica (TiDB-style)
};

/// Simulated device/network costs charged per storage operation. These make
/// the embedded engine behave like the paper's clusters at a calibrated,
/// laptop-friendly scale: shapes (ratios, crossovers) are the reproduction
/// target, not absolute values.
struct LatencyModel {
  int64_t row_seek_ns = 2000;        ///< point/index seek on the row store
  int64_t row_scan_row_ns = 150;     ///< per row visited scanning row store
  /// Per row visited by a STANDALONE analytical statement on the row store.
  /// Row-format analytical scans are far more expensive than OLTP-sized
  /// range reads ("scanning row-format tables in TiKV is stochastic and
  /// expensive", §VI-B1): batched random KV reads rather than sequential
  /// block reads.
  int64_t row_analytic_scan_row_ns = 2000;
  int64_t col_scan_row_ns = 60;      ///< per row visited scanning replica
  /// Per row visited when the vectorized engine serves the replica scan
  /// (batch-amortized: no per-row materialization or interpreter dispatch).
  int64_t col_vector_row_ns = 8;
  /// Per row materialized into a vectorized-join hash table (build side).
  int64_t col_join_build_row_ns = 12;
  /// Per joined tuple emitted by a vectorized hash-join probe stage.
  int64_t col_join_row_ns = 16;
  int64_t write_ns = 1000;           ///< per buffered write at commit
  int64_t commit_base_ns = 30000;    ///< commit round trip (quorum, log)
  int64_t statement_overhead_ns = 5000;  ///< dispatch/SQL-layer hop
  /// Buffer-pressure model: point/range operations on a table are slowed
  /// by (1 + factor * concurrent_analytical_scans_on_that_table). Scans
  /// slow each other too, but sublinearly (bandwidth sharing):
  /// (1 + 0.15 * factor * other_scans).
  double scan_contention = 0.5;
  /// Per-extra-lane efficiency of morsel-driven parallel execution: a
  /// vectorized statement that engaged L lanes has its simulated replica
  /// work divided by 1 + parallel_efficiency * (L - 1) (sub-linear scaling:
  /// dispatch, partial-state merge and memory bandwidth are shared). The
  /// router uses the same factor when costing the replica side, so
  /// seek-dominated shapes still pick the row store.
  double parallel_efficiency = 0.7;
};

/// Cluster-size scaling model for Fig. 10: coordination costs grow with the
/// number of nodes relative to the 4-node baseline.
struct ClusterModel {
  int num_nodes = 4;
  int base_nodes = 4;
  double commit_scale_per_doubling = 0.35;  ///< commit RTT growth
  double read_scale_per_doubling = 0.15;    ///< read/dispatch growth

  double CommitFactor() const {
    return 1.0 + commit_scale_per_doubling *
                     std::log2(static_cast<double>(num_nodes) / base_nodes);
  }
  double ReadFactor() const {
    return 1.0 + read_scale_per_doubling *
                     std::log2(static_cast<double>(num_nodes) / base_nodes);
  }
};

/// A system-under-test personality: storage architecture + isolation +
/// latency model + cluster model. Three factory presets emulate the paper's
/// SUTs; every knob stays user-configurable for ablations.
struct EngineProfile {
  std::string name = "memsql-like";
  StoreArchitecture architecture = StoreArchitecture::kUnified;
  txn::IsolationLevel isolation = txn::IsolationLevel::kReadCommitted;
  LatencyModel latency;
  ClusterModel cluster;
  /// Propagation delay row store -> replica (kSeparated only).
  int64_t replication_lag_micros = 20000;
  /// Probability that a stand-alone analytical SELECT executes on the row
  /// store despite a replica existing (the cost-based optimizer picking
  /// TiKV over TiFlash; §V-B1 notes scans "can occur in the row store of
  /// TiKV or the column store of TiFlash"). Ignored for kUnified.
  double olap_row_fraction = 0.0;
  /// Cost multiplier for analytical-shaped SELECTs (aggregates or joins)
  /// executed INSIDE an explicit transaction. Models the paper's MemSQL
  /// finding: vertical partitioning makes the relationship queries of
  /// hybrid transactions generate many join operations, inflating hybrid
  /// waiting time (§VI-A1). Separated-store engines suffer less (the row
  /// store at least holds rows contiguously).
  double txn_analytical_scan_penalty = 1.0;
  /// Vectorized columnar execution (src/exec/): stand-alone analytical
  /// SELECTs routed to the replica that the engine can lower run
  /// column-at-a-time over raw column vectors instead of through the
  /// row-at-a-time interpreter. Unsupported shapes (joins, subqueries) fall
  /// back to the interpreter automatically.
  bool vectorized_execution = true;
  /// Columnar replica block encoding: sealed blocks compress each column
  /// (string dictionary, integer RLE / bit-packing, flat arrays) and carry
  /// min/max zone maps. Off keeps sealed blocks as boxed raw values — scan
  /// results and block skipping are identical either way (zone maps are
  /// always built); the exec parity suite sweeps both settings.
  bool columnar_encoding = true;
  /// Deterministic cost-based routing: an index-backed single-table SELECT
  /// runs on the row store when its estimated cost beats a full replica
  /// sweep (the replica keeps no ordered index). Complements the stochastic
  /// olap_row_fraction model above.
  bool cost_based_routing = true;
  /// Intra-query parallelism for the vectorized columnar engine: execution
  /// lanes (including the calling session thread) that claim morsels of a
  /// pinned replica scan. 0 or 1 keeps the current serial path; values > 1
  /// make engine::Database own a shared exec::WorkerPool of
  /// exec_threads - 1 workers. The OLXP_EXEC_THREADS environment variable
  /// overrides this at Database construction (CI runs the whole test suite
  /// with a pool this way).
  int exec_threads = 1;
  /// Slots per claimed morsel (work-stealing granularity). Rounded up to a
  /// whole number of vector chunks; smaller = better load balance, larger =
  /// less dispatch overhead.
  size_t morsel_rows = 4096;
  /// The paper ships two schema variants because MemSQL lacks FK support;
  /// profiles therefore choose whether FKs are enforced.
  bool enforce_foreign_keys = false;
  /// Per-session prepared-statement cache bound (LRU eviction). Ad-hoc SQL
  /// with inlined literals would otherwise grow a long-lived session's
  /// cache without limit. 0 disables the bound (unbounded cache).
  size_t prepared_statement_cache_capacity = 256;
  /// Row-lock wait deadline before a retryable LockTimeout abort.
  int64_t lock_timeout_micros = 100000;
  /// Background MVCC vacuum pass period. The vacuum thread computes the
  /// active-snapshot watermark (open transactions, checkpoint writer,
  /// replicator apply frontier) and reclaims version chains, dead
  /// tombstone rows, and stale secondary-index entries below it — the
  /// continuous garbage collection a sustained hybrid run needs to keep
  /// memory bounded. <= 0 disables the thread (Database::RunVacuum() still
  /// runs synchronous passes).
  int64_t vacuum_interval_us = 50000;
  /// Rows each vacuum chunk examines under one exclusive table latch
  /// before dropping it (bounds committer stalls behind the vacuum).
  size_t vacuum_batch_rows = 512;
  /// Minimum wall-clock age of MVCC history before the vacuum may reclaim
  /// it, independent of live snapshots (0 = reclaim as soon as unneeded).
  int64_t gc_history_us = 0;
  /// Rows a table scan visits per shared-latch chunk before dropping the
  /// latch so committers can interleave (the §V-B interference path:
  /// a whole-sweep latch hold stalls every InstallVersion behind an
  /// analytical scan). 0 = hold the latch for the whole sweep (the
  /// pre-chunking behaviour, kept for before/after ablations).
  size_t scan_chunk_rows = 1024;
  /// Commit durability: kOff keeps the redo log in memory only (the seed
  /// behaviour — a restart loses the database); the other modes persist
  /// every commit to WAL segments under `wal_dir` and recover from them
  /// when a Database opens on that directory. kGroup batches concurrent
  /// commits under one fsync (the paper's SUTs all group-commit their
  /// raft/redo logs); kSync is the naive fsync-per-commit baseline; kAsync
  /// writes behind without waiting. Requires a non-empty wal_dir.
  storage::DurabilityMode durability = storage::DurabilityMode::kOff;
  /// Group-commit batching window: how long the log flusher holds a batch
  /// open for stragglers before the covering fsync.
  int64_t group_commit_window_us = 100;
  /// WAL segment + checkpoint directory. Opening a Database with a
  /// durability mode on and this set to a directory containing WAL state
  /// recovers it (crash recovery); empty disables the durable log.
  std::string wal_dir;
  /// Segment rotation threshold; Checkpoint() deletes fully-covered
  /// segments so disk stays bounded during long runs.
  uint64_t wal_segment_bytes = 16ull << 20;
  /// Per-query tracing (EXPLAIN ANALYZE capture). 0 = off (no timing calls
  /// on the execution hot path); >= 1 captures per-operator row counts and
  /// wall times for every statement into Session::last_trace(). Sessions
  /// can override per-connection via Session::set_trace_level(). The
  /// `EXPLAIN ANALYZE <stmt>` prefix always traces, regardless of level.
  int trace_level = 0;
  /// Statements whose wall clock meets this threshold land in the
  /// database's slow-query ring (Database::slow_query_log(), surfaced by
  /// StatsJson()). 0 disables the log.
  int64_t slow_query_threshold_us = 0;
  /// Entries the slow-query ring retains (oldest evicted first).
  size_t slow_query_log_capacity = 64;

  /// In-memory unified store, read-committed, no FK support — MemSQL-style.
  static EngineProfile MemSqlLike();
  /// SSD row store + columnar replica + async replication, snapshot
  /// isolation (repeatable read) — TiDB-style.
  static EngineProfile TiDbLike();
  /// Shared-nothing unified store with SI and steeper coordination
  /// scaling — OceanBase-style (used by the Fig. 10 bench only).
  static EngineProfile OceanBaseLike();

  /// Preset lookup by name ("memsql-like", "tidb-like", "oceanbase-like").
  static StatusOr<EngineProfile> ByName(std::string_view name);
};

}  // namespace olxp::engine

#endif  // OLXP_ENGINE_PROFILE_H_
