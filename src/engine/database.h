#ifndef OLXP_ENGINE_DATABASE_H_
#define OLXP_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "engine/profile.h"
#include "exec/morsel.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "sql/storage_iface.h"
#include "storage/column_store.h"
#include "storage/lock_manager.h"
#include "storage/oracle.h"
#include "storage/replicator.h"
#include "storage/row_store.h"
#include "storage/vacuum.h"
#include "storage/wal.h"
#include "txn/transaction.h"

namespace olxp::engine {

class Session;

/// An embedded HTAP database instance configured by an EngineProfile.
/// Owns the full substrate: row store, lock manager, timestamp oracle,
/// commit log, columnar replica, replication pipeline, transaction manager,
/// and (when the profile enables durability) the disk-backed WAL.
/// Thread-safe: many Sessions execute concurrently against one Database.
///
/// Opening a Database whose profile points `wal_dir` at a directory with
/// WAL state recovers it: the newest checkpoint loads first, remaining
/// segments replay on top (original commit timestamps preserved, oracle
/// re-seeded), and the columnar replica rebuilds through the Replicator
/// pipeline. Check recovery_status() after construction.
class Database : public sql::Catalog {
 public:
  explicit Database(EngineProfile profile);
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const EngineProfile& profile() const { return profile_; }

  /// Opens a new session (one per client thread).
  std::unique_ptr<Session> CreateSession();

  // --- sql::Catalog ---
  StatusOr<int> TableId(std::string_view name) const override;
  const storage::TableSchema& GetSchema(int table_id) const override;

  /// DDL entry used by Sessions: creates the row table plus (for separated
  /// architectures) its columnar replica, and resolves FK references.
  Status CreateTableEverywhere(storage::TableSchema schema);

  /// Adds a secondary index to a live table (backfills).
  Status CreateIndexOn(std::string_view table_name, storage::IndexDef def);

  /// Blocks until the columnar replica has applied everything committed so
  /// far (loader barrier before measurements).
  void WaitReplicaCaughtUp();

  /// Runs one synchronous MVCC vacuum pass (watermark-safe: respects every
  /// open snapshot) and returns what it reclaimed. The background vacuum
  /// thread runs the same pass every profile().vacuum_interval_us.
  storage::VacuumStats RunVacuum();

  /// DEPRECATED: blindly prunes version chains in every table to the
  /// newest `keep` versions with no snapshot safety and no index-entry
  /// maintenance. Kept as a shim for legacy tests; use RunVacuum() (or the
  /// background vacuum) everywhere else.
  void PruneAllVersions(size_t keep = 4);

  /// Snapshots every table (schemas + committed rows with their commit
  /// timestamps) into the WAL directory and deletes segments the snapshot
  /// fully covers, bounding disk during long runs. Safe under concurrent
  /// commits. Fails when the profile has durability off.
  Status Checkpoint();

  /// Outcome of WAL recovery at construction (OK when durability is off or
  /// the directory was empty). A Database whose recovery failed is empty
  /// but usable; callers that need the data must check this.
  const Status& recovery_status() const { return recovery_status_; }

  // --- substrate accessors (benchmarks, tests, stats) ---
  storage::RowStore& row_store() { return row_store_; }
  storage::ColumnStore& column_store() { return column_store_; }
  storage::LockManager& lock_manager() { return lock_manager_; }
  storage::TimestampOracle& oracle() { return oracle_; }
  storage::Replicator& replicator() { return *replicator_; }
  txn::TransactionManager& txn_manager() { return *txn_manager_; }
  storage::SnapshotRegistry& snapshots() { return snapshots_; }
  storage::Vacuum& vacuum() { return *vacuum_; }
  /// Durable segment writer; nullptr when durability is off.
  storage::WalWriter* wal() { return wal_.get(); }
  /// Shared worker pool for morsel-driven parallel vectorized execution;
  /// nullptr when profile().exec_threads <= 1 (serial path).
  exec::WorkerPool* exec_pool() { return exec_pool_.get(); }

  /// Process-visible metrics for this database instance: every subsystem
  /// (WAL, vacuum, replicator, lock manager, worker pool, router, session
  /// statement timing) publishes counters/gauges/histograms here.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Ring of recent statements that crossed the profile's
  /// slow_query_threshold_us (empty when the threshold is 0).
  obs::SlowQueryLog& slow_query_log() { return slow_log_; }

  /// One JSON document with everything an operator polls: the full metrics
  /// snapshot (counters/gauges/histogram summaries) plus the slow-query
  /// ring. Stable top-level keys: "metrics", "slow_queries",
  /// "slow_query_total".
  std::string StatsJson();

  /// Prometheus text exposition of the metrics registry (refreshes the
  /// pull-published columnar storage gauges first).
  std::string MetricsText();

  /// Monotone counter bumped by every successful DDL (CREATE TABLE /
  /// CREATE INDEX). Sessions stamp cached prepared statements with it and
  /// recompile on mismatch, so a plan prepared before an index existed
  /// never keeps routing/seeking against its stale shape.
  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_acquire);
  }

  /// Adjusts the simulated cluster size (Fig. 10 scaling bench).
  void set_cluster_nodes(int nodes) { profile_.cluster.num_nodes = nodes; }

  /// Toggles the vectorized columnar engine at runtime (parity tests and
  /// interpreter-vs-vectorized benches flip this between runs).
  void set_vectorized_execution(bool on) {
    profile_.vectorized_execution = on;
  }

  /// Reconfigures intra-query parallelism at runtime: replaces the worker
  /// pool (n <= 1 removes it, restoring the serial path). For tests and
  /// bench ablations only — callers must quiesce in-flight statements
  /// first, exactly like set_vectorized_execution.
  void set_exec_threads(int n);

  /// Sets the chunked-scan latch-drop granularity on every table (0 = hold
  /// the latch for the whole sweep). The fig1/fig4 ablations flip this
  /// between cells to measure the §V-B interference path before/after.
  void set_scan_chunk_rows(size_t rows);

 private:
  /// Loads the checkpoint and replays WAL segments from profile_.wal_dir,
  /// then opens the segment writer for new commits.
  Status RecoverFromWal();

  /// Declared before every subsystem so it is destroyed last: WAL flushes,
  /// final vacuum passes and replicator drains may still record into it
  /// while the rest of the substrate tears down.
  obs::MetricsRegistry metrics_;
  EngineProfile profile_;
  /// Declared after profile_ (sized from it), before the subsystems that
  /// feed it.
  obs::SlowQueryLog slow_log_;
  storage::RowStore row_store_;
  storage::ColumnStore column_store_;
  storage::LockManager lock_manager_;
  storage::TimestampOracle oracle_;
  storage::CommitLog commit_log_;
  /// Live-snapshot registry feeding the vacuum watermark; must outlive the
  /// replicator, transaction manager, and vacuum, all of which hold it.
  storage::SnapshotRegistry snapshots_;
  std::unique_ptr<storage::Replicator> replicator_;
  std::unique_ptr<txn::TransactionManager> txn_manager_;
  /// Stopped in ~Database before the stores it sweeps are torn down.
  std::unique_ptr<storage::Vacuum> vacuum_;
  /// Morsel-execution worker pool; shut down FIRST in ~Database (before
  /// the vacuum and replicator) so no in-flight morsel reads a table the
  /// sweepers are tearing down behind it.
  std::unique_ptr<exec::WorkerPool> exec_pool_;
  std::atomic<uint64_t> schema_version_{0};
  /// Declared last: destroyed first, flushing its tail while the rest of
  /// the substrate is still alive. No transaction runs during destruction.
  std::unique_ptr<storage::WalWriter> wal_;
  /// Serializes Checkpoint() callers; outermost rank — a checkpoint pins
  /// the commit scope, the snapshot registry, table latches and the WAL.
  sync::Mutex checkpoint_mu_{sync::LockRank::kCheckpoint, "db.checkpoint"};
  Status recovery_status_;
};

}  // namespace olxp::engine

#endif  // OLXP_ENGINE_DATABASE_H_
