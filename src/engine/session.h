#ifndef OLXP_ENGINE_SESSION_H_
#define OLXP_ENGINE_SESSION_H_

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "exec/vectorized.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "sql/executor.h"
#include "txn/transaction.h"

namespace olxp::engine {

class Database;

/// Where a statement executed (for diagnostics and tests).
enum class RoutedStore { kRowStore, kColumnStore };

/// Per-statement access accounting feeding the latency model.
struct AccessStats {
  int64_t row_seeks = 0;
  int64_t row_rows = 0;   ///< rows visited on the row store
  int64_t col_rows = 0;   ///< rows visited on the columnar replica
  int64_t writes = 0;
  /// Contention-weighted cost units: raw counts inflated by the number of
  /// analytical scans concurrently sweeping the same table (buffer/latch
  /// pressure model). The latency model charges these, not the raw counts.
  double seek_cost = 0;
  double row_cost = 0;
  void Reset() {
    row_seeks = row_rows = col_rows = writes = 0;
    seek_cost = row_cost = 0;
  }
};

/// A client connection: prepared-statement cache, optional open transaction,
/// store routing, and simulated-latency charging. One session per thread;
/// not thread-safe (like a JDBC connection).
///
/// Routing reproduces the paper's engines: a statement inside an explicit
/// transaction is pinned to the row store (the engine "can only choose one
/// store for a hybrid transaction"); stand-alone analytical SELECTs route to
/// the columnar replica on separated architectures.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses (cached), compiles (cached), routes and executes one statement.
  /// Auto-commits when no transaction is open. Retryable failures
  /// (Conflict/LockTimeout) abort any open transaction.
  ///
  /// `EXPLAIN ANALYZE <stmt>` executes the inner statement normally (same
  /// routing, same side effects) and returns the per-operator trace as a
  /// one-column result set instead of the statement's rows; the raw capture
  /// stays available via last_trace().
  StatusOr<sql::ResultSet> Execute(const std::string& sql,
                                   std::span<const Value> params = {});

  /// Convenience without params.
  StatusOr<sql::ResultSet> Execute(const std::string& sql,
                                   std::initializer_list<Value> params) {
    return Execute(sql, std::span<const Value>(params.begin(), params.end()));
  }

  /// Explicit transaction control (used by OLTP and hybrid agents).
  Status Begin();
  Status Commit();
  Status Rollback();
  bool InTransaction() const { return txn_ != nullptr; }

  /// Store that served the most recent statement.
  RoutedStore last_route() const { return last_route_; }

  /// True when the most recent statement ran on the vectorized columnar
  /// engine (false for interpreter execution on either store).
  bool last_vectorized() const { return last_vectorized_; }

  /// Replication watermark the most recent column-store statement executed
  /// "as of" (0 if no statement has routed to the replica yet).
  uint64_t last_snapshot_ts() const { return last_snapshot_ts_; }

  /// Total simulated microseconds charged to this session so far.
  int64_t charged_micros() const { return charged_micros_; }

  /// Per-connection tracing override (initialized from the profile's
  /// trace_level). Level >= 1 captures a QueryTrace for every statement;
  /// 0 disables capture (no timing calls on the execution path).
  void set_trace_level(int level) { trace_level_ = level; }
  int trace_level() const { return trace_level_; }

  /// Capture for the most recent traced statement (empty — no ops — when
  /// tracing was off for the last statement).
  const obs::QueryTrace& last_trace() const { return last_trace_; }

  /// Prepared statements currently cached (bounded by the profile's
  /// prepared_statement_cache_capacity; diagnostics and tests).
  size_t prepared_cache_size() const { return cache_.size(); }

  /// When false, the session skips SleepMicros charging (unit tests run at
  /// full speed; benches keep it on).
  void set_charging_enabled(bool on) { charging_enabled_ = on; }

  Database* database() { return db_; }

  /// Internal: charges simulated time immediately. Used by the storage
  /// wrappers so a scan's simulated duration elapses while its per-table
  /// pressure marker is still held (making interference observable).
  void InlineCharge(int64_t micros);

  /// Internal: accumulates deferred simulated time; one sleep per
  /// transaction (or auto-commit statement) instead of one per statement —
  /// OS sleep granularity would otherwise tax cheap statements far more
  /// than expensive ones.
  void DeferCharge(int64_t micros);
  /// Sleeps off the accumulated deferred charge.
  void FlushCharge();

 private:
  friend class Database;
  explicit Session(Database* db);

  struct Prepared {
    std::unique_ptr<sql::CompiledStatement> compiled;
    /// Router inputs derived once at prepare time (immutable per plan).
    exec::PlanShape shape;
    /// Database::schema_version() the plan was compiled against. A cache
    /// hit with a stale version recompiles: DDL (e.g. CREATE INDEX) can
    /// change both the chosen access path and the PlanShape the router
    /// costs against.
    uint64_t schema_version = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_it;
  };

  StatusOr<const Prepared*> Prepare(const std::string& sql);

  /// The routing + execution body of Execute (everything but the statement
  /// wall clock, trace bookkeeping and slow-query admission, which the
  /// public wrapper owns). `trace` is null when tracing is off.
  StatusOr<sql::ResultSet> ExecuteRouted(const std::string& sql,
                                         std::span<const Value> params,
                                         obs::QueryTrace* trace);

  /// Charges the simulated cost of the statement just executed.
  void ChargeStatement(const AccessStats& stats);
  void ChargeCommit(int64_t writes);

  Database* db_;
  uint64_t route_rng_state_;  ///< cheap LCG for the OLAP routing fraction
  std::unique_ptr<txn::Transaction> txn_;
  /// Prepared-statement cache with LRU eviction (lru_ front = most recent);
  /// bounded by profile().prepared_statement_cache_capacity.
  std::unordered_map<std::string, Prepared> cache_;
  std::list<std::string> lru_;
  RoutedStore last_route_ = RoutedStore::kRowStore;
  bool last_vectorized_ = false;
  uint64_t last_snapshot_ts_ = 0;
  int64_t charged_micros_ = 0;
  int64_t pending_charge_micros_ = 0;
  int64_t txn_writes_ = 0;  ///< writes buffered in the open transaction
  bool charging_enabled_ = true;
  int trace_level_ = 0;  ///< seeded from profile().trace_level at open
  obs::QueryTrace last_trace_;
  /// Router cost estimate (ns) for the chosen side of the most recent
  /// deterministic cost comparison; < 0 when the statement's shape never
  /// reached the comparison. Feeds the predicted-vs-actual residual metric.
  double predicted_cost_ns_ = -1;
  // Metric handles resolved once at session open (stable pointers into the
  // database's registry; hot paths never touch the name map).
  obs::Counter* m_statements_ = nullptr;
  obs::Counter* m_route_col_vec_ = nullptr;
  obs::Counter* m_route_col_interp_ = nullptr;
  obs::Counter* m_route_row_ = nullptr;
  obs::Counter* m_cost_override_ = nullptr;
  obs::Counter* m_stoch_override_ = nullptr;
  obs::Counter* m_morsels_ = nullptr;
  obs::Counter* m_slow_ = nullptr;
  obs::Histogram* m_statement_us_ = nullptr;
  obs::Histogram* m_residual_pct_ = nullptr;
};

}  // namespace olxp::engine

#endif  // OLXP_ENGINE_SESSION_H_
