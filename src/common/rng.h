#ifndef OLXP_COMMON_RNG_H_
#define OLXP_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace olxp {

/// Deterministic, fast pseudo-random generator (xoshiro256**) with the
/// helpers benchmark loaders and workload generators need, including TPC-C's
/// non-uniform NURand. One instance per agent thread; never shared.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds; a zero seed is remapped to a fixed non-zero constant.
  void Seed(uint64_t seed);

  /// Raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p);

  /// TPC-C NURand(A, x, y): non-uniform random in [x, y].
  int64_t NURand(int64_t a, int64_t x, int64_t y);

  /// Random string of `len` characters drawn from [a-z0-9].
  std::string AlnumString(int len);

  /// Random string with length uniform in [min_len, max_len].
  std::string AlnumString(int min_len, int max_len);

  /// Random digit string of exactly `len` characters (phone numbers etc.).
  std::string DigitString(int len);

  /// TPC-C customer last name from a syllable index in [0, 999].
  static std::string LastName(int64_t num);

 private:
  uint64_t s_[4];
  uint64_t c_load_ = 0;  ///< TPC-C NURand C constant (derived from seed).
};

}  // namespace olxp

#endif  // OLXP_COMMON_RNG_H_
