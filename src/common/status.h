#ifndef OLXP_COMMON_STATUS_H_
#define OLXP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace olxp {

/// Error category for a failed operation. Mirrors the RocksDB/Arrow idiom:
/// all fallible library calls return a Status (or StatusOr<T>) instead of
/// throwing; exceptions never cross the library boundary.
enum class StatusCode {
  kOk = 0,
  kNotFound,        ///< Row / table / index / config key does not exist.
  kAlreadyExists,   ///< Duplicate key or duplicate object name.
  kInvalidArgument, ///< Malformed input (SQL syntax, bad config, bad type).
  kConflict,        ///< Write-write conflict under snapshot isolation.
  kLockTimeout,     ///< Lock wait exceeded its deadline (deadlock breaker).
  kAborted,         ///< Transaction aborted (by user or by the engine).
  kUnsupported,     ///< Feature intentionally outside the SQL subset.
  kInternal,        ///< Invariant violation; indicates a bug.
};

/// Returns a short stable name ("Ok", "NotFound", ...) for a code.
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
/// Cheap to copy in the OK case (empty message).
///
/// [[nodiscard]]: silently dropping a Status hides failures (a lesson every
/// Status-based codebase relearns). Intentional drops must be spelled
/// `(void)Fn();` with a comment saying why the error is ignorable.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Conflict(std::string m = "") {
    return Status(StatusCode::kConflict, std::move(m));
  }
  static Status LockTimeout(std::string m = "") {
    return Status(StatusCode::kLockTimeout, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unsupported(std::string m = "") {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// True when the failure is transient and the transaction may simply be
  /// retried by the caller (the benchmark harness retries these).
  bool IsRetryable() const {
    return code_ == StatusCode::kConflict ||
           code_ == StatusCode::kLockTimeout;
  }

  /// "Ok" or "Code: message" — for logs and test diagnostics.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value or a failure Status. Modeled on absl::StatusOr.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from Status so `return Status::NotFound(...)` works.
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }
  /// Implicit from T so `return value` works.
  StatusOr(T v)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(v)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define OLXP_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::olxp::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

/// Evaluates a StatusOr expression, propagating failure, else binding
/// the value to `lhs`.
#define OLXP_ASSIGN_OR_RETURN(lhs, expr)      \
  auto OLXP_CONCAT_(_sor, __LINE__) = (expr); \
  if (!OLXP_CONCAT_(_sor, __LINE__).ok())     \
    return OLXP_CONCAT_(_sor, __LINE__).status(); \
  lhs = std::move(OLXP_CONCAT_(_sor, __LINE__)).value()

#define OLXP_CONCAT_INNER_(a, b) a##b
#define OLXP_CONCAT_(a, b) OLXP_CONCAT_INNER_(a, b)

}  // namespace olxp

#endif  // OLXP_COMMON_STATUS_H_
