#ifndef OLXP_COMMON_SYNC_H_
#define OLXP_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/lockorder.h"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros
// ---------------------------------------------------------------------------
// Every mutex in the engine goes through the wrappers below so that a Clang
// build with -Wthread-safety (promoted to -Werror=thread-safety in the
// static-analysis CI job) machine-checks the locking discipline: which lock
// guards which field (GUARDED_BY), which internal methods assume a lock is
// already held (REQUIRES / REQUIRES_SHARED), and which must not be entered
// with it held (EXCLUDES). Under GCC and MSVC the attributes expand to
// nothing, so the wrappers cost exactly one indirection that inlines away.
//
// Repo rules (enforced by ci/lint_engine.py): raw std::mutex /
// std::shared_mutex and the std lock guards are banned outside the sync core
// (this header + common/lockorder.{h,cc}); NO_THREAD_SAFETY_ANALYSIS escapes
// are banned outside this header; and every Mutex/SharedMutex construction
// must name its LockRank (the lock-rank hierarchy lives in
// common/lockorder.h — witness builds verify acquisition order at runtime).

#if defined(__clang__)
#define OLXP_TSA_(x) __attribute__((x))
#else
#define OLXP_TSA_(x)
#endif

#define CAPABILITY(x) OLXP_TSA_(capability(x))
#define SCOPED_CAPABILITY OLXP_TSA_(scoped_lockable)
#define GUARDED_BY(x) OLXP_TSA_(guarded_by(x))
#define PT_GUARDED_BY(x) OLXP_TSA_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) OLXP_TSA_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) OLXP_TSA_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) OLXP_TSA_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) OLXP_TSA_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) OLXP_TSA_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) OLXP_TSA_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) OLXP_TSA_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) OLXP_TSA_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) OLXP_TSA_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) OLXP_TSA_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  OLXP_TSA_(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) OLXP_TSA_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) OLXP_TSA_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) OLXP_TSA_(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) OLXP_TSA_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS OLXP_TSA_(no_thread_safety_analysis)

namespace olxp::sync {

// ---------------------------------------------------------------------------
// Annotated mutex wrappers
// ---------------------------------------------------------------------------

/// std::mutex carrying the "mutex" capability. Prefer the MutexLock guard;
/// the raw Lock/Unlock surface exists for guard classes and the rare
/// split-scope pattern (and keeps the analysis informed either way).
///
/// Construction requires a LockRank + name (common/lockorder.h). Witness
/// builds check every acquisition against the thread's held-lock stack;
/// Release builds discard both arguments at compile time.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name)
#if defined(OLXP_LOCK_ORDER)
      : rank_(rank), name_(name)
#endif
  {
    (void)rank;
    (void)name;
  }
  ~Mutex() { lockorder::OnDestroy(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if defined(OLXP_LOCK_ORDER)
    lockorder::OnAcquire(this, rank_, name_);
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lockorder::OnRelease(this);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if defined(OLXP_LOCK_ORDER)
    lockorder::OnAcquire(this, rank_, name_);
#endif
    return true;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if defined(OLXP_LOCK_ORDER)
  const LockRank rank_;
  const char* const name_;
#endif
};

/// std::shared_mutex carrying the "shared_mutex" capability. Writers take
/// the exclusive side (WriterLock), readers the shared side (ReaderLock).
/// Shared and exclusive acquisitions rank identically: a shared hold still
/// participates in hold-and-wait cycles against writers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name)
#if defined(OLXP_LOCK_ORDER)
      : rank_(rank), name_(name)
#endif
  {
    (void)rank;
    (void)name;
  }
  ~SharedMutex() { lockorder::OnDestroy(this); }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if defined(OLXP_LOCK_ORDER)
    lockorder::OnAcquire(this, rank_, name_);
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lockorder::OnRelease(this);
    mu_.unlock();
  }
  void LockShared() ACQUIRE_SHARED() {
#if defined(OLXP_LOCK_ORDER)
    lockorder::OnAcquire(this, rank_, name_);
#endif
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    lockorder::OnRelease(this);
    mu_.unlock_shared();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if defined(OLXP_LOCK_ORDER)
    lockorder::OnAcquire(this, rank_, name_);
#endif
    return true;
  }

 private:
  std::shared_mutex mu_;
#if defined(OLXP_LOCK_ORDER)
  const LockRank rank_;
  const char* const name_;
#endif
};

// ---------------------------------------------------------------------------
// RAII guards (scoped capabilities)
// ---------------------------------------------------------------------------

/// Scoped exclusive lock on a Mutex. Relockable: WAL group commit unlocks
/// around the covering fsync and relocks to re-check its predicate, which
/// the analysis tracks through the annotated Unlock()/Lock() members.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drops the lock (must not be called twice in a row).
  void Unlock() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  /// Re-acquires after Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_ = true;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// Condition variable over sync::Mutex
// ---------------------------------------------------------------------------

/// std::condition_variable adapted to MutexLock. The wait calls borrow the
/// underlying std::mutex via an adopted std::unique_lock and release it back
/// unowned afterwards, so the guard's ownership bookkeeping (and the
/// analysis' view that the lock is held across the wait) stays intact —
/// which is the correct function-boundary semantics for a cv wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();
  }

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(ul, std::move(pred));
    ul.release();
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(MutexLock& lock, const std::chrono::duration<Rep, Period>& d,
               Predicate pred) {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    bool r = cv_.wait_for(ul, d, std::move(pred));
    ul.release();
    return r;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(MutexLock& lock,
                           const std::chrono::time_point<Clock, Duration>& tp) {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    std::cv_status r = cv_.wait_until(ul, tp);
    ul.release();
    return r;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace olxp::sync

#endif  // OLXP_COMMON_SYNC_H_
