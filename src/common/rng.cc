#include "common/rng.h"

#include <cassert>

namespace olxp {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// splitmix64, used to expand the user seed into xoshiro state.
inline uint64_t SplitMix(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  if (seed == 0) seed = 0x5eed5eed5eed5eedULL;
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix(x);
  c_load_ = SplitMix(x) % 8192;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::NURand(int64_t a, int64_t x, int64_t y) {
  int64_t c = static_cast<int64_t>(c_load_ % (a + 1));
  return (((Uniform(int64_t{0}, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
}

std::string Rng::AlnumString(int len) {
  static const char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(kChars[Next() % (sizeof(kChars) - 1)]);
  }
  return out;
}

std::string Rng::AlnumString(int min_len, int max_len) {
  return AlnumString(static_cast<int>(Uniform(int64_t{min_len},
                                              int64_t{max_len})));
}

std::string Rng::DigitString(int len) {
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('0' + Next() % 10));
  }
  return out;
}

std::string Rng::LastName(int64_t num) {
  static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI", "PRES",
                                     "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  assert(num >= 0 && num <= 999);
  std::string out;
  out += kSyllables[(num / 100) % 10];
  out += kSyllables[(num / 10) % 10];
  out += kSyllables[num % 10];
  return out;
}

}  // namespace olxp
