#ifndef OLXP_COMMON_HISTOGRAM_H_
#define OLXP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace olxp {

/// Latency histogram with log-spaced buckets (HdrHistogram-style), plus
/// exact running moments. Records microsecond samples; reports the paper's
/// statistics: min, max, mean, median, p90, p95, p99.9, p99.99, stddev.
/// Not thread-safe; each agent thread owns one and they are Merge()d.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency sample (microseconds; negative clamps to 0).
  void Record(int64_t micros);

  /// Adds all samples of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  /// Clears all samples.
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return max_; }
  double Mean() const;
  double StdDev() const;

  /// Latency (microseconds) at quantile q; interpolated within the
  /// containing bucket and clamped to the observed [min, max]. Total for
  /// every input: an empty histogram reports 0 at any q, q outside [0,1]
  /// clamps (q = 0 -> min, q = 1 -> max), NaN reports max (the
  /// conservative SLO answer), and a degenerate observed range (single
  /// sample, or all samples equal) returns that exact value.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.50); }
  double P90() const { return Percentile(0.90); }
  double P95() const { return Percentile(0.95); }
  double P999() const { return Percentile(0.999); }
  double P9999() const { return Percentile(0.9999); }

  /// One-line summary in milliseconds, e.g.
  /// "cnt=1000 mean=1.21ms p50=1.1ms p95=2.0ms p99.9=4.2ms max=5.0ms".
  std::string Summary() const;

 private:
  static constexpr int kBucketCount = 512;
  /// Bucket index for a sample value (log-spaced, ~1.6% relative error).
  static int BucketFor(int64_t micros);
  /// Lower/upper bound of bucket i in microseconds.
  static double BucketLower(int i);
  static double BucketUpper(int i);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace olxp

#endif  // OLXP_COMMON_HISTOGRAM_H_
