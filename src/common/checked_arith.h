#ifndef OLXP_COMMON_CHECKED_ARITH_H_
#define OLXP_COMMON_CHECKED_ARITH_H_

#include <cstdint>
#include <limits>
#include <optional>

namespace olxp {

/// Checked int64 arithmetic for the SQL expression engines. The dialect maps
/// every operation C++ leaves undefined — signed overflow in +/-/*, negating
/// INT64_MIN — to SQL NULL, the same answer x % 0 already gives; x % -1 is 0
/// for every x (the raw operator traps on INT64_MIN % -1). The row
/// interpreter, the vectorized kernels and the aggregate accumulators all
/// route through these helpers so the differential oracle cannot catch them
/// disagreeing.
inline std::optional<int64_t> CheckedAdd(int64_t x, int64_t y) {
  int64_t r;
  if (__builtin_add_overflow(x, y, &r)) return std::nullopt;
  return r;
}

inline std::optional<int64_t> CheckedSub(int64_t x, int64_t y) {
  int64_t r;
  if (__builtin_sub_overflow(x, y, &r)) return std::nullopt;
  return r;
}

inline std::optional<int64_t> CheckedMul(int64_t x, int64_t y) {
  int64_t r;
  if (__builtin_mul_overflow(x, y, &r)) return std::nullopt;
  return r;
}

inline std::optional<int64_t> CheckedMod(int64_t x, int64_t y) {
  if (y == 0) return std::nullopt;
  if (y == -1) return 0;  // INT64_MIN % -1 traps; the result is 0 for all x
  return x % y;
}

inline std::optional<int64_t> CheckedNeg(int64_t x) {
  if (x == std::numeric_limits<int64_t>::min()) return std::nullopt;
  return -x;
}

}  // namespace olxp

#endif  // OLXP_COMMON_CHECKED_ARITH_H_
