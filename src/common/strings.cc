#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace olxp {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(n);
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(
      static_cast<unsigned char>(c)));
  return out;
}

bool StartsWithNoCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return EqualsNoCase(s.substr(0, prefix.size()), prefix);
}

bool EqualsNoCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool SqlLike(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string Join(const std::vector<std::string>& items,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace olxp
