#include "common/value.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace olxp {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "VARCHAR";
    case ValueType::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

// AsInt/AsDouble/AsString are inline in value.h (vectorized-scan hot path).

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    // Compare exactly when both sides are integral to avoid double rounding.
    const bool both_int = type_ != ValueType::kDouble &&
                          other.type_ != ValueType::kDouble;
    if (both_int) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    int c = str_.compare(other.str_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Heterogeneous string/number: stable order by type tag.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
    case ValueType::kTimestamp:
      return std::to_string(std::get<int64_t>(scalar_));
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6f", std::get<double>(scalar_));
      std::string s(buf);
      // Trim trailing zeros but keep one decimal digit.
      while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
        s.pop_back();
      }
      return s;
    }
    case ValueType::kString:
      return str_;
  }
  return "?";
}

StatusOr<Value> Value::CastTo(ValueType target) const {
  if (is_null() || type_ == target) return *this;
  switch (target) {
    case ValueType::kInt:
      if (is_numeric()) return Value::Int(AsInt());
      {
        char* end = nullptr;
        long long v = std::strtoll(str_.c_str(), &end, 10);
        if (end == str_.c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + str_ + "' to INT");
        }
        return Value::Int(v);
      }
    case ValueType::kDouble:
      if (is_numeric()) return Value::Double(AsDouble());
      {
        char* end = nullptr;
        double v = std::strtod(str_.c_str(), &end);
        if (end == str_.c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + str_ +
                                         "' to DOUBLE");
        }
        return Value::Double(v);
      }
    case ValueType::kTimestamp:
      if (is_numeric()) return Value::Timestamp(AsInt());
      return Status::InvalidArgument("cannot cast string to TIMESTAMP");
    case ValueType::kString:
      return Value::String(ToString());
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("bad cast target");
}

namespace {

/// splitmix64 finalizer: std::hash<int64_t> is the identity on common
/// standard libraries, which makes composite-key hashes collide on the
/// structured integer grids benchmarks generate (and once collided, two
/// unrelated rows share a lock-table entry). This mixer destroys that
/// linear structure.
inline size_t MixInt(int64_t v) {
  uint64_t x = static_cast<uint64_t>(v);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
    case ValueType::kTimestamp:
      return MixInt(std::get<int64_t>(scalar_));
    case ValueType::kDouble: {
      double d = std::get<double>(scalar_);
      // Hash integral doubles identically to ints so mixed-type group keys
      // (e.g. SUM over ints) collide as expected.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return MixInt(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(str_);
  }
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 0x2545f4914f6cdd1dULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace olxp
