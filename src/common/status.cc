#include "common/status.h"

namespace olxp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kLockTimeout:
      return "LockTimeout";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace olxp
