#include "common/config.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace olxp {

StatusOr<Config> Config::Parse(const std::string& text) {
  Config cfg;
  std::string section;
  int lineno = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++lineno;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::InvalidArgument(
            StrFormat("config line %d: unterminated section header", lineno));
      }
      section = ToLower(Trim(line.substr(1, line.size() - 2)));
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("config line %d: expected key = value", lineno));
    }
    std::string key = ToLower(Trim(line.substr(0, eq)));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("config line %d: empty key", lineno));
    }
    if (!section.empty()) key = section + "." + key;
    cfg.values_[key] = std::string(Trim(line.substr(eq + 1)));
  }
  return cfg;
}

StatusOr<Config> Config::Parse(const std::string& text,
                               const std::vector<std::string>& known_keys) {
  auto cfg = Parse(text);
  if (!cfg.ok()) return cfg;
  OLXP_RETURN_NOT_OK(cfg->ValidateKeys(known_keys));
  return cfg;
}

StatusOr<Config> Config::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

StatusOr<Config> Config::Load(const std::string& path,
                              const std::vector<std::string>& known_keys) {
  auto cfg = Load(path);
  if (!cfg.ok()) return cfg;
  OLXP_RETURN_NOT_OK(cfg->ValidateKeys(known_keys));
  return cfg;
}

namespace {

/// Plain Levenshtein edit distance (keys are short; the quadratic table is
/// nothing).
size_t EditDistance(std::string_view a, std::string_view b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

Status Config::ValidateKeys(
    const std::vector<std::string>& known_keys) const {
  std::vector<std::string> known;
  known.reserve(known_keys.size());
  for (const std::string& k : known_keys) known.push_back(ToLower(k));
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (found) continue;
    // Nearest known key, accepted as a suggestion only when plausibly a
    // typo (distance bounded by a third of the key's length, min 2 — one
    // transposition or a dropped character qualifies; unrelated keys never
    // do). Distance is computed on the full dotted key AND the bare key
    // within the same section, so `[sut] exec_treads` finds
    // `sut.exec_threads` without being charged for the prefix.
    size_t best = SIZE_MAX;
    std::string suggestion;
    for (const std::string& k : known) {
      size_t d = EditDistance(key, k);
      const size_t dot_key = key.rfind('.');
      const size_t dot_k = k.rfind('.');
      if (dot_key != std::string::npos && dot_k != std::string::npos &&
          std::string_view(key).substr(0, dot_key) ==
              std::string_view(k).substr(0, dot_k)) {
        d = std::min(d, EditDistance(std::string_view(key).substr(dot_key + 1),
                                     std::string_view(k).substr(dot_k + 1)));
      }
      if (d < best) {
        best = d;
        suggestion = k;
      }
    }
    std::string msg = "unknown config key '" + key + "'";
    if (best <= std::max<size_t>(2, key.size() / 3)) {
      msg += "; did you mean '" + suggestion + "'?";
    }
    return Status::InvalidArgument(msg);
  }
  return Status::OK();
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[ToLower(key)] = value;
}

bool Config::Has(const std::string& key) const {
  return values_.count(ToLower(key)) > 0;
}

std::string Config::GetString(const std::string& key,
                              const std::string& def) const {
  auto it = values_.find(ToLower(key));
  return it == values_.end() ? def : it->second;
}

StatusOr<int64_t> Config::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not an integer: " + it->second);
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> Config::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not a number: " + it->second);
  }
  return v;
}

StatusOr<bool> Config::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("config key '" + key +
                                 "' is not a bool: " + it->second);
}

StatusOr<std::vector<double>> Config::GetDoubleList(
    const std::string& key, const std::vector<double>& def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  std::vector<double> out;
  for (const std::string& part : Split(it->second, ',')) {
    std::string_view p = Trim(part);
    char* end = nullptr;
    std::string tmp(p);
    double v = std::strtod(tmp.c_str(), &end);
    if (end == tmp.c_str() || *end != '\0') {
      return Status::InvalidArgument("config key '" + key +
                                     "' has a non-numeric element: " + tmp);
    }
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace olxp
