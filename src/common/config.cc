#include "common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace olxp {

StatusOr<Config> Config::Parse(const std::string& text) {
  Config cfg;
  std::string section;
  int lineno = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++lineno;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::InvalidArgument(
            StrFormat("config line %d: unterminated section header", lineno));
      }
      section = ToLower(Trim(line.substr(1, line.size() - 2)));
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("config line %d: expected key = value", lineno));
    }
    std::string key = ToLower(Trim(line.substr(0, eq)));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("config line %d: empty key", lineno));
    }
    if (!section.empty()) key = section + "." + key;
    cfg.values_[key] = std::string(Trim(line.substr(eq + 1)));
  }
  return cfg;
}

StatusOr<Config> Config::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[ToLower(key)] = value;
}

bool Config::Has(const std::string& key) const {
  return values_.count(ToLower(key)) > 0;
}

std::string Config::GetString(const std::string& key,
                              const std::string& def) const {
  auto it = values_.find(ToLower(key));
  return it == values_.end() ? def : it->second;
}

StatusOr<int64_t> Config::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not an integer: " + it->second);
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> Config::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not a number: " + it->second);
  }
  return v;
}

StatusOr<bool> Config::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("config key '" + key +
                                 "' is not a bool: " + it->second);
}

StatusOr<std::vector<double>> Config::GetDoubleList(
    const std::string& key, const std::vector<double>& def) const {
  auto it = values_.find(ToLower(key));
  if (it == values_.end()) return def;
  std::vector<double> out;
  for (const std::string& part : Split(it->second, ',')) {
    std::string_view p = Trim(part);
    char* end = nullptr;
    std::string tmp(p);
    double v = std::strtod(tmp.c_str(), &end);
    if (end == tmp.c_str() || *end != '\0') {
      return Status::InvalidArgument("config key '" + key +
                                     "' has a non-numeric element: " + tmp);
    }
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace olxp
