#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace olxp {

namespace {
// Log-spaced buckets: value v maps to floor(log(v+1) / log(base)) with a
// base chosen so kBucketCount buckets cover [0, ~9e9us] (~2.5 hours).
constexpr double kBase = 1.045;
const double kLogBase = std::log(kBase);
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount, 0) {}

int LatencyHistogram::BucketFor(int64_t micros) {
  if (micros <= 0) return 0;
  int idx = static_cast<int>(std::log(static_cast<double>(micros) + 1.0) /
                             kLogBase);
  return std::min(idx, kBucketCount - 1);
}

double LatencyHistogram::BucketLower(int i) {
  if (i == 0) return 0.0;
  return std::pow(kBase, i) - 1.0;
}

double LatencyHistogram::BucketUpper(int i) {
  return std::pow(kBase, i + 1) - 1.0;
}

void LatencyHistogram::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  buckets_[BucketFor(micros)]++;
  if (count_ == 0 || micros < min_) min_ = micros;
  if (micros > max_) max_ = micros;
  count_++;
  sum_ += static_cast<double>(micros);
  sum_sq_ += static_cast<double>(micros) * static_cast<double>(micros);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = sum_sq_ = 0;
}

double LatencyHistogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::StdDev() const {
  if (count_ < 2) return 0.0;
  double mean = Mean();
  double var = sum_sq_ / static_cast<double>(count_) - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  // Defined answers for every q, including the ones callers get wrong:
  // NaN reports the upper bound (the conservative answer for a latency
  // SLO), out-of-range q clamps, and a degenerate observed range (single
  // sample, or every sample equal) returns that exact value instead of
  // interpolating across a log bucket that is wider than the data.
  if (std::isnan(q)) return static_cast<double>(max_);
  if (min_ == max_) return static_cast<double>(min_);
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    if (static_cast<double>(seen + buckets_[i]) >= target) {
      // Linear interpolation within the bucket, clamped to observed range.
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets_[i]);
      double lo = std::max(BucketLower(i), static_cast<double>(min_));
      double hi = std::min(BucketUpper(i), static_cast<double>(max_));
      if (hi < lo) hi = lo;
      return lo + frac * (hi - lo);
    }
    seen += buckets_[i];
  }
  return static_cast<double>(max_);
}

std::string LatencyHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cnt=%lld mean=%.2fms p50=%.2fms p90=%.2fms p95=%.2fms "
                "p99.9=%.2fms max=%.2fms sd=%.2fms",
                static_cast<long long>(count_), Mean() / 1000.0,
                Median() / 1000.0, P90() / 1000.0, P95() / 1000.0,
                P999() / 1000.0, static_cast<double>(max_) / 1000.0,
                StdDev() / 1000.0);
  return std::string(buf);
}

}  // namespace olxp
