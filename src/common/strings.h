#ifndef OLXP_COMMON_STRINGS_H_
#define OLXP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace olxp {

/// printf-style formatting into a std::string (gcc-12 has no std::format).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// ASCII case conversions.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// True if `s` starts with `prefix` (case-insensitive ASCII).
bool StartsWithNoCase(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool EqualsNoCase(std::string_view a, std::string_view b);

/// SQL LIKE matcher: '%' matches any run, '_' any single char. No escapes
/// (the benchmark workloads do not use them).
bool SqlLike(std::string_view text, std::string_view pattern);

/// Joins items with `sep`.
std::string Join(const std::vector<std::string>& items,
                 std::string_view sep);

}  // namespace olxp

#endif  // OLXP_COMMON_STRINGS_H_
