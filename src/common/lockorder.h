#ifndef OLXP_COMMON_LOCKORDER_H_
#define OLXP_COMMON_LOCKORDER_H_

#include <cstddef>
#include <cstdint>
#include <string>

// ---------------------------------------------------------------------------
// Lock-rank hierarchy + debug lock-order witness
// ---------------------------------------------------------------------------
// Clang TSA (sync.h) proves per-lock discipline; this header proves the
// cross-lock property: every acquisition path through the engine respects one
// global hierarchy, so no interleaving of threads can form a hold-and-wait
// cycle. Each sync::Mutex / sync::SharedMutex is constructed with a LockRank
// and a name. In witness builds (-DOLXP_LOCK_ORDER, the default for Debug
// configurations) every acquisition is checked against the ranks of the locks
// the thread already holds:
//
//   * acquiring a LOWER rank than one currently held is a rank inversion and
//     aborts immediately with a witness report — deterministic on the first
//     offending path, no adversarial interleaving required;
//   * acquisitions among SAME-rank locks (lock-manager shards, table
//     latches, obs registries) are allowed but recorded in a global
//     acquired-after graph; an edge that closes a cycle aborts with the two
//     acquisition stacks that disagree, abseil-deadlock-detector style.
//
// Release builds compile the whole witness to nothing: the constructors
// discard rank and name, the hooks are empty inlines, and sizeof(Mutex) is
// exactly sizeof(std::mutex).

namespace olxp::sync {

/// The global acquisition hierarchy, outermost first. A thread may only
/// acquire a lock of rank >= the highest rank it already holds. The values
/// encode the orders the engine actually takes today:
///
///   Checkpoint     > everything: Database::Checkpoint pins the commit scope,
///                    the snapshot registry, table latches, and the WAL.
///   VacuumPass     > registry/table/obs: RunOnce computes the watermark and
///                    reclaims chains with the pass lock held.
///   ReplicatorApply> commit log, column-table latches, registry: the apply
///                    pipeline drains Fetch into ApplyCommit under apply_mu_.
///   LockManagerShard: 2PL row-lock shards; self-contained (waiters block on
///                    the shard's own condvar), siblings share the rank.
///   OracleCommit   > table latch, WAL, commit log: CommitScope covers
///                    version install and log append — the engine-wide commit
///                    critical section.
///   SnapshotRegistry: registered inside the commit scope (checkpoint) and
///                    under the vacuum/replicator outer locks.
///   Catalog        : store-level name->table maps; held only to resolve.
///   TableLatch     : MvccTable / ColumnTable latches. Siblings share the
///                    rank; a statement pins ONE table per scan (the
///                    interpreter join materializes each level first).
///   WalIo > WalPending: io_mu_ serializes segment writes, mu_ the in-memory
///                    buffer; whenever both are held io_mu_ is taken first.
///   CommitLog      : in-memory replication log; WAL append happens before
///                    its mutex, never inside it.
///   Obs            : metrics registry / histograms / slow-query ring —
///                    recorded from inside WAL and vacuum critical sections.
///   WorkerPool     : morsel fan-out; entered with a scan pin (TableLatch)
///                    held.
///   Client         : code above the engine (bench drivers, tests).
enum class LockRank : int {
  kCheckpoint = 100,
  kVacuumPass = 200,
  kReplicatorApply = 300,
  kLockManagerShard = 400,
  kOracleCommit = 500,
  kSnapshotRegistry = 600,
  kCatalog = 700,
  kTableLatch = 800,
  kVacuumState = 850,
  kWalIo = 900,
  kWalPending = 1000,
  kCommitLog = 1100,
  kObs = 1200,
  kWorkerPool = 1300,
  kClient = 1400,
};

/// Human-readable rank name for witness reports ("TableLatch", ...).
const char* LockRankName(LockRank rank);

namespace lockorder {

/// Everything a witness report needs: both locks, both ranks, and the two
/// acquisition stacks (this thread's held-lock stack at the failing acquire,
/// and — for cycles — the held-lock stack recorded when the conflicting
/// edge was first observed).
struct Violation {
  const char* kind;  ///< "rank-inversion" | "cycle" | "recursive"
  const char* holding_name;
  LockRank holding_rank;
  const char* acquiring_name;
  LockRank acquiring_rank;
  std::string held_stack;   ///< this thread: "a(RankA) -> b(RankB)"
  std::string prior_stack;  ///< cycle only: the recorded conflicting order
  std::string Report() const;
};

/// Called on a violation. The default prints Report() to stderr and aborts;
/// tests install a capturing handler and restore the previous one.
using Handler = void (*)(const Violation&);

#if defined(OLXP_LOCK_ORDER)

inline constexpr bool kEnabled = true;

/// Pre-acquisition hook: checks rank order against the thread's held stack,
/// records acquired-after edges, detects same-rank cycles, then pushes the
/// lock. Runs BEFORE the underlying lock() so a would-be deadlock reports
/// instead of hanging.
void OnAcquire(const void* lock, LockRank rank, const char* name);
/// Pops the lock from the thread's held stack (out-of-order release is
/// legal and tolerated).
void OnRelease(const void* lock);
/// Destructor hook: purges graph state for the address so a new lock reusing
/// it cannot inherit phantom edges.
void OnDestroy(const void* lock);

Handler SetViolationHandler(Handler h);  ///< returns the previous handler
int64_t EdgesObserved();  ///< distinct acquired-after pairs seen (coverage)
size_t HeldCount();       ///< this thread's held-lock stack depth (tests)

#else  // !OLXP_LOCK_ORDER — every hook is an empty inline the optimizer drops

inline constexpr bool kEnabled = false;

inline void OnAcquire(const void*, LockRank, const char*) {}
inline void OnRelease(const void*) {}
inline void OnDestroy(const void*) {}
inline Handler SetViolationHandler(Handler) { return nullptr; }
inline int64_t EdgesObserved() { return 0; }
inline size_t HeldCount() { return 0; }

#endif  // OLXP_LOCK_ORDER

}  // namespace lockorder
}  // namespace olxp::sync

#endif  // OLXP_COMMON_LOCKORDER_H_
