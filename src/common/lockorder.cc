#include "common/lockorder.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace olxp::sync {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kCheckpoint:
      return "Checkpoint";
    case LockRank::kVacuumPass:
      return "VacuumPass";
    case LockRank::kReplicatorApply:
      return "ReplicatorApply";
    case LockRank::kLockManagerShard:
      return "LockManagerShard";
    case LockRank::kOracleCommit:
      return "OracleCommit";
    case LockRank::kSnapshotRegistry:
      return "SnapshotRegistry";
    case LockRank::kCatalog:
      return "Catalog";
    case LockRank::kTableLatch:
      return "TableLatch";
    case LockRank::kVacuumState:
      return "VacuumState";
    case LockRank::kWalIo:
      return "WalIo";
    case LockRank::kWalPending:
      return "WalPending";
    case LockRank::kCommitLog:
      return "CommitLog";
    case LockRank::kObs:
      return "Obs";
    case LockRank::kWorkerPool:
      return "WorkerPool";
    case LockRank::kClient:
      return "Client";
  }
  return "?";
}

namespace lockorder {

std::string Violation::Report() const {
  std::string out = "== lock-order witness: ";
  out += kind;
  out += " ==\n  acquiring   \"";
  out += acquiring_name;
  out += "\" (rank ";
  out += LockRankName(acquiring_rank);
  out += ")\n  while holding \"";
  out += holding_name;
  out += "\" (rank ";
  out += LockRankName(holding_rank);
  out += ")\n  this thread holds: ";
  out += held_stack;
  if (!prior_stack.empty()) {
    out += "\n  conflicting prior order: ";
    out += prior_stack;
  }
  out += '\n';
  return out;
}

#if defined(OLXP_LOCK_ORDER)

// The witness's own state is guarded by one raw std::mutex (this file is
// part of the sync core the raw-sync lint rule exempts): the hooks run
// *around* engine locks, so an annotated wrapper here would recurse into
// its own bookkeeping.

namespace {

struct HeldEntry {
  const void* lock;
  LockRank rank;
  const char* name;
};

// Per-thread held-lock stack, in acquisition order.
thread_local std::vector<HeldEntry> tls_held;

struct EdgeInfo {
  const char* from_name;
  LockRank from_rank;
  const char* to_name;
  LockRank to_rank;
  std::string held_stack;  ///< holder's stack when the edge was recorded
};

struct PtrPairHash {
  size_t operator()(const std::pair<const void*, const void*>& p) const {
    auto a = reinterpret_cast<uintptr_t>(p.first);
    auto b = reinterpret_cast<uintptr_t>(p.second);
    return std::hash<uintptr_t>()(a * 0x9e3779b97f4a7c15ULL ^ b);
  }
};

// Global witness state. Leaked on purpose (function-local static pointer):
// static-storage engine objects (e.g. the global metrics registry) run
// destructor hooks after a plain static here would already be gone.
struct State {
  std::mutex mu;
  // All distinct acquired-after pairs ever observed (coverage gauge + the
  // recorded stacks witness reports quote).
  std::unordered_map<std::pair<const void*, const void*>, EdgeInfo,
                     PtrPairHash>
      edges;
  // Same-rank adjacency only: cross-rank cycles are impossible once every
  // acquisition passes the rank check, so cycle detection needs just this.
  std::unordered_map<const void*, std::unordered_set<const void*>> adj;
  std::atomic<int64_t> edges_observed{0};
  std::atomic<Handler> handler{nullptr};
  // Bumped on every lock destruction; invalidates per-thread edge caches so
  // a new lock reusing a freed address is re-recorded from scratch.
  std::atomic<uint64_t> generation{1};
};

State& S() {
  static State* s = new State();
  return *s;
}

// Per-thread cache of edges already recorded globally, so steady-state
// nested acquisition costs one hash probe instead of a global mutex.
thread_local std::unordered_set<std::pair<const void*, const void*>,
                                PtrPairHash>
    tls_seen_edges;
thread_local uint64_t tls_seen_generation = 0;

void DefaultHandler(const Violation& v) {
  std::string report = v.Report();
  std::fwrite(report.data(), 1, report.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

void Invoke(const Violation& v) {
  Handler h = S().handler.load(std::memory_order_acquire);
  if (h == nullptr) h = &DefaultHandler;
  h(v);
}

std::string RenderStack(const std::vector<HeldEntry>& held) {
  std::string out;
  for (const HeldEntry& h : held) {
    if (!out.empty()) out += " -> ";
    out += h.name;
    out += '(';
    out += LockRankName(h.rank);
    out += ')';
  }
  if (out.empty()) out = "(nothing)";
  return out;
}

/// True when `to` is reachable from `from` over same-rank edges.
/// REQUIRES S().mu. Iterative DFS; the graph holds a handful of nodes.
bool Reachable(const void* from, const void* to) {
  std::vector<const void*> stack{from};
  std::unordered_set<const void*> visited;
  auto& adj = S().adj;
  while (!stack.empty()) {
    const void* n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    if (!visited.insert(n).second) continue;
    auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (const void* next : it->second) stack.push_back(next);
  }
  return false;
}

}  // namespace

void OnAcquire(const void* lock, LockRank rank, const char* name) {
  auto& held = tls_held;
  if (!held.empty()) {
    // Rank check against every held lock; the highest-ranked holder is the
    // witness partner if the new rank sits below it.
    const HeldEntry* worst = nullptr;
    for (const HeldEntry& h : held) {
      if (h.lock == lock) {
        Violation v{"recursive",  h.name, h.rank, name,
                    rank,         RenderStack(held), {}};
        Invoke(v);
        // Handler returned (test capture): fall through and push anyway so
        // the matching release keeps the stack consistent.
        break;
      }
      if (worst == nullptr ||
          static_cast<int>(h.rank) > static_cast<int>(worst->rank)) {
        worst = &h;
      }
    }
    if (worst != nullptr &&
        static_cast<int>(rank) < static_cast<int>(worst->rank)) {
      Violation v{"rank-inversion", worst->name, worst->rank, name,
                  rank,             RenderStack(held), {}};
      Invoke(v);
    }
    // Record acquired-after edges held -> lock. The fast path is the
    // thread-local cache; misses take the global mutex once per new edge.
    uint64_t gen = S().generation.load(std::memory_order_acquire);
    if (tls_seen_generation != gen) {
      tls_seen_edges.clear();
      tls_seen_generation = gen;
    }
    for (const HeldEntry& h : held) {
      if (h.lock == lock) continue;
      std::pair<const void*, const void*> key{h.lock, lock};
      if (!tls_seen_edges.insert(key).second) continue;
      std::optional<Violation> cycle;
      {
        std::lock_guard<std::mutex> g(S().mu);
        auto [it, inserted] = S().edges.try_emplace(
            key, EdgeInfo{h.name, h.rank, name, rank, RenderStack(held)});
        if (inserted) {
          S().edges_observed.fetch_add(1, std::memory_order_relaxed);
        }
        if (h.rank == rank) {
          // Same-rank edge: legal unless it closes a cycle, i.e. the lock
          // being acquired can already reach the holder.
          if (Reachable(lock, h.lock)) {
            std::string prior = "\"";
            prior += name;
            prior += "\" was previously acquired before \"";
            prior += h.name;
            prior += '"';
            auto rev = S().edges.find({lock, h.lock});
            if (rev != S().edges.end()) {
              prior += " while holding: ";
              prior += rev->second.held_stack;
            }
            cycle = Violation{"cycle", h.name, h.rank,
                              name,    rank,   RenderStack(held),
                              std::move(prior)};
            // Leave the graph acyclic: the offending edge is reported, not
            // recorded, so later detection stays deterministic.
            tls_seen_edges.erase(key);
          } else {
            S().adj[h.lock].insert(lock);
          }
        }
      }
      if (cycle) Invoke(*cycle);  // outside S().mu — handlers may lock
    }
  }
  held.push_back({lock, rank, name});
}

void OnRelease(const void* lock) {
  auto& held = tls_held;
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].lock == lock) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  // Not found: acquisition predated witness interest (or a borrow path);
  // ignoring keeps release paths robust.
}

void OnDestroy(const void* lock) {
  std::lock_guard<std::mutex> g(S().mu);
  S().adj.erase(lock);
  for (auto& [node, outs] : S().adj) outs.erase(lock);
  for (auto it = S().edges.begin(); it != S().edges.end();) {
    if (it->first.first == lock || it->first.second == lock) {
      it = S().edges.erase(it);
    } else {
      ++it;
    }
  }
  S().generation.fetch_add(1, std::memory_order_release);
}

Handler SetViolationHandler(Handler h) {
  return S().handler.exchange(h, std::memory_order_acq_rel);
}

int64_t EdgesObserved() {
  return S().edges_observed.load(std::memory_order_relaxed);
}

size_t HeldCount() { return tls_held.size(); }

#endif  // OLXP_LOCK_ORDER

}  // namespace lockorder
}  // namespace olxp::sync
