#ifndef OLXP_COMMON_CONFIG_H_
#define OLXP_COMMON_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace olxp {

/// Runtime configuration for a benchmark run. The paper's artifact uses XML
/// files; we keep identical content (workload selection, weights, request
/// rates, SUT options, thread counts) in an INI-style syntax:
///
///   # comment
///   [workload]
///   benchmark = subenchmark
///   txn_weights = 45,43,4,4,4
///   [sut]
///   profile = tidb-like
///
/// Keys are addressed as "section.key"; keys before any section header have
/// no prefix. Lookups are case-insensitive.
class Config {
 public:
  Config() = default;

  /// Parses config text. Later duplicates override earlier ones.
  static StatusOr<Config> Parse(const std::string& text);

  /// Parses and validates against a closed key set: any key not in
  /// `known_keys` (case-insensitive) fails with InvalidArgument naming the
  /// offender and, when one is close enough, the nearest known key — a typo
  /// like `exec_treads = 4` reports "did you mean 'sut.exec_threads'?"
  /// instead of silently running with the default.
  static StatusOr<Config> Parse(const std::string& text,
                                const std::vector<std::string>& known_keys);

  /// Loads and parses a config file from disk.
  static StatusOr<Config> Load(const std::string& path);

  /// Loads, parses and validates against a closed key set (see Parse).
  static StatusOr<Config> Load(const std::string& path,
                               const std::vector<std::string>& known_keys);

  /// Validates the already-parsed keys against a closed key set; same
  /// contract as the validating Parse overload.
  Status ValidateKeys(const std::vector<std::string>& known_keys) const;

  /// Programmatic set (tests, CLI overrides such as --set a.b=c).
  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  /// Typed getters; fall back to `def` when absent, return
  /// InvalidArgument when present but malformed.
  std::string GetString(const std::string& key, const std::string& def) const;
  StatusOr<int64_t> GetInt(const std::string& key, int64_t def) const;
  StatusOr<double> GetDouble(const std::string& key, double def) const;
  StatusOr<bool> GetBool(const std::string& key, bool def) const;

  /// Comma-separated list of doubles (e.g. transaction weights).
  StatusOr<std::vector<double>> GetDoubleList(
      const std::string& key, const std::vector<double>& def) const;

  /// All keys in insertion-independent sorted order (for dumps/tests).
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;  // normalized-lowercase keys
};

}  // namespace olxp

#endif  // OLXP_COMMON_CONFIG_H_
