#ifndef OLXP_COMMON_VALUE_H_
#define OLXP_COMMON_VALUE_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace olxp {

/// SQL column types supported by the engine. DECIMAL columns are stored as
/// binary doubles (sufficient for benchmark workloads; documented in
/// DESIGN.md), TIMESTAMP as microseconds since epoch in an int64.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt,       ///< 64-bit signed integer (covers INT, BIGINT, SMALLINT).
  kDouble,    ///< binary double (covers DOUBLE, DECIMAL, FLOAT).
  kString,    ///< variable-length string (covers VARCHAR, CHAR, TEXT).
  kTimestamp, ///< microseconds since Unix epoch.
};

/// Returns the SQL-ish name of a type ("INT", "DOUBLE", ...).
const char* ValueTypeName(ValueType t);

/// A dynamically typed SQL value. Small, copyable, totally ordered within
/// the same type class (numeric types compare cross-type).
class Value {
 public:
  /// NULL value.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(ValueType::kInt, v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Timestamp(int64_t micros) {
    return Value(ValueType::kTimestamp, micros);
  }
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble ||
           type_ == ValueType::kTimestamp;
  }

  /// Accessors assert the stored type (int accessor also accepts timestamp).
  /// Inline: these sit in the vectorized engine's gather loops.
  int64_t AsInt() const {
    if (type_ == ValueType::kInt || type_ == ValueType::kTimestamp) {
      return std::get<int64_t>(scalar_);
    }
    if (type_ == ValueType::kDouble) {
      return static_cast<int64_t>(std::llround(std::get<double>(scalar_)));
    }
    assert(false && "AsInt on non-numeric value");
    return 0;
  }
  double AsDouble() const {  ///< Numeric widening: int/timestamp -> double.
    if (type_ == ValueType::kDouble) return std::get<double>(scalar_);
    if (type_ == ValueType::kInt || type_ == ValueType::kTimestamp) {
      return static_cast<double>(std::get<int64_t>(scalar_));
    }
    assert(false && "AsDouble on non-numeric value");
    return 0.0;
  }
  const std::string& AsString() const {
    assert(type_ == ValueType::kString);
    return str_;
  }
  /// SQL truthiness: non-zero numerics are true; NULL and strings are
  /// false (the binder rejects string predicates where it can; the
  /// degenerate cases that slip through must not trip AsDouble's
  /// numeric-only assert in debug builds).
  bool AsBool() const { return is_numeric() && AsDouble() != 0.0; }

  /// Three-way comparison. NULL sorts before everything; numeric types
  /// compare by value across int/double/timestamp; strings lexicographic.
  /// Comparing a string with a number is an ordering by type tag (stable,
  /// never an error) — the SQL binder rejects such predicates earlier.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Renders the value for reports and tests (NULL -> "NULL", strings
  /// unquoted, doubles with up to 6 significant decimals trimmed).
  std::string ToString() const;

  /// Coerces this value to `target`. Int<->double<->timestamp widen/narrow;
  /// string conversions only when the text parses. NULL converts to NULL.
  StatusOr<Value> CastTo(ValueType target) const;

  /// Stable 64-bit hash (used by hash joins / group by).
  size_t Hash() const;

 private:
  Value(ValueType t, int64_t v) : type_(t), scalar_(v) {}
  explicit Value(double v) : type_(ValueType::kDouble), scalar_(v) {}
  explicit Value(std::string v)
      : type_(ValueType::kString), str_(std::move(v)) {}

  ValueType type_;
  std::variant<int64_t, double> scalar_ = int64_t{0};
  std::string str_;
};

/// A row of values (one tuple). Index positions follow the table schema or
/// the projection list of the producing operator.
using Row = std::vector<Value>;

/// Hash of a full row, combining per-value hashes.
size_t HashRow(const Row& row);

}  // namespace olxp

#endif  // OLXP_COMMON_VALUE_H_
