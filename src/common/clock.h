#ifndef OLXP_COMMON_CLOCK_H_
#define OLXP_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace olxp {

/// Monotonic wall time in microseconds (steady clock).
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall time in nanoseconds (steady clock).
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sleeps the calling thread for `micros` microseconds. sleep_for has a
/// ~1.2 ms floor / quantization on older kernels (measured on the 4.4
/// kernel this repo targets), so short waits spin entirely and long waits
/// sleep the bulk with a 1.5 ms safety margin and spin the tail. Simulated
/// device latencies stay accurate at the cost of some spin CPU.
inline void SleepMicros(int64_t micros) {
  if (micros <= 0) return;
  const int64_t deadline = NowMicros() + micros;
  if (micros > 2000) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros - 1500));
  }
  while (NowMicros() < deadline) {
    // spin
  }
}

/// Measures elapsed wall time since construction or Restart().
class Stopwatch {
 public:
  Stopwatch() : start_us_(NowMicros()) {}
  void Restart() { start_us_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_us_; }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  int64_t start_us_;
};

}  // namespace olxp

#endif  // OLXP_COMMON_CLOCK_H_
