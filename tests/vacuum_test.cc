// Tests for the snapshot-watermark MVCC vacuum subsystem: the registry's
// watermark rule, chain/tombstone/index reclamation, chunked-scan
// concurrency, and the checkpoint/vacuum interleave.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "storage/vacuum.h"

namespace olxp::engine {
namespace {

namespace fs = std::filesystem;
using storage::SnapshotRegistry;

/// Snapshot-isolation unified-store profile with the background vacuum
/// thread off: every test below drives passes synchronously so assertions
/// are deterministic. (The stress test turns the thread back on.)
EngineProfile SiProfile() {
  EngineProfile p = EngineProfile::MemSqlLike();
  p.isolation = txn::IsolationLevel::kSnapshotIsolation;
  p.vacuum_interval_us = 0;
  return p;
}

size_t VersionCount(Database& db, const std::string& table) {
  auto tid = db.TableId(table);
  EXPECT_TRUE(tid.ok());
  return db.row_store().table(*tid)->TotalVersionCount();
}

size_t IndexEntries(Database& db, const std::string& table) {
  auto tid = db.TableId(table);
  EXPECT_TRUE(tid.ok());
  return db.row_store().table(*tid)->IndexEntryCount();
}

size_t RowCount(Database& db, const std::string& table) {
  auto tid = db.TableId(table);
  EXPECT_TRUE(tid.ok());
  return db.row_store().table(*tid)->ApproxRowCount();
}

// ------------------------------ registry -----------------------------------

TEST(SnapshotRegistry, WatermarkIsMinOverLiveSnapshots) {
  storage::TimestampOracle oracle;
  SnapshotRegistry reg;
  for (int i = 0; i < 10; ++i) oracle.Advance();
  EXPECT_EQ(reg.Watermark(oracle), 10u);  // no snapshots: oracle bound

  uint64_t ts = 0;
  auto h1 = reg.Acquire(oracle, &ts);
  EXPECT_EQ(ts, 10u);
  for (int i = 0; i < 5; ++i) oracle.Advance();
  EXPECT_EQ(reg.Watermark(oracle), 10u);  // pinned by h1

  auto h2 = reg.Register(3);
  EXPECT_EQ(reg.Watermark(oracle), 3u);
  reg.Update(h2, SnapshotRegistry::kUnpinned);
  EXPECT_EQ(reg.Watermark(oracle), 10u);
  reg.Release(h1);
  reg.Release(h2);
  EXPECT_EQ(reg.Watermark(oracle), 15u);
  EXPECT_EQ(reg.ActiveCount(), 0u);
}

// ------------------------- watermark semantics ------------------------------

TEST(Vacuum, WatermarkRespectsOldestOpenTransaction) {
  Database db(SiProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 0)").ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(
        s->Execute("UPDATE t SET b = ? WHERE a = 1", {Value::Int(i)}).ok());
  }
  // Pin a snapshot where b = 10, then keep updating past it.
  auto reader = db.txn_manager().Begin(txn::IsolationLevel::kSnapshotIsolation);
  for (int i = 11; i <= 20; ++i) {
    ASSERT_TRUE(
        s->Execute("UPDATE t SET b = ? WHERE a = 1", {Value::Int(i)}).ok());
  }
  ASSERT_EQ(VersionCount(db, "t"), 21u);

  auto stats = db.RunVacuum();
  EXPECT_GT(stats.versions_removed, 0u);
  // Everything below the reader's snapshot is gone except the version the
  // reader still needs; everything above it survives untouched.
  EXPECT_EQ(VersionCount(db, "t"), 11u);
  auto tid = db.TableId("t");
  auto pinned = reader->Get(*tid, {Value::Int(1)});
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned->has_value());
  EXPECT_EQ((**pinned)[1].AsInt(), 10);  // pre-vacuum value still readable

  // Releasing the snapshot unblocks full reclamation.
  ASSERT_TRUE(reader->Commit().ok());
  db.RunVacuum();
  EXPECT_EQ(VersionCount(db, "t"), 1u);
  auto rs = s->Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 20);
}

TEST(Vacuum, TombstoneChainsAreReclaimed) {
  Database db(SiProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                           {Value::Int(i), Value::Int(i)})
                    .ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        s->Execute("DELETE FROM t WHERE a = ?", {Value::Int(i)}).ok());
  }
  // Tombstones keep the keys resident until the vacuum proves no snapshot
  // can see the pre-delete versions.
  EXPECT_EQ(RowCount(db, "t"), 50u);
  auto stats = db.RunVacuum();
  EXPECT_EQ(stats.chains_removed, 50u);
  EXPECT_EQ(RowCount(db, "t"), 0u);
  EXPECT_EQ(VersionCount(db, "t"), 0u);
  auto rs = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 0);
}

TEST(Vacuum, PinnedSnapshotBlocksTombstoneReclamationUntilReleased) {
  Database db(SiProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                           {Value::Int(i), Value::Int(i)})
                    .ok());
  }
  auto reader = db.txn_manager().Begin(txn::IsolationLevel::kSnapshotIsolation);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        s->Execute("DELETE FROM t WHERE a = ?", {Value::Int(i)}).ok());
  }
  db.RunVacuum();
  // The reader's snapshot predates the deletes: every row must survive.
  EXPECT_EQ(RowCount(db, "t"), 20u);
  auto tid = db.TableId("t");
  int64_t seen = 0;
  ASSERT_TRUE(reader->Scan(*tid, [&](const Row&) {
                        ++seen;
                        return true;
                      })
                  .ok());
  EXPECT_EQ(seen, 20);
  ASSERT_TRUE(reader->Commit().ok());
  db.RunVacuum();
  EXPECT_EQ(RowCount(db, "t"), 0u);
}

TEST(Vacuum, StaleIndexEntriesPurgedAfterUpdateAndDelete) {
  Database db(SiProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(db.CreateIndexOn("t", {"by_b", {1}, false}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                           {Value::Int(i), Value::Int(i)})
                    .ok());
  }
  EXPECT_EQ(IndexEntries(db, "t"), 10u);
  // Each update moves the row to a fresh index key; the old entries go
  // stale (IndexLookup filters them lazily but never deleted them).
  for (int round = 1; round <= 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(s->Execute("UPDATE t SET b = ? WHERE a = ?",
                             {Value::Int(1000 * round + i), Value::Int(i)})
                      .ok());
    }
  }
  EXPECT_EQ(IndexEntries(db, "t"), 60u);  // 10 live + 50 stale
  auto stats = db.RunVacuum();
  EXPECT_EQ(stats.index_entries_removed, 50u);
  EXPECT_EQ(IndexEntries(db, "t"), 10u);
  // Live lookups still work after the purge.
  auto rs = s->Execute("SELECT a FROM t WHERE b = ?", {Value::Int(5003)});
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);

  // Deletes leave entries for the tombstoned rows; vacuum removes them
  // with the chains.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        s->Execute("DELETE FROM t WHERE a = ?", {Value::Int(i)}).ok());
  }
  db.RunVacuum();
  EXPECT_EQ(IndexEntries(db, "t"), 0u);
  EXPECT_EQ(RowCount(db, "t"), 0u);
}

TEST(Vacuum, BoundedGrowthUnderSustainedChurn) {
  // The ISSUE's bounded-memory criterion in miniature: continuous
  // update/delete churn with periodic vacuum passes must plateau, not grow
  // linearly with the number of operations.
  Database db(SiProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(db.CreateIndexOn("t", {"by_b", {1}, false}).ok());
  constexpr int kLive = 50;
  for (int i = 0; i < kLive; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                           {Value::Int(i), Value::Int(i)})
                    .ok());
  }
  size_t peak_versions = 0, peak_entries = 0, peak_rows = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < kLive; ++i) {
      ASSERT_TRUE(s->Execute("UPDATE t SET b = ? WHERE a = ?",
                             {Value::Int(round * 10000 + i), Value::Int(i)})
                      .ok());
    }
    // Insert-then-delete churn on a disjoint key range.
    for (int i = 1000; i < 1000 + 20; ++i) {
      ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                             {Value::Int(i), Value::Int(i)})
                      .ok());
      ASSERT_TRUE(
          s->Execute("DELETE FROM t WHERE a = ?", {Value::Int(i)}).ok());
    }
    db.RunVacuum();
    peak_versions = std::max(peak_versions, VersionCount(db, "t"));
    peak_entries = std::max(peak_entries, IndexEntries(db, "t"));
    peak_rows = std::max(peak_rows, RowCount(db, "t"));
  }
  // Without the vacuum this run accumulates >1000 versions and >1000 index
  // entries; with it, state stays within one churn round of the live set.
  EXPECT_LE(peak_versions, static_cast<size_t>(2 * kLive + 40));
  EXPECT_LE(peak_entries, static_cast<size_t>(2 * kLive + 40));
  EXPECT_LE(peak_rows, static_cast<size_t>(kLive + 20));
  EXPECT_EQ(RowCount(db, "t"), static_cast<size_t>(kLive));
}

// ------------------------- concurrency stress -------------------------------

TEST(Vacuum, ConcurrentInstallVacuumScanStress) {
  EngineProfile p = SiProfile();
  p.vacuum_interval_us = 500;  // aggressive background passes
  p.vacuum_batch_rows = 32;    // many latch drops per pass
  p.scan_chunk_rows = 16;      // scans drop the latch constantly
  Database db(p);
  auto loader = db.CreateSession();
  loader->set_charging_enabled(false);
  ASSERT_TRUE(
      loader->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  constexpr int kBase = 200;
  for (int i = 0; i < kBase; ++i) {
    ASSERT_TRUE(loader->Execute("INSERT INTO t VALUES (?, ?)",
                                {Value::Int(i), Value::Int(0)})
                    .ok());
  }
  auto tid = db.TableId("t");
  ASSERT_TRUE(tid.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Updaters churn versions on the stable key range; a churner inserts and
  // deletes a disjoint range (tombstone production for the vacuum).
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      auto s = db.CreateSession();
      s->set_charging_enabled(false);
      int v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int key = (w * 7919 + ++v) % kBase;
        auto st = s->Execute("UPDATE t SET b = ? WHERE a = ?",
                             {Value::Int(v), Value::Int(key)});
        // Retryable conflicts are expected under SI; real errors are not.
        if (!st.ok() && st.status().code() != StatusCode::kConflict &&
            st.status().code() != StatusCode::kLockTimeout) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    int k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      int key = 100000 + (++k % 50);
      auto ins = s->Execute("INSERT INTO t VALUES (?, 1)", {Value::Int(key)});
      if (ins.ok()) {
        // Churn workload: a racing delete may legitimately conflict.
        (void)s->Execute("DELETE FROM t WHERE a = ?", {Value::Int(key)});
      }
    }
  });
  // Scanners: every snapshot must see exactly the base rows (churn keys are
  // transient but deletes commit in the same statement stream, so a scan
  // may catch at most the in-flight insert of the churner).
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto txn =
            db.txn_manager().Begin(txn::IsolationLevel::kSnapshotIsolation);
        int64_t base_seen = 0;
        Row prev;
        bool ordered = true;
        Status st = txn->Scan(*tid, [&](const Row& row) {
          if (!prev.empty() && !storage::KeyLess()(prev, {row[0]})) {
            ordered = false;
          }
          prev = {row[0]};
          if (row[0].AsInt() < kBase) ++base_seen;
          return true;
        });
        if (!st.ok() || !ordered || base_seen != kBase) failures.fetch_add(1);
        (void)txn->Commit();  // read-only; correctness tallied via failures
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The background vacuum actually ran and reclaimed churn.
  EXPECT_GT(db.vacuum().passes(), 0u);
  EXPECT_GT(db.vacuum().Totals().versions_removed, 0u);
  db.RunVacuum();
  // Base rows plus at most the churn range (a key can stay resident when
  // its insert landed but a retryable abort skipped the delete).
  EXPECT_LE(RowCount(db, "t"), static_cast<size_t>(kBase + 50));
}

// ---------------------- checkpoint + vacuum interleave ----------------------

class VacuumRecoveryTest : public ::testing::Test {
 protected:
  ~VacuumRecoveryTest() override {
    for (const std::string& d : dirs_) {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  }

  std::string MakeWalDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "olxp_vacuum_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    dirs_.emplace_back(got);
    return dirs_.back();
  }

  std::vector<std::string> dirs_;
};

TEST_F(VacuumRecoveryTest, CheckpointVacuumInterleaveRecoversCleanly) {
  std::string dir = MakeWalDir();
  EngineProfile p = SiProfile();
  p.durability = storage::DurabilityMode::kGroup;
  p.wal_dir = dir;
  p.group_commit_window_us = 50;
  {
    Database db(p);
    ASSERT_TRUE(db.recovery_status().ok());
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                             {Value::Int(i), Value::Int(i)})
                      .ok());
    }
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(s->Execute("UPDATE t SET b = ? WHERE a = ?",
                             {Value::Int(100 + i), Value::Int(i)})
                      .ok());
    }
    db.RunVacuum();
    ASSERT_TRUE(db.Checkpoint().ok());
    // Post-checkpoint mutations, vacuumed again before a second image.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          s->Execute("DELETE FROM t WHERE a = ?", {Value::Int(i)}).ok());
    }
    db.RunVacuum();
    ASSERT_TRUE(db.Checkpoint().ok());
    for (int i = 10; i < 20; ++i) {
      ASSERT_TRUE(s->Execute("UPDATE t SET b = ? WHERE a = ?",
                             {Value::Int(500 + i), Value::Int(i)})
                      .ok());
    }
  }
  Database recovered(p);
  ASSERT_TRUE(recovered.recovery_status().ok());
  auto s = recovered.CreateSession();
  s->set_charging_enabled(false);
  auto count = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 30);
  auto updated = s->Execute("SELECT b FROM t WHERE a = 15");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->rows[0][0].AsInt(), 515);
  auto old = s->Execute("SELECT b FROM t WHERE a = 30");
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->rows[0][0].AsInt(), 130);
  auto deleted = s->Execute("SELECT COUNT(*) FROM t WHERE a < 10");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->rows[0][0].AsInt(), 0);
}

TEST_F(VacuumRecoveryTest, CheckpointSnapshotPinnedAgainstConcurrentVacuum) {
  // A checkpoint's ForEachCommitted sweep registers its image timestamp:
  // vacuum passes racing the sweep must not reclaim versions the image
  // still needs. Run them truly concurrently and verify the recovered
  // database equals the writer's final state for surviving keys.
  std::string dir = MakeWalDir();
  EngineProfile p = SiProfile();
  p.durability = storage::DurabilityMode::kGroup;
  p.wal_dir = dir;
  p.group_commit_window_us = 50;
  p.vacuum_interval_us = 200;  // background thread on, aggressive
  p.vacuum_batch_rows = 16;
  {
    Database db(p);
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                             {Value::Int(i), Value::Int(i)})
                      .ok());
    }
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      auto w = db.CreateSession();
      w->set_charging_enabled(false);
      int v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Churn workload: racing updates may legitimately conflict.
        (void)w->Execute("UPDATE t SET b = ? WHERE a = ?",
                         {Value::Int(++v), Value::Int(v % 100)});
      }
    });
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.Checkpoint().ok());
    }
    stop.store(true);
    writer.join();
  }
  Database recovered(p);
  ASSERT_TRUE(recovered.recovery_status().ok());
  auto s = recovered.CreateSession();
  s->set_charging_enabled(false);
  auto count = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 100);
}

// --------------------------- deprecated shim --------------------------------

TEST(Vacuum, DeprecatedPruneShimStillKeepsLatest) {
  Database db(SiProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 0)").ok());
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(
        s->Execute("UPDATE t SET b = ? WHERE a = 1", {Value::Int(i)}).ok());
  }
  db.PruneAllVersions(2);
  auto rs = s->Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 8);
}

}  // namespace
}  // namespace olxp::engine
