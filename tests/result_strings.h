#ifndef OLXP_TESTS_RESULT_STRINGS_H_
#define OLXP_TESTS_RESULT_STRINGS_H_

#include <string>
#include <vector>

#include "sql/storage_iface.h"

namespace olxp {

/// One comparable string per result row ("v1|v2|...|"), shared by the
/// exec/parallel parity suites so the comparison format cannot drift
/// between them.
inline std::vector<std::string> Stringify(const sql::ResultSet& rs) {
  std::vector<std::string> rows;
  rows.reserve(rs.rows.size());
  for (const Row& r : rs.rows) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

}  // namespace olxp

#endif  // OLXP_TESTS_RESULT_STRINGS_H_
