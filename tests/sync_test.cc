#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "storage/oracle.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace olxp {
namespace {

// ------------------------- wrapper smoke tests -------------------------

TEST(SyncMutex, LockUnlockAndTryLock) {
  sync::Mutex mu{sync::LockRank::kClient, "test.mu"};
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncMutex, MutexLockIsRelockable) {
  sync::Mutex mu{sync::LockRank::kClient, "test.mu"};
  sync::MutexLock lk(mu);
  lk.Unlock();
  EXPECT_TRUE(mu.TryLock());  // really released
  mu.Unlock();
  lk.Lock();  // destructor must release again without double-unlock
}

TEST(SyncSharedMutex, ManyReadersOneWriter) {
  sync::SharedMutex mu{sync::LockRank::kClient, "test.shared"};
  {
    sync::ReaderLock a(mu);
    // Shared: a concurrent second reader does not block. (On its own
    // thread — re-acquiring a latch the thread already holds is UB for
    // std::shared_mutex, and the lock-order witness rejects it.)
    std::atomic<bool> second_reader_ran{false};
    std::thread second([&] {
      sync::ReaderLock b(mu);
      second_reader_ran.store(true);
    });
    second.join();
    EXPECT_TRUE(second_reader_ran.load());
    EXPECT_FALSE(mu.TryLock());  // writer blocked while a reader holds it
  }
  {
    sync::WriterLock w(mu);
  }
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncMutex, GuardsCounterAcrossThreads) {
  sync::Mutex mu{sync::LockRank::kClient, "test.counter"};
  int64_t counter = 0;  // guarded by mu (by convention in this test)
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        sync::MutexLock lk(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SyncCondVar, WaitAndNotify) {
  sync::Mutex mu{sync::LockRank::kClient, "test.cv"};
  sync::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    sync::MutexLock lk(mu);
    while (!ready) cv.Wait(lk);
  });
  {
    sync::MutexLock lk(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  SUCCEED();
}

TEST(SyncCondVar, WaitForTimesOutWhenNeverNotified) {
  sync::Mutex mu{sync::LockRank::kClient, "test.cv"};
  sync::CondVar cv;
  sync::MutexLock lk(mu);
  bool result = cv.WaitFor(lk, std::chrono::milliseconds(10),
                           [] { return false; });
  EXPECT_FALSE(result);
}

// ------------- regression: schema() under concurrent DDL -------------
//
// MvccTable::schema() used to return a reference into a TableSchema that
// AddIndex mutated in place under the exclusive table latch — a lock-free
// reader could observe the indexes() vector mid-reallocation. The fix
// publishes immutable schema snapshots through an atomic pointer and
// retains every old snapshot for the table's lifetime. This test makes the
// old race TSan-visible (reader threads hammer schema() while CREATE INDEX
// lands) and pins the snapshot semantics.

storage::TableSchema WideSchema() {
  return storage::TableSchema("wide",
                              {{"k", ValueType::kInt, false},
                               {"a", ValueType::kInt, true},
                               {"b", ValueType::kInt, true},
                               {"c", ValueType::kInt, true}},
                              {0});
}

TEST(MvccTableSchema, LockFreeReadersSurviveConcurrentAddIndex) {
  storage::MvccTable t(0, WideSchema());
  storage::TimestampOracle oracle;
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(t.InstallVersion({Value::Int(i)}, oracle.Advance(), false,
                                 {Value::Int(i), Value::Int(i % 3),
                                  Value::Int(i % 5), Value::Int(i % 7)})
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const storage::TableSchema& s = t.schema();
        // Walk the parts AddIndex changes: under the old in-place mutation
        // this dereferenced a vector mid-push_back (TSan: data race /
        // ASan: heap-use-after-free on reallocation).
        int64_t sum = static_cast<int64_t>(s.indexes().size());
        for (const auto& idx : s.indexes()) {
          sum += static_cast<int64_t>(idx.column_idx.size());
        }
        reads.fetch_add(1 + (sum >= 0), std::memory_order_relaxed);
      }
    });
  }

  for (int col = 1; col <= 3; ++col) {
    ASSERT_TRUE(
        t.AddIndex({"by_col" + std::to_string(col), {col}, false}).ok());
  }
  // Let the readers overlap the post-DDL state too.
  while (reads.load(std::memory_order_relaxed) < 10000) {
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(t.schema().indexes().size(), 3u);
}

TEST(MvccTableSchema, ReferenceTakenBeforeDdlStaysValidAndPreDdl) {
  storage::MvccTable t(0, WideSchema());
  const storage::TableSchema& before = t.schema();
  ASSERT_EQ(before.indexes().size(), 0u);

  ASSERT_TRUE(t.AddIndex({"by_a", {1}, false}).ok());

  // The old reference still reads the pre-DDL snapshot (retained, not
  // mutated in place); a fresh call sees the new index.
  EXPECT_EQ(before.indexes().size(), 0u);
  EXPECT_EQ(t.schema().indexes().size(), 1u);
  EXPECT_EQ(t.schema().indexes()[0].name, "by_a");

  // Lookups through the new index work (backfill happened).
  ASSERT_TRUE(t.InstallVersion({Value::Int(1)}, 10, false,
                               {Value::Int(1), Value::Int(42), Value::Int(0),
                                Value::Int(0)})
                  .ok());
  std::vector<Row> out;
  t.IndexLookup(0, {Value::Int(42)}, 100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].AsInt(), 1);
}

}  // namespace
}  // namespace olxp
