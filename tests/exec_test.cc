// Parity and routing tests for the vectorized columnar execution engine
// (src/exec/): every analytical query shape must produce exactly the same
// result set through the vectorized engine and the row-at-a-time
// interpreter, including after deletes recycle column-store slots.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/session.h"
#include "tests/result_strings.h"

namespace olxp {
namespace {

engine::EngineProfile TestProfile() {
  auto p = engine::EngineProfile::TiDbLike();
  p.olap_row_fraction = 0.0;    // deterministic routing
  p.cost_based_routing = false;  // parity tests pin execution to the replica
  p.replication_lag_micros = 0;
  return p;
}

/// Runs `sql` through the vectorized engine — at exec_threads 1, 2 and 8 —
/// and the interpreter, asserting identical results everywhere: every
/// thread count must match the interpreter, and the parallel runs must
/// match the serial run row-for-row (morsel partials merge in scan order,
/// so even "unordered" output order is reproduced exactly). `ordered`
/// compares against the interpreter row-for-row; otherwise that comparison
/// uses sorted multisets (hash-group output order is engine-dependent).
void ExpectParity(engine::Database& db, engine::Session& s,
                  const std::string& sql,
                  std::initializer_list<Value> params = {},
                  bool ordered = false, bool expect_vectorized = true) {
  SCOPED_TRACE(sql);
  const int orig_threads = db.profile().exec_threads;

  db.set_vectorized_execution(false);
  auto interp = s.Execute(sql, params);
  ASSERT_TRUE(interp.ok()) << interp.status().ToString();
  EXPECT_FALSE(s.last_vectorized());
  std::vector<std::string> b = Stringify(*interp);
  if (!ordered) std::sort(b.begin(), b.end());

  db.set_vectorized_execution(true);
  std::vector<std::string> serial_rows;
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("exec_threads=" + std::to_string(threads));
    db.set_exec_threads(threads);
    auto vec = s.Execute(sql, params);
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    EXPECT_EQ(s.last_vectorized(), expect_vectorized);
    EXPECT_EQ(s.last_route(), engine::RoutedStore::kColumnStore);

    EXPECT_EQ(vec->column_names, interp->column_names);
    std::vector<std::string> a = Stringify(*vec);
    if (threads == 1) {
      serial_rows = a;
    } else {
      EXPECT_EQ(a, serial_rows);  // parallel == serial, including order
    }
    if (!ordered) std::sort(a.begin(), a.end());
    EXPECT_EQ(a, b);
  }
  db.set_exec_threads(orig_threads);
}

/// Parameterized over EngineProfile::columnar_encoding: every parity shape
/// runs once with sealed blocks compressed (dictionary/RLE/bit-packing)
/// and once with boxed raw blocks, at each swept thread count — results
/// must be bit-identical across the whole {raw, encoded} × {1, 2, 8} grid.
class ExecParityTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    auto p = TestProfile();
    p.columnar_encoding = GetParam();
    db_ = std::make_unique<engine::Database>(p);
    s_ = db_->CreateSession();
    s_->set_charging_enabled(false);
    ASSERT_TRUE(s_->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT, "
                            "c DOUBLE, d VARCHAR, e INT)")
                    .ok());
    Rng rng(42);
    const char* tags[] = {"alpha", "beta", "gamma", "ab_x", "ab_y"};
    for (int a = 1; a <= 997; ++a) {
      std::vector<Value> row;
      row.push_back(Value::Int(a));
      // NULLs sprinkled through every non-key column.
      row.push_back(a % 17 == 0 ? Value::Null()
                                : Value::Int(rng.Uniform(int64_t{0},
                                                         int64_t{1000})));
      row.push_back(a % 23 == 0 ? Value::Null()
                                : Value::Double(rng.Uniform(0.0, 1.0)));
      row.push_back(a % 29 == 0 ? Value::Null()
                                : Value::String(tags[a % 5]));
      row.push_back(Value::Int(a % 7));
      auto st = s_->Execute("INSERT INTO t VALUES (?, ?, ?, ?, ?)", row);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
    }
    db_->WaitReplicaCaughtUp();
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::Session> s_;
};

INSTANTIATE_TEST_SUITE_P(
    Storage, ExecParityTest, ::testing::Bool(),
    [](const ::testing::TestParamInfo<bool>& info) {
      return info.param ? std::string("Encoded") : std::string("Raw");
    });

TEST_P(ExecParityTest, FiltersAndProjections) {
  ExpectParity(*db_, *s_, "SELECT * FROM t WHERE b > 500");
  ExpectParity(*db_, *s_, "SELECT a, b FROM t WHERE b BETWEEN 100 AND 300 "
                          "AND c < 0.5");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE d LIKE 'ab%'");
  ExpectParity(*db_, *s_, "SELECT a, b FROM t WHERE b IN (1, 2, 3, 4, 5)");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE b IS NULL");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE d IS NOT NULL AND e = 3");
  ExpectParity(*db_, *s_, "SELECT -b, b + e, b * 2, b / 4, b % 5 FROM t "
                          "WHERE a <= 50");
  ExpectParity(*db_, *s_,
               "SELECT a, CASE WHEN b < 100 THEN 'lo' WHEN b < 500 THEN "
               "'mid' ELSE 'hi' END FROM t WHERE b IS NOT NULL");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE NOT (b < 500) OR e = 1");
  ExpectParity(*db_, *s_, "SELECT COUNT(*) FROM t WHERE b > ?",
               {Value::Int(250)});
}

TEST_P(ExecParityTest, Aggregates) {
  ExpectParity(*db_, *s_, "SELECT COUNT(*) FROM t");
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*), COUNT(b), SUM(b), AVG(c), MIN(b), MAX(c), "
               "MIN(d), MAX(d) FROM t");
  ExpectParity(*db_, *s_, "SELECT SUM(b + e), AVG(b * 2), COUNT(c) FROM t "
                          "WHERE e <> 0");
  // Global aggregate over empty input still yields one row.
  ExpectParity(*db_, *s_, "SELECT SUM(b), COUNT(*) FROM t WHERE b > 100000");
}

TEST_P(ExecParityTest, GroupByHavingOrderLimit) {
  ExpectParity(*db_, *s_, "SELECT d, COUNT(*), SUM(b) FROM t GROUP BY d "
                          "ORDER BY d", {}, /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT e, AVG(b) FROM t GROUP BY e "
                          "HAVING COUNT(*) > 10 ORDER BY e", {},
               /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT a % 10, COUNT(*) FROM t GROUP BY a % 10");
  ExpectParity(*db_, *s_, "SELECT e, SUM(b) AS total FROM t GROUP BY e "
                          "ORDER BY total DESC LIMIT 3", {},
               /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT DISTINCT e FROM t");
  ExpectParity(*db_, *s_, "SELECT b, c FROM t WHERE b IS NOT NULL "
                          "ORDER BY a LIMIT 20", {}, /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE e = 2 LIMIT 5", {},
               /*ordered=*/true);
}

TEST_P(ExecParityTest, PostDeleteSlotReuseParity) {
  // Delete a third of the rows, then insert fresh keys that recycle the
  // freed column-store slots; the vectorized scan must skip dead slots and
  // see recycled ones exactly like the interpreter.
  ASSERT_TRUE(s_->Execute("DELETE FROM t WHERE a % 3 = 0").ok());
  db_->WaitReplicaCaughtUp();
  ExpectParity(*db_, *s_, "SELECT COUNT(*), SUM(b), MIN(a), MAX(a) FROM t");

  for (int a = 2000; a < 2200; ++a) {
    ASSERT_TRUE(s_->Execute("INSERT INTO t VALUES (?, ?, ?, ?, ?)",
                            {Value::Int(a), Value::Int(a - 2000),
                             Value::Double(0.25), Value::String("reused"),
                             Value::Int(a % 7)})
                    .ok());
  }
  db_->WaitReplicaCaughtUp();
  ExpectParity(*db_, *s_, "SELECT COUNT(*), SUM(b) FROM t");
  ExpectParity(*db_, *s_, "SELECT * FROM t WHERE d = 'reused'");
  ExpectParity(*db_, *s_, "SELECT d, COUNT(*) FROM t GROUP BY d");
}

TEST_P(ExecParityTest, UnsupportedShapesFallBackToInterpreter) {
  ASSERT_TRUE(s_->Execute("CREATE TABLE u (k INT PRIMARY KEY, v INT)").ok());
  ASSERT_TRUE(s_->Execute("INSERT INTO u VALUES (1, 10), (2, 20)").ok());
  db_->WaitReplicaCaughtUp();
  db_->set_vectorized_execution(true);

  // Equi-joins vectorize (the hash-join path); parity is checked in the
  // join suite below. Non-equi joins have no hash key: interpreter.
  auto equi = s_->Execute("SELECT COUNT(*) FROM t, u WHERE t.e = u.k");
  ASSERT_TRUE(equi.ok()) << equi.status().ToString();
  EXPECT_TRUE(s_->last_vectorized());
  auto nonequi = s_->Execute("SELECT COUNT(*) FROM t, u WHERE t.e < u.k");
  ASSERT_TRUE(nonequi.ok()) << nonequi.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kColumnStore);

  // Subquery: detected by CanVectorize, interpreter serves it.
  auto sub = s_->Execute("SELECT a FROM t WHERE b = (SELECT MAX(v) FROM u)");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());

  // Inside a transaction everything pins to the row store.
  ASSERT_TRUE(s_->Begin().ok());
  auto txn_q = s_->Execute("SELECT SUM(b) FROM t");
  ASSERT_TRUE(txn_q.ok());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kRowStore);
  EXPECT_FALSE(s_->last_vectorized());
  ASSERT_TRUE(s_->Commit().ok());
}

TEST_P(ExecParityTest, MixedTypeCaseFallsBackToInterpreter) {
  // CASE branches with different payload families (INT column vs DOUBLE
  // column) must not be promoted to one vector type: the interpreter
  // returns each row with its picked branch's own type, so the vectorized
  // engine refuses the chunk and the statement falls back.
  db_->set_vectorized_execution(true);
  auto rs = s_->Execute("SELECT a, CASE WHEN e > 3 THEN b ELSE c END "
                        "FROM t WHERE b IS NOT NULL AND c IS NOT NULL");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kColumnStore);
  ExpectParity(*db_, *s_,
               "SELECT a, CASE WHEN e > 3 THEN b ELSE c END FROM t "
               "WHERE b IS NOT NULL AND c IS NOT NULL",
               {}, /*ordered=*/false, /*expect_vectorized=*/false);
}

TEST(ExecParityChunks, CrossChunkCaseTypeFlipKeepsMinMaxExact) {
  // An expression's vector type can flip between scan chunks when one CASE
  // branch is all-NULL in a chunk: slots 0..1023 hold only DOUBLE values
  // (2.4 / 1.6), slots 1024.. hold only INT values (2). MIN must compare
  // 2 < 2.4 exactly — an int-rounded comparison would keep 2.4.
  engine::Database db(TestProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE m (k INT PRIMARY KEY, i INT, "
                         "d1 DOUBLE, d2 DOUBLE, g INT)")
                  .ok());
  for (int k = 0; k < 1500; ++k) {
    std::vector<Value> row;
    row.push_back(Value::Int(k));
    if (k < 1024) {
      row.push_back(Value::Null());
      row.push_back(Value::Double(2.4));
      row.push_back(Value::Double(1.6));
    } else {
      row.push_back(Value::Int(2));
      row.push_back(Value::Null());
      row.push_back(Value::Null());
    }
    row.push_back(Value::Int(k % 3));
    ASSERT_TRUE(s->Execute("INSERT INTO m VALUES (?, ?, ?, ?, ?)", row).ok());
  }
  db.WaitReplicaCaughtUp();

  db.set_vectorized_execution(true);
  auto rs = s->Execute(
      "SELECT g, MIN(CASE WHEN i IS NULL THEN d1 ELSE i END), "
      "MAX(CASE WHEN i IS NULL THEN d2 ELSE i END) FROM m GROUP BY g "
      "ORDER BY g");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(s->last_vectorized());
  ASSERT_EQ(rs->rows.size(), 3u);
  for (const Row& r : rs->rows) {
    EXPECT_EQ(r[1].ToString(), "2");    // INT 2 < DOUBLE 2.4
    EXPECT_EQ(r[2].ToString(), "2");    // INT 2 > DOUBLE 1.6
  }
  ExpectParity(db, *s,
               "SELECT g, MIN(CASE WHEN i IS NULL THEN d1 ELSE i END), "
               "MAX(CASE WHEN i IS NULL THEN d2 ELSE i END) FROM m "
               "GROUP BY g ORDER BY g",
               {}, /*ordered=*/true);
}

TEST_P(ExecParityTest, StringPredicateFallsBackInsteadOfCrashing) {
  // A bare string-typed WHERE conjunct has no vector truthiness; the
  // engine must hand the statement to the interpreter, not misread the
  // string vector as booleans.
  db_->set_vectorized_execution(true);
  auto rs = s_->Execute("SELECT COUNT(*) FROM t WHERE d");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kColumnStore);
}

TEST_P(ExecParityTest, SnapshotWatermarkIsReported) {
  db_->set_vectorized_execution(true);
  auto rs = s_->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(s_->last_vectorized());
  // The replica is fully caught up, so the statement executed "as of" the
  // current replication watermark.
  EXPECT_EQ(s_->last_snapshot_ts(), db_->column_store().replicated_ts());
  EXPECT_GT(s_->last_snapshot_ts(), 0u);
}

// ------------------------- hash-join parity suite --------------------------

/// Star-ish schema: `cust` (dimension), `ord` (fact, with NULL join keys
/// sprinkled in), `item` (second dimension). Every query below must produce
/// identical results through the vectorized hash join and the interpreter's
/// nested-loop join.
class JoinParityTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    auto p = TestProfile();
    p.columnar_encoding = GetParam();
    db_ = std::make_unique<engine::Database>(p);
    s_ = db_->CreateSession();
    s_->set_charging_enabled(false);
    ASSERT_TRUE(s_->Execute("CREATE TABLE cust (id INT PRIMARY KEY, "
                            "region INT, name VARCHAR, credit DOUBLE)")
                    .ok());
    ASSERT_TRUE(s_->Execute("CREATE TABLE ord (oid INT PRIMARY KEY, "
                            "cust_id INT, item_id INT, qty INT, "
                            "amount DOUBLE)")
                    .ok());
    ASSERT_TRUE(s_->Execute("CREATE TABLE item (iid INT PRIMARY KEY, "
                            "grp INT, price DOUBLE)")
                    .ok());
    Rng rng(7);
    const char* names[] = {"ada", "bo", "cy", "dee", "eli"};
    for (int id = 1; id <= 211; ++id) {
      ASSERT_TRUE(
          s_->Execute("INSERT INTO cust VALUES (?, ?, ?, ?)",
                      {Value::Int(id), Value::Int(id % 7),
                       Value::String(names[id % 5]),
                       Value::Double(rng.Uniform(0.0, 1.0))})
              .ok());
    }
    for (int iid = 0; iid < 50; ++iid) {
      ASSERT_TRUE(s_->Execute("INSERT INTO item VALUES (?, ?, ?)",
                              {Value::Int(iid), Value::Int(iid % 4),
                               Value::Double((iid % 5) + 1.0)})
                      .ok());
    }
    for (int oid = 1; oid <= 853; ++oid) {
      std::vector<Value> row;
      row.push_back(Value::Int(oid));
      // NULL join keys and dangling references (cust ids above 211) must
      // drop the row from the join in both engines.
      row.push_back(oid % 19 == 0
                        ? Value::Null()
                        : Value::Int(rng.Uniform(int64_t{1}, int64_t{260})));
      row.push_back(Value::Int(rng.Uniform(int64_t{0}, int64_t{199})));
      row.push_back(Value::Int(rng.Uniform(int64_t{1}, int64_t{5})));
      row.push_back(Value::Double(rng.Uniform(1.0, 300.0)));
      ASSERT_TRUE(
          s_->Execute("INSERT INTO ord VALUES (?, ?, ?, ?, ?)", row).ok());
    }
    db_->WaitReplicaCaughtUp();
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::Session> s_;
};

INSTANTIATE_TEST_SUITE_P(
    Storage, JoinParityTest, ::testing::Bool(),
    [](const ::testing::TestParamInfo<bool>& info) {
      return info.param ? std::string("Encoded") : std::string("Raw");
    });

TEST_P(JoinParityTest, TwoTableEquiJoins) {
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*), SUM(o.amount) FROM ord o, cust c "
               "WHERE o.cust_id = c.id");
  ExpectParity(*db_, *s_,
               "SELECT o.oid, c.name FROM ord o JOIN cust c "
               "ON o.cust_id = c.id WHERE c.region = 2 AND o.qty > 2");
  ExpectParity(*db_, *s_,
               "SELECT o.oid, o.amount * c.credit FROM ord o JOIN cust c "
               "ON o.cust_id = c.id WHERE c.credit > 0.25");
  // Join key flipped around the equality: same plan either way.
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*) FROM cust c JOIN ord o ON c.id = o.cust_id");
}

TEST_P(JoinParityTest, JoinAggregatesAndOrdering) {
  ExpectParity(*db_, *s_,
               "SELECT c.region, COUNT(*), SUM(o.amount), MAX(o.qty) "
               "FROM ord o JOIN cust c ON o.cust_id = c.id "
               "GROUP BY c.region ORDER BY c.region",
               {}, /*ordered=*/true);
  ExpectParity(*db_, *s_,
               "SELECT c.name, AVG(o.amount) FROM ord o JOIN cust c "
               "ON o.cust_id = c.id GROUP BY c.name "
               "HAVING COUNT(*) > 10 ORDER BY c.name",
               {}, /*ordered=*/true);
  ExpectParity(*db_, *s_,
               "SELECT o.oid, c.name FROM ord o JOIN cust c "
               "ON o.cust_id = c.id WHERE c.credit > 0.5 "
               "ORDER BY o.oid LIMIT 20",
               {}, /*ordered=*/true);
  ExpectParity(*db_, *s_,
               "SELECT DISTINCT c.region FROM ord o JOIN cust c "
               "ON o.cust_id = c.id");
}

TEST_P(JoinParityTest, ThreeTableJoin) {
  ExpectParity(*db_, *s_,
               "SELECT i.grp, COUNT(*), SUM(o.qty * i.price) "
               "FROM ord o JOIN cust c ON o.cust_id = c.id "
               "JOIN item i ON i.iid = o.item_id % 50 "
               "WHERE c.region <> 1 GROUP BY i.grp ORDER BY i.grp",
               {}, /*ordered=*/true);
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*) FROM ord o JOIN cust c "
               "ON o.cust_id = c.id JOIN item i ON i.iid = o.item_id % 50 "
               "AND i.grp = o.qty % 4");
}

TEST_P(JoinParityTest, CompositeAndCrossFamilyKeys) {
  // Composite hash key (two equi conjuncts on one step).
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*), SUM(o.amount) FROM ord o JOIN cust c "
               "ON o.cust_id = c.id AND o.qty = c.region");
  // DOUBLE build key probed with an INT expression: Value semantics equate
  // integral doubles with ints, and so must the hash table.
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*), SUM(i.price) FROM ord o JOIN item i "
               "ON i.price = o.qty");
  // Equi key plus a non-equi residual re-checked after the join.
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*) FROM ord o JOIN cust c "
               "ON o.cust_id = c.id AND o.amount > c.credit * 100");
}

TEST_P(JoinParityTest, GroupRepresentativeSlotsMatchInterpreter) {
  // c.credit is not a GROUP BY key: its per-group value comes from the
  // group's first joined tuple, which depends on the driving order. cust is
  // the smaller side here, so a bare smaller-side build swap would stream
  // ord and pick different representatives than the interpreter — the
  // engine must keep the plan's driving order for such shapes.
  ExpectParity(*db_, *s_,
               "SELECT c.region, c.credit, COUNT(*) FROM cust c "
               "JOIN ord o ON o.cust_id = c.id GROUP BY c.region "
               "ORDER BY c.region",
               {}, /*ordered=*/true);
  ExpectParity(*db_, *s_,
               "SELECT c.region, SUM(o.amount) FROM cust c "
               "JOIN ord o ON o.cust_id = c.id GROUP BY c.region "
               "HAVING MAX(o.qty) > 1 ORDER BY c.region",
               {}, /*ordered=*/true);
}

TEST_P(JoinParityTest, NullKeysNeverJoin) {
  // The NULL cust_ids must not match anything (NULL = NULL is false).
  db_->set_vectorized_execution(true);
  auto joined = s_->Execute(
      "SELECT COUNT(*) FROM ord o JOIN cust c ON o.cust_id = c.id "
      "AND c.id IS NULL");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_TRUE(s_->last_vectorized());
  EXPECT_EQ(joined->rows[0][0].AsInt(), 0);
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*) FROM ord o JOIN cust c ON o.cust_id = c.id");
}

TEST_P(JoinParityTest, PostDeleteSlotReuseParity) {
  // Free build-side slots and recycle them: the hash build must skip dead
  // slots and see recycled ones exactly like the interpreter.
  ASSERT_TRUE(s_->Execute("DELETE FROM cust WHERE id % 3 = 0").ok());
  db_->WaitReplicaCaughtUp();
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*), SUM(o.amount) FROM ord o JOIN cust c "
               "ON o.cust_id = c.id");
  for (int id = 500; id < 560; ++id) {
    ASSERT_TRUE(s_->Execute("INSERT INTO cust VALUES (?, ?, ?, ?)",
                            {Value::Int(id), Value::Int(id % 7),
                             Value::String("reborn"), Value::Double(0.5)})
                    .ok());
  }
  db_->WaitReplicaCaughtUp();
  ExpectParity(*db_, *s_,
               "SELECT c.name, COUNT(*) FROM ord o JOIN cust c "
               "ON o.cust_id = c.id GROUP BY c.name");
}

TEST_P(JoinParityTest, JoinInsideTransactionPinsToRowStore) {
  ASSERT_TRUE(s_->Begin().ok());
  auto rs = s_->Execute(
      "SELECT COUNT(*) FROM ord o JOIN cust c ON o.cust_id = c.id");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kRowStore);
  EXPECT_FALSE(s_->last_vectorized());
  ASSERT_TRUE(s_->Commit().ok());
}

/// The acceptance shape: a 2-table equi-join + aggregate over a >=100k-row
/// build side routes to the replica, runs vectorized, and matches the
/// interpreter exactly.
TEST(JoinAtScale, LargeBuildSideVectorizesWithParity) {
  engine::Database db(TestProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE dim (id INT PRIMARY KEY, bucket INT)")
                  .ok());
  ASSERT_TRUE(s->Execute("CREATE TABLE fact (fid INT PRIMARY KEY, "
                         "dim_id INT, v INT)")
                  .ok());
  constexpr int kDim = 100000;
  constexpr int kFact = 120000;
  Rng rng(11);
  for (int i = 0; i < kDim; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO dim VALUES (?, ?)",
                           {Value::Int(i), Value::Int(i % 97)})
                    .ok());
  }
  for (int i = 0; i < kFact; ++i) {
    ASSERT_TRUE(
        s->Execute("INSERT INTO fact VALUES (?, ?, ?)",
                   {Value::Int(i),
                    Value::Int(rng.Uniform(int64_t{0}, int64_t{kDim - 1})),
                    Value::Int(i % 1000)})
            .ok());
  }
  db.WaitReplicaCaughtUp();

  const std::string q =
      "SELECT d.bucket, COUNT(*), SUM(f.v) FROM fact f JOIN dim d "
      "ON f.dim_id = d.id GROUP BY d.bucket ORDER BY d.bucket";
  db.set_vectorized_execution(false);
  auto interp = s->Execute(q);
  ASSERT_TRUE(interp.ok()) << interp.status().ToString();
  EXPECT_FALSE(s->last_vectorized());

  // The at-scale join must agree with the interpreter at every lane count
  // (serial probe and morsel-parallel probe over the shared build table).
  db.set_vectorized_execution(true);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("exec_threads=" + std::to_string(threads));
    db.set_exec_threads(threads);
    auto vec = s->Execute(q);
    ASSERT_TRUE(vec.ok()) << vec.status().ToString();
    EXPECT_EQ(s->last_route(), engine::RoutedStore::kColumnStore);
    EXPECT_TRUE(s->last_vectorized());
    ASSERT_EQ(vec->rows.size(), 97u);
    EXPECT_EQ(Stringify(*vec), Stringify(*interp));
  }
}

TEST(ExecRouting, IndexedJoinDriverRoutesToRowStore) {
  auto profile = TestProfile();
  profile.cost_based_routing = true;
  engine::Database db(profile);
  // This test asserts the SERIAL cost crossover; pin it even when the
  // environment (CI's OLXP_EXEC_THREADS) forces a pool onto every
  // instance. Parallel routing is covered in parallel_exec_test.cc.
  db.set_exec_threads(1);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE a (k INT PRIMARY KEY, r INT)").ok());
  ASSERT_TRUE(s->Execute("CREATE TABLE b (k INT PRIMARY KEY, v INT)").ok());
  for (int k = 0; k < 400; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO a VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k % 50)})
                    .ok());
    ASSERT_TRUE(s->Execute("INSERT INTO b VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k * 3)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();

  // Full-scan join: the replica (vectorized hash join) wins.
  ASSERT_TRUE(
      s->Execute("SELECT SUM(b.v) FROM a, b WHERE a.r = b.k").ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kColumnStore);
  EXPECT_TRUE(s->last_vectorized());

  // Point-driven join (pk point on the driver, pk seek per inner row):
  // seek-dominated on the row store, far below two full replica sweeps.
  ASSERT_TRUE(s->Execute("SELECT SUM(b.v) FROM a, b WHERE a.k = 7 "
                         "AND b.k = a.r")
                  .ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);
}

TEST(ExecRouting, CostBasedRouterPrefersRowStoreForIndexedShapes) {
  auto profile = TestProfile();
  profile.cost_based_routing = true;
  engine::Database db(profile);
  db.set_exec_threads(1);  // serial crossover (see note above)
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE r (k INT PRIMARY KEY, v INT)").ok());
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO r VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k * 2)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();

  // Full-table analytical scan: replica wins.
  ASSERT_TRUE(s->Execute("SELECT SUM(v) FROM r").ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kColumnStore);

  // Pk-range shape: the row store serves it through the ordered pk index
  // for far less than a full replica sweep, so the cost router picks it.
  ASSERT_TRUE(s->Execute("SELECT SUM(v) FROM r WHERE k >= 10 AND k <= 20")
                  .ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);
}

}  // namespace
}  // namespace olxp
