// Parity and routing tests for the vectorized columnar execution engine
// (src/exec/): every analytical query shape must produce exactly the same
// result set through the vectorized engine and the row-at-a-time
// interpreter, including after deletes recycle column-store slots.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/session.h"

namespace olxp {
namespace {

engine::EngineProfile TestProfile() {
  auto p = engine::EngineProfile::TiDbLike();
  p.olap_row_fraction = 0.0;    // deterministic routing
  p.cost_based_routing = false;  // parity tests pin execution to the replica
  p.replication_lag_micros = 0;
  return p;
}

std::vector<std::string> Stringify(const sql::ResultSet& rs) {
  std::vector<std::string> rows;
  rows.reserve(rs.rows.size());
  for (const Row& r : rs.rows) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

/// Runs `sql` through the vectorized engine and the interpreter and asserts
/// identical results. `ordered` compares row-for-row; otherwise both result
/// sets are compared as sorted multisets (hash-group output order is
/// engine-dependent).
void ExpectParity(engine::Database& db, engine::Session& s,
                  const std::string& sql,
                  std::initializer_list<Value> params = {},
                  bool ordered = false, bool expect_vectorized = true) {
  SCOPED_TRACE(sql);
  db.set_vectorized_execution(true);
  auto vec = s.Execute(sql, params);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  EXPECT_EQ(s.last_vectorized(), expect_vectorized);
  EXPECT_EQ(s.last_route(), engine::RoutedStore::kColumnStore);

  db.set_vectorized_execution(false);
  auto interp = s.Execute(sql, params);
  ASSERT_TRUE(interp.ok()) << interp.status().ToString();
  EXPECT_FALSE(s.last_vectorized());

  EXPECT_EQ(vec->column_names, interp->column_names);
  std::vector<std::string> a = Stringify(*vec);
  std::vector<std::string> b = Stringify(*interp);
  if (!ordered) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
  }
  EXPECT_EQ(a, b);
}

class ExecParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>(TestProfile());
    s_ = db_->CreateSession();
    s_->set_charging_enabled(false);
    ASSERT_TRUE(s_->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT, "
                            "c DOUBLE, d VARCHAR, e INT)")
                    .ok());
    Rng rng(42);
    const char* tags[] = {"alpha", "beta", "gamma", "ab_x", "ab_y"};
    for (int a = 1; a <= 997; ++a) {
      std::vector<Value> row;
      row.push_back(Value::Int(a));
      // NULLs sprinkled through every non-key column.
      row.push_back(a % 17 == 0 ? Value::Null()
                                : Value::Int(rng.Uniform(int64_t{0},
                                                         int64_t{1000})));
      row.push_back(a % 23 == 0 ? Value::Null()
                                : Value::Double(rng.Uniform(0.0, 1.0)));
      row.push_back(a % 29 == 0 ? Value::Null()
                                : Value::String(tags[a % 5]));
      row.push_back(Value::Int(a % 7));
      auto st = s_->Execute("INSERT INTO t VALUES (?, ?, ?, ?, ?)", row);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
    }
    db_->WaitReplicaCaughtUp();
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::Session> s_;
};

TEST_F(ExecParityTest, FiltersAndProjections) {
  ExpectParity(*db_, *s_, "SELECT * FROM t WHERE b > 500");
  ExpectParity(*db_, *s_, "SELECT a, b FROM t WHERE b BETWEEN 100 AND 300 "
                          "AND c < 0.5");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE d LIKE 'ab%'");
  ExpectParity(*db_, *s_, "SELECT a, b FROM t WHERE b IN (1, 2, 3, 4, 5)");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE b IS NULL");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE d IS NOT NULL AND e = 3");
  ExpectParity(*db_, *s_, "SELECT -b, b + e, b * 2, b / 4, b % 5 FROM t "
                          "WHERE a <= 50");
  ExpectParity(*db_, *s_,
               "SELECT a, CASE WHEN b < 100 THEN 'lo' WHEN b < 500 THEN "
               "'mid' ELSE 'hi' END FROM t WHERE b IS NOT NULL");
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE NOT (b < 500) OR e = 1");
  ExpectParity(*db_, *s_, "SELECT COUNT(*) FROM t WHERE b > ?",
               {Value::Int(250)});
}

TEST_F(ExecParityTest, Aggregates) {
  ExpectParity(*db_, *s_, "SELECT COUNT(*) FROM t");
  ExpectParity(*db_, *s_,
               "SELECT COUNT(*), COUNT(b), SUM(b), AVG(c), MIN(b), MAX(c), "
               "MIN(d), MAX(d) FROM t");
  ExpectParity(*db_, *s_, "SELECT SUM(b + e), AVG(b * 2), COUNT(c) FROM t "
                          "WHERE e <> 0");
  // Global aggregate over empty input still yields one row.
  ExpectParity(*db_, *s_, "SELECT SUM(b), COUNT(*) FROM t WHERE b > 100000");
}

TEST_F(ExecParityTest, GroupByHavingOrderLimit) {
  ExpectParity(*db_, *s_, "SELECT d, COUNT(*), SUM(b) FROM t GROUP BY d "
                          "ORDER BY d", {}, /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT e, AVG(b) FROM t GROUP BY e "
                          "HAVING COUNT(*) > 10 ORDER BY e", {},
               /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT a % 10, COUNT(*) FROM t GROUP BY a % 10");
  ExpectParity(*db_, *s_, "SELECT e, SUM(b) AS total FROM t GROUP BY e "
                          "ORDER BY total DESC LIMIT 3", {},
               /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT DISTINCT e FROM t");
  ExpectParity(*db_, *s_, "SELECT b, c FROM t WHERE b IS NOT NULL "
                          "ORDER BY a LIMIT 20", {}, /*ordered=*/true);
  ExpectParity(*db_, *s_, "SELECT a FROM t WHERE e = 2 LIMIT 5", {},
               /*ordered=*/true);
}

TEST_F(ExecParityTest, PostDeleteSlotReuseParity) {
  // Delete a third of the rows, then insert fresh keys that recycle the
  // freed column-store slots; the vectorized scan must skip dead slots and
  // see recycled ones exactly like the interpreter.
  ASSERT_TRUE(s_->Execute("DELETE FROM t WHERE a % 3 = 0").ok());
  db_->WaitReplicaCaughtUp();
  ExpectParity(*db_, *s_, "SELECT COUNT(*), SUM(b), MIN(a), MAX(a) FROM t");

  for (int a = 2000; a < 2200; ++a) {
    ASSERT_TRUE(s_->Execute("INSERT INTO t VALUES (?, ?, ?, ?, ?)",
                            {Value::Int(a), Value::Int(a - 2000),
                             Value::Double(0.25), Value::String("reused"),
                             Value::Int(a % 7)})
                    .ok());
  }
  db_->WaitReplicaCaughtUp();
  ExpectParity(*db_, *s_, "SELECT COUNT(*), SUM(b) FROM t");
  ExpectParity(*db_, *s_, "SELECT * FROM t WHERE d = 'reused'");
  ExpectParity(*db_, *s_, "SELECT d, COUNT(*) FROM t GROUP BY d");
}

TEST_F(ExecParityTest, UnsupportedShapesFallBackToInterpreter) {
  ASSERT_TRUE(s_->Execute("CREATE TABLE u (k INT PRIMARY KEY, v INT)").ok());
  ASSERT_TRUE(s_->Execute("INSERT INTO u VALUES (1, 10), (2, 20)").ok());
  db_->WaitReplicaCaughtUp();
  db_->set_vectorized_execution(true);

  // Join: multi-table plans never vectorize but still run on the replica.
  auto join = s_->Execute("SELECT COUNT(*) FROM t, u WHERE t.e = u.k");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kColumnStore);

  // Subquery: detected by CanVectorize, interpreter serves it.
  auto sub = s_->Execute("SELECT a FROM t WHERE b = (SELECT MAX(v) FROM u)");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());

  // Inside a transaction everything pins to the row store.
  ASSERT_TRUE(s_->Begin().ok());
  auto txn_q = s_->Execute("SELECT SUM(b) FROM t");
  ASSERT_TRUE(txn_q.ok());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kRowStore);
  EXPECT_FALSE(s_->last_vectorized());
  ASSERT_TRUE(s_->Commit().ok());
}

TEST_F(ExecParityTest, MixedTypeCaseFallsBackToInterpreter) {
  // CASE branches with different payload families (INT column vs DOUBLE
  // column) must not be promoted to one vector type: the interpreter
  // returns each row with its picked branch's own type, so the vectorized
  // engine refuses the chunk and the statement falls back.
  db_->set_vectorized_execution(true);
  auto rs = s_->Execute("SELECT a, CASE WHEN e > 3 THEN b ELSE c END "
                        "FROM t WHERE b IS NOT NULL AND c IS NOT NULL");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kColumnStore);
  ExpectParity(*db_, *s_,
               "SELECT a, CASE WHEN e > 3 THEN b ELSE c END FROM t "
               "WHERE b IS NOT NULL AND c IS NOT NULL",
               {}, /*ordered=*/false, /*expect_vectorized=*/false);
}

TEST(ExecParityChunks, CrossChunkCaseTypeFlipKeepsMinMaxExact) {
  // An expression's vector type can flip between scan chunks when one CASE
  // branch is all-NULL in a chunk: slots 0..1023 hold only DOUBLE values
  // (2.4 / 1.6), slots 1024.. hold only INT values (2). MIN must compare
  // 2 < 2.4 exactly — an int-rounded comparison would keep 2.4.
  engine::Database db(TestProfile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE m (k INT PRIMARY KEY, i INT, "
                         "d1 DOUBLE, d2 DOUBLE, g INT)")
                  .ok());
  for (int k = 0; k < 1500; ++k) {
    std::vector<Value> row;
    row.push_back(Value::Int(k));
    if (k < 1024) {
      row.push_back(Value::Null());
      row.push_back(Value::Double(2.4));
      row.push_back(Value::Double(1.6));
    } else {
      row.push_back(Value::Int(2));
      row.push_back(Value::Null());
      row.push_back(Value::Null());
    }
    row.push_back(Value::Int(k % 3));
    ASSERT_TRUE(s->Execute("INSERT INTO m VALUES (?, ?, ?, ?, ?)", row).ok());
  }
  db.WaitReplicaCaughtUp();

  db.set_vectorized_execution(true);
  auto rs = s->Execute(
      "SELECT g, MIN(CASE WHEN i IS NULL THEN d1 ELSE i END), "
      "MAX(CASE WHEN i IS NULL THEN d2 ELSE i END) FROM m GROUP BY g "
      "ORDER BY g");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(s->last_vectorized());
  ASSERT_EQ(rs->rows.size(), 3u);
  for (const Row& r : rs->rows) {
    EXPECT_EQ(r[1].ToString(), "2");    // INT 2 < DOUBLE 2.4
    EXPECT_EQ(r[2].ToString(), "2");    // INT 2 > DOUBLE 1.6
  }
  ExpectParity(db, *s,
               "SELECT g, MIN(CASE WHEN i IS NULL THEN d1 ELSE i END), "
               "MAX(CASE WHEN i IS NULL THEN d2 ELSE i END) FROM m "
               "GROUP BY g ORDER BY g",
               {}, /*ordered=*/true);
}

TEST_F(ExecParityTest, StringPredicateFallsBackInsteadOfCrashing) {
  // A bare string-typed WHERE conjunct has no vector truthiness; the
  // engine must hand the statement to the interpreter, not misread the
  // string vector as booleans.
  db_->set_vectorized_execution(true);
  auto rs = s_->Execute("SELECT COUNT(*) FROM t WHERE d");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(s_->last_vectorized());
  EXPECT_EQ(s_->last_route(), engine::RoutedStore::kColumnStore);
}

TEST_F(ExecParityTest, SnapshotWatermarkIsReported) {
  db_->set_vectorized_execution(true);
  auto rs = s_->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(s_->last_vectorized());
  // The replica is fully caught up, so the statement executed "as of" the
  // current replication watermark.
  EXPECT_EQ(s_->last_snapshot_ts(), db_->column_store().replicated_ts());
  EXPECT_GT(s_->last_snapshot_ts(), 0u);
}

TEST(ExecRouting, CostBasedRouterPrefersRowStoreForIndexedShapes) {
  auto profile = TestProfile();
  profile.cost_based_routing = true;
  engine::Database db(profile);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE r (k INT PRIMARY KEY, v INT)").ok());
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO r VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k * 2)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();

  // Full-table analytical scan: replica wins.
  ASSERT_TRUE(s->Execute("SELECT SUM(v) FROM r").ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kColumnStore);

  // Pk-range shape: the row store serves it through the ordered pk index
  // for far less than a full replica sweep, so the cost router picks it.
  ASSERT_TRUE(s->Execute("SELECT SUM(v) FROM r WHERE k >= 10 AND k <= 20")
                  .ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);
}

}  // namespace
}  // namespace olxp
