// Property tests for the sealed-block column encodings (src/storage/
// column_block.*): every encoding must round-trip the exact boxed values
// it was built from, the selection heuristics must pick the promised
// encoding at each edge, and zone-map skipping must agree with a brute-
// force scan — in both encoded and raw storage modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/value.h"
#include "storage/column_block.h"
#include "storage/column_store.h"
#include "storage/schema.h"
#include "storage/wal.h"

namespace olxp::storage {
namespace {

using Enc = EncodedColumn::Enc;

/// Encodes `vals` as an INT column and checks positional round-trip.
EncodedColumn EncodeInts(const std::vector<Value>& vals,
                         bool encode = true) {
  return EncodedColumn::Encode(vals, ValueType::kInt, /*live=*/nullptr,
                               encode);
}

void ExpectRoundTrip(const EncodedColumn& col,
                     const std::vector<Value>& vals) {
  ASSERT_EQ(col.rows(), vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    SCOPED_TRACE("slot " + std::to_string(i));
    EXPECT_EQ(col.ValueAt(i), vals[i]);
  }
  EXPECT_EQ(col.Materialize(), vals);
}

// ----------------------------- heuristics ---------------------------------

TEST(Encoding, ConstantColumnBecomesSingleRunRle) {
  std::vector<Value> vals(kBlockSlots, Value::Int(42));
  EncodedColumn col = EncodeInts(vals);
  EXPECT_EQ(col.enc(), Enc::kRle);
  EXPECT_EQ(col.num_runs(), 1u);
  EXPECT_EQ(col.zone_min(), Value::Int(42));
  EXPECT_EQ(col.zone_max(), Value::Int(42));
  ExpectRoundTrip(col, vals);
}

TEST(Encoding, LongRunsPickRleAndAlternatingDoesNot) {
  // Four long runs: RLE wins by a mile.
  std::vector<Value> runs;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    runs.push_back(Value::Int(static_cast<int64_t>(i / 256)));
  }
  EncodedColumn rle = EncodeInts(runs);
  EXPECT_EQ(rle.enc(), Enc::kRle);
  EXPECT_EQ(rle.num_runs(), 4u);
  ExpectRoundTrip(rle, runs);

  // Alternating 0/1: every slot is its own run, so RLE loses to 1-bit
  // packing; singleton runs must never be chosen.
  std::vector<Value> alt;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    alt.push_back(Value::Int(static_cast<int64_t>(i & 1)));
  }
  EncodedColumn packed = EncodeInts(alt);
  EXPECT_EQ(packed.enc(), Enc::kPacked);
  EXPECT_EQ(packed.pack_width(), 1);
  ExpectRoundTrip(packed, alt);
}

TEST(Encoding, BitWidthEdges) {
  // Range {-1, 1}: frame of reference shifts negatives into 2 bits.
  std::vector<Value> narrow;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    narrow.push_back(Value::Int(static_cast<int64_t>(i % 3) - 1));
  }
  EncodedColumn neg = EncodeInts(narrow);
  EXPECT_EQ(neg.enc(), Enc::kPacked);
  EXPECT_EQ(neg.pack_base(), -1);
  EXPECT_EQ(neg.pack_width(), 2);
  ExpectRoundTrip(neg, narrow);

  // INT64_MIN with a tiny range still packs: unsigned range arithmetic
  // must not overflow into a bogus width.
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  std::vector<Value> low;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    low.push_back(Value::Int(kMin + static_cast<int64_t>(i % 8)));
  }
  EncodedColumn deep = EncodeInts(low);
  EXPECT_EQ(deep.enc(), Enc::kPacked);
  EXPECT_EQ(deep.pack_base(), kMin);
  EXPECT_EQ(deep.pack_width(), 3);
  ExpectRoundTrip(deep, low);

  // Full-domain range {INT64_MIN, INT64_MAX}: width would be 64, which
  // bit-packing cannot beat — flat array.
  std::vector<Value> wide;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    wide.push_back(Value::Int(i & 1 ? std::numeric_limits<int64_t>::max()
                                    : kMin));
  }
  EncodedColumn flat = EncodeInts(wide);
  EXPECT_EQ(flat.enc(), Enc::kFlatInt);
  ExpectRoundTrip(flat, wide);
}

TEST(Encoding, SmallStringDomainDictionarizesSorted) {
  const char* tags[] = {"delta", "alpha", "echo", "bravo", "charlie"};
  std::vector<Value> vals;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    vals.push_back(Value::String(tags[i % 5]));
  }
  EncodedColumn col =
      EncodedColumn::Encode(vals, ValueType::kString, nullptr, true);
  ASSERT_EQ(col.enc(), Enc::kDict);
  ASSERT_EQ(col.dict_size(), 5u);
  // Code order equals lexicographic order (range predicates compare codes).
  for (uint32_t d = 1; d < col.dict_size(); ++d) {
    EXPECT_LT(col.dict()[d - 1], col.dict()[d]);
  }
  EXPECT_EQ(col.zone_min(), Value::String("alpha"));
  EXPECT_EQ(col.zone_max(), Value::String("echo"));
  ExpectRoundTrip(col, vals);
}

TEST(Encoding, DictionaryOverflowFallsBackToRaw) {
  // More distinct strings than kDictMax: codes would stop paying for the
  // dictionary, so the column stays boxed raw.
  std::vector<Value> vals;
  for (size_t i = 0; i < EncodedColumn::kDictMax + 1; ++i) {
    vals.push_back(Value::String("key_" + std::to_string(1000000 + i)));
  }
  EncodedColumn col =
      EncodedColumn::Encode(vals, ValueType::kString, nullptr, true);
  EXPECT_EQ(col.enc(), Enc::kRaw);
  ExpectRoundTrip(col, vals);
}

TEST(Encoding, DoublesStayFlatAndMixedTypesStayRaw) {
  Rng rng(3);
  std::vector<Value> dbls;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    dbls.push_back(Value::Double(rng.Uniform(0.0, 1.0)));
  }
  EncodedColumn d =
      EncodedColumn::Encode(dbls, ValueType::kDouble, nullptr, true);
  EXPECT_EQ(d.enc(), Enc::kFlatDbl);
  ExpectRoundTrip(d, dbls);

  // A value whose runtime type disagrees with the declared type forces the
  // raw fallback: typed arrays would mis-rebox it.
  std::vector<Value> mixed(kBlockSlots, Value::Int(7));
  mixed[100] = Value::Double(7.5);
  EncodedColumn m = EncodeInts(mixed);
  EXPECT_EQ(m.enc(), Enc::kRaw);
  ExpectRoundTrip(m, mixed);
}

TEST(Encoding, NullsRoundTripAndZonesIgnoreThem) {
  std::vector<Value> vals;
  for (size_t i = 0; i < kBlockSlots; ++i) {
    vals.push_back(i % 5 == 0 ? Value::Null()
                              : Value::Int(static_cast<int64_t>(i % 100)));
  }
  EncodedColumn col = EncodeInts(vals);
  EXPECT_NE(col.enc(), Enc::kRaw);
  EXPECT_NE(col.null_map(), nullptr);
  EXPECT_EQ(col.zone_min(), Value::Int(1));
  EXPECT_EQ(col.zone_max(), Value::Int(99));
  ExpectRoundTrip(col, vals);

  std::vector<Value> all_null(kBlockSlots, Value::Null());
  EncodedColumn n = EncodeInts(all_null);
  EXPECT_TRUE(n.zone_min().is_null());
  ExpectRoundTrip(n, all_null);
}

TEST(Encoding, EncodeOffKeepsRawButStillBuildsZones) {
  std::vector<Value> vals(kBlockSlots, Value::Int(5));
  EncodedColumn col = EncodeInts(vals, /*encode=*/false);
  EXPECT_EQ(col.enc(), Enc::kRaw);
  EXPECT_EQ(col.zone_min(), Value::Int(5));
  EXPECT_EQ(col.zone_max(), Value::Int(5));
  ExpectRoundTrip(col, vals);
}

TEST(Encoding, RandomIntsRoundTripAtEveryWidth) {
  Rng rng(17);
  for (int width = 1; width <= 40; width += 13) {
    SCOPED_TRACE("width " + std::to_string(width));
    const int64_t hi = (int64_t{1} << width) - 1;
    std::vector<Value> vals;
    for (size_t i = 0; i < kBlockSlots; ++i) {
      vals.push_back(Value::Int(rng.Uniform(int64_t{0}, hi)));
    }
    ExpectRoundTrip(EncodeInts(vals), vals);
  }
}

// --------------------------- zone-map skipping -----------------------------

TEST(ZoneMaps, ZoneExcludesMatchesBruteForce) {
  const Value zmin = Value::Int(100);
  const Value zmax = Value::Int(200);
  const ZonePred::Op ops[] = {ZonePred::Op::kEq, ZonePred::Op::kLt,
                              ZonePred::Op::kLe, ZonePred::Op::kGt,
                              ZonePred::Op::kGe};
  for (ZonePred::Op op : ops) {
    for (int64_t lit : {50, 99, 100, 101, 150, 199, 200, 201, 500}) {
      SCOPED_TRACE("op " + std::to_string(static_cast<int>(op)) + " lit " +
                   std::to_string(lit));
      ZonePred pred;
      pred.col = 0;
      pred.op = op;
      pred.lit = Value::Int(lit);
      // Brute force: does any v in [100, 200] satisfy the predicate?
      bool any = false;
      for (int64_t v = 100; v <= 200; ++v) {
        const int c = Value::Int(v).Compare(pred.lit);
        switch (op) {
          case ZonePred::Op::kEq: any |= c == 0; break;
          case ZonePred::Op::kLt: any |= c < 0; break;
          case ZonePred::Op::kLe: any |= c <= 0; break;
          case ZonePred::Op::kGt: any |= c > 0; break;
          case ZonePred::Op::kGe: any |= c >= 0; break;
        }
      }
      EXPECT_EQ(ZoneExcludes(pred, zmin, zmax), !any);
    }
  }
  // NULL zone (no live non-null values) refutes everything; a NULL literal
  // is never satisfiable.
  ZonePred eq;
  eq.lit = Value::Int(150);
  EXPECT_TRUE(ZoneExcludes(eq, Value::Null(), Value::Null()));
  ZonePred nul;
  nul.lit = Value::Null();
  EXPECT_TRUE(ZoneExcludes(nul, zmin, zmax));
}

// --------------------------- table-level churn -----------------------------

TableSchema KvSchema() {
  return TableSchema("kv",
                     {{"k", ValueType::kInt, false},
                      {"v", ValueType::kInt, true},
                      {"tag", ValueType::kString, true}},
                     {0});
}

LogOp Upsert(int64_t k) {
  LogOp op;
  op.kind = LogOp::Kind::kUpsert;
  op.pk = {Value::Int(k)};
  op.data = {Value::Int(k), Value::Int(k % 50),
             Value::String(k % 2 == 0 ? "even" : "odd")};
  return op;
}

LogOp Delete(int64_t k) {
  LogOp op;
  op.kind = LogOp::Kind::kDelete;
  op.pk = {Value::Int(k)};
  return op;
}

TEST(ColumnBlocks, SealedTablesAgreeAcrossRawAndEncoded) {
  ColumnTable enc(KvSchema(), /*encode=*/true);
  ColumnTable raw(KvSchema(), /*encode=*/false);
  const int64_t kRows = 3000;  // 2 sealed blocks + tail
  for (int64_t k = 0; k < kRows; ++k) {
    enc.Apply(Upsert(k));
    raw.Apply(Upsert(k));
  }
  ASSERT_EQ(enc.SealedBlockCount(), 2u);
  ASSERT_EQ(raw.SealedBlockCount(), 2u);
  // Raw mode must not compress...
  for (Enc e : raw.BlockEncodings(0)) EXPECT_EQ(e, Enc::kRaw);
  // ...while encoded mode must have found cheaper forms for every column
  // (monotone k packs, k%50 packs or runs, the 2-string tag dictionarizes).
  for (Enc e : enc.BlockEncodings(0)) EXPECT_NE(e, Enc::kRaw);
  EXPECT_LT(enc.EncodedBytes(), raw.EncodedBytes());
  EXPECT_EQ(enc.RawBytes(), raw.RawBytes());

  // Every read surface agrees slot-for-slot.
  for (int64_t k = 0; k < kRows; ++k) {
    ASSERT_EQ(enc.Get({Value::Int(k)}), raw.Get({Value::Int(k)}));
  }
  std::vector<Value> enc_cells;
  std::vector<Value> raw_cells;
  auto collect = [](std::vector<Value>* out) {
    return [out](const ColumnChunkView& v) {
      for (size_t i = 0; i < v.rows; ++i) {
        if (v.live[i] == 0) continue;
        for (int c = 0; c < v.num_cols; ++c) {
          out->push_back(v.value_at(c, i));
        }
      }
      return true;
    };
  };
  EXPECT_EQ(enc.BatchScan(kBlockSlots, collect(&enc_cells)),
            raw.BatchScan(kBlockSlots, collect(&raw_cells)));
  EXPECT_EQ(enc_cells, raw_cells);
}

TEST(ColumnBlocks, SkipMaskMatchesBruteForceAndEstimates) {
  ColumnTable t(KvSchema());
  for (int64_t k = 0; k < 5000; ++k) t.Apply(Upsert(k));  // 4 blocks + tail
  ASSERT_EQ(t.SealedBlockCount(), 4u);

  ZonePred pred;
  pred.col = 0;
  pred.op = ZonePred::Op::kLt;
  pred.lit = Value::Int(1500);  // survives blocks 0-1, refutes 2-3
  const std::span<const ZonePred> preds(&pred, 1);

  {
    ColumnTable::ScanPin pin(t);
    const std::vector<uint8_t> mask = pin.ComputeSkipMask(preds);
    ASSERT_EQ(mask.size(), 5u);
    EXPECT_EQ(mask[0], 0);
    EXPECT_EQ(mask[1], 0);
    EXPECT_EQ(mask[2], 1);
    EXPECT_EQ(mask[3], 1);
    EXPECT_EQ(mask[4], 0);  // tail is never skippable
  }
  // The router's estimate charges exactly the non-skipped slots. The pin
  // must be gone first: EstimateScanSlots takes its own shared latch, and
  // re-acquiring a latch this thread already holds is UB (and deadlocks
  // behind a queued writer) — the router only ever estimates BEFORE
  // pinning, so the test mirrors that order.
  EXPECT_EQ(t.EstimateScanSlots(preds),
            2 * kBlockSlots + (5000 - 4 * kBlockSlots));
}

TEST(ColumnBlocks, DeleteChurnTriggersReencodeAndTightensZones) {
  ColumnTable t(KvSchema());
  for (int64_t k = 0; k < static_cast<int64_t>(kBlockSlots) + 100; ++k) {
    t.Apply(Upsert(k));
  }
  ASSERT_EQ(t.SealedBlockCount(), 1u);

  // Kill exactly half of the sealed block: the 512th delete crosses the
  // churn threshold and re-encodes the block with the survivors only, so
  // the key zone tightens from [0, 1023] to [512, 1023] and a k<500 scan
  // can now skip the block (while k<600 still cannot).
  for (int64_t k = 0; k < 512; ++k) t.Apply(Delete(k));
  EXPECT_EQ(t.LiveRowCount(), kBlockSlots + 100 - 512);

  ZonePred pred;
  pred.col = 0;
  pred.op = ZonePred::Op::kLt;
  pred.lit = Value::Int(500);
  EXPECT_EQ(t.EstimateScanSlots(std::span<const ZonePred>(&pred, 1)),
            100u);  // tail only
  pred.lit = Value::Int(600);
  EXPECT_EQ(t.EstimateScanSlots(std::span<const ZonePred>(&pred, 1)),
            kBlockSlots + 100);

  // Survivors still read back exactly.
  for (int64_t k = 512; k < static_cast<int64_t>(kBlockSlots) + 100; ++k) {
    auto row = t.Get({Value::Int(k)});
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[1], Value::Int(k % 50));
  }
  EXPECT_FALSE(t.Get({Value::Int(10)}).has_value());

  // A fully-dead block is skipped without any predicate at all.
  for (int64_t k = 512; k < static_cast<int64_t>(kBlockSlots); ++k) {
    t.Apply(Delete(k));
  }
  EXPECT_EQ(t.EstimateScanSlots({}), 100u);
}

}  // namespace
}  // namespace olxp::storage
