// Smoke tests for the fuzz/ harnesses. Three jobs:
//   1. replay every checked-in corpus file through its harness entry point,
//      so the corpus stays green in ordinary (non-fuzzer) builds;
//   2. prove the differential oracle actually detects divergence, by
//      perturbing one execution path through the test-only hook — a
//      comparator that can never fire is worse than none;
//   3. pin the engine-level fixes the fuzzers surfaced (checked arithmetic,
//      lexer range checking) as direct regression tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "fuzz/common/codec_harness.h"
#include "fuzz/common/config_harness.h"
#include "fuzz/common/sql_oracle.h"
#include "fuzz/common/wal_harness.h"
#include "tests/result_strings.h"

namespace olxp {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles(const std::string& target) {
  const fs::path dir = fs::path(OLXP_FUZZ_CORPUS_DIR) / target;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<uint8_t> ReadBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

template <typename Fn>
void ReplayCorpus(const std::string& target, Fn one) {
  const auto files = CorpusFiles(target);
  ASSERT_FALSE(files.empty()) << "empty corpus: " << target;
  for (const auto& f : files) {
    SCOPED_TRACE(f.filename().string());
    const auto bytes = ReadBytes(f);
    EXPECT_EQ(0, one(bytes.data(), bytes.size()));
  }
}

TEST(FuzzCorpus, SqlDifferentialReplays) {
  ReplayCorpus("sql_differential", fuzz::SqlOne);
}

TEST(FuzzCorpus, WalRecoveryReplays) {
  ReplayCorpus("wal_recovery", fuzz::WalOne);
}

TEST(FuzzCorpus, BlockCodecReplays) {
  ReplayCorpus("block_codec", fuzz::CodecOne);
}

TEST(FuzzCorpus, ConfigReplays) { ReplayCorpus("config", fuzz::ConfigOne); }

// The oracle must flag a path whose rows were tampered with. Perturb the
// serial vectorized result (drop a row / rewrite a cell) and expect a
// non-empty divergence report; clear the hook and expect agreement again.
TEST(DifferentialOracle, DetectsRowDivergence) {
  fuzz::SetResultPerturberForTest([](sql::ResultSet* rs) {
    if (!rs->rows.empty()) rs->rows.pop_back();
  });
  const std::string report =
      fuzz::RunSqlDifferential("SELECT a, b FROM t WHERE a <= 5 ORDER BY a");
  fuzz::SetResultPerturberForTest(nullptr);
  EXPECT_NE("", report);
  EXPECT_NE(std::string::npos, report.find("DIVERGENCE"));
}

TEST(DifferentialOracle, DetectsCellDivergence) {
  fuzz::SetResultPerturberForTest([](sql::ResultSet* rs) {
    if (!rs->rows.empty() && !rs->rows[0].empty()) {
      rs->rows[0][0] = Value::Int(424242);
    }
  });
  const std::string report = fuzz::RunSqlDifferential("SELECT COUNT(*) FROM t");
  fuzz::SetResultPerturberForTest(nullptr);
  EXPECT_NE("", report);
}

TEST(DifferentialOracle, AgreesWhenUnperturbed) {
  EXPECT_EQ("", fuzz::RunSqlDifferential(
                    "SELECT d, COUNT(*), SUM(b) FROM t GROUP BY d"));
  EXPECT_EQ("", fuzz::RunSqlDifferential("SELECT COUNT(*) FROM t"));
}

// ---------------------------------------------------------------------------
// Regression tests for the defects the fuzzers surfaced. Each of these was
// UB or a silent wrong answer before the fix; the minimized inputs are also
// checked in under fuzz/corpus/sql_differential/regress_*.
// ---------------------------------------------------------------------------

class FuzzRegressionTest : public ::testing::Test {
 protected:
  FuzzRegressionTest() {
    auto profile = engine::EngineProfile::TiDbLike();
    profile.replication_lag_micros = 0;
    profile.vacuum_interval_us = 0;
    profile.durability = storage::DurabilityMode::kOff;
    profile.wal_dir.clear();
    db_ = std::make_unique<engine::Database>(profile);
    session_ = db_->CreateSession();
    // One row holding INT64_MIN, one holding INT64_MAX (only reachable via
    // parameters: the dialect has no INT64_MIN literal).
    Exec("CREATE TABLE edge (id INT PRIMARY KEY, x INT)");
    Exec("INSERT INTO edge VALUES (?, ?)",
         {Value::Int(1), Value::Int(std::numeric_limits<int64_t>::min())});
    Exec("INSERT INTO edge VALUES (?, ?)",
         {Value::Int(2), Value::Int(std::numeric_limits<int64_t>::max())});
    db_->WaitReplicaCaughtUp();
  }

  void Exec(const std::string& sql, std::vector<Value> params = {}) {
    auto st = session_->Execute(sql, params);
    ASSERT_TRUE(st.ok()) << sql << ": " << st.status().ToString();
  }

  std::vector<std::string> Query(const std::string& sql) {
    auto st = session_->Execute(sql);
    EXPECT_TRUE(st.ok()) << sql << ": " << st.status().ToString();
    if (!st.ok()) return {};
    return Stringify(*st);
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::Session> session_;
};

// lexer.cc: strtoll silently saturated out-of-range integer literals to
// INT64_MAX, so `SELECT 99999999999999999999 ...` computed with a wrong
// number instead of failing.
TEST_F(FuzzRegressionTest, OutOfRangeIntLiteralIsRejected) {
  for (const char* sql : {"SELECT 99999999999999999999 FROM edge",
                          "SELECT x FROM edge WHERE x > 12345678901234567890",
                          "SELECT -99999999999999999999 FROM edge"}) {
    auto st = session_->Execute(sql);
    ASSERT_FALSE(st.ok()) << sql;
    EXPECT_NE(std::string::npos, st.status().ToString().find("out of range"))
        << st.status().ToString();
  }
}

// INT64_MIN % -1 traps with SIGFPE on x86 when evaluated with the raw C++
// operator even though the mathematical result (0) is representable; the
// dialect now defines x % -1 == 0 for every x. (INT64_MIN / -1 is already
// safe: `/` always divides as double.)
TEST_F(FuzzRegressionTest, ModMinByMinusOneIsZero) {
  EXPECT_EQ(Query("SELECT x % -1 FROM edge WHERE id = 1"),
            (std::vector<std::string>{"0|"}));
  EXPECT_EQ(Query("SELECT x % -1 FROM edge WHERE id = 2"),
            (std::vector<std::string>{"0|"}));
}

// Signed overflow in +, -, *, and unary minus is UB; the engine now detects
// it with checked arithmetic and yields NULL (the same answer as x % 0).
TEST_F(FuzzRegressionTest, IntOverflowYieldsNull) {
  EXPECT_EQ(Query("SELECT x + 1 FROM edge WHERE id = 2"),
            (std::vector<std::string>{"NULL|"}));
  EXPECT_EQ(Query("SELECT x - 1 FROM edge WHERE id = 1"),
            (std::vector<std::string>{"NULL|"}));
  EXPECT_EQ(Query("SELECT x * 2 FROM edge WHERE id = 2"),
            (std::vector<std::string>{"NULL|"}));
  EXPECT_EQ(Query("SELECT -x FROM edge WHERE id = 1"),
            (std::vector<std::string>{"NULL|"}));
  // In-range arithmetic is unaffected.
  EXPECT_EQ(Query("SELECT x + 0 FROM edge WHERE id = 2"),
            (std::vector<std::string>{"9223372036854775807|"}));
  EXPECT_EQ(Query("SELECT -x FROM edge WHERE id = 2"),
            (std::vector<std::string>{"-9223372036854775807|"}));
}

// SUM accumulation overflow was UB in the aggregate accumulator.
TEST_F(FuzzRegressionTest, SumOverflowYieldsNull) {
  Query("CREATE TABLE big (id INT PRIMARY KEY, x INT)");
  Query("INSERT INTO big VALUES (1, 9223372036854775807)");
  Query("INSERT INTO big VALUES (2, 9223372036854775807)");
  db_->WaitReplicaCaughtUp();
  EXPECT_EQ(Query("SELECT SUM(x) FROM big"),
            (std::vector<std::string>{"NULL|"}));
}

// The differential oracle agrees on every regression input: the fixes
// landed in both expression engines, not just one.
TEST_F(FuzzRegressionTest, EnginesAgreeOnEdgeArithmetic) {
  for (const char* sql : {
           "SELECT (-9223372036854775807 - 1) % (-1) FROM t WHERE a = 1",
           "SELECT 9223372036854775807 + 1, 9223372036854775807 * 2 "
           "FROM t WHERE a = 1",
           "SELECT -(-9223372036854775807 - 1) FROM t WHERE a = 1",
           "SELECT b / 0, b % 0 FROM t WHERE a < 10",
           "SELECT SUM(b * 92233720368547758) FROM t",
       }) {
    EXPECT_EQ("", fuzz::RunSqlDifferential(sql)) << sql;
  }
}

}  // namespace
}  // namespace olxp
