#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace olxp {
namespace {

// ---------------------------------- Status --------------------------------

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "Ok");
  Status nf = Status::NotFound("row 7");
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ(nf.code(), StatusCode::kNotFound);
  EXPECT_EQ(nf.ToString(), "NotFound: row 7");
}

TEST(Status, RetryableClassification) {
  EXPECT_TRUE(Status::Conflict().IsRetryable());
  EXPECT_TRUE(Status::LockTimeout().IsRetryable());
  EXPECT_FALSE(Status::Aborted().IsRetryable());
  EXPECT_FALSE(Status::NotFound().IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
}

TEST(StatusOr, ValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::InvalidArgument("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------- Value ---------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Timestamp(123).AsInt(), 123);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_FALSE(Value::Bool(false).AsBool());
}

TEST(Value, CrossNumericComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Timestamp(5)), 0);
}

TEST(Value, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-1000000)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(Value, LargeIntegersCompareExactly) {
  // Doubles lose precision above 2^53; int compare must stay exact.
  int64_t big = (int64_t{1} << 55) + 1;
  EXPECT_GT(Value::Int(big).Compare(Value::Int(big - 1)), 0);
}

TEST(Value, CastTo) {
  EXPECT_EQ(Value::String("42").CastTo(ValueType::kInt)->AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::String("2.5").CastTo(ValueType::kDouble)->AsDouble(),
                   2.5);
  EXPECT_EQ(Value::Int(3).CastTo(ValueType::kString)->AsString(), "3");
  EXPECT_FALSE(Value::String("abc").CastTo(ValueType::kInt).ok());
  EXPECT_TRUE(Value::Null().CastTo(ValueType::kInt)->is_null());
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(Value, HashAvoidsStructuredCollisions) {
  // Regression for the lock-table collision found during bring-up:
  // composite keys (w, i) on a small integer grid must not collide.
  std::set<size_t> hashes;
  int collisions = 0;
  for (int w = 1; w <= 8; ++w) {
    for (int i = 1; i <= 4096; ++i) {
      size_t h = HashRow({Value::Int(w), Value::Int(i)});
      if (!hashes.insert(h).second) ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Value, IntegralDoubleHashesLikeInt) {
  EXPECT_EQ(Value::Double(42.0).Hash(), Value::Int(42).Hash());
}

// ----------------------------------- Rng -----------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Uniform(int64_t{5}, int64_t{9});
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(int64_t{0},
                                                         int64_t{9}));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NURandWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NURand(1023, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rng, LastNameSyllables) {
  EXPECT_EQ(Rng::LastName(0), "BARBARBAR");
  EXPECT_EQ(Rng::LastName(999), "EINGEINGEING");
  EXPECT_EQ(Rng::LastName(371), "PRICALLYOUGHT");
}

TEST(Rng, StringHelpers) {
  Rng rng(9);
  std::string s = rng.AlnumString(12);
  EXPECT_EQ(s.size(), 12u);
  std::string d = rng.DigitString(9);
  EXPECT_EQ(d.size(), 9u);
  for (char c : d) EXPECT_TRUE(c >= '0' && c <= '9');
  for (int i = 0; i < 50; ++i) {
    std::string v = rng.AlnumString(3, 8);
    EXPECT_GE(v.size(), 3u);
    EXPECT_LE(v.size(), 8u);
  }
}

// -------------------------------- Histogram --------------------------------

TEST(Histogram, BasicStats) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1000);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_NEAR(h.Mean(), 50500, 1);
  EXPECT_NEAR(h.Median(), 50000, 5000);
  EXPECT_NEAR(h.P90(), 90000, 9000);
  EXPECT_NEAR(h.StdDev(), 28866, 300);
}

TEST(Histogram, PercentileMonotone) {
  LatencyHistogram h;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    h.Record(rng.Uniform(int64_t{10}, int64_t{1000000}));
  }
  double last = 0;
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.999, 0.9999}) {
    double v = h.Percentile(q);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_LE(last, static_cast<double>(h.max()));
}

TEST(Histogram, MergeMatchesCombined) {
  LatencyHistogram a, b, all;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(int64_t{1}, int64_t{50000});
    (i % 2 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.Mean(), all.Mean());
  EXPECT_NEAR(a.Median(), all.Median(), 1);
}

TEST(Histogram, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0);
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

// --------------------------------- strings ---------------------------------

TEST(Strings, SplitTrimJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("aBc"), "abc");
  EXPECT_TRUE(EqualsNoCase("SELECT", "select"));
  EXPECT_TRUE(StartsWithNoCase("Warehouse", "ware"));
  EXPECT_FALSE(StartsWithNoCase("ware", "warehouse"));
}

TEST(Strings, SqlLikeSemantics) {
  EXPECT_TRUE(SqlLike("hello", "hello"));
  EXPECT_TRUE(SqlLike("hello", "h%"));
  EXPECT_TRUE(SqlLike("hello", "%llo"));
  EXPECT_TRUE(SqlLike("hello", "%ell%"));
  EXPECT_TRUE(SqlLike("hello", "h_llo"));
  EXPECT_FALSE(SqlLike("hello", "h_lo"));
  EXPECT_TRUE(SqlLike("", "%"));
  EXPECT_FALSE(SqlLike("", "_"));
  EXPECT_TRUE(SqlLike("abc", "%%c"));
  EXPECT_FALSE(SqlLike("abc", "c%"));
  // Backtracking case.
  EXPECT_TRUE(SqlLike("aXbXcXd", "%X%X%d"));
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

// ---------------------------------- Config ---------------------------------

TEST(Config, ParseSectionsAndTypes) {
  auto cfg = Config::Parse(
      "# comment\n"
      "top = 1\n"
      "[workload]\n"
      "benchmark = subenchmark\n"
      "rate = 42.5\n"
      "weights = 45, 43, 4, 4, 4\n"
      "open_loop = true\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("top", 0).value(), 1);
  EXPECT_EQ(cfg->GetString("workload.benchmark", ""), "subenchmark");
  EXPECT_DOUBLE_EQ(cfg->GetDouble("workload.rate", 0).value(), 42.5);
  EXPECT_TRUE(cfg->GetBool("workload.open_loop", false).value());
  auto weights = cfg->GetDoubleList("workload.weights", {});
  ASSERT_TRUE(weights.ok());
  ASSERT_EQ(weights->size(), 5u);
  EXPECT_DOUBLE_EQ((*weights)[0], 45);
}

TEST(Config, CaseInsensitiveAndDefaults) {
  auto cfg = Config::Parse("[SUT]\nProfile = tidb-like\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetString("sut.profile", ""), "tidb-like");
  EXPECT_EQ(cfg->GetInt("absent", 9).value(), 9);
  EXPECT_FALSE(cfg->Has("absent"));
}

TEST(Config, Errors) {
  EXPECT_FALSE(Config::Parse("[broken\n").ok());
  EXPECT_FALSE(Config::Parse("novalue\n").ok());
  auto cfg = Config::Parse("x = abc\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(cfg->GetInt("x", 0).ok());
  EXPECT_FALSE(cfg->GetBool("x", false).ok());
}

TEST(Config, LaterDuplicateWins) {
  auto cfg = Config::Parse("a = 1\na = 2\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("a", 0).value(), 2);
}

TEST(Config, ValidatingParseAcceptsKnownKeys) {
  auto cfg = Config::Parse("[sut]\nexec_threads = 4\nProfile = tidb-like\n",
                           {"sut.exec_threads", "sut.profile"});
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("sut.exec_threads", 0).value(), 4);
}

TEST(Config, UnknownKeyRejectedWithSuggestion) {
  auto cfg = Config::Parse("[sut]\nexec_treads = 4\n",
                           {"sut.exec_threads", "sut.profile"});
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
  const std::string msg = cfg.status().ToString();
  EXPECT_NE(msg.find("exec_treads"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'sut.exec_threads'"), std::string::npos)
      << msg;
}

TEST(Config, UnknownKeyFarFromEverythingGetsNoSuggestion) {
  auto cfg = Config::Parse("completely_unrelated = 1\n",
                           {"sut.exec_threads", "sut.profile"});
  ASSERT_FALSE(cfg.ok());
  const std::string msg = cfg.status().ToString();
  EXPECT_NE(msg.find("unknown config key"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
}

TEST(Config, PermissiveParseStillAcceptsAnything) {
  // The single-argument Parse keeps the open-world behaviour: tools that
  // stash ad-hoc keys in their configs are unaffected by validation.
  auto cfg = Config::Parse("anything_goes = 1\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->Has("anything_goes"));
}

TEST(Config, ValidateKeysIsCaseInsensitive) {
  auto cfg = Config::Parse("[SUT]\nEXEC_THREADS = 2\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->ValidateKeys({"Sut.Exec_Threads"}).ok());
}

}  // namespace
}  // namespace olxp
