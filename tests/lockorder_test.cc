#include "common/lockorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "engine/database.h"
#include "engine/profile.h"

namespace olxp {
namespace {

using sync::LockRank;

// The hierarchy's public surface is always compiled, witness or not.
TEST(LockRankNames, EveryRankHasAName) {
  for (LockRank r : {LockRank::kCheckpoint, LockRank::kVacuumPass,
                     LockRank::kReplicatorApply, LockRank::kLockManagerShard,
                     LockRank::kOracleCommit, LockRank::kSnapshotRegistry,
                     LockRank::kCatalog, LockRank::kTableLatch,
                     LockRank::kVacuumState, LockRank::kWalIo,
                     LockRank::kWalPending, LockRank::kCommitLog,
                     LockRank::kObs, LockRank::kWorkerPool,
                     LockRank::kClient}) {
    EXPECT_STRNE(sync::LockRankName(r), "?");
  }
}

TEST(LockOrderWitness, ReleaseBuildHooksAreNoOps) {
  // Compiles and runs in BOTH configurations; in Release (kEnabled=false)
  // this pins that the no-op inlines exist and cost nothing observable.
  sync::Mutex mu{LockRank::kClient, "test.noop"};
  mu.Lock();
  mu.Unlock();
  if (!sync::lockorder::kEnabled) {
    EXPECT_EQ(sync::lockorder::EdgesObserved(), 0);
    EXPECT_EQ(sync::lockorder::HeldCount(), 0u);
    EXPECT_EQ(sync::lockorder::SetViolationHandler(nullptr), nullptr);
  }
}

// StatsJson surfaces hierarchy coverage whether or not the witness is
// compiled in (the gauge just stays 0 in Release).
TEST(LockOrderWitness, StatsJsonExportsEdgeCoverageGauge) {
  engine::Database db(engine::EngineProfile::TiDbLike());
  const std::string stats = db.StatsJson();
  EXPECT_NE(stats.find("lockorder.edges_observed"), std::string::npos);
  if (sync::lockorder::kEnabled) {
    // Constructing the substrate already nests locks (vacuum, replicator,
    // registry), so coverage cannot be zero in a witness build.
    EXPECT_GT(sync::lockorder::EdgesObserved(), 0);
  }
}

#if defined(OLXP_LOCK_ORDER)

// Captures violations instead of aborting, restoring the previous handler
// (and a clean held stack) on scope exit.
std::vector<sync::lockorder::Violation>* g_violations = nullptr;

void CapturingHandler(const sync::lockorder::Violation& v) {
  if (g_violations != nullptr) g_violations->push_back(v);
}

class HandlerGuard {
 public:
  explicit HandlerGuard(std::vector<sync::lockorder::Violation>* sink) {
    g_violations = sink;
    prev_ = sync::lockorder::SetViolationHandler(&CapturingHandler);
  }
  ~HandlerGuard() {
    sync::lockorder::SetViolationHandler(prev_);
    g_violations = nullptr;
  }

 private:
  sync::lockorder::Handler prev_;
};

TEST(LockOrderWitness, RankInversionProducesWitness) {
  std::vector<sync::lockorder::Violation> violations;
  HandlerGuard guard(&violations);

  sync::Mutex high{LockRank::kWalPending, "test.high"};
  sync::Mutex low{LockRank::kTableLatch, "test.low"};
  {
    sync::MutexLock hold_high(high);
    sync::MutexLock hold_low(low);  // wrong order: 800 under 1000
  }
  ASSERT_EQ(violations.size(), 1u);
  const sync::lockorder::Violation& v = violations[0];
  EXPECT_STREQ(v.kind, "rank-inversion");
  EXPECT_STREQ(v.holding_name, "test.high");
  EXPECT_EQ(v.holding_rank, LockRank::kWalPending);
  EXPECT_STREQ(v.acquiring_name, "test.low");
  EXPECT_EQ(v.acquiring_rank, LockRank::kTableLatch);
  // The report names both locks, both ranks, and the held stack.
  const std::string report = v.Report();
  EXPECT_NE(report.find("test.high"), std::string::npos);
  EXPECT_NE(report.find("test.low"), std::string::npos);
  EXPECT_NE(report.find("WalPending"), std::string::npos);
  EXPECT_NE(report.find("TableLatch"), std::string::npos);
  EXPECT_NE(report.find("test.high(WalPending)"), std::string::npos);
}

TEST(LockOrderWitness, CorrectOrderProducesNoWitness) {
  std::vector<sync::lockorder::Violation> violations;
  HandlerGuard guard(&violations);

  sync::Mutex outer{LockRank::kOracleCommit, "test.outer"};
  sync::Mutex inner{LockRank::kWalPending, "test.inner"};
  for (int i = 0; i < 3; ++i) {
    sync::MutexLock a(outer);
    sync::MutexLock b(inner);
  }
  EXPECT_TRUE(violations.empty());
}

TEST(LockOrderWitness, AcquiredAfterCycleDetectedAcrossThreads) {
  std::vector<sync::lockorder::Violation> violations;
  HandlerGuard guard(&violations);

  // Three same-rank siblings. A second thread establishes a -> b -> c;
  // this thread then closes the cycle by taking a under c.
  sync::SharedMutex a{LockRank::kTableLatch, "test.table_a"};
  sync::SharedMutex b{LockRank::kTableLatch, "test.table_b"};
  sync::SharedMutex c{LockRank::kTableLatch, "test.table_c"};

  std::thread establisher([&] {
    {
      sync::ReaderLock la(a);
      sync::ReaderLock lb(b);
    }
    {
      sync::ReaderLock lb(b);
      sync::ReaderLock lc(c);
    }
  });
  establisher.join();
  EXPECT_TRUE(violations.empty());  // consistent order so far

  {
    sync::ReaderLock lc(c);
    sync::ReaderLock la(a);  // c -> a closes a -> b -> c -> a
  }
  ASSERT_EQ(violations.size(), 1u);
  const sync::lockorder::Violation& v = violations[0];
  EXPECT_STREQ(v.kind, "cycle");
  EXPECT_STREQ(v.holding_name, "test.table_c");
  EXPECT_STREQ(v.acquiring_name, "test.table_a");
  EXPECT_EQ(v.holding_rank, LockRank::kTableLatch);
  EXPECT_EQ(v.acquiring_rank, LockRank::kTableLatch);
  // Both acquisition orders appear in the report: this thread's stack and
  // the recorded conflicting prior order.
  EXPECT_NE(v.held_stack.find("test.table_c"), std::string::npos);
  EXPECT_FALSE(v.prior_stack.empty());
  const std::string report = v.Report();
  EXPECT_NE(report.find("conflicting prior order"), std::string::npos);

  // The offending edge was reported but NOT recorded: repeating the bad
  // order trips the same deterministic witness again.
  violations.clear();
  {
    sync::ReaderLock lc(c);
    sync::ReaderLock la(a);
  }
  EXPECT_EQ(violations.size(), 1u);
}

TEST(LockOrderWitness, SameRankSiblingsInConsistentOrderAllowed) {
  std::vector<sync::lockorder::Violation> violations;
  HandlerGuard guard(&violations);

  sync::Mutex s0{LockRank::kLockManagerShard, "test.shard0"};
  sync::Mutex s1{LockRank::kLockManagerShard, "test.shard1"};
  for (int i = 0; i < 3; ++i) {
    sync::MutexLock a(s0);
    sync::MutexLock b(s1);  // always the same direction: no cycle
  }
  EXPECT_TRUE(violations.empty());
  EXPECT_GE(sync::lockorder::EdgesObserved(), 1);
}

TEST(LockOrderWitness, CondVarWaitKeepsHeldStackIntact) {
  std::vector<sync::lockorder::Violation> violations;
  HandlerGuard guard(&violations);

  sync::Mutex mu{LockRank::kVacuumState, "test.cv_mu"};
  sync::CondVar cv;
  {
    sync::MutexLock lk(mu);
    EXPECT_EQ(sync::lockorder::HeldCount(), 1u);
    // The wait borrows the underlying std::mutex (adopt/release), so the
    // witness keeps treating the lock as held across the sleep — the
    // correct function-boundary semantics.
    bool r = cv.WaitFor(lk, std::chrono::milliseconds(5), [] {
      return false;
    });
    EXPECT_FALSE(r);
    EXPECT_EQ(sync::lockorder::HeldCount(), 1u);
    // Nesting a higher rank after the wait is still clean.
    sync::Mutex inner{LockRank::kObs, "test.cv_inner"};
    sync::MutexLock lk2(inner);
    EXPECT_EQ(sync::lockorder::HeldCount(), 2u);
  }
  EXPECT_EQ(sync::lockorder::HeldCount(), 0u);
  EXPECT_TRUE(violations.empty());
}

TEST(LockOrderWitness, ReleaseOutOfOrderTolerated) {
  std::vector<sync::lockorder::Violation> violations;
  HandlerGuard guard(&violations);

  sync::Mutex a{LockRank::kCatalog, "test.ooo_a"};
  sync::Mutex b{LockRank::kTableLatch, "test.ooo_b"};
  a.Lock();
  b.Lock();
  EXPECT_EQ(sync::lockorder::HeldCount(), 2u);
  a.Unlock();  // not LIFO: a released while b is still held
  EXPECT_EQ(sync::lockorder::HeldCount(), 1u);
  b.Unlock();
  EXPECT_EQ(sync::lockorder::HeldCount(), 0u);
  EXPECT_TRUE(violations.empty());
}

TEST(LockOrderWitness, EdgeCoverageGrowsWithNewNesting) {
  std::vector<sync::lockorder::Violation> violations;
  HandlerGuard guard(&violations);

  const int64_t before = sync::lockorder::EdgesObserved();
  sync::Mutex outer{LockRank::kVacuumPass, "test.cov_outer"};
  sync::Mutex inner{LockRank::kVacuumState, "test.cov_inner"};
  for (int i = 0; i < 5; ++i) {
    sync::MutexLock a(outer);
    sync::MutexLock b(inner);
  }
  // A brand-new pair counts exactly once no matter how often it repeats.
  EXPECT_EQ(sync::lockorder::EdgesObserved(), before + 1);
  EXPECT_TRUE(violations.empty());
}

#endif  // OLXP_LOCK_ORDER

}  // namespace
}  // namespace olxp
