#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/session.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace olxp {
namespace {

// --------------------------------- lexer -----------------------------------

TEST(Lexer, TokenKindsAndPositions) {
  auto toks = sql::Tokenize("SELECT a.b, 'it''s', 1.5e2, 42, ? FROM t;");
  ASSERT_TRUE(toks.ok());
  std::vector<sql::TokenKind> kinds;
  for (const auto& t : *toks) kinds.push_back(t.kind);
  using K = sql::TokenKind;
  std::vector<K> expect = {K::kKeyword,      K::kIdentifier, K::kDot,
                           K::kIdentifier,   K::kComma,      K::kStringLiteral,
                           K::kComma,        K::kDoubleLiteral, K::kComma,
                           K::kIntLiteral,   K::kComma,      K::kParam,
                           K::kKeyword,      K::kIdentifier, K::kSemicolon,
                           K::kEnd};
  EXPECT_EQ(kinds, expect);
  EXPECT_EQ((*toks)[5].text, "it's");  // '' escape
  EXPECT_DOUBLE_EQ((*toks)[7].double_val, 150.0);
}

TEST(Lexer, OperatorsAndComments) {
  auto toks = sql::Tokenize("a >= 1 AND b <> 2 -- trailing comment\n<= !=");
  ASSERT_TRUE(toks.ok());
  using K = sql::TokenKind;
  EXPECT_EQ((*toks)[1].kind, K::kGe);
  EXPECT_EQ((*toks)[5].kind, K::kNe);
  EXPECT_EQ((*toks)[7].kind, K::kLe);
  EXPECT_EQ((*toks)[8].kind, K::kNe);
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(sql::Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(sql::Tokenize("a @ b").ok());
  EXPECT_FALSE(sql::Tokenize("a ! b").ok());
}

// --------------------------------- parser ----------------------------------

TEST(Parser, SelectClauses) {
  auto stmt = sql::Parse(
      "SELECT DISTINCT a, SUM(b) AS total FROM t1, t2 x WHERE a = 1 AND "
      "b BETWEEN 2 AND 3 OR c LIKE 'x%' GROUP BY a HAVING COUNT(*) > 1 "
      "ORDER BY total DESC, a LIMIT 7");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& sel = std::get<sql::SelectStmt>(*stmt);
  EXPECT_TRUE(sel.distinct);
  ASSERT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[1].alias, "total");
  ASSERT_EQ(sel.from.size(), 2u);
  EXPECT_EQ(sel.from[1].alias, "x");
  ASSERT_NE(sel.where, nullptr);
  ASSERT_EQ(sel.group_by.size(), 1u);
  ASSERT_NE(sel.having, nullptr);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_TRUE(sel.order_by[0].desc);
  EXPECT_FALSE(sel.order_by[1].desc);
  EXPECT_EQ(sel.limit, 7);
}

TEST(Parser, JoinOnDesugarsToWhere) {
  auto stmt = sql::Parse(
      "SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y "
      "WHERE a.z > 0");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<sql::SelectStmt>(*stmt);
  EXPECT_EQ(sel.from.size(), 3u);
  // where = ((a.x=b.x AND b.y=c.y) AND a.z>0) as conjuncts
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->kind, sql::ExprKind::kBinary);
  EXPECT_EQ(sel.where->binary_op, sql::BinaryOp::kAnd);
}

TEST(Parser, InsertUpdateDelete) {
  auto ins = sql::Parse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(ins.ok());
  const auto& i = std::get<sql::InsertStmt>(*ins);
  EXPECT_EQ(i.columns.size(), 2u);
  EXPECT_EQ(i.rows.size(), 2u);

  auto upd = sql::Parse("UPDATE t SET a = a + 1, b = ? WHERE c = 2");
  ASSERT_TRUE(upd.ok());
  const auto& u = std::get<sql::UpdateStmt>(*upd);
  EXPECT_EQ(u.assignments.size(), 2u);
  ASSERT_NE(u.where, nullptr);

  auto del = sql::Parse("DELETE FROM t WHERE a IN (1, 2, 3)");
  ASSERT_TRUE(del.ok());
  EXPECT_NE(std::get<sql::DeleteStmt>(*del).where, nullptr);
}

TEST(Parser, CreateTableWithConstraints) {
  auto stmt = sql::Parse(
      "CREATE TABLE t (a INT NOT NULL, b VARCHAR(20), c DOUBLE, "
      "PRIMARY KEY (a, b), FOREIGN KEY (c) REFERENCES other (x))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& ct = std::get<sql::CreateTableStmt>(*stmt);
  EXPECT_EQ(ct.columns.size(), 3u);
  EXPECT_TRUE(ct.columns[0].not_null);
  EXPECT_EQ(ct.primary_key.size(), 2u);
  ASSERT_EQ(ct.foreign_keys.size(), 1u);
  EXPECT_EQ(ct.foreign_keys[0].ref_table, "other");
}

TEST(Parser, ParamNumbering) {
  auto stmt = sql::Parse("SELECT a FROM t WHERE b = ? AND c = ? AND d = ?");
  ASSERT_TRUE(stmt.ok());
  // Parameters are numbered left to right 0..2 (checked via compile count
  // in executor tests; here just ensure the parse succeeded).
}

TEST(Parser, Errors) {
  EXPECT_FALSE(sql::Parse("SELECT FROM t").ok());
  EXPECT_FALSE(sql::Parse("SELECT a FROM").ok());
  EXPECT_FALSE(sql::Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(sql::Parse("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(sql::Parse("CREATE banana x").ok());
  EXPECT_FALSE(sql::Parse("SELECT a FROM t trailing garbage here").ok());
  EXPECT_FALSE(sql::Parse("UPDATE t SET").ok());
  EXPECT_FALSE(sql::Parse("SELECT a FROM t LIMIT x").ok());
}

// ----------------------------- execution fixture ---------------------------

class SqlExecTest : public ::testing::Test {
 protected:
  SqlExecTest() : db_(engine::EngineProfile::MemSqlLike()) {
    session_ = db_.CreateSession();
    session_->set_charging_enabled(false);
    Exec("CREATE TABLE emp (id INT PRIMARY KEY, dept VARCHAR(8), "
         "salary DOUBLE, boss INT, name VARCHAR(16))");
    Exec("CREATE INDEX idx_emp_dept ON emp (dept)");
    Exec("CREATE TABLE dept (dept VARCHAR(8) PRIMARY KEY, city VARCHAR(8))");
    Exec("INSERT INTO dept VALUES ('eng', 'sf'), ('ops', 'ny'), "
         "('hr', 'ld')");
    // 10 employees: eng 1..4, ops 5..7, hr 8..9, NULL-boss ceo 10.
    Exec("INSERT INTO emp VALUES "
         "(1,'eng',100.0,10,'ada'), (2,'eng',120.0,1,'bob'), "
         "(3,'eng',90.0,1,'cat'), (4,'eng',110.0,1,'dan'), "
         "(5,'ops',80.0,10,'eve'), (6,'ops',85.0,5,'fay'), "
         "(7,'ops',70.0,5,'gus'), (8,'hr',60.0,10,'hal'), "
         "(9,'hr',65.0,8,'ivy'), (10,'exec',300.0,NULL,'zed')");
  }

  sql::ResultSet Exec(const std::string& sql_text,
                      std::initializer_list<Value> params = {}) {
    auto rs = session_->Execute(sql_text, params);
    EXPECT_TRUE(rs.ok()) << sql_text << " => " << rs.status().ToString();
    return rs.ok() ? std::move(rs).value() : sql::ResultSet{};
  }

  Status TryExec(const std::string& sql_text) {
    auto rs = session_->Execute(sql_text);
    return rs.ok() ? Status::OK() : rs.status();
  }

  engine::Database db_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(SqlExecTest, PointAndRangeAndFullPaths) {
  auto point = Exec("SELECT name FROM emp WHERE id = 3");
  ASSERT_EQ(point.rows.size(), 1u);
  EXPECT_EQ(point.rows[0][0].AsString(), "cat");

  auto range = Exec("SELECT id FROM emp WHERE id >= 3 AND id <= 5 "
                    "ORDER BY id");
  ASSERT_EQ(range.rows.size(), 3u);
  EXPECT_EQ(range.rows[0][0].AsInt(), 3);

  auto between = Exec("SELECT COUNT(*) FROM emp WHERE id BETWEEN 2 AND 4");
  EXPECT_EQ(between.rows[0][0].AsInt(), 3);

  auto full = Exec("SELECT COUNT(*) FROM emp WHERE salary > 100");
  EXPECT_EQ(full.rows[0][0].AsInt(), 3);  // 120, 110, 300
}

TEST_F(SqlExecTest, SecondaryIndexPathMatchesFullScan) {
  auto via_index = Exec("SELECT id FROM emp WHERE dept = 'eng' ORDER BY id");
  auto via_scan = Exec(
      "SELECT id FROM emp WHERE dept LIKE 'eng' ORDER BY id");  // no index
  ASSERT_EQ(via_index.rows.size(), via_scan.rows.size());
  for (size_t i = 0; i < via_index.rows.size(); ++i) {
    EXPECT_EQ(via_index.rows[i][0].AsInt(), via_scan.rows[i][0].AsInt());
  }
}

TEST_F(SqlExecTest, Projection) {
  auto rs = Exec("SELECT name, salary * 2 AS double_pay FROM emp "
                 "WHERE id = 1");
  ASSERT_EQ(rs.column_names.size(), 2u);
  EXPECT_EQ(rs.column_names[1], "double_pay");
  EXPECT_DOUBLE_EQ(rs.rows[0][1].AsDouble(), 200.0);
  auto star = Exec("SELECT * FROM emp WHERE id = 1");
  EXPECT_EQ(star.rows[0].size(), 5u);
}

TEST_F(SqlExecTest, GlobalAggregates) {
  auto rs = Exec("SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), "
                 "MAX(salary) FROM emp");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 10);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].AsDouble(), 1080.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].AsDouble(), 108.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][3].AsDouble(), 60.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][4].AsDouble(), 300.0);
}

TEST_F(SqlExecTest, GlobalAggregateOverEmptyInput) {
  auto rs = Exec("SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp "
                 "WHERE id > 1000");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_TRUE(rs.rows[0][2].is_null());
}

TEST_F(SqlExecTest, GroupByHavingOrder) {
  auto rs = Exec(
      "SELECT dept, COUNT(*) AS n, AVG(salary) FROM emp GROUP BY dept "
      "HAVING COUNT(*) >= 2 ORDER BY n DESC, dept");
  ASSERT_EQ(rs.rows.size(), 3u);  // eng(4), ops(3), hr(2); exec filtered
  EXPECT_EQ(rs.rows[0][0].AsString(), "eng");
  EXPECT_EQ(rs.rows[0][1].AsInt(), 4);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].AsDouble(), 105.0);
  EXPECT_EQ(rs.rows[1][0].AsString(), "ops");
  EXPECT_EQ(rs.rows[2][0].AsString(), "hr");
}

TEST_F(SqlExecTest, GroupByExpression) {
  auto rs = Exec("SELECT id % 2, COUNT(*) FROM emp GROUP BY id % 2 "
                 "ORDER BY 1");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 5);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 5);
}

TEST_F(SqlExecTest, JoinsIncludingIndexedLookup) {
  auto rs = Exec(
      "SELECT e.name, d.city FROM emp e JOIN dept d ON d.dept = e.dept "
      "WHERE e.salary > 100 ORDER BY e.name");
  ASSERT_EQ(rs.rows.size(), 2u);  // bob(eng/sf), dan(eng/sf); zed has no dept
  EXPECT_EQ(rs.rows[0][0].AsString(), "bob");
  EXPECT_EQ(rs.rows[0][1].AsString(), "sf");

  // Self join via comma syntax: employee with their boss's name.
  auto self = Exec(
      "SELECT e.name, b.name FROM emp e, emp b WHERE b.id = e.boss AND "
      "e.dept = 'ops' ORDER BY e.id");
  ASSERT_EQ(self.rows.size(), 3u);
  EXPECT_EQ(self.rows[0][1].AsString(), "zed");
  EXPECT_EQ(self.rows[1][1].AsString(), "eve");
}

TEST_F(SqlExecTest, ScalarAndInSubqueries) {
  auto rs = Exec("SELECT name FROM emp WHERE salary = "
                 "(SELECT MAX(salary) FROM emp)");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "zed");

  auto in_sub = Exec(
      "SELECT COUNT(*) FROM emp WHERE dept IN (SELECT dept FROM dept "
      "WHERE city = 'sf')");
  EXPECT_EQ(in_sub.rows[0][0].AsInt(), 4);

  auto not_in = Exec(
      "SELECT COUNT(*) FROM emp WHERE dept NOT IN (SELECT dept FROM dept)");
  EXPECT_EQ(not_in.rows[0][0].AsInt(), 1);  // 'exec' is not in dept table
}

TEST_F(SqlExecTest, LikeAndCaseAndNullPredicates) {
  auto like = Exec("SELECT COUNT(*) FROM emp WHERE name LIKE '%a%'");
  EXPECT_EQ(like.rows[0][0].AsInt(), 5);  // ada, cat, dan, fay, hal

  auto not_like = Exec("SELECT COUNT(*) FROM emp WHERE name NOT LIKE '_a%'");
  EXPECT_EQ(not_like.rows[0][0].AsInt(), 6);  // cat,dan,fay,hal match _a%

  auto case_expr = Exec(
      "SELECT SUM(CASE WHEN salary >= 100 THEN 1 ELSE 0 END) FROM emp");
  EXPECT_EQ(case_expr.rows[0][0].AsInt(), 4);

  auto is_null = Exec("SELECT name FROM emp WHERE boss IS NULL");
  ASSERT_EQ(is_null.rows.size(), 1u);
  EXPECT_EQ(is_null.rows[0][0].AsString(), "zed");
  auto not_null = Exec("SELECT COUNT(*) FROM emp WHERE boss IS NOT NULL");
  EXPECT_EQ(not_null.rows[0][0].AsInt(), 9);
}

TEST_F(SqlExecTest, DistinctAndLimit) {
  auto d = Exec("SELECT DISTINCT dept FROM emp ORDER BY dept");
  EXPECT_EQ(d.rows.size(), 4u);
  auto lim = Exec("SELECT id FROM emp ORDER BY salary DESC LIMIT 3");
  ASSERT_EQ(lim.rows.size(), 3u);
  EXPECT_EQ(lim.rows[0][0].AsInt(), 10);
  EXPECT_EQ(lim.rows[1][0].AsInt(), 2);
  auto lim_nosort = Exec("SELECT id FROM emp LIMIT 4");
  EXPECT_EQ(lim_nosort.rows.size(), 4u);
}

TEST_F(SqlExecTest, OrderByPositionAliasExpression) {
  auto pos = Exec("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY 2 "
                  "DESC, 1 LIMIT 1");
  EXPECT_EQ(pos.rows[0][0].AsString(), "eng");
  auto alias = Exec("SELECT salary * 2 AS p FROM emp ORDER BY p LIMIT 1");
  EXPECT_DOUBLE_EQ(alias.rows[0][0].AsDouble(), 120.0);
  auto expr = Exec("SELECT name FROM emp ORDER BY salary + id DESC LIMIT 1");
  EXPECT_EQ(expr.rows[0][0].AsString(), "zed");
}

TEST_F(SqlExecTest, UpdateDeleteSemantics) {
  auto upd = Exec("UPDATE emp SET salary = salary + 10 WHERE dept = 'hr'");
  EXPECT_EQ(upd.affected_rows, 2);
  auto after = Exec("SELECT SUM(salary) FROM emp WHERE dept = 'hr'");
  EXPECT_DOUBLE_EQ(after.rows[0][0].AsDouble(), 145.0);

  auto del = Exec("DELETE FROM emp WHERE salary < 75");
  EXPECT_EQ(del.affected_rows, 2);  // gus (70) and hal (60+10)
  auto count = Exec("SELECT COUNT(*) FROM emp");
  EXPECT_EQ(count.rows[0][0].AsInt(), 8);

  auto none = Exec("UPDATE emp SET salary = 0 WHERE id = 12345");
  EXPECT_EQ(none.affected_rows, 0);
}

TEST_F(SqlExecTest, UpdateSelfReferencingAssignment) {
  Exec("UPDATE emp SET salary = salary * 2, boss = id WHERE id = 1");
  auto rs = Exec("SELECT salary, boss FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 200.0);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 1);
}

TEST_F(SqlExecTest, InsertColumnReorderAndDefaults) {
  Exec("INSERT INTO emp (salary, id, dept) VALUES (55.0, 42, 'eng')");
  auto rs = Exec("SELECT dept, salary, name FROM emp WHERE id = 42");
  EXPECT_EQ(rs.rows[0][0].AsString(), "eng");
  EXPECT_TRUE(rs.rows[0][2].is_null());  // unspecified -> NULL
}

TEST_F(SqlExecTest, ArithmeticEdgeCases) {
  auto rs = Exec("SELECT 7 / 2, 7 % 2, 7.0 / 2, -id FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 3.5);  // kDiv promotes
  EXPECT_EQ(rs.rows[0][1].AsInt(), 1);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].AsDouble(), 3.5);
  EXPECT_EQ(rs.rows[0][3].AsInt(), -1);
  auto div0 = Exec("SELECT COUNT(*) FROM emp WHERE salary / 0 > 1");
  EXPECT_EQ(div0.rows[0][0].AsInt(), 0);  // NULL comparisons are false
}

TEST_F(SqlExecTest, ExecutionErrors) {
  EXPECT_EQ(TryExec("SELECT x FROM emp").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryExec("SELECT id FROM missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(TryExec("SELECT e.id FROM emp x").code(),
            StatusCode::kInvalidArgument);  // unknown alias
  EXPECT_EQ(TryExec("SELECT dept FROM emp, dept").code(),
            StatusCode::kInvalidArgument);  // ambiguous column
  EXPECT_EQ(TryExec("INSERT INTO emp VALUES (1)").code(),
            StatusCode::kInvalidArgument);  // arity
  EXPECT_EQ(TryExec("INSERT INTO emp VALUES "
                    "(1,'eng',1.0,NULL,'dup')").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(TryExec("CREATE TABLE nopk (a INT)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryExec("SELECT MIN(salary) FROM emp WHERE MAX(id) > 1").code(),
            StatusCode::kInvalidArgument);  // aggregate in WHERE
}

TEST_F(SqlExecTest, ParameterBinding) {
  auto rs = Exec("SELECT name FROM emp WHERE dept = ? AND salary >= ? "
                 "ORDER BY id",
                 {Value::String("eng"), Value::Double(100.0)});
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "ada");
  // Missing parameter must fail, not crash.
  auto missing = session_->Execute("SELECT name FROM emp WHERE id = ?");
  EXPECT_FALSE(missing.ok());
}

/// Property sweep: GROUP BY aggregates agree with a manual computation for
/// several dataset shapes.
class GroupByProperty : public ::testing::TestWithParam<int> {};

TEST_P(GroupByProperty, MatchesManualAggregation) {
  const int n = GetParam();
  engine::Database db(engine::EngineProfile::MemSqlLike());
  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  ASSERT_TRUE(session->Execute("CREATE TABLE t (k INT PRIMARY KEY, g INT, "
                               "x DOUBLE)")
                  .ok());
  Rng rng(n);
  std::map<int64_t, std::pair<int64_t, double>> manual;  // g -> (count, sum)
  for (int i = 0; i < n; ++i) {
    int64_t g = rng.Uniform(int64_t{0}, int64_t{7});
    double x = rng.Uniform(-100.0, 100.0);
    manual[g].first++;
    manual[g].second += x;
    ASSERT_TRUE(session
                    ->Execute("INSERT INTO t VALUES (?, ?, ?)",
                              {Value::Int(i), Value::Int(g),
                               Value::Double(x)})
                    .ok());
  }
  auto rs = session->Execute(
      "SELECT g, COUNT(*), SUM(x) FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), manual.size());
  size_t i = 0;
  for (const auto& [g, agg] : manual) {
    EXPECT_EQ(rs->rows[i][0].AsInt(), g);
    EXPECT_EQ(rs->rows[i][1].AsInt(), agg.first);
    EXPECT_NEAR(rs->rows[i][2].AsDouble(), agg.second, 1e-6);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupByProperty,
                         ::testing::Values(1, 10, 100, 1000));

}  // namespace
}  // namespace olxp
