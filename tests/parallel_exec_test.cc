// Morsel-driven parallel vectorized execution: worker-pool/dispatcher
// mechanics, partial-aggregate merge stress (skewed and high-cardinality
// group keys), the parallel cost term in the router, teardown ordering of
// the pool against the background sweepers, and the OLXP_EXEC_THREADS
// environment override CI uses to force the pool onto every test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/session.h"
#include "exec/morsel.h"
#include "tests/result_strings.h"

namespace olxp {
namespace {

engine::EngineProfile ParallelProfile(int threads) {
  auto p = engine::EngineProfile::TiDbLike();
  p.olap_row_fraction = 0.0;
  p.cost_based_routing = false;
  p.replication_lag_micros = 0;
  p.exec_threads = threads;
  return p;
}

// ------------------------------ WorkerPool ---------------------------------

TEST(WorkerPool, RunsEveryLaneIncludingCaller) {
  exec::WorkerPool pool(4);
  EXPECT_EQ(pool.lanes(), 4);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h = 0;
  std::atomic<bool> lane0_on_caller{false};
  const auto caller = std::this_thread::get_id();
  pool.Run(4, [&](int lane) {
    hits[lane].fetch_add(1);
    if (lane == 0 && std::this_thread::get_id() == caller) {
      lane0_on_caller = true;
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_TRUE(lane0_on_caller.load());
}

TEST(WorkerPool, ReusableAcrossRunsAndClampsLaneCount) {
  exec::WorkerPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    pool.Run(8, [&](int lane) {  // clamped to lanes()
      EXPECT_LT(lane, 3);
      ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), 3);
  }
}

TEST(WorkerPool, SingleLanePoolRunsInline) {
  exec::WorkerPool pool(1);
  int ran = 0;
  pool.Run(4, [&](int lane) {
    EXPECT_EQ(lane, 0);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(WorkerPool, ConcurrentRunsFromTwoThreadsComplete) {
  exec::WorkerPool pool(4);
  std::atomic<int> total{0};
  auto job = [&] {
    for (int i = 0; i < 25; ++i) {
      pool.Run(4, [&](int) { total.fetch_add(1); });
    }
  };
  std::thread a(job), b(job);
  a.join();
  b.join();
  // Each Run engages up to 4 lanes; at minimum lane 0 of all 50 Runs ran.
  EXPECT_GE(total.load(), 50);
}

TEST(WorkerPool, ShutdownIsIdempotentAndRunsDegradeToInline) {
  exec::WorkerPool pool(4);
  pool.Shutdown();
  pool.Shutdown();
  std::atomic<int> ran{0};
  pool.Run(4, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);  // no workers left: inline lane 0 only
}

// ---------------------------- MorselDispatcher -----------------------------

TEST(MorselDispatcher, PartitionsExactlyAndOrdinalsAreDense) {
  exec::MorselDispatcher d(10000, 4096);
  EXPECT_EQ(d.morsel_count(), 3u);
  size_t claimed_rows = 0;
  std::vector<bool> seen(d.morsel_count(), false);
  exec::MorselDispatcher::Morsel m;
  while (d.Next(&m)) {
    EXPECT_EQ(m.base, m.ordinal * 4096);
    EXPECT_FALSE(seen[m.ordinal]);
    seen[m.ordinal] = true;
    claimed_rows += m.rows;
  }
  EXPECT_EQ(claimed_rows, 10000u);
  EXPECT_EQ(seen, std::vector<bool>(d.morsel_count(), true));
}

TEST(MorselDispatcher, EmptyTableYieldsNoMorsels) {
  exec::MorselDispatcher d(0, 4096);
  EXPECT_EQ(d.morsel_count(), 0u);
  exec::MorselDispatcher::Morsel m;
  EXPECT_FALSE(d.Next(&m));
}

TEST(MorselDispatcher, CancelStopsDistribution) {
  exec::MorselDispatcher d(100000, 1024);
  exec::MorselDispatcher::Morsel m;
  ASSERT_TRUE(d.Next(&m));
  d.Cancel();
  EXPECT_FALSE(d.Next(&m));
}

TEST(MorselDispatcher, ConcurrentClaimsNeverOverlap) {
  exec::MorselDispatcher d(1 << 20, 1024);
  std::vector<std::atomic<int>> claims(d.morsel_count());
  for (auto& c : claims) c = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      exec::MorselDispatcher::Morsel m;
      while (d.Next(&m)) claims[m.ordinal].fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  for (auto& c : claims) EXPECT_EQ(c.load(), 1);
}

// --------------------------- partial-agg merges ----------------------------

/// All 60k rows share one group key: every lane hammers partials of the
/// same group and the combine folds them all into one output row. The
/// integer aggregates must be exact; COUNT(*) via star_count merge too.
TEST(ParallelAgg, SkewedSingleGroupStress) {
  engine::Database db(ParallelProfile(8));
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(
      s->Execute("CREATE TABLE skew (k INT PRIMARY KEY, g INT, v INT, "
                 "w DOUBLE)")
          .ok());
  constexpr int kRows = 60000;
  Rng rng(3);
  int64_t expect_sum = 0;
  for (int k = 0; k < kRows; ++k) {
    int64_t v = rng.Uniform(int64_t{0}, int64_t{1000});
    expect_sum += v;
    ASSERT_TRUE(s->Execute("INSERT INTO skew VALUES (?, 7, ?, ?)",
                           {Value::Int(k), Value::Int(v),
                            Value::Double(rng.Uniform(0.0, 1.0))})
                    .ok());
  }
  db.WaitReplicaCaughtUp();
  db.replicator().Stop();

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("exec_threads=" + std::to_string(threads));
    db.set_exec_threads(threads);
    auto rs = s->Execute(
        "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(w) FROM skew "
        "GROUP BY g");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_TRUE(s->last_vectorized());
    ASSERT_EQ(rs->rows.size(), 1u);
    EXPECT_EQ(rs->rows[0][0].AsInt(), 7);
    EXPECT_EQ(rs->rows[0][1].AsInt(), kRows);
    EXPECT_EQ(rs->rows[0][2].AsInt(), expect_sum);
  }
}

/// High-cardinality keys: most groups exist in several morsels, so the
/// combine's find-or-merge path (not the fresh-group fast path) dominates.
/// Output order must still equal the serial run's creation order.
TEST(ParallelAgg, HighCardinalityGroupMergeMatchesSerial) {
  engine::Database db(ParallelProfile(8));
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(
      s->Execute("CREATE TABLE hc (k INT PRIMARY KEY, g INT, v INT)").ok());
  Rng rng(17);
  for (int k = 0; k < 30000; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO hc VALUES (?, ?, ?)",
                           {Value::Int(k),
                            Value::Int(rng.Uniform(int64_t{0}, int64_t{4999})),
                            Value::Int(k % 100)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();
  db.replicator().Stop();

  const std::string q =
      "SELECT g, COUNT(*), SUM(v), MIN(v) FROM hc GROUP BY g";
  db.set_exec_threads(1);
  auto serial = s->Execute(q);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(s->last_vectorized());
  for (int threads : {2, 8}) {
    SCOPED_TRACE("exec_threads=" + std::to_string(threads));
    db.set_exec_threads(threads);
    auto par = s->Execute(q);
    ASSERT_TRUE(par.ok());
    EXPECT_TRUE(s->last_vectorized());
    // Row-for-row: group creation order reproduces the serial scan.
    EXPECT_EQ(Stringify(*par), Stringify(*serial));
  }
}

/// Composite (row-keyed) group keys exercise the non-int merge path, and a
/// grouped NULL key must land in the same output group at every lane count.
TEST(ParallelAgg, CompositeAndNullKeysMergeExactly) {
  engine::Database db(ParallelProfile(8));
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE ck (k INT PRIMARY KEY, a INT, "
                         "b VARCHAR, v INT)")
                  .ok());
  const char* tags[] = {"x", "y", "z"};
  for (int k = 0; k < 20000; ++k) {
    ASSERT_TRUE(
        s->Execute("INSERT INTO ck VALUES (?, ?, ?, ?)",
                   {Value::Int(k),
                    k % 11 == 0 ? Value::Null() : Value::Int(k % 6),
                    Value::String(tags[k % 3]), Value::Int(k % 13)})
            .ok());
  }
  db.WaitReplicaCaughtUp();
  db.replicator().Stop();

  for (const char* q :
       {"SELECT a, b, COUNT(*), SUM(v) FROM ck GROUP BY a, b",
        "SELECT a, COUNT(*) FROM ck GROUP BY a"}) {
    SCOPED_TRACE(q);
    db.set_exec_threads(1);
    auto serial = s->Execute(q);
    ASSERT_TRUE(serial.ok());
    db.set_exec_threads(8);
    auto par = s->Execute(q);
    ASSERT_TRUE(par.ok());
    EXPECT_TRUE(s->last_vectorized());
    EXPECT_EQ(Stringify(*par), Stringify(*serial));
  }
}

/// Plans whose serial path stops early at LIMIT stay serial (a parallel
/// sweep would waste the early exit) and still return the right prefix.
TEST(ParallelExec, EarlyStopLimitPlansStaySerialAndCorrect) {
  engine::Database db(ParallelProfile(8));
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE lim (k INT PRIMARY KEY, v INT)").ok());
  for (int k = 0; k < 20000; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO lim VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();
  auto rs = s->Execute("SELECT k FROM lim WHERE v >= 100 LIMIT 5");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(s->last_vectorized());
  ASSERT_EQ(rs->rows.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rs->rows[i][0].AsInt(), 100 + i);
}

// ------------------------------- routing -----------------------------------

TEST(ParallelRouting, PointReadsStayOnRowStoreWithPool) {
  auto p = ParallelProfile(8);
  p.cost_based_routing = true;
  engine::Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE pr (k INT PRIMARY KEY, v INT)").ok());
  for (int k = 0; k < 5000; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO pr VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();

  // Point read: never a replica candidate, no matter how cheap parallel
  // vectorized sweeps become.
  ASSERT_TRUE(s->Execute("SELECT v FROM pr WHERE k = 123").ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);
  EXPECT_FALSE(s->last_vectorized());

  // Full-table aggregate: replica, vectorized, and the pool engages.
  ASSERT_TRUE(s->Execute("SELECT SUM(v) FROM pr").ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kColumnStore);
  EXPECT_TRUE(s->last_vectorized());
}

TEST(ParallelRouting, ParallelCostTermPullsIndexedScansToReplica) {
  // The pk-range shape sits between a point read and a full sweep: with a
  // serial replica the row store's index path wins; a pool divides the
  // replica's cost below it and the router flips. Both executions are
  // correct — this pins the cost model's parallel term. 20k rows = ~5
  // morsels, so the lane clamp still leaves a real fan-out. Keys insert in
  // shuffled order so every sealed block's zone map spans the whole key
  // range: zone pruning estimates a full read and the parallel term is
  // pinned in isolation (zone-based routing has its own coverage in
  // obs_test / encoding_test).
  auto p = ParallelProfile(1);
  p.cost_based_routing = true;
  engine::Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE ix (k INT PRIMARY KEY, v INT)").ok());
  uint64_t lcg = 1;
  std::vector<int> keys(20000);
  for (int k = 0; k < 20000; ++k) keys[k] = k;
  for (int k = 19999; k > 0; --k) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    std::swap(keys[k], keys[lcg % (k + 1)]);
  }
  for (int k : keys) {
    ASSERT_TRUE(s->Execute("INSERT INTO ix VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();

  const std::string q = "SELECT SUM(v) FROM ix WHERE k >= 10 AND k <= 20";
  db.set_exec_threads(1);
  ASSERT_TRUE(s->Execute(q).ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);

  db.set_exec_threads(8);
  ASSERT_TRUE(s->Execute(q).ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kColumnStore);

  // An early-stop LIMIT shape never fans out, so it must get no parallel
  // discount: the row store's index path keeps winning even at 8 lanes.
  ASSERT_TRUE(
      s->Execute("SELECT v FROM ix WHERE k >= 10 AND k <= 20 LIMIT 3").ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);

  // Below one morsel of rows there is nothing to fan out: the discount is
  // clamped away and the indexed shape stays on the row store.
  ASSERT_TRUE(s->Execute("CREATE TABLE tiny (k INT PRIMARY KEY, v INT)").ok());
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO tiny VALUES (?, ?)",
                           {Value::Int(k), Value::Int(k)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();
  ASSERT_TRUE(
      s->Execute("SELECT SUM(v) FROM tiny WHERE k >= 10 AND k <= 20").ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);
}

// ------------------------------- teardown ----------------------------------

/// ~Database must drain the exec pool before stopping the vacuum thread and
/// replicator: destroy instances while replication is still applying and
/// right after parallel queries ran. TSan (CI runs this suite under it)
/// would flag any morsel outliving the stores.
TEST(ParallelShutdown, DestructorStressPoolStopsBeforeSweepers) {
  for (int round = 0; round < 12; ++round) {
    auto p = ParallelProfile(4);
    p.vacuum_interval_us = 100;  // keep the vacuum thread busy
    engine::Database db(p);
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    ASSERT_TRUE(
        s->Execute("CREATE TABLE t (k INT PRIMARY KEY, g INT, v INT)").ok());
    for (int k = 0; k < 4000; ++k) {
      ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?, ?)",
                             {Value::Int(k), Value::Int(k % 5),
                              Value::Int(k)})
                      .ok());
    }
    if (round % 2 == 0) db.WaitReplicaCaughtUp();
    // Fire parallel work from two session threads, then destroy the
    // Database immediately — possibly with the replicator mid-apply.
    std::thread t1([&] {
      auto s2 = db.CreateSession();
      s2->set_charging_enabled(false);
      (void)s2->Execute("SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g");
    });
    std::thread t2([&] {
      auto s3 = db.CreateSession();
      s3->set_charging_enabled(false);
      (void)s3->Execute("SELECT SUM(v) FROM t WHERE v % 3 = 0");
    });
    t1.join();
    t2.join();
  }
}

// ------------------------------ environment --------------------------------

TEST(ParallelEnv, ExecThreadsEnvOverridesProfile) {
  const char* orig = std::getenv("OLXP_EXEC_THREADS");
  const std::string saved = orig != nullptr ? orig : "";
  ASSERT_EQ(setenv("OLXP_EXEC_THREADS", "3", /*overwrite=*/1), 0);
  {
    engine::Database db(ParallelProfile(1));
    EXPECT_EQ(db.profile().exec_threads, 3);
    ASSERT_NE(db.exec_pool(), nullptr);
    EXPECT_EQ(db.exec_pool()->lanes(), 3);
  }
  ASSERT_EQ(unsetenv("OLXP_EXEC_THREADS"), 0);
  {
    engine::Database db(ParallelProfile(1));
    EXPECT_EQ(db.exec_pool(), nullptr);
  }
  // Put the CI-provided value back for the rest of this binary.
  if (orig != nullptr) {
    ASSERT_EQ(setenv("OLXP_EXEC_THREADS", saved.c_str(), 1), 0);
  }
}

}  // namespace
}  // namespace olxp
