#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "storage/row_store.h"
#include "txn/transaction.h"

namespace olxp::txn {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : mgr_(&store_, &locks_, &oracle_, &log_, 50000) {
    storage::TableSchema schema(
        "acct",
        {{"id", ValueType::kInt, false}, {"bal", ValueType::kInt, true}},
        {0});
    table_id_ = *store_.CreateTable(schema);
  }

  Row Acct(int64_t id, int64_t bal) { return {Value::Int(id),
                                              Value::Int(bal)}; }

  Status Seed(int64_t id, int64_t bal) {
    auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
    OLXP_RETURN_NOT_OK(t->Insert(table_id_, Acct(id, bal)));
    return t->Commit();
  }

  storage::RowStore store_;
  storage::LockManager locks_;
  storage::TimestampOracle oracle_;
  storage::CommitLog log_;
  TransactionManager mgr_;
  int table_id_ = 0;
};

TEST_F(TxnTest, ReadOwnWrites) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t->Insert(table_id_, Acct(1, 100)).ok());
  auto r = t->Get(table_id_, {Value::Int(1)});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ((**r)[1].AsInt(), 100);
  ASSERT_TRUE(t->Update(table_id_, Acct(1, 50)).ok());
  EXPECT_EQ((*t->Get(table_id_, {Value::Int(1)}))->at(1).AsInt(), 50);
  ASSERT_TRUE(t->Delete(table_id_, {Value::Int(1)}).ok());
  EXPECT_FALSE(t->Get(table_id_, {Value::Int(1)})->has_value());
  ASSERT_TRUE(t->Commit().ok());
}

TEST_F(TxnTest, UncommittedInvisibleToOthers) {
  auto t1 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->Insert(table_id_, Acct(1, 100)).ok());
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_FALSE(t2->Get(table_id_, {Value::Int(1)})->has_value());
  ASSERT_TRUE(t1->Commit().ok());
  // t2's snapshot predates the commit: still invisible under SI.
  EXPECT_FALSE(t2->Get(table_id_, {Value::Int(1)})->has_value());
  // A read-committed transaction started earlier sees it per statement.
  auto t3 = mgr_.Begin(IsolationLevel::kReadCommitted);
  EXPECT_TRUE(t3->Get(table_id_, {Value::Int(1)})->has_value());
}

TEST_F(TxnTest, SnapshotIsolationRepeatableRead) {
  ASSERT_TRUE(Seed(1, 100).ok());
  auto reader = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ((*reader->Get(table_id_, {Value::Int(1)}))->at(1).AsInt(), 100);

  auto writer = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(writer->Update(table_id_, Acct(1, 999)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  // Repeatable: same value within the transaction.
  EXPECT_EQ((*reader->Get(table_id_, {Value::Int(1)}))->at(1).AsInt(), 100);

  // Read-committed sees the newest committed value immediately.
  auto rc = mgr_.Begin(IsolationLevel::kReadCommitted);
  EXPECT_EQ((*rc->Get(table_id_, {Value::Int(1)}))->at(1).AsInt(), 999);
}

TEST_F(TxnTest, FirstCommitterWinsConflict) {
  ASSERT_TRUE(Seed(1, 100).ok());
  auto t1 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->Update(table_id_, Acct(1, 101)).ok());
  ASSERT_TRUE(t1->Commit().ok());
  // t2's snapshot predates t1's commit: write must conflict.
  Status st = t2->Update(table_id_, Acct(1, 102));
  EXPECT_EQ(st.code(), StatusCode::kConflict);
  EXPECT_TRUE(st.IsRetryable());
  ASSERT_TRUE(t2->Abort().ok());
}

TEST_F(TxnTest, ReadCommittedAllowsLostUpdateSemantics) {
  // RC has no first-committer-wins: the second write succeeds (this is the
  // weaker isolation MemSQL-like profiles run with).
  ASSERT_TRUE(Seed(1, 100).ok());
  auto t1 = mgr_.Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(t1->Update(table_id_, Acct(1, 101)).ok());
  ASSERT_TRUE(t1->Commit().ok());
  auto t2 = mgr_.Begin(IsolationLevel::kReadCommitted);
  EXPECT_TRUE(t2->Update(table_id_, Acct(1, 102)).ok());
  EXPECT_TRUE(t2->Commit().ok());
}

TEST_F(TxnTest, WriteLockBlocksConcurrentWriter) {
  ASSERT_TRUE(Seed(1, 100).ok());
  auto t1 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->Update(table_id_, Acct(1, 1)).ok());
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  Status st = t2->Update(table_id_, Acct(1, 2));  // waits, then times out
  EXPECT_EQ(st.code(), StatusCode::kLockTimeout);
  ASSERT_TRUE(t1->Commit().ok());
}

TEST_F(TxnTest, AbortDiscardsEverythingAndReleasesLocks) {
  ASSERT_TRUE(Seed(1, 100).ok());
  auto t1 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->Update(table_id_, Acct(1, 1)).ok());
  ASSERT_TRUE(t1->Insert(table_id_, Acct(2, 2)).ok());
  EXPECT_EQ(t1->WriteSetSize(), 2u);
  ASSERT_TRUE(t1->Abort().ok());

  auto t2 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ((*t2->Get(table_id_, {Value::Int(1)}))->at(1).AsInt(), 100);
  EXPECT_FALSE(t2->Get(table_id_, {Value::Int(2)})->has_value());
  // Lock must be free again.
  EXPECT_TRUE(t2->Update(table_id_, Acct(1, 5)).ok());
  ASSERT_TRUE(t2->Commit().ok());
}

TEST_F(TxnTest, DestructorAbortsActiveTxn) {
  ASSERT_TRUE(Seed(1, 100).ok());
  {
    auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
    ASSERT_TRUE(t->Update(table_id_, Acct(1, 5)).ok());
    // dropped without commit
  }
  auto t2 = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ((*t2->Get(table_id_, {Value::Int(1)}))->at(1).AsInt(), 100);
  EXPECT_TRUE(t2->Update(table_id_, Acct(1, 7)).ok());  // lock released
}

TEST_F(TxnTest, InsertDuplicateAndDeleteAbsent) {
  ASSERT_TRUE(Seed(1, 100).ok());
  auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(t->Insert(table_id_, Acct(1, 5)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(t->Delete(table_id_, {Value::Int(42)}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(t->Update(table_id_, Acct(42, 5)).code(), StatusCode::kNotFound);
  // Delete-then-reinsert within one transaction.
  EXPECT_TRUE(t->Delete(table_id_, {Value::Int(1)}).ok());
  EXPECT_TRUE(t->Insert(table_id_, Acct(1, 200)).ok());
  ASSERT_TRUE(t->Commit().ok());
  auto check = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ((*check->Get(table_id_, {Value::Int(1)}))->at(1).AsInt(), 200);
}

TEST_F(TxnTest, ScanMergesWriteSet) {
  ASSERT_TRUE(Seed(1, 10).ok());
  ASSERT_TRUE(Seed(2, 20).ok());
  ASSERT_TRUE(Seed(3, 30).ok());
  auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t->Update(table_id_, Acct(2, 999)).ok());
  ASSERT_TRUE(t->Delete(table_id_, {Value::Int(3)}).ok());
  ASSERT_TRUE(t->Insert(table_id_, Acct(4, 40)).ok());

  int64_t sum = 0;
  int count = 0;
  ASSERT_TRUE(t->Scan(table_id_,
                      [&](const Row& r) {
                        sum += r[1].AsInt();
                        ++count;
                        return true;
                      })
                  .ok());
  EXPECT_EQ(count, 3);          // 1, 2(modified), 4; 3 deleted
  EXPECT_EQ(sum, 10 + 999 + 40);
  ASSERT_TRUE(t->Abort().ok());
}

TEST_F(TxnTest, ScanSeesOwnWritesInPkOrder) {
  // Regression: buffered inserts used to be appended AFTER the storage
  // scan, so a scan inside the inserting transaction returned rows out of
  // primary-key order. The write set must merge at its key position.
  ASSERT_TRUE(Seed(2, 20).ok());
  ASSERT_TRUE(Seed(4, 40).ok());
  ASSERT_TRUE(Seed(6, 60).ok());
  auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t->Insert(table_id_, Acct(1, 11)).ok());
  ASSERT_TRUE(t->Insert(table_id_, Acct(3, 33)).ok());
  ASSERT_TRUE(t->Insert(table_id_, Acct(5, 55)).ok());
  ASSERT_TRUE(t->Insert(table_id_, Acct(7, 77)).ok());
  ASSERT_TRUE(t->Update(table_id_, Acct(4, 444)).ok());

  std::vector<int64_t> full_ids;
  ASSERT_TRUE(t->Scan(table_id_,
                      [&](const Row& r) {
                        full_ids.push_back(r[0].AsInt());
                        return true;
                      })
                  .ok());
  EXPECT_EQ(full_ids, (std::vector<int64_t>{1, 2, 3, 4, 5, 6, 7}));

  std::vector<int64_t> range_ids;
  std::vector<int64_t> range_bals;
  ASSERT_TRUE(t->ScanPkRange(table_id_, {Value::Int(2)}, {Value::Int(6)},
                             [&](const Row& r) {
                               range_ids.push_back(r[0].AsInt());
                               range_bals.push_back(r[1].AsInt());
                               return true;
                             })
                  .ok());
  EXPECT_EQ(range_ids, (std::vector<int64_t>{2, 3, 4, 5, 6}));
  // The updated image (not the stored one) appears at its key slot.
  EXPECT_EQ(range_bals, (std::vector<int64_t>{20, 33, 444, 55, 60}));

  // Early termination mid-merge stays consistent.
  std::vector<int64_t> first_three;
  ASSERT_TRUE(t->Scan(table_id_,
                      [&](const Row& r) {
                        first_three.push_back(r[0].AsInt());
                        return first_three.size() < 3;
                      })
                  .ok());
  EXPECT_EQ(first_three, (std::vector<int64_t>{1, 2, 3}));
  ASSERT_TRUE(t->Abort().ok());
}

TEST_F(TxnTest, EmptyCommitIsCheap) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  uint64_t before = log_.size();
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(log_.size(), before);  // no redo record for read-only txns
}

TEST_F(TxnTest, OperationsAfterCommitFail) {
  auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_FALSE(t->Insert(table_id_, Acct(9, 9)).ok());
  EXPECT_FALSE(t->Get(table_id_, {Value::Int(9)}).ok());
  EXPECT_FALSE(t->Commit().ok());
}

/// Property: concurrent transfers preserve the total balance under SI with
/// retries — the core serializability-adjacent invariant the benchmark's
/// banking domain relies on.
TEST_F(TxnTest, ConcurrentTransfersConserveTotal) {
  constexpr int kAccounts = 16;
  constexpr int kThreads = 8;
  constexpr int kTransfersPerThread = 150;
  for (int i = 0; i < kAccounts; ++i) {
    ASSERT_TRUE(Seed(i, 1000).ok());
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        while (true) {
          auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
          int64_t a = rng.Uniform(int64_t{0}, int64_t{kAccounts - 1});
          int64_t b = rng.Uniform(int64_t{0}, int64_t{kAccounts - 1});
          if (a == b) b = (b + 1) % kAccounts;
          int64_t amt = rng.Uniform(int64_t{1}, int64_t{50});
          auto ra = t->Get(table_id_, {Value::Int(a)});
          auto rb = t->Get(table_id_, {Value::Int(b)});
          if (!ra.ok() || !rb.ok()) continue;
          Status s1 = t->Update(table_id_,
                                Acct(a, (**ra)[1].AsInt() - amt));
          if (!s1.ok()) {
            (void)t->Abort();  // retry; the update failure is expected churn
            continue;
          }
          Status s2 = t->Update(table_id_,
                                Acct(b, (**rb)[1].AsInt() + amt));
          if (!s2.ok()) {
            (void)t->Abort();  // retry; the update failure is expected churn
            continue;
          }
          if (t->Commit().ok()) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  auto t = mgr_.Begin(IsolationLevel::kSnapshotIsolation);
  int64_t total = 0;
  ASSERT_TRUE(t->Scan(table_id_,
                      [&](const Row& r) {
                        total += r[1].AsInt();
                        return true;
                      })
                  .ok());
  EXPECT_EQ(total, int64_t{kAccounts} * 1000);
}

}  // namespace
}  // namespace olxp::txn
